"""Shim for environments whose pip/setuptools lack PEP 660 support.

All real metadata lives in pyproject.toml.  This file only enables
``pip install -e . --no-use-pep517`` (and ``python setup.py develop``)
on machines without the ``wheel`` package; normal installs should just
run ``pip install -e .``.
"""

from setuptools import setup

setup()
