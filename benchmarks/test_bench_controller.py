"""§4.3: controller convergence, plus the jump-start ablation.

Paper: with the queueing-model starting value the controller converges
in < 10 iterations on all setups.  The ablation quantifies how much the
model jump-start buys over a naive start.
"""

from repro.core.controller import Baseline, MplController, Thresholds
from repro.core.system import SimulatedSystem
from repro.experiments.figures import controller_convergence
from repro.experiments.runner import setup_config
from repro.workloads.setups import get_setup


def test_controller_convergence(once):
    result = once(controller_convergence, fast=True)
    print()
    print(result.render())
    iterations = result.series[0].ys
    # Most setups converge in 1-6 iterations.  The worst case is the
    # 4-disk setup, whose worst-case model start (57) sits ~50 above
    # the true optimum: the doubling probe plus bisection then needs
    # ~log2(50) + bracket-refinement windows, i.e. low teens.
    assert all(i <= 15 for i in iterations)
    assert sum(iterations) / len(iterations) <= 10
    finals = result.series[2].ys
    assert all(1 <= f <= 60 for f in finals)


def test_jump_start_ablation(once):
    """Model-seeded start vs naive MPL=100 start on setup 11."""

    def ablation():
        setup = get_setup(11)
        baseline_run = SimulatedSystem(
            setup_config(setup, mpl=None)
        ).run(transactions=1000)
        baseline = Baseline(
            throughput=baseline_run.throughput,
            mean_response_time=baseline_run.mean_response_time,
        )
        outcomes = {}
        for label, start in (("model start", 11), ("naive start", 100)):
            system = SimulatedSystem(setup_config(setup, mpl=start))
            controller = MplController(
                system, baseline=baseline, thresholds=Thresholds(),
                initial_mpl=start, window=100,
            )
            outcomes[label] = controller.tune()
        return outcomes

    outcomes = once(ablation)
    for label, report in outcomes.items():
        print(f"{label}: final={report.final_mpl} iterations={report.iterations}")
    assert outcomes["model start"].iterations <= outcomes["naive start"].iterations + 2
