"""Figure 13: internal (CPU priorities / renice) vs external, setup 3.

Paper: on the CPU-bound workload, weighted-CPU internal prioritization
and external scheduling at a tuned MPL give comparable differentiation.
"""

from repro.experiments.figures import figure13


def test_figure13(once):
    panels = once(figure13, fast=True)
    panel = panels[0]
    print()
    print(panel.render())
    highs, lows, _means = (s.ys for s in panel.series)
    internal_diff = lows[0] / highs[0]
    ext_diffs = [l / h for h, l in zip(highs[1:], lows[1:]) if h > 0]
    assert internal_diff > 1.5
    assert max(ext_diffs) > 1.5
