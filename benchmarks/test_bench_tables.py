"""Tables 1 and 2 plus the §3.2 variability comparison.

Paper bands: C^2 is 1.0-1.5 for TPC-C, ~15 for TPC-W, ~2 for the
commercial traces.
"""

import re

from repro.experiments.tables import table1, table2, variability_table


def test_table1(once):
    text = once(table1)
    print()
    print(text)
    assert text.count("TPC-") >= 6


def test_table2(once):
    text = once(table2)
    print()
    print(text)
    assert len(text.strip().splitlines()) == 20  # title + header + sep + 17


def test_variability_bands(once):
    text = once(variability_table, samples=12_000)
    print()
    print(text)

    def scv_of(row_name):
        for line in text.splitlines():
            if row_name in line:
                return float(line.rsplit("|", 1)[1])
        raise AssertionError(f"{row_name} missing")

    assert 0.8 <= scv_of("W_CPU-inventory") <= 1.8  # paper: 1.0-1.5
    assert 10.0 <= scv_of("W_CPU-browsing") <= 22.0  # paper: ~15
    assert 1.5 <= scv_of("online-retailer") <= 2.6  # paper: ~2
    assert 1.6 <= scv_of("auction-site") <= 2.9  # paper: ~2
