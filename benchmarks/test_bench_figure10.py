"""Figure 10: CTMC mean response time vs MPL for C^2 in {2,5,10,15}.

Paper: at load 0.7 the C^2 <= 2 curves are flat by MPL ~5 while
C^2 = 15 needs MPL ~10; at load 0.9 C^2 = 15 needs MPL ~30; all curves
approach the C^2-insensitive PS line from above.
"""

from repro.experiments.figures import figure10


def test_figure10(once):
    panels = once(figure10)
    for panel in panels:
        print()
        print(panel.render())
    load07, load09 = panels

    def series(panel, label):
        return next(s.ys for s in panel.series if s.label == label)

    ps07 = series(load07, "PS")[0]
    c2_15 = series(load07, "C2=15")
    c2_2 = series(load07, "C2=2")
    mpls = list(load07.xs)
    # C2=2 within 10% of PS by MPL 5
    assert c2_2[mpls.index(5.0)] <= 1.1 * ps07
    # C2=15 still far off at MPL 5 but within 15% by MPL 15
    assert c2_15[mpls.index(5.0)] > 1.5 * ps07
    assert c2_15[mpls.index(15.0)] <= 1.15 * ps07
    # at load 0.9 the same C2=15 curve needs ~30
    ps09 = series(load09, "PS")[0]
    c2_15_hi = series(load09, "C2=15")
    assert c2_15_hi[mpls.index(15.0)] > 1.2 * ps09
    assert c2_15_hi[mpls.index(30.0)] <= 1.3 * ps09
