"""Figure 7: analytic throughput vs MPL for 1-16 disks.

Paper: the minimum MPL reaching 80% (circles) / 95% (squares) of
maximum throughput forms a perfectly straight line in the disk count.
"""

from repro.experiments.figures import figure7
from repro.queueing.throughput_model import balanced_min_mpl


def test_figure7(once):
    panels = once(figure7)
    panel = panels[0]
    print()
    print(panel.render())
    # the straight-line property, checked exactly
    marks80 = [balanced_min_mpl(m, 0.80) for m in range(1, 17)]
    marks95 = [balanced_min_mpl(m, 0.95) for m in range(1, 17)]
    assert {b - a for a, b in zip(marks80[1:], marks80[2:])} == {4}
    assert {b - a for a, b in zip(marks95[1:], marks95[2:])} == {19}
    # asymptotes match the disk count (striped unit demand)
    for disks, series in zip((1, 2, 3, 4, 8, 16), panel.series):
        assert series.ys[-1] <= disks
        assert series.ys[-1] > 0.8 * disks or disks >= 8
