"""Figure 5: throughput vs MPL under heavy locking (RR vs UR).

Paper: lowering the isolation level (less locking) raises the
high-MPL plateau; under RR, pushing the MPL far up stops helping and
eventually hurts (lock thrashing).
"""

from repro.experiments.figures import figure5


def test_figure5(once):
    panels = once(figure5, fast=True)
    for panel in panels:
        print()
        print(panel.render())
    ordering = panels[1]  # W_CPU-ordering, the lock-heavy mix
    ur, rr = ordering.series
    # UR sustains at least RR's throughput at the highest MPL
    assert ur.ys[-1] >= 0.95 * rr.ys[-1]
    # RR's curve flattens early: the last point is no better than ~MPL 10
    mpl10 = ordering.xs.index(10.0)
    assert rr.ys[-1] <= 1.15 * rr.ys[mpl10]
