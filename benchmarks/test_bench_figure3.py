"""Figure 3: throughput vs MPL for the I/O-bound workloads.

Paper: max-throughput MPL grows roughly linearly with the disk count
(1 disk -> ~2, 4 disks -> ~10); W_IO-browsing needs a higher MPL than
W_IO-inventory because of its CPU component.
"""

from repro.experiments.figures import figure3


def test_figure3(once):
    panels = once(figure3, fast=True)
    for panel in panels:
        print()
        print(panel.render())
    inventory = panels[0]
    one_disk = inventory.series[0]
    four_disks = inventory.series[3]
    # scaling: 4 disks deliver well over 2x the 1-disk max
    assert max(four_disks.ys) > 2.5 * max(one_disk.ys)
    # 1 disk is nearly saturated by MPL 2; 4 disks are not
    mpl2 = inventory.xs.index(2.0)
    assert one_disk.ys[mpl2] >= 0.85 * max(one_disk.ys)
    assert four_disks.ys[mpl2] < 0.7 * max(four_disks.ys)
