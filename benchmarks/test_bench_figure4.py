"""Figure 4: throughput vs MPL for the balanced CPU+I/O workload.

Paper: 1 disk + 1 CPU saturates by MPL ~5; 4 disks + 2 CPUs keep
gaining until MPL ~20 (more utilized resources -> higher MPL).
"""

from repro.experiments.figures import figure4


def test_figure4(once):
    panels = once(figure4, fast=True)
    panel = panels[0]
    print()
    print(panel.render())
    small, big = panel.series
    mpl5 = panel.xs.index(5.0)
    mpl20 = panel.xs.index(20.0)
    # small machine ~saturated at MPL 5
    assert small.ys[mpl5] >= 0.85 * max(small.ys)
    # big machine still gaining between 5 and 20
    assert big.ys[mpl20] > 1.2 * big.ys[mpl5]
