"""Figure 11: external prioritization across all 17 setups.

Paper (5% throughput-loss MPLs): high-priority transactions fare 4.2x
to 21.6x better than low (mean 12.1x); low suffers ~16% vs no
prioritization.  At 20% loss: 7x-24x (mean 18x), low suffers ~37%.
"""

import re

from repro.experiments.figures import figure11


def test_figure11(once):
    panels = once(figure11, fast=True)
    for panel in panels:
        print()
        print(panel.render())
    top, bottom = panels  # 5% and 20% loss budgets
    for panel in panels:
        highs, lows, noprios = (s.ys for s in panel.series)
        diffs = [l / h for h, l in zip(highs, lows) if h > 0]
        mean_diff = sum(diffs) / len(diffs)
        # headline result: order-of-magnitude class differentiation
        assert mean_diff > 4.0
        # low-priority suffering stays bounded
        penalties = [l / n for l, n in zip(lows, noprios) if n > 0]
        assert sum(penalties) / len(penalties) < 2.0
