"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures (in
fast mode) and prints the resulting series so the run log doubles as a
reproduction record.  ``--benchmark-only`` selects just these.
"""

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def runner(function, *args, **kwargs):
        return run_once(benchmark, function, *args, **kwargs)

    return runner
