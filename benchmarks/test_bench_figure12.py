"""Figure 12: internal (POW lock scheduling) vs external, setup 1.

Paper: external scheduling at a tuned MPL differentiates about as well
as POW; low-priority suffering is comparable.
"""

from repro.experiments.figures import figure12


def test_figure12(once):
    panels = once(figure12, fast=True)
    panel = panels[0]
    print()
    print(panel.render())
    highs, lows, _means = (s.ys for s in panel.series)
    # columns: internal, ext95, ext80, ext100
    internal_diff = lows[0] / highs[0]
    ext95_diff = lows[1] / highs[1]
    assert internal_diff > 1.5
    assert ext95_diff > 1.5
    # same ballpark (the paper's conclusion)
    assert 0.2 < ext95_diff / internal_diff < 30.0
