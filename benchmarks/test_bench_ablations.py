"""Ablations for the design choices DESIGN.md calls out.

* balanced vs utilization-weighted throughput model;
* adaptive vs constant controller step;
* external queue policy (FIFO vs priority vs SJF) at the same MPL.
"""

from repro.core.controller import Baseline, MplController, Thresholds
from repro.core.system import SimulatedSystem
from repro.experiments.runner import run_setup, setup_config
from repro.queueing.throughput_model import ThroughputModel
from repro.workloads.setups import get_setup


def test_balanced_model_is_conservative(once):
    """The paper's worst-case balanced model never under-predicts the
    MPL needed relative to a utilization-weighted model."""

    def compare():
        rows = []
        for utilizations in (
            {"cpu": 0.95, "disk": 0.95},
            {"cpu": 0.95, "disk": 0.50},
            {"cpu": 0.95, "disk": 0.10},
        ):
            weighted = ThroughputModel.from_utilizations(utilizations)
            balanced = ThroughputModel.balanced(len(utilizations))
            rows.append(
                (
                    utilizations["disk"],
                    weighted.min_mpl_for_fraction(0.95),
                    balanced.min_mpl_for_fraction(0.95),
                )
            )
        return rows

    rows = once(compare)
    print()
    for disk_util, weighted_mpl, balanced_mpl in rows:
        print(
            f"disk util {disk_util:.2f}: weighted model -> MPL {weighted_mpl}, "
            f"balanced (worst case) -> MPL {balanced_mpl}"
        )
        assert balanced_mpl >= weighted_mpl


def test_adaptive_vs_constant_step(once):
    """Adaptive stepping converges no slower than the constant ±1 loop
    when the model start is far from the optimum."""

    def compare():
        setup = get_setup(12)
        baseline_run = SimulatedSystem(setup_config(setup, mpl=None)).run(1000)
        baseline = Baseline(
            throughput=baseline_run.throughput,
            mean_response_time=baseline_run.mean_response_time,
        )
        results = {}
        for label, adaptive in (("adaptive", True), ("constant", False)):
            system = SimulatedSystem(setup_config(setup, mpl=30))
            controller = MplController(
                system, baseline=baseline, thresholds=Thresholds(),
                initial_mpl=30, window=100, adaptive=adaptive,
                max_iterations=30,
            )
            results[label] = controller.tune()
        return results

    results = once(compare)
    print()
    for label, report in results.items():
        print(f"{label}: final={report.final_mpl} iterations={report.iterations} "
              f"converged={report.converged}")
    assert results["adaptive"].iterations <= results["constant"].iterations


def test_external_policy_ablation(once):
    """At the same low MPL, the external queue policy decides who wins:
    priority favours the high class, SJF favours the overall mean."""

    def compare():
        setup = get_setup(1)
        rows = {}
        for policy in ("fifo", "priority", "sjf"):
            rows[policy] = run_setup(
                setup, mpl=5, policy=policy, transactions=900,
                high_priority_fraction=0.1, seed=13,
            )
        return rows

    rows = once(compare)
    print()
    for policy, result in rows.items():
        print(
            f"{policy}: mean={result.mean_response_time:.2f}s "
            f"high={result.high_response_time:.2f}s "
            f"low={result.low_response_time:.2f}s"
        )
    assert rows["priority"].high_response_time < rows["fifo"].high_response_time
    assert rows["sjf"].mean_response_time <= rows["fifo"].mean_response_time * 1.1
