"""§3.2: open-system mean response time vs MPL.

Paper: TPC-C (C^2 ~= 1.3) is insensitive to the MPL once >= 4; TPC-W
(C^2 ~= 15) needs MPL >= 8 at 70% load and >= 15 at 90% load.
"""

from repro.experiments.figures import section32_response_time


def test_section32(once):
    panels = once(section32_response_time, fast=True)
    for panel in panels:
        print()
        print(panel.render())
    tpcc, tpcw = panels
    # TPC-C at load 0.7: response time at MPL 4 within 40% of MPL 30
    mpl4 = tpcc.xs.index(4.0)
    load70 = tpcc.series[0]
    assert load70.ys[mpl4] <= 1.4 * load70.ys[-1]
    # TPC-W at load 0.7: MPL 1 is much worse than MPL 30 (HOL blocking)
    tpcw70 = tpcw.series[0]
    assert tpcw70.ys[0] > 1.5 * tpcw70.ys[-1]
