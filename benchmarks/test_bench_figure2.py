"""Figure 2: throughput vs MPL for the CPU-bound workloads.

Paper: 1 CPU saturates near MPL 5; 2 CPUs need MPL ~7-10; maxima
around 65/130 tx/s (TPC-C) and 9.5/19 tx/s (TPC-W browsing).
"""

from repro.experiments.figures import figure2


def test_figure2(once):
    panels = once(figure2, fast=True)
    for panel in panels:
        print()
        print(panel.render())
    panel_a = panels[0]
    one_cpu, two_cpu = panel_a.series
    assert two_cpu.ys[-1] > 1.5 * one_cpu.ys[-1]
    # one CPU reaches >=90% of its max by MPL 5 (xs index 3)
    mpl5_index = panel_a.xs.index(5.0)
    assert one_cpu.ys[mpl5_index] >= 0.9 * max(one_cpu.ys)
