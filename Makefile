# One entry point per CI job, so local runs and CI are identical.
#
#   make test        tier-1 test suite (what CI's test matrix runs)
#   make lint        ruff (falls back to a syntax check if ruff is absent)
#   make bench       parallel-runner benchmark -> BENCH_smoke.json
#   make reproduce   every figure and table, parallel, cached
#
# JOBS and CACHE_DIR are overridable: `make reproduce JOBS=16`.

PYTHON      ?= python
JOBS        ?= 4
CACHE_DIR   ?= .repro-cache
# bench gets its own cache so its cold pass stays cold even after
# `make reproduce` warmed the main cache
BENCH_CACHE ?= .repro-bench-cache
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint bench reproduce smoke clean

test:
	$(PYTHON) -m pytest -x -q

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; falling back to a syntax check"; \
		$(PYTHON) -m compileall -q src tests benchmarks examples; \
	fi

bench:
	rm -rf $(BENCH_CACHE)
	$(PYTHON) -m repro.experiments bench --figure smoke --jobs $(JOBS) \
		--cache-dir $(BENCH_CACHE) --output BENCH_smoke.json

smoke:
	$(PYTHON) -m repro.experiments 4 --jobs $(JOBS) --cache-dir $(CACHE_DIR)

reproduce:
	$(PYTHON) -m repro.experiments all --jobs $(JOBS) --cache-dir $(CACHE_DIR)

clean:
	rm -rf $(CACHE_DIR) $(BENCH_CACHE) BENCH_*.json src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
