# One entry point per CI job, so local runs and CI are identical.
#
#   make test        tier-1 test suite (what CI's test matrix runs);
#                    with pytest-cov installed it also prints coverage
#                    and gates the cluster/routing modules at COV_MIN%
#   make lint        ruff (falls back to a syntax check if ruff is absent)
#   make bench       parallel-runner benchmark -> BENCH_smoke.json
#   make reproduce   every figure and table, parallel, cached
#
# JOBS and CACHE_DIR are overridable: `make reproduce JOBS=16`.

PYTHON      ?= python
JOBS        ?= 4
CACHE_DIR   ?= .repro-cache
# bench gets its own cache so its cold pass stays cold even after
# `make reproduce` warmed the main cache
BENCH_CACHE ?= .repro-bench-cache
# coverage floor for the modules the cluster PR introduced (what CI
# enforces); the rest of the tree is reported, not gated
COV_MIN     ?= 90
COV_MODULES  = --cov=repro.core.cluster --cov=repro.sim.station
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint bench cluster-bench kernel-bench reproduce smoke clean

test:
	@if $(PYTHON) -c "import pytest_cov" >/dev/null 2>&1; then \
		$(PYTHON) -m pytest -x -q $(COV_MODULES) \
			--cov-report=term-missing --cov-fail-under=$(COV_MIN); \
	else \
		echo "pytest-cov not installed; running without the coverage gate"; \
		$(PYTHON) -m pytest -x -q; \
	fi

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; falling back to a syntax check"; \
		$(PYTHON) -m compileall -q src tests benchmarks examples; \
	fi

bench:
	rm -rf $(BENCH_CACHE)
	$(PYTHON) -m repro.experiments bench --figure smoke --jobs $(JOBS) \
		--cache-dir $(BENCH_CACHE) --output BENCH_smoke.json

# Sharded-cluster grid (1-8 shards, all four routing policies) through
# the runner; CI uploads the artifact next to the smoke benchmark.
cluster-bench:
	rm -rf .cluster-bench-cache
	$(PYTHON) -m repro.experiments bench --figure sh --jobs $(JOBS) \
		--cache-dir .cluster-bench-cache --output BENCH_sh.json

# Serial figure-2 cold pass against the checked-in BENCH_seed.json;
# fails when the simulation kernel regresses >2x (what CI runs).
kernel-bench:
	rm -rf .kernel-bench-cache
	$(PYTHON) -m repro.experiments bench --figure 2 --jobs 1 \
		--cache-dir .kernel-bench-cache --output BENCH_figure2.json \
		--baseline BENCH_seed.json --max-regression 2

smoke:
	$(PYTHON) -m repro.experiments 4 --jobs $(JOBS) --cache-dir $(CACHE_DIR)

reproduce:
	$(PYTHON) -m repro.experiments all --jobs $(JOBS) --cache-dir $(CACHE_DIR)

clean:
	rm -rf $(CACHE_DIR) $(BENCH_CACHE) .kernel-bench-cache .cluster-bench-cache src/*.egg-info
	rm -f BENCH_smoke.json BENCH_figure2.json BENCH_sh.json   # BENCH_seed.json is checked in
	find . -name __pycache__ -type d -exec rm -rf {} +
