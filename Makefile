# One entry point per CI job, so local runs and CI are identical.
#
#   make test        tier-1 test suite (what CI's test matrix runs);
#                    with pytest-cov installed it also prints coverage
#                    and gates the cluster/routing modules at COV_MIN%
#   make lint        ruff (falls back to a syntax check if ruff is absent)
#   make bench       parallel-runner benchmark -> BENCH_smoke.json
#   make fuzz        seeded scenario fuzz campaign + corpus replay
#   make reproduce   every figure and table, parallel, cached
#
# JOBS and CACHE_DIR are overridable: `make reproduce JOBS=16`.

PYTHON      ?= python
JOBS        ?= 4
CACHE_DIR   ?= .repro-cache
# bench gets its own cache so its cold pass stays cold even after
# `make reproduce` warmed the main cache
BENCH_CACHE ?= .repro-bench-cache
# coverage floor for the modules the cluster + scenario PRs introduced
# (what CI enforces); the rest of the tree is reported, not gated
COV_MIN     ?= 90
COV_MODULES  = --cov=repro.core.cluster --cov=repro.sim.station --cov=repro.core.scenario --cov=repro.core.faults --cov=repro.core.resilience --cov=repro.core.distributed
# figure grids the scenario round-trip check walks
SCENARIO_GRIDS ?= 2 3 4 5 smoke sh po ft rf rs xs es
# fuzz campaign knobs (what CI's smoke job runs; ~45s total)
FUZZ_SEED       ?= 0
FUZZ_ITERATIONS ?= 75
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-c lint bench bench-c cluster-bench kernel-bench kernel-bench-c ckernel profile reproduce smoke scenarios fuzz clean

test:
	@if $(PYTHON) -c "import pytest_cov" >/dev/null 2>&1; then \
		$(PYTHON) -m pytest -x -q $(COV_MODULES) \
			--cov-report=term-missing --cov-fail-under=$(COV_MIN); \
	else \
		echo "pytest-cov not installed; running without the coverage gate"; \
		$(PYTHON) -m pytest -x -q; \
	fi

# Build the optional compiled kernel lane in place (requires cffi + a
# C compiler; everything works without it on the pure-Python lane).
ckernel:
	$(PYTHON) -m repro.sim._ckernel.builder

# The whole tier-1 suite on the compiled lane (builds it first).  Both
# lanes are bit-identical, so the same digest pins must pass.
test-c: ckernel
	REPRO_KERNEL=c $(PYTHON) -m pytest -x -q

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; falling back to a syntax check"; \
		$(PYTHON) -m compileall -q src tests benchmarks examples; \
	fi

bench:
	rm -rf $(BENCH_CACHE)
	$(PYTHON) -m repro.experiments bench --figure smoke --jobs $(JOBS) \
		--cache-dir $(BENCH_CACHE) --output BENCH_smoke.json

# The smoke benchmark on the compiled lane (builds it first).
bench-c: ckernel
	rm -rf $(BENCH_CACHE)
	$(PYTHON) -m repro.experiments bench --figure smoke --jobs $(JOBS) \
		--kernel-lane c --cache-dir $(BENCH_CACHE) --output BENCH_smoke_c.json

# Sharded-cluster grid (1-8 shards, all four routing policies) through
# the runner; CI uploads the artifact next to the smoke benchmark.
cluster-bench:
	rm -rf .cluster-bench-cache
	$(PYTHON) -m repro.experiments bench --figure sh --jobs $(JOBS) \
		--cache-dir .cluster-bench-cache --output BENCH_sh.json

# Serial figure-2 cold pass against the checked-in kernel-v2 baseline
# BENCH_pr4.json (1.48x faster than the seed-era baseline, so the
# same 2x ratio is a much tighter absolute budget; what CI runs on
# the pure-Python lane).  BENCH_seed.json remains checked in as the
# start of the trajectory.
kernel-bench:
	rm -rf .kernel-bench-cache
	$(PYTHON) -m repro.experiments bench --figure 2 --jobs 1 \
		--cache-dir .kernel-bench-cache --output BENCH_figure2.json \
		--baseline BENCH_pr4.json --max-regression 2

# The same cold pass on the compiled lane against its own checked-in
# baseline BENCH_pr7.json (what CI's compiled-lane job runs).
kernel-bench-c: ckernel
	rm -rf .kernel-bench-cache
	$(PYTHON) -m repro.experiments bench --figure 2 --jobs 1 \
		--kernel-lane c --cache-dir .kernel-bench-cache \
		--output BENCH_figure2_c.json \
		--baseline BENCH_pr7.json --max-regression 2

# cProfile the kernel on the figure-2 fast grid (serial, cold cache)
# and print the top 25 functions by self time.
profile:
	rm -rf .profile-cache
	$(PYTHON) -m cProfile -o profile.out -m repro.experiments bench \
		--figure 2 --jobs 1 --cache-dir .profile-cache \
		--output BENCH_profile.json
	$(PYTHON) -c "import pstats; pstats.Stats('profile.out').sort_stats('tottime').print_stats(25)"
	rm -rf .profile-cache

# Scenario API round-trip: for every figure grid, `scenario show`
# piped back through `scenario fingerprint` must produce exactly the
# digests computed directly — i.e. the JSON encoding is canonical and
# loses nothing the cache key depends on (what CI runs).
scenarios:
	@for g in $(SCENARIO_GRIDS); do \
		$(PYTHON) -m repro.experiments scenario show --grid $$g \
			| $(PYTHON) -m repro.experiments scenario fingerprint - \
			> .scenario-rt-a.json; \
		$(PYTHON) -m repro.experiments scenario fingerprint --grid $$g \
			> .scenario-rt-b.json; \
		diff -q .scenario-rt-a.json .scenario-rt-b.json > /dev/null \
			|| { echo "scenario round-trip MISMATCH for grid $$g"; exit 1; }; \
		echo "grid $$g: scenario round-trip fingerprints stable"; \
	done
	@rm -f .scenario-rt-a.json .scenario-rt-b.json

# Seeded random walk over ScenarioSpec space under the oracle library
# (conservation, bit-identical replay, --jobs invariance, codec
# round-trip, MPL sanity), then a replay of the checked-in minimized
# reproducer corpus.  Failures write shrunk reproducers into
# tests/data/fuzz_corpus/ — CI uploads them as an artifact.
fuzz:
	$(PYTHON) -m repro.experiments fuzz --seed $(FUZZ_SEED) \
		--iterations $(FUZZ_ITERATIONS)
	$(PYTHON) -m repro.experiments fuzz --replay

smoke:
	$(PYTHON) -m repro.experiments 4 --jobs $(JOBS) --cache-dir $(CACHE_DIR)

reproduce:
	$(PYTHON) -m repro.experiments all --jobs $(JOBS) --cache-dir $(CACHE_DIR)

clean:
	rm -rf $(CACHE_DIR) $(BENCH_CACHE) .kernel-bench-cache .cluster-bench-cache .profile-cache src/*.egg-info
	rm -f .scenario-rt-a.json .scenario-rt-b.json
	rm -f BENCH_smoke.json BENCH_smoke_c.json BENCH_figure2.json BENCH_figure2_c.json BENCH_sh.json BENCH_profile.json profile.out
	# BENCH_seed.json / BENCH_pr4*.json / BENCH_pr7*.json are checked in (perf trajectory)
	find . -name __pycache__ -type d -exec rm -rf {} +
