"""Smoke tests for the experiment harness (figures, tables, CLI)."""

import pytest

from repro.experiments import figures, report, tables
from repro.experiments.__main__ import main as cli_main
from repro.experiments.runner import (
    find_min_mpl_experimental,
    mpl_sweep,
    run_setup,
)
from repro.workloads.setups import get_setup


class TestReport:
    def test_ascii_table(self):
        text = report.ascii_table(["a", "b"], [[1, 2], [3, 4]], title="T")
        assert "T" in text and "a" in text and "3" in text

    def test_ascii_chart_renders(self):
        text = report.ascii_chart([1, 2, 3], [("line", [1.0, 2.0, 3.0])])
        assert "o" in text and "line" in text

    def test_ascii_chart_empty(self):
        assert report.ascii_chart([], [], title="empty") == "empty"

    def test_format_seconds(self):
        assert report.format_seconds(0.5) == "500 ms"
        assert report.format_seconds(2.0) == "2.00 s"


class TestRunner:
    def test_run_setup_returns_result(self):
        result = run_setup(get_setup(1), mpl=5, transactions=300)
        assert result.throughput > 0

    def test_mpl_sweep_shapes(self):
        sweep = mpl_sweep(get_setup(1), [2, 10], transactions=300)
        assert len(sweep) == 2
        assert sweep[0][0] == 2 and sweep[1][0] == 10
        assert sweep[1][1].throughput > sweep[0][1].throughput

    def test_find_min_mpl(self):
        found = find_min_mpl_experimental(
            get_setup(1), fraction=0.9,
            candidate_mpls=(1, 2, 4, 8, 16), transactions=400,
        )
        assert 1 <= found.min_mpl <= 16
        assert found.baseline_throughput > 0
        assert len(found.sweep) == 5


class TestAnalyticFigures:
    def test_figure7_linear_marks(self):
        panels = figures.figure7(disk_counts=(1, 2, 4), max_mpl=40)
        panel = panels[0]
        assert len(panel.series) == 3
        # asymptotes scale with the disk count
        assert panel.series[2].ys[-1] > panel.series[0].ys[-1]
        rendered = panel.render()
        assert "80%" in rendered and "95%" in rendered

    def test_figure10_shapes(self):
        panels = figures.figure10(scvs=(2.0, 15.0), loads=(0.7,),
                                  mpls=(1, 5, 20))
        panel = panels[0]
        by_label = {s.label: s.ys for s in panel.series}
        # C2=15 starts far above PS and falls toward it
        assert by_label["C2=15"][0] > 3 * by_label["PS"][0]
        assert by_label["C2=15"][-1] == pytest.approx(by_label["PS"][-1], rel=0.1)


class TestSimulatedFigures:
    def test_figure2_panel_shapes(self):
        panels = figures.figure2(fast=True, mpls=(1, 5, 20))
        assert [p.figure for p in panels] == ["2a", "2b"]
        one_cpu, two_cpu = panels[0].series
        # two CPUs end up faster than one at a high MPL
        assert two_cpu.ys[-1] > one_cpu.ys[-1]
        # throughput grows with MPL
        assert one_cpu.ys[-1] > one_cpu.ys[0]

    def test_render_includes_values(self):
        panel = figures.figure4(fast=True, mpls=(1, 10))[0]
        rendered = panel.render()
        assert "Figure 4" in rendered and "MPL" in rendered


class TestTables:
    def test_table1_lists_all_workloads(self):
        text = tables.table1()
        for name in ("W_CPU-inventory", "W_IO-browsing", "W_CPU-ordering"):
            assert name in text

    def test_table2_lists_all_setups(self):
        text = tables.table2()
        assert "17" in text and "W_CPU+IO-inventory" in text

    def test_variability_table_bands(self):
        text = tables.variability_table(samples=4000)
        assert "online-retailer" in text and "auction-site" in text


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "figures" in out and "10" in out

    def test_table_rendering(self, capsys):
        assert cli_main(["--table", "2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_analytic_figure(self, capsys):
        assert cli_main(["--figure", "7"]) == 0
        assert "Figure 7" in capsys.readouterr().out

    def test_unknown_ids_rejected(self):
        assert cli_main(["--figure", "99"]) == 2
        assert cli_main(["--table", "nope"]) == 2

    def test_no_arguments_prints_help(self, capsys):
        assert cli_main([]) == 2
