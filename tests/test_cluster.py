"""Tests for the sharded cluster layer (config, routing, determinism).

The headline guarantees:

* a one-shard cluster is **bit-identical** to the plain single-engine
  system — same ``RunResult`` JSON, same config fingerprint (pinned
  digests, like ``tests/test_arrivals.py`` pins the legacy hashes);
* multi-shard runs are deterministic under any ``--jobs N`` and cache
  cleanly;
* the global MPL splits across shards correctly in static mode, and
  the per-shard feedback-controller mode drives each shard's scheduler.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import (
    ClusterConfig,
    ClusteredSystem,
    ShardedExternalScheduler,
    build_system,
    run_cluster,
    split_mpl,
)
from repro.core.arrivals import OpenArrivals, PartlyOpenArrivals
from repro.core.controller import Baseline, Thresholds
from repro.core.system import SimulatedSystem, SystemConfig
from repro.experiments import figures
from repro.experiments.parallel import ParallelRunner, RunSpec
from repro.sim.random import derive_seed
from repro.sim.station import ROUTING_POLICIES
from repro.workloads.setups import get_setup


def _base(mpl=4, seed=2, **kwargs) -> SystemConfig:
    setup = get_setup(1)
    return SystemConfig(
        workload=setup.workload,
        hardware=setup.hardware,
        isolation=setup.isolation,
        mpl=mpl,
        seed=seed,
        **kwargs,
    )


class TestSplitMpl:
    def test_even_split_with_remainder_to_low_indices(self):
        assert split_mpl(10, 4) == [3, 3, 2, 2]
        assert split_mpl(8, 4) == [2, 2, 2, 2]
        assert split_mpl(5, 4) == [2, 1, 1, 1]

    def test_unlimited_stays_unlimited(self):
        assert split_mpl(None, 3) == [None, None, None]

    def test_weighted_split_is_proportional(self):
        assert split_mpl(10, 3, (1, 1, 2)) == [3, 2, 5]
        assert split_mpl(12, 2, (1, 3)) == [3, 9]

    def test_every_shard_gets_at_least_one(self):
        assert min(split_mpl(4, 4, (100, 1, 1, 1))) >= 1

    def test_sum_always_preserved(self):
        for total in range(4, 40):
            for shards in (1, 2, 3, 4):
                assert sum(split_mpl(total, shards)) == total
                assert sum(split_mpl(total, shards, range(1, shards + 1))) == total

    def test_validation(self):
        with pytest.raises(ValueError):
            split_mpl(2, 4)  # cannot cover every shard
        with pytest.raises(ValueError):
            split_mpl(8, 0)
        with pytest.raises(ValueError):
            split_mpl(8, 2, (1.0,))  # wrong weight count
        with pytest.raises(ValueError):
            split_mpl(8, 2, (1.0, -1.0))

    def test_rejects_non_finite_weights(self):
        # NaN slips past `w <= 0` (every comparison is False) and inf
        # poisons the shares; both used to blow up inside the rounding
        for bad in (float("nan"), float("inf"), -float("inf")):
            with pytest.raises(ValueError, match="finite|positive"):
                split_mpl(8, 2, (bad, 1.0))

    @given(
        shards=st.integers(min_value=1, max_value=8),
        extra=st.integers(min_value=0, max_value=64),
        weights=st.lists(
            st.floats(min_value=1e-3, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            min_size=8, max_size=8,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_sum_conserved_for_all_valid_weight_vectors(
        self, shards, extra, weights
    ):
        # the skewed-weight corner: max(1, int(s)) floors can over-
        # allocate, and the take-back pass must land exactly on total
        total = shards + extra
        split = split_mpl(total, shards, weights[:shards])
        assert sum(split) == total
        assert min(split) >= 1


class TestClusterConfig:
    def test_scale_out_shard_seeds(self):
        cluster = ClusterConfig.scale_out(_base(seed=2), 3)
        assert [c.seed for c in cluster.shards] == [
            2, derive_seed(2, "shard", 1), derive_seed(2, "shard", 2),
        ]

    def test_scale_out_splits_the_global_mpl(self):
        cluster = ClusterConfig.scale_out(_base(mpl=10), 3)
        assert [c.mpl for c in cluster.shards] == [4, 3, 3]
        assert cluster.global_mpl == 10

    def test_global_mpl_none_when_any_shard_unlimited(self):
        cluster = ClusterConfig.scale_out(_base(mpl=None), 2)
        assert cluster.global_mpl is None

    def test_arrival_spec_comes_from_shard_zero(self):
        spec = PartlyOpenArrivals(session_rate=3.0)
        cluster = ClusterConfig.scale_out(_base(arrival=spec), 2)
        assert cluster.arrival_spec() is spec

    def test_num_shards(self):
        assert ClusterConfig.scale_out(_base(), 3).num_shards == 3
        system = ClusteredSystem(
            ClusterConfig.scale_out(_base(mpl=4, arrival_rate=20.0), 2)
        )
        assert system.num_shards == 2

    def test_jsonable_round_trips_through_json(self):
        import json

        payload = ClusterConfig.scale_out(_base(), 2).to_jsonable()
        assert json.loads(json.dumps(payload))["__class__"] == "ClusterConfig"

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(shards=())
        with pytest.raises(ValueError):
            ClusterConfig(shards=(_base(),), routing="nope")
        with pytest.raises(ValueError):
            ClusterConfig(shards=(_base(), _base()), routing_weights=(1.0,))
        with pytest.raises(ValueError):
            ClusterConfig(
                shards=(_base(), _base()), routing_weights=(1.0, 0.0)
            )


class TestFingerprints:
    """Digest pins: a mismatch silently invalidates result caches."""

    #: The pre-cluster digests of SystemConfig(setup 1, mpl=4, seed=2)
    #: — also pinned by tests/test_arrivals.py.  A one-shard cluster
    #: must hash to exactly these.
    LEGACY = "c8ab3b88ad3a980e35795060155ff50d937f2595c5479dd10e71f77f0d2b9e47"
    LEGACY_EXTRA = "81c1b78b977fecdd56207882e6775b24193d36198ea3c5cdc0d51fe62d167964"

    def test_one_shard_cluster_fingerprint_is_the_single_engine_one(self):
        base = _base()
        cluster = ClusterConfig.scale_out(base, 1)
        assert cluster.fingerprint() == base.fingerprint() == self.LEGACY
        assert (
            cluster.fingerprint(transactions=500, warmup_fraction=0.2)
            == self.LEGACY_EXTRA
        )

    def test_multi_shard_digests_pinned(self):
        two = ClusterConfig.scale_out(_base(), 2)
        assert two.fingerprint() == (
            "14cfb406f1880d0251ee949bcd2a626028ed34575f4bcbff8a118eefc0f9f2b2"
        )
        assert two.fingerprint(transactions=500, warmup_fraction=0.2) == (
            "1301aa63a883f16cbee86ad6ec66788166fe88a27e2f67b715bbcb5fca173092"
        )

    def test_sharded_runspec_digests_pinned(self):
        spec = RunSpec(setup_id=1, mpl=8, transactions=300, seed=11,
                       shards=4, routing="least_in_flight")
        assert spec.fingerprint() == (
            "2843f18c5195fc7e0b37b6c4d10fa0ab910cecd0bcf715eee1bfcb2c6c2df74f"
        )
        weighted = RunSpec(setup_id=1, mpl=8, transactions=300, seed=11,
                           shards=2, routing="weighted",
                           routing_weights=(1.0, 3.0))
        assert weighted.fingerprint() == (
            "65aa4cfc24e736aae0630e31a03f636f59b63966835b44cbc9bc15c98a28fb79"
        )

    def test_default_runspec_fingerprint_still_legacy(self):
        """The new RunSpec fields must not perturb pre-cluster hashes."""
        spec = RunSpec(setup_id=1, mpl=5, transactions=300, seed=11)
        assert spec.fingerprint() == (
            "47affd2ecb66d0aa7dffcdf436ed6259a0de0e2c618fac76ec253345849028d6"
        )

    def test_topology_changes_the_fingerprint(self):
        base = _base(mpl=8)
        digests = {
            ClusterConfig.scale_out(base, shards, routing=routing).fingerprint()
            for shards in (2, 4)
            for routing in ROUTING_POLICIES
        }
        assert len(digests) == 8
        assert ClusterConfig.scale_out(base, 1).fingerprint() not in digests


class TestBitIdentity:
    """A one-shard cluster reproduces the plain engine exactly."""

    def test_closed_system(self):
        base = _base(mpl=4, seed=2)
        single = SimulatedSystem(base).run(transactions=250)
        clustered = ClusteredSystem(ClusterConfig.scale_out(base, 1)).run(
            transactions=250
        )
        assert clustered.to_json_dict() == single.to_json_dict()

    def test_open_system(self):
        base = _base(mpl=6, seed=5, arrival=OpenArrivals(rate=40.0))
        single = SimulatedSystem(base).run(transactions=250)
        clustered = ClusteredSystem(ClusterConfig.scale_out(base, 1)).run(
            transactions=250
        )
        assert clustered.to_json_dict() == single.to_json_dict()

    def test_partly_open_with_priorities(self):
        base = _base(
            mpl=4, seed=7, policy="priority", high_priority_fraction=0.1,
            arrival=PartlyOpenArrivals.for_load(30.0, 4.0, think_time_s=0.05),
        )
        single = SimulatedSystem(base).run(transactions=200)
        clustered = ClusteredSystem(ClusterConfig.scale_out(base, 1)).run(
            transactions=200
        )
        assert clustered.to_json_dict() == single.to_json_dict()

    def test_build_system_short_circuits_one_shard(self):
        system = build_system(ClusterConfig.scale_out(_base(), 1))
        assert isinstance(system, SimulatedSystem)
        assert isinstance(build_system(_base()), SimulatedSystem)
        assert isinstance(
            build_system(ClusterConfig.scale_out(_base(), 2)), ClusteredSystem
        )


class TestClusteredRuns:
    def test_multi_shard_run_reports_cluster_shape(self):
        cluster = ClusterConfig.scale_out(
            _base(mpl=8, arrival_rate=40.0), 4, routing="round_robin"
        )
        system = ClusteredSystem(cluster)
        result = system.run(transactions=300)
        assert result.mpl == 8
        assert result.completed > 0
        # shard-prefixed utilization snapshot covers every shard
        assert {"shard0/cpu", "shard3/cpu"} <= set(result.utilizations)

    def test_run_cluster_convenience(self):
        result = run_cluster(
            ClusterConfig.scale_out(_base(mpl=4, arrival_rate=30.0), 2),
            transactions=150,
        )
        assert result.throughput > 0

    def test_jobs_invariance_and_cache_round_trip(self, tmp_path):
        specs = [
            RunSpec(setup_id=1, mpl=8, transactions=120, seed=9,
                    arrival_rate=40.0, shards=shards, routing=routing)
            for shards, routing in (
                (2, "round_robin"), (4, "hash"), (2, "least_in_flight"),
            )
        ]
        sequential = ParallelRunner(jobs=1).run(specs)
        parallel = ParallelRunner(jobs=3).run(specs)
        assert [r.to_json_dict() for r in sequential] == [
            r.to_json_dict() for r in parallel
        ]
        cold = ParallelRunner(jobs=1, cache_dir=str(tmp_path))
        cold_results = cold.run(specs)
        warm = ParallelRunner(jobs=1, cache_dir=str(tmp_path))
        warm_results = warm.run(specs)
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits == len(specs)
        assert [r.to_json_dict() for r in warm_results] == [
            r.to_json_dict() for r in cold_results
        ]

    def test_class_stats_snapshot_includes_router_and_shards(self):
        system = ClusteredSystem(
            ClusterConfig.scale_out(_base(mpl=4, arrival_rate=30.0), 2)
        )
        system.run_transactions(100)
        snapshot = system.class_stats_snapshot()
        assert "router" in snapshot
        assert "shard0/cpu" in snapshot and "shard1/cpu" in snapshot
        cpu_totals = system.aggregate_class_requests("cpu")
        assert sum(cpu_totals.values()) > 0
        # unknown station names aggregate to nothing, not an error
        assert system.aggregate_class_requests("no-such-station") == {}


class TestShardedExternalScheduler:
    def _scheduler(self, shards=4, mpl=8):
        system = ClusteredSystem(
            ClusterConfig.scale_out(_base(mpl=mpl, arrival_rate=30.0), shards)
        )
        return system, system.scheduler

    def test_global_mpl_sums_shards(self):
        _system, scheduler = self._scheduler(shards=4, mpl=10)
        assert scheduler.global_mpl == 10
        assert [f.mpl for f in scheduler.frontends] == [3, 3, 2, 2]

    def test_set_global_mpl_resplits(self):
        _system, scheduler = self._scheduler(shards=4, mpl=8)
        assert scheduler.set_global_mpl(13) == [4, 3, 3, 3]
        assert scheduler.global_mpl == 13
        assert scheduler.set_global_mpl(None) == [None] * 4
        assert scheduler.global_mpl is None

    def test_set_shard_mpl(self):
        _system, scheduler = self._scheduler(shards=2, mpl=8)
        scheduler.set_shard_mpl(1, 7)
        assert scheduler[1].mpl == 7
        assert scheduler.global_mpl == 4 + 7

    def test_aggregates_sum_over_shards(self):
        system, scheduler = self._scheduler(shards=2, mpl=4)
        system.run_transactions(80)
        assert scheduler.completed == sum(
            f.completed for f in scheduler.frontends
        )
        assert scheduler.dispatched >= scheduler.completed
        assert scheduler.in_service == sum(
            f.in_service for f in scheduler.frontends
        )
        assert scheduler.queue_length == sum(
            f.queue_length for f in scheduler.frontends
        )
        assert len(scheduler) == 2

    def test_needs_at_least_one_shard(self):
        with pytest.raises(ValueError):
            ShardedExternalScheduler([])


class TestPerShardControllers:
    def test_tune_shards_drives_every_frontend(self):
        base = _base(mpl=None, seed=3, arrival_rate=50.0)
        cluster = ClusterConfig.scale_out(base, 2, routing="least_in_flight")
        system = ClusteredSystem(cluster)
        # a cluster-wide baseline: each shard is held to half the
        # throughput at the same response time
        reports = system.tune_shards(
            Baseline(throughput=50.0, mean_response_time=0.5),
            Thresholds(max_throughput_loss=0.3, max_response_time_increase=2.0),
            initial_mpl=3,
            window=40,
            max_iterations=6,
        )
        assert len(reports) == 2
        for index, report in enumerate(reports):
            assert report.final_mpl >= 1
            assert system.scheduler[index].mpl == report.final_mpl

    def test_shard_view_counts_only_its_own_completions(self):
        system = ClusteredSystem(
            ClusterConfig.scale_out(_base(mpl=4, arrival_rate=40.0), 2)
        )
        view = system.shard_view(0)
        records = view.run_transactions(30)
        assert len(records) == 30
        assert len(view.collector.records) == 30
        # the other shard kept serving while we observed shard 0
        assert len(system.collector.records) >= 30
        with pytest.raises(ValueError):
            view.run_transactions(0)


class TestShardedFigure:
    def test_grid_registered_for_cli_and_bench(self):
        assert "sh" in figures.GRID_DEFS
        assert "sh" in figures.FIGURE_GRIDS
        from repro.experiments.__main__ import _FIGURES
        assert "sh" in _FIGURES

    def test_grid_covers_every_policy_and_shard_count(self):
        grid = figures.sharded_grid(fast=True)
        assert {spec.shards for spec in grid} >= set(figures.SHARD_COUNTS)
        assert {spec.routing for spec in grid} == set(ROUTING_POLICIES)
        # fingerprints must be valid and distinct per cell
        digests = {spec.fingerprint() for spec in grid}
        # overlap between the shard sweep and the policy panel is the
        # only allowed duplication
        assert len(digests) >= len(grid) - len(figures.SHARD_MPLS_FAST)

    def test_figure_runs_end_to_end(self):
        panels = figures.sharded_cluster(
            fast=True, mpls=(2,), shard_counts=(1, 2)
        )
        assert [p.figure for p in panels] == ["SH-a", "SH-b", "SH-po", "SH-tv"]
        throughput = panels[0]
        # weak scaling: 2 shards carry roughly twice the load
        one, two = (s.ys[0] for s in throughput.series)
        assert two > 1.5 * one
        for panel in panels[2:]:
            assert {s.label for s in panel.series} == set(ROUTING_POLICIES)
        assert "Figure SH-a" in throughput.render()

    def test_weighted_runspec_rebuilds_a_weighted_cluster(self):
        spec = dataclasses.replace(
            RunSpec(setup_id=1, mpl=8, transactions=100, seed=3, shards=2),
            routing="weighted", routing_weights=(1.0, 3.0),
        )
        config = spec.config()
        assert isinstance(config, ClusterConfig)
        assert config.routing_weights == (1.0, 3.0)
        # the MPL split follows the weights
        assert [c.mpl for c in config.shards] == [2, 6]
