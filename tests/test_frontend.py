"""Tests for the external scheduling front-end (the MPL gate)."""

import pytest

from repro.core.frontend import ExternalScheduler
from repro.core.policies import PriorityPolicy
from repro.dbms.config import HardwareConfig
from repro.dbms.engine import DatabaseEngine
from repro.dbms.transaction import Priority, Transaction
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


def _system(mpl=None, policy=None, cpus=1):
    sim = Simulator()
    engine = DatabaseEngine(
        sim,
        HardwareConfig(num_cpus=cpus, num_disks=1, memory_mb=3072, bufferpool_mb=1024),
        db_pages=1000,
        streams=RandomStreams(5),
    )
    collector = MetricsCollector()
    frontend = ExternalScheduler(sim, engine, mpl=mpl, policy=policy, collector=collector)
    return sim, engine, frontend, collector


def _tx(tid, cpu=0.010, priority=Priority.LOW):
    return Transaction(
        tid=tid, type_name="t", cpu_demand=cpu, page_accesses=0, priority=priority
    )


def test_mpl_limits_concurrency():
    sim, engine, frontend, _ = _system(mpl=2)
    peak = {"value": 0}
    original_execute = engine.execute

    def spy(tx):
        process = original_execute(tx)
        peak["value"] = max(peak["value"], frontend.in_service)
        return process

    engine.execute = spy
    for tid in range(10):
        frontend.submit(_tx(tid))
    sim.run()
    assert peak["value"] <= 2
    assert frontend.completed == 10


def test_unlimited_mpl_dispatches_everything():
    sim, _engine, frontend, _ = _system(mpl=None)
    for tid in range(10):
        frontend.submit(_tx(tid))
    assert frontend.in_service == 10
    assert frontend.queue_length == 0
    sim.run()


def test_queue_holds_excess():
    sim, _engine, frontend, _ = _system(mpl=3)
    for tid in range(10):
        frontend.submit(_tx(tid))
    assert frontend.in_service == 3
    assert frontend.queue_length == 7
    sim.run()
    assert frontend.queue_length == 0


def test_completion_event_carries_transaction():
    sim, _engine, frontend, _ = _system(mpl=1)
    tx = _tx(1)
    done = frontend.submit(tx)
    sim.run()
    assert done.processed
    assert done.value is tx


def test_raising_mpl_dispatches_queued_work():
    sim, _engine, frontend, _ = _system(mpl=1)
    for tid in range(5):
        frontend.submit(_tx(tid, cpu=1.0))
    assert frontend.in_service == 1
    frontend.set_mpl(4)
    assert frontend.in_service == 4


def test_lowering_mpl_drains_gracefully():
    sim, _engine, frontend, _ = _system(mpl=4)
    for tid in range(8):
        frontend.submit(_tx(tid, cpu=0.010))
    assert frontend.in_service == 4
    frontend.set_mpl(1)
    # nothing evicted: the four in flight finish, then one at a time
    assert frontend.in_service == 4
    sim.run()
    assert frontend.completed == 8


def test_priority_policy_dispatches_high_first():
    sim, _engine, frontend, collector = _system(mpl=1, policy=PriorityPolicy())
    frontend.submit(_tx(1, cpu=0.010, priority=Priority.LOW))  # enters service
    frontend.submit(_tx(2, cpu=0.010, priority=Priority.LOW))
    frontend.submit(_tx(3, cpu=0.010, priority=Priority.HIGH))
    sim.run()
    order = [record.tid for record in collector.records]
    assert order == [1, 3, 2]


def test_collector_sees_arrivals_and_completions():
    sim, _engine, frontend, collector = _system(mpl=2)
    for tid in range(6):
        frontend.submit(_tx(tid))
    sim.run()
    assert collector.arrivals == 6
    assert len(collector.records) == 6


def test_arrival_time_stamped_on_submit():
    sim, _engine, frontend, _ = _system(mpl=1)

    def late():
        yield sim.timeout(5.0)
        tx = _tx(99)
        frontend.submit(tx)
        return tx

    process = sim.process(late())
    sim.run()
    assert process.value.arrival_time == pytest.approx(5.0)


def test_external_wait_measured():
    sim, _engine, frontend, collector = _system(mpl=1)
    frontend.submit(_tx(1, cpu=1.0))
    frontend.submit(_tx(2, cpu=1.0))
    sim.run()
    waits = {r.tid: r.external_wait for r in collector.records}
    assert waits[1] == pytest.approx(0.0)
    assert waits[2] == pytest.approx(1.0, rel=0.01)


def test_invalid_mpl_rejected():
    sim, engine, frontend, _ = _system()
    with pytest.raises(ValueError):
        ExternalScheduler(sim, engine, mpl=0)
    with pytest.raises(ValueError):
        frontend.set_mpl(0)
