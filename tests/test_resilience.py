"""Tests for the resilience layer (PR 9).

Covers the spec axis (validation paths, codec, fingerprint
compatibility), the mechanisms in isolation (queue-policy removal, the
engine's deadline abort, the breaker state machine), the installed
gate's exactly-once disposition accounting on single-engine and
clustered systems, determinism (bit-identical replay with jittered
backoff, ``--jobs 2`` invariance), and the retry-storm figure's
goodput gap.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arrivals import OpenArrivals
from repro.core.cluster import ClusteredSystem
from repro.core.faults import DegradeShard, FaultSpec, KillShard, RestoreShard
from repro.core.policies import FifoPolicy, PriorityPolicy, SjfPolicy
from repro.core.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    GOODPUT_STARVATION_LIMIT,
    GoodputStarved,
    ResilienceSpec,
    ShardBreaker,
    decode_resilience_spec,
    encode_resilience_spec,
    resilience_field_errors,
)
from repro.core.scenario import (
    MeasurementSpec,
    PerClassSlo,
    ScenarioSpec,
    ScenarioValidationError,
    StaticMpl,
    TopologySpec,
    component_fingerprint,
    run_scenario,
)
from repro.dbms.transaction import Priority, Transaction, TxStatus
from repro.experiments import figures

# the PR 8 pins: the resilience axis must not move any resilience-off
# digest (fingerprint omission at None is the compatibility mechanism)
PINNED_DEFAULT = (
    "360205e58fed441f9d11ad31752d4372fb832046f778a02b0384d41a4fe71e03"
)
PINNED_SHARDED = (
    "22975e7f0704ce5b8f379bf6d00587183dca7e84751e061e39165b4fe14fc4cb"
)


def _tx(tid, priority=Priority.LOW, cpu=0.01):
    return Transaction(
        tid=tid, type_name="t", cpu_demand=cpu, page_accesses=0,
        priority=priority,
    )


def _resilient_spec(
    resilience,
    *,
    shards=1,
    rate=60.0,
    transactions=200,
    faults=None,
    seed=5,
    **kwargs,
):
    return ScenarioSpec(
        arrival=OpenArrivals(rate=rate),
        topology=TopologySpec(
            shards=shards,
            routing="least_in_flight" if shards > 1 else "round_robin",
        ),
        control=StaticMpl(8 * shards),
        faults=faults,
        resilience=resilience,
        measurement=MeasurementSpec(transactions=transactions),
        seed=seed,
        **kwargs,
    )


class TestResilienceSpecValidation:
    def test_defaults_are_inert_and_valid(self):
        spec = ResilienceSpec()
        assert spec.deadline_s is None
        assert spec.max_attempts == 0
        assert spec.queue_cap is None
        assert not spec.breaker_enabled

    @pytest.mark.parametrize("field,value", [
        ("deadline_s", 0.0),
        ("deadline_s", -1.0),
        ("deadline_s", float("nan")),
        ("deadline_s", float("inf")),
        ("high_deadline_s", 0.0),
        ("max_attempts", -1),
        ("max_attempts", 1.5),
        ("base_backoff_s", -0.1),
        ("backoff_multiplier", 0.5),
        ("jitter_fraction", -0.1),
        ("jitter_fraction", 1.5),
        ("queue_cap", 0),
        ("queue_cap", True),
        ("shed_policy", "coin_flip"),
        ("breaker_enabled", "yes"),
        ("breaker_window", 0),
        ("breaker_ewma_alpha", 0.0),
        ("breaker_ewma_alpha", 1.5),
        ("breaker_timeout_threshold", 0.0),
        ("breaker_response_time_s", 0.0),
        ("breaker_open_s", 0.0),
        ("breaker_probes", 0),
    ])
    def test_bad_field_values_raise(self, field, value):
        with pytest.raises(ValueError):
            ResilienceSpec(**{field: value})

    def test_retries_need_explicit_backoff(self):
        with pytest.raises(ValueError, match="base_backoff_s"):
            ResilienceSpec(deadline_s=1.0, max_attempts=2)
        # saying 0.0 out loud is how a spec asks for instant retries
        ResilienceSpec(deadline_s=1.0, max_attempts=2, base_backoff_s=0.0)

    def test_field_errors_carry_json_pointer_paths(self):
        errors = dict(resilience_field_errors({
            "max_attempts": -1,
            "queue_cap": 0,
            "mystery": 1,
        }))
        assert "/max_attempts" in errors
        assert "/queue_cap" in errors
        assert errors["/mystery"] == "unknown field"

    def test_validate_prefixes_resilience_paths(self):
        payload = ScenarioSpec().to_json_dict()
        payload["resilience"] = {"max_attempts": -1, "deadline_s": 0.0}
        with pytest.raises(ScenarioValidationError) as excinfo:
            ScenarioSpec.validate(payload)
        paths = [path for path, _ in excinfo.value.errors]
        assert "/resilience/max_attempts" in paths
        assert "/resilience/deadline_s" in paths

    def test_validate_reports_cross_field_at_resilience_root(self):
        payload = ScenarioSpec().to_json_dict()
        payload["resilience"] = {"deadline_s": 1.0, "max_attempts": 2}
        with pytest.raises(ScenarioValidationError) as excinfo:
            ScenarioSpec.validate(payload)
        assert ("/resilience", (
            "max_attempts > 0 needs an explicit finite base_backoff_s "
            "(say 0.0 to retry immediately)"
        )) in excinfo.value.errors

    def test_validate_rejects_non_object_resilience(self):
        payload = ScenarioSpec().to_json_dict()
        payload["resilience"] = 7
        with pytest.raises(ScenarioValidationError) as excinfo:
            ScenarioSpec.validate(payload)
        assert any(path == "/resilience" for path, _ in excinfo.value.errors)

    def test_resilience_needs_unreplicated_topology(self):
        with pytest.raises(ValueError, match="replicas_per_shard"):
            _resilient_spec(
                ResilienceSpec(deadline_s=1.0), shards=2,
            ).__class__(
                topology=TopologySpec(shards=2, replicas_per_shard=1),
                resilience=ResilienceSpec(deadline_s=1.0),
            )

    def test_breakers_need_a_sharded_topology(self):
        with pytest.raises(ValueError, match="shards > 1"):
            ScenarioSpec(resilience=ResilienceSpec(breaker_enabled=True))
        ScenarioSpec(
            topology=TopologySpec(shards=2),
            resilience=ResilienceSpec(breaker_enabled=True),
        )

    def test_per_class_deadline_selection(self):
        spec = ResilienceSpec(deadline_s=1.0, high_deadline_s=3.0)
        assert spec.deadline_for(Priority.LOW) == 1.0
        assert spec.deadline_for(Priority.HIGH) == 3.0
        assert ResilienceSpec(deadline_s=1.0).deadline_for(Priority.HIGH) == 1.0

    def test_shedding_requires_open_arrivals(self):
        # closed clients resubmit the instant a shed releases them, so
        # a population above mpl + queue_cap livelocks the simulation
        # at a single timestamp — the constructor rejects the combo
        with pytest.raises(ValueError, match="externally driven"):
            ScenarioSpec(resilience=ResilienceSpec(queue_cap=6))
        _resilient_spec(ResilienceSpec(queue_cap=6))  # open arrivals: fine

    def test_slo_control_requires_truly_single_engine(self):
        # the fuzzer found PerClassSlo + a replicated 1-shard topology
        # crashing mid-run; the constructor now rejects it up front
        with pytest.raises(ValueError, match="single engine"):
            ScenarioSpec(
                topology=TopologySpec(shards=1, replicas_per_shard=1),
                control=PerClassSlo(),
                high_priority_fraction=0.3,
                policy="priority",
            )


class TestResilienceCodec:
    def test_round_trip_preserves_spec_and_fingerprint(self):
        spec = _resilient_spec(
            ResilienceSpec(
                deadline_s=0.8, high_deadline_s=2.0, max_attempts=2,
                base_backoff_s=0.05, jitter_fraction=0.5, queue_cap=16,
                shed_policy="by_class", breaker_enabled=True,
            ),
            shards=2,
        )
        payload = json.loads(spec.to_json())
        decoded = ScenarioSpec.from_json_dict(payload)
        assert decoded == spec
        assert decoded.fingerprint() == spec.fingerprint()
        validated = ScenarioSpec.validate(payload)
        assert validated.fingerprint() == spec.fingerprint()

    def test_none_stays_none(self):
        assert encode_resilience_spec(None) is None
        assert decode_resilience_spec(None) is None
        assert ScenarioSpec().to_json_dict()["resilience"] is None

    def test_decode_rejects_unknown_and_bad_fields(self):
        with pytest.raises(ValueError, match="unknown field"):
            decode_resilience_spec({"not_a_knob": 1})
        with pytest.raises(ValueError, match="max_attempts"):
            decode_resilience_spec({"max_attempts": -2})


class TestResilienceFingerprints:
    def test_resilience_off_digests_are_unchanged(self):
        assert ScenarioSpec().fingerprint() == PINNED_DEFAULT
        sharded = ScenarioSpec(
            topology=TopologySpec(shards=4, routing="least_in_flight")
        )
        assert sharded.fingerprint() == PINNED_SHARDED

    def test_resilience_axis_changes_the_digest(self):
        base = ScenarioSpec()
        resilient = dataclasses.replace(
            base, resilience=ResilienceSpec(deadline_s=1.0)
        )
        assert resilient.fingerprint() != base.fingerprint()
        # ...and each distinct knob setting digests differently
        other = dataclasses.replace(
            base, resilience=ResilienceSpec(deadline_s=2.0)
        )
        assert other.fingerprint() != resilient.fingerprint()

    def test_component_fingerprints_include_resilience(self):
        components = ScenarioSpec().component_fingerprints()
        assert "resilience" in components
        assert components["resilience"] == component_fingerprint(None)


class TestPolicyRemoval:
    @pytest.mark.parametrize("policy_factory", [
        FifoPolicy, PriorityPolicy, SjfPolicy,
    ])
    def test_remove_middle_preserves_order(self, policy_factory):
        policy = policy_factory()
        txs = [_tx(i, cpu=0.01 * (i + 1)) for i in range(5)]
        for tx in txs:
            policy.push(tx)
        assert policy.remove(txs[2])
        assert len(policy) == 4
        assert not policy.remove(txs[2])  # already gone
        remaining = [policy.pop().tid for _ in range(4)]
        assert sorted(remaining) == [0, 1, 3, 4]
        assert remaining == sorted(remaining)  # order intact for all three

    @pytest.mark.parametrize("policy_factory", [
        FifoPolicy, PriorityPolicy, SjfPolicy,
    ])
    def test_iteration_sees_every_queued_tx(self, policy_factory):
        policy = policy_factory()
        txs = [_tx(i) for i in range(4)]
        for tx in txs:
            policy.push(tx)
        assert {tx.tid for tx in policy} == {0, 1, 2, 3}

    def test_priority_remove_keeps_class_order(self):
        policy = PriorityPolicy()
        policy.push(_tx(1, Priority.LOW))
        policy.push(_tx(2, Priority.HIGH))
        policy.push(_tx(3, Priority.LOW))
        policy.push(_tx(4, Priority.HIGH))
        assert policy.remove(
            next(tx for tx in policy if tx.tid == 2)
        )
        assert [policy.pop().tid for _ in range(3)] == [4, 1, 3]


class TestShardBreaker:
    SPEC = ResilienceSpec(
        breaker_window=4, breaker_ewma_alpha=0.5,
        breaker_timeout_threshold=0.5, breaker_open_s=1.0,
        breaker_probes=2,
    )

    def _tripped(self):
        breaker = ShardBreaker(self.SPEC)
        for i in range(4):
            breaker.observe(now=float(i) * 0.1, response_time=0.2,
                            timed_out=True)
        assert breaker.state == BREAKER_OPEN
        return breaker

    def test_trips_only_after_the_window_fills(self):
        breaker = ShardBreaker(self.SPEC)
        for i in range(3):
            breaker.observe(now=0.1 * i, response_time=0.2, timed_out=True)
            assert breaker.state == BREAKER_CLOSED  # window not full yet
        breaker.observe(now=0.3, response_time=0.2, timed_out=True)
        assert breaker.state == BREAKER_OPEN

    def test_open_rejects_until_timeout_then_probes(self):
        breaker = self._tripped()
        assert not breaker.admit(now=0.5)
        # after breaker_open_s the first admit flips to half-open
        assert breaker.admit(now=1.5)
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.admit(now=1.5)  # second probe fits
        assert not breaker.admit(now=1.5)  # probe budget exhausted

    def test_successful_probe_closes_with_fresh_window(self):
        breaker = self._tripped()
        assert breaker.admit(now=1.5)
        breaker.observe(now=1.6, response_time=0.05, timed_out=False)
        assert breaker.state == BREAKER_CLOSED
        # the stale unhealthy EWMA cannot re-trip before a new window
        assert breaker.samples == 0

    def test_failed_probe_reopens(self):
        breaker = self._tripped()
        assert breaker.admit(now=1.5)
        breaker.observe(now=1.7, response_time=0.3, timed_out=True)
        assert breaker.state == BREAKER_OPEN
        assert not breaker.admit(now=1.8)

    def test_response_time_limit_trips_without_timeouts(self):
        spec = dataclasses.replace(self.SPEC, breaker_response_time_s=0.1)
        breaker = ShardBreaker(spec)
        for i in range(4):
            breaker.observe(now=0.1 * i, response_time=0.5, timed_out=False)
        assert breaker.state == BREAKER_OPEN

    def test_transitions_are_recorded_for_the_health_report(self):
        breaker = self._tripped()
        breaker.admit(now=1.5)
        breaker.observe(now=1.6, response_time=0.05, timed_out=False)
        states = [(t["from"], t["to"]) for t in breaker.transitions]
        assert states == [
            (BREAKER_CLOSED, BREAKER_OPEN),
            (BREAKER_OPEN, BREAKER_HALF_OPEN),
            (BREAKER_HALF_OPEN, BREAKER_CLOSED),
        ]
        report = breaker.jsonable()
        assert report["state"] == BREAKER_CLOSED
        assert len(report["transitions"]) == 3


def _assert_exactly_once(runtime):
    assert runtime.admitted == (
        runtime.completed + runtime.timed_out + runtime.shed
        + runtime.in_flight
    )
    tally = {}
    for disposition in runtime.dispositions().values():
        tally[disposition] = tally.get(disposition, 0) + 1
    assert tally.get("completed", 0) == runtime.completed
    assert tally.get("timed_out", 0) == runtime.timed_out
    assert tally.get("shed", 0) == runtime.shed
    assert tally.get("in_flight", 0) == runtime.in_flight


def _assert_cluster_conserved(system):
    router = system.router
    for index, shard in enumerate(system.shards):
        frontend = shard.frontend
        held = (
            frontend.completed + frontend.in_service
            + frontend.queue_length + frontend.removed
        )
        placed = (
            router.routed_by_shard[index]
            + router.rerouted_to[index]
            - router.rerouted_from[index]
        )
        assert placed == held
        assert shard.collector.arrivals == router.routed_by_shard[index]


class TestResilienceRuntime:
    def test_single_engine_deadline_and_retry_accounting(self):
        system, outcome = run_scenario(_resilient_spec(
            ResilienceSpec(
                deadline_s=0.3, max_attempts=2, base_backoff_s=0.05,
            ),
            rate=80.0,
        ))
        runtime = system.resilience
        _assert_exactly_once(runtime)
        summary = outcome.resilience
        assert summary["timed_out"] + summary["shed"] > 0
        assert summary["retries"] > 0
        assert summary["attempts_resolved"] >= summary["completed"]
        # the collector only ever saw commits (goodput-clean records)
        assert all(
            r.response_time <= 0.3 + 1e-9 for r in system.collector.records
        )

    def test_timed_out_transactions_are_aborted_not_committed(self):
        system, _ = run_scenario(_resilient_spec(
            ResilienceSpec(deadline_s=0.2), rate=90.0, transactions=120,
        ))
        runtime = system.resilience
        assert runtime.timed_out > 0
        aborted = [
            st.tx for st in runtime._state.values()
            if st.disposition == "timed_out"
        ]
        assert aborted
        assert all(tx.status is not TxStatus.COMMITTED for tx in aborted)

    def test_queue_cap_sheds_and_counts_distinctly(self):
        system, outcome = run_scenario(_resilient_spec(
            ResilienceSpec(queue_cap=4), rate=150.0, transactions=150,
        ))
        runtime = system.resilience
        _assert_exactly_once(runtime)
        assert runtime.shed > 0
        assert runtime.timeout_events == 0  # no deadline armed
        assert system.frontend.queue_length <= 4
        assert outcome.resilience["shed"] == runtime.shed

    def test_by_class_shedding_protects_high_priority(self):
        system, _ = run_scenario(_resilient_spec(
            ResilienceSpec(queue_cap=4, shed_policy="by_class"),
            rate=150.0, transactions=150, policy="priority",
            high_priority_fraction=0.3,
        ))
        runtime = system.resilience
        shed_by_class = runtime.per_class["shed"]
        assert shed_by_class.get(Priority.LOW, 0) > 0
        assert shed_by_class.get(Priority.HIGH, 0) <= shed_by_class[Priority.LOW]

    def test_cluster_conservation_under_faults_and_retries(self):
        spec = _resilient_spec(
            ResilienceSpec(
                deadline_s=0.5, max_attempts=2, base_backoff_s=0.05,
                jitter_fraction=0.5, queue_cap=12, breaker_enabled=True,
                breaker_window=8,
            ),
            shards=2, rate=110.0, transactions=300,
            faults=FaultSpec(events=(
                DegradeShard(at=0.5, shard=1, factor=0.4),
                KillShard(at=1.0, shard=0),
                RestoreShard(at=2.0, shard=0),
            )),
        )
        system, outcome = run_scenario(spec)
        _assert_exactly_once(system.resilience)
        _assert_cluster_conserved(system)
        health = outcome.shard_health
        assert [entry["shard"] for entry in health] == [0, 1]
        assert health[1]["degrade_factor"] == pytest.approx(0.4)
        assert health[0]["degrade_factor"] is None
        for entry in health:
            assert {"alive", "in_rotation", "mpl", "routed", "rerouted_from",
                    "rerouted_to", "in_service", "queue_length",
                    "completed"} <= set(entry)
            assert entry["breaker"]["state"] in (
                BREAKER_CLOSED, BREAKER_OPEN, BREAKER_HALF_OPEN
            )

    def test_outer_event_fires_once_at_final_disposition(self):
        # a closed loop over the gate: every disposition (commit,
        # terminal timeout, shed) must release the client exactly once,
        # or the run below would hang instead of completing
        # deadline chosen so the run mixes commits with timeouts: a
        # deadline the closed clients can never meet would stall the
        # measurement window (no commits ever reach the collector)
        spec = ScenarioSpec(
            topology=TopologySpec(shards=1),
            control=StaticMpl(4),
            resilience=ResilienceSpec(
                deadline_s=1.0, max_attempts=1, base_backoff_s=0.0,
            ),
            measurement=MeasurementSpec(transactions=120),
            seed=9,
        )
        system, _ = run_scenario(spec)
        runtime = system.resilience
        _assert_exactly_once(runtime)
        assert runtime.completed > 0

    def test_resilience_off_system_has_no_gate(self):
        system, outcome = run_scenario(ScenarioSpec(
            measurement=MeasurementSpec(transactions=60),
        ))
        assert system.resilience is None
        assert outcome.resilience is None
        assert outcome.shard_health is None


class TestResilienceDeterminism:
    JITTERED = ResilienceSpec(
        deadline_s=0.4, max_attempts=3, base_backoff_s=0.05,
        backoff_multiplier=2.0, jitter_fraction=0.5, queue_cap=10,
        shed_policy="by_class", breaker_enabled=True, breaker_window=8,
    )

    def _spec(self):
        return _resilient_spec(
            self.JITTERED, shards=2, rate=100.0, transactions=250,
            faults=FaultSpec(events=(
                KillShard(at=0.8, shard=0), RestoreShard(at=1.8, shard=0),
            )),
        )

    def test_replay_is_bit_identical_with_jittered_backoff(self):
        first = run_scenario(self._spec())[1]
        second = run_scenario(self._spec())[1]
        assert json.dumps(first.to_json_dict(), sort_keys=True) == (
            json.dumps(second.to_json_dict(), sort_keys=True)
        )

    def test_jobs_2_reproduces_the_in_process_run(self, tmp_path):
        from repro.experiments.runner import scenario_results

        spec = self._spec()
        direct = run_scenario(spec)[1].result
        parallel = scenario_results(
            [spec], jobs=2, cache_dir=str(tmp_path)
        )[0]
        assert json.dumps(parallel.to_json_dict(), sort_keys=True) == (
            json.dumps(direct.to_json_dict(), sort_keys=True)
        )

    def test_seed_changes_the_jitter_stream(self):
        base = self._spec()
        other = dataclasses.replace(base, seed=base.seed + 1)
        assert run_scenario(base)[1].result.to_json_dict() != (
            run_scenario(other)[1].result.to_json_dict()
        )


class TestGoodputStarvation:
    """A saturated retry storm must refuse to run forever.

    With open arrivals and a completion-counted window, zero
    steady-state goodput means the stop condition can never be met
    (found by the fuzzer: walk seed 0, iteration 48 — pinned in
    ``tests/data/fuzz_corpus/repro-goodput-starved-retry-storm.json``).
    """

    STORM = ResilienceSpec(
        deadline_s=0.004, max_attempts=1, base_backoff_s=0.0,
    )

    def _starving_spec(self):
        # the deadline is far below any achievable response time at
        # this load, so not a single admission ever commits
        return _resilient_spec(
            self.STORM, rate=800.0, transactions=50, seed=7,
        )

    def test_starved_run_raises_instead_of_hanging(self):
        with pytest.raises(GoodputStarved, match="goodput starved"):
            run_scenario(self._starving_spec())

    def test_the_refusal_is_deterministic(self):
        errors = []
        for _ in range(2):
            with pytest.raises(GoodputStarved) as info:
                run_scenario(self._starving_spec())
            errors.append(str(info.value))
        assert errors[0] == errors[1]
        assert f"{GOODPUT_STARVATION_LIMIT} consecutive" in errors[0]

    def test_the_fuzzer_accepts_a_deterministic_starvation(self):
        from repro.experiments.fuzz import check_scenario

        assert check_scenario(self._starving_spec()) is None

    def test_commits_reset_the_streak(self):
        spec = _resilient_spec(
            ResilienceSpec(deadline_s=0.5, max_attempts=1,
                           base_backoff_s=0.0),
            rate=60.0, transactions=120, seed=7,
        )
        system, _ = run_scenario(spec)
        runtime = system.resilience
        # the gate may lag the collector by the stop-boundary record
        assert runtime.completed >= 119
        assert runtime.starved_streak == 0


class TestResilienceInvariants:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        shards=st.integers(min_value=1, max_value=3),
        max_attempts=st.integers(min_value=0, max_value=2),
        queue_cap=st.sampled_from([None, 6, 12]),
        with_faults=st.booleans(),
    )
    @settings(max_examples=10, deadline=None)
    def test_exactly_once_and_conservation_hold(
        self, seed, shards, max_attempts, queue_cap, with_faults
    ):
        faults = None
        if with_faults and shards > 1:
            faults = FaultSpec(events=(
                KillShard(at=0.4, shard=0), RestoreShard(at=1.2, shard=0),
            ))
        spec = _resilient_spec(
            ResilienceSpec(
                deadline_s=0.5,
                max_attempts=max_attempts,
                base_backoff_s=0.02 if max_attempts else None,
                jitter_fraction=0.25 if max_attempts else 0.0,
                queue_cap=queue_cap,
            ),
            shards=shards, rate=40.0 * shards, transactions=80,
            faults=faults, seed=seed,
        )
        system, _ = run_scenario(spec)
        _assert_exactly_once(system.resilience)
        if isinstance(system, ClusteredSystem):
            _assert_cluster_conserved(system)


class TestResilienceFigure:
    def test_grid_covers_the_three_variants(self):
        specs = figures.resilience_grid(fast=True)
        assert [spec.tag for spec in specs] == [
            "rs-baseline", "rs-naive", "rs-hardened",
        ]
        assert specs[0].resilience is None
        assert specs[1].resilience.base_backoff_s == 0.0
        assert specs[1].resilience.queue_cap is None
        assert specs[2].resilience.breaker_enabled
        assert figures.GRID_DEFS["rs"].build(fast=True) == specs

    def test_timeline_carries_the_goodput_columns(self):
        spec = figures._rs_spec("hardened", duration_s=6.0)
        outcome = run_scenario(spec)[1]
        for row in outcome.timeline:
            assert {"goodput", "attempt_throughput", "timeouts", "sheds",
                    "retries"} <= set(row)
            assert row["attempt_throughput"] >= row["goodput"] - 1e-9

    def test_hardening_beats_the_naive_retry_storm(self):
        naive = run_scenario(figures._rs_spec("naive", duration_s=12.0))[1]
        hardened = run_scenario(
            figures._rs_spec("hardened", duration_s=12.0)
        )[1]
        # the acceptance gap: same deadline and retry budget, but
        # backoff + shedding + breakers hold goodput where instant
        # retries collapse it
        assert hardened.result.throughput > naive.result.throughput * 1.3
        assert naive.resilience["retries"] > hardened.resilience["retries"]
