"""End-to-end integration tests reproducing the paper's phenomena."""

import pytest

from repro.core.system import SimulatedSystem, SystemConfig
from repro.dbms.config import HardwareConfig, InternalPolicy
from repro.experiments.runner import run_setup
from repro.queueing.mpl_ps_queue import MplPsQueue
from repro.workloads.setups import get_setup
from repro.workloads.synthetic import synthetic_workload


class TestThroughputPhenomena:
    """§3.1: what the MPL does to throughput."""

    def test_throughput_rises_then_saturates_with_mpl(self):
        setup = get_setup(1)
        low = run_setup(setup, mpl=1, transactions=500, seed=9).throughput
        mid = run_setup(setup, mpl=5, transactions=500, seed=9).throughput
        high = run_setup(setup, mpl=20, transactions=500, seed=9).throughput
        assert low < mid
        assert mid == pytest.approx(high, rel=0.10)

    def test_two_cpus_need_higher_mpl(self):
        """Figure 2: the 2-CPU machine keeps gaining beyond the 1-CPU
        saturation point."""
        one = get_setup(1)
        two = get_setup(2)
        gain_one = (
            run_setup(one, mpl=10, transactions=500, seed=9).throughput
            / run_setup(one, mpl=3, transactions=500, seed=9).throughput
        )
        gain_two = (
            run_setup(two, mpl=10, transactions=500, seed=9).throughput
            / run_setup(two, mpl=3, transactions=500, seed=9).throughput
        )
        assert gain_two > gain_one

    def test_more_disks_more_throughput_at_high_mpl(self):
        """Figure 3: the I/O workload scales with the disk count."""
        one_disk = run_setup(get_setup(5), mpl=20, transactions=300, seed=9)
        four_disks = run_setup(get_setup(8), mpl=20, transactions=300, seed=9)
        assert four_disks.throughput > 2.5 * one_disk.throughput

    def test_mpl_to_saturate_grows_with_disks(self):
        """Figure 3: one disk saturates by MPL 2; four disks do not."""
        one_low = run_setup(get_setup(5), mpl=2, transactions=300, seed=9)
        one_high = run_setup(get_setup(5), mpl=16, transactions=300, seed=9)
        four_low = run_setup(get_setup(8), mpl=2, transactions=300, seed=9)
        four_high = run_setup(get_setup(8), mpl=16, transactions=300, seed=9)
        assert one_low.throughput >= 0.85 * one_high.throughput
        assert four_low.throughput < 0.6 * four_high.throughput

    def test_uncommitted_read_outperforms_rr_at_high_concurrency(self):
        """Figure 5: less locking -> flatter curve at high MPL."""
        rr = run_setup(get_setup(15), mpl=None, transactions=700, seed=9)
        ur = run_setup(get_setup(16), mpl=None, transactions=700, seed=9)
        assert ur.throughput >= rr.throughput


class TestResponseTimePhenomena:
    """§3.2: what the MPL does to open-system mean response time."""

    def _open_config(self, scv, mpl, load=0.7, seed=5):
        workload = synthetic_workload("s", demand_mean_ms=20.0, scv=scv)
        return SystemConfig(
            workload=workload,
            hardware=HardwareConfig(num_cpus=1, num_disks=1, memory_mb=3072,
                                    bufferpool_mb=1024),
            mpl=mpl,
            arrival_rate=load / 0.020,
            seed=seed,
        )

    def test_low_variability_insensitive_to_mpl(self):
        flat_low = SimulatedSystem(self._open_config(1.0, 2)).run(1500)
        flat_high = SimulatedSystem(self._open_config(1.0, 30)).run(1500)
        assert flat_low.mean_response_time == pytest.approx(
            flat_high.mean_response_time, rel=0.35
        )

    def test_high_variability_punishes_low_mpl(self):
        """C^2 = 15 at MPL 1 shows heavy HOL blocking vs MPL 30."""
        hol = SimulatedSystem(self._open_config(15.0, 1)).run(2500)
        shared = SimulatedSystem(self._open_config(15.0, 30)).run(2500)
        assert hol.mean_response_time > 1.8 * shared.mean_response_time

    def test_simulator_matches_qbd_model(self):
        """Cross-validation: open-system simulation vs the CTMC.

        A pure-CPU workload through the MPL gate is exactly the
        FIFO -> PS(MPL) queue the model solves, so the two must agree.
        """
        scv, mpl, load = 5.0, 3, 0.7
        result = SimulatedSystem(
            self._open_config(scv, mpl, load=load, seed=11)
        ).run(20_000, warmup_fraction=0.1)
        model = MplPsQueue(arrival_rate=load / 0.020, mpl=mpl,
                           service_mean=0.020, service_scv=scv)
        assert result.mean_response_time == pytest.approx(
            model.mean_response_time(), rel=0.25
        )


class TestPrioritizationPhenomena:
    """§5: external prioritization at a tuned MPL."""

    def test_high_priority_wins_big_low_suffers_little(self):
        from repro.priority.evaluation import evaluate_external_prioritization

        outcome = evaluate_external_prioritization(
            get_setup(1), mpl=5, transactions=1200, seed=7
        )
        assert outcome.differentiation > 4.0
        assert outcome.low_penalty < 1.5
        assert outcome.throughput_loss < 0.15

    def test_internal_and_external_comparable(self):
        """Figure 12's message: POW and external-at-tuned-MPL are in
        the same differentiation ballpark."""
        from repro.priority.evaluation import (
            evaluate_external_prioritization,
            evaluate_internal_prioritization,
        )

        external = evaluate_external_prioritization(
            get_setup(1), mpl=5, transactions=1000, seed=7
        )
        internal = evaluate_internal_prioritization(
            get_setup(1), InternalPolicy.pow_locks(), transactions=1000, seed=7
        )
        assert internal.differentiation > 2.0
        assert external.differentiation > 2.0
        ratio = external.differentiation / internal.differentiation
        assert 0.3 < ratio < 20.0

    def test_sjf_external_policy_beats_fifo_on_mean(self):
        """Size-based external scheduling (an extension the paper
        suggests) reduces overall mean response time."""
        workload = synthetic_workload("s", demand_mean_ms=20.0, scv=10.0)
        hardware = HardwareConfig(num_cpus=1, num_disks=1, memory_mb=3072,
                                  bufferpool_mb=1024)

        def run(policy):
            config = SystemConfig(workload=workload, hardware=hardware,
                                  mpl=2, policy=policy, num_clients=50, seed=3)
            return SimulatedSystem(config).run(2000)

        assert run("sjf").mean_response_time < run("fifo").mean_response_time


class TestIsolationAndInternalPolicies:
    def test_ur_reduces_lock_waiting(self):
        rr = run_setup(get_setup(13), mpl=20, transactions=600, seed=9)
        ur = run_setup(get_setup(14), mpl=20, transactions=600, seed=9)
        assert ur.mean_lock_wait <= rr.mean_lock_wait

    def test_pow_preemptions_happen_under_contention(self):
        from repro.core.system import SimulatedSystem
        from repro.experiments.runner import setup_config

        config = setup_config(
            get_setup(1), mpl=None, internal=InternalPolicy.pow_locks(),
            high_priority_fraction=0.1, seed=9,
        )
        system = SimulatedSystem(config)
        system.run(transactions=800)
        assert system.engine.lockmgr.preemptions > 0
