"""Tests for transaction descriptors."""

import pytest

from repro.dbms.transaction import Priority, Transaction, TxStatus


def _tx(**kwargs):
    defaults = dict(tid=1, type_name="t", cpu_demand=0.01, page_accesses=5)
    defaults.update(kwargs)
    return Transaction(**defaults)


def test_defaults():
    tx = _tx()
    assert tx.status is TxStatus.QUEUED
    assert tx.priority == Priority.LOW
    assert tx.restarts == 0
    assert tx.response_time is None
    assert tx.execution_time is None
    assert tx.external_wait is None


def test_timing_properties():
    tx = _tx()
    tx.arrival_time = 1.0
    tx.dispatch_time = 3.0
    tx.completion_time = 7.0
    assert tx.response_time == pytest.approx(6.0)
    assert tx.execution_time == pytest.approx(4.0)
    assert tx.external_wait == pytest.approx(2.0)


def test_validation():
    with pytest.raises(ValueError):
        _tx(cpu_demand=-1.0)
    with pytest.raises(ValueError):
        _tx(page_accesses=-1)


def test_demand_total():
    tx = _tx(cpu_demand=0.010, page_accesses=10)
    # 10 touches, 50% miss, 8ms per read -> 40ms I/O
    assert tx.demand_total(0.008, 0.5) == pytest.approx(0.050)


def test_priority_ordering():
    assert Priority.HIGH > Priority.LOW
    assert int(Priority.HIGH) == 1
