"""Kernel v2 edge cases: batched agenda, hooks, pools, composites.

Covers the corners the batched drain loop introduced: ``run(until=)``
landing exactly on an event timestamp, the timeout free-list boundary,
interrupting a process that is blocked inside a same-timestamp batch,
empty-agenda ``peek()``, the :class:`Agenda` API itself, in-kernel
:class:`KernelHooks` counting, and the composite-event callback
detachment (with its timeout-pool interaction).
"""

import heapq

import pytest

from repro.sim.engine import (
    Agenda,
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    KernelHooks,
    SimulationError,
    Simulator,
    Timeout,
)


# -- run(until=) boundary -----------------------------------------------------


def test_run_until_exactly_on_event_timestamp_fires_the_event():
    sim = Simulator()
    fired = []
    sim.timeout(2.0).add_callback(lambda e: fired.append(sim.now))
    sim.timeout(5.0)
    sim.run(until=2.0)
    assert fired == [2.0]
    assert sim.now == 2.0
    # the later event is untouched
    assert sim.peek() == 5.0


def test_run_until_between_events_advances_clock_only():
    sim = Simulator()
    fired = []
    sim.timeout(1.0).add_callback(lambda e: fired.append(sim.now))
    sim.timeout(4.0).add_callback(lambda e: fired.append(sim.now))
    sim.run(until=2.5)
    assert fired == [1.0]
    assert sim.now == 2.5
    sim.run()
    assert fired == [1.0, 4.0]


def test_run_until_with_same_timestamp_cascade_finishes_the_instant():
    """Zero-delay events spawned at the until instant still fire."""
    sim = Simulator()
    order = []

    def chain(event):
        order.append("first")
        follow = sim.event()
        follow.add_callback(lambda e: order.append("second"))
        follow.succeed()

    sim.timeout(3.0).add_callback(chain)
    sim.run(until=3.0)
    assert order == ["first", "second"]
    assert sim.now == 3.0


# -- timeout free list --------------------------------------------------------


def test_timeout_pool_respects_limit():
    sim = Simulator()

    def churn():
        for _ in range(3 * Simulator.TIMEOUT_POOL_LIMIT):
            yield sim.timeout(0.001)

    sim.process(churn())
    sim.run()
    assert sim.timeout_reuses > 0
    assert len(sim._timeout_pool) <= Simulator.TIMEOUT_POOL_LIMIT


def test_timeout_pool_boundary_exact_fill():
    """Firing exactly LIMIT unreferenced timeouts fills, never overfills."""
    sim = Simulator()
    for _ in range(Simulator.TIMEOUT_POOL_LIMIT + 50):
        sim.timeout(1.0)  # unreferenced: all recyclable
    sim.run()
    assert len(sim._timeout_pool) == Simulator.TIMEOUT_POOL_LIMIT


def test_event_pool_recycles_unreferenced_fired_events():
    sim = Simulator()

    def proc():
        for _ in range(50):
            yield sim.fired()

    sim.process(proc())
    sim.run()
    assert len(sim._event_pool) > 0
    # pooled events come back pending and fresh
    event = sim.event()
    assert not event.triggered and not event.processed
    assert event.value is None and event.ok


# -- interrupt inside a same-timestamp batch ---------------------------------


def test_interrupt_of_process_blocked_inside_same_timestamp_batch():
    """Interrupting a process whose wakeup shares the current batch.

    Attacker and victim both wake at t=2.0; the attacker was scheduled
    first, so it runs first within the batch and interrupts the victim
    while the victim's own timeout is still pending *in the same
    batch*.  The victim must see exactly one Interrupt at t=2.0, and
    its detached timeout must fire without resuming it a second time.
    """
    sim = Simulator()
    log = []
    target = []

    def victim():
        try:
            yield sim.timeout(2.0)
            log.append("timer")
        except Interrupt as interrupt:
            log.append(("interrupted", sim.now, interrupt.cause))

    def attacker():
        yield sim.timeout(2.0)
        target[0].interrupt("batched")

    sim.process(attacker())  # scheduled first: wins the t=2.0 batch
    target.append(sim.process(victim()))
    sim.run()
    assert log == [("interrupted", 2.0, "batched")]
    assert target[0].processed  # victim finished exactly once


def test_interrupt_after_victim_resumed_in_batch_is_an_error():
    """A same-batch interrupt that loses the race hits a finished process."""
    sim = Simulator()
    target = []

    def victim():
        yield sim.timeout(2.0)

    def attacker():
        yield sim.timeout(2.0)
        target[0].interrupt("too-late")

    target.append(sim.process(victim()))  # victim's wakeup fires first
    sim.process(attacker())
    with pytest.raises(SimulationError):
        sim.run()


# -- peek ---------------------------------------------------------------------


def test_peek_on_empty_agenda_is_infinite():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(1.0)
    sim.run()
    assert sim.peek() == float("inf")


def test_peek_sees_same_instant_fifo_entries():
    sim = Simulator()
    sim.event().succeed()  # same-instant FIFO entry
    assert sim.peek() == 0.0


# -- Agenda -------------------------------------------------------------------


class TestAgenda:
    def test_schedule_orders_by_time_then_sequence(self):
        agenda = Agenda()
        sim = Simulator()
        a, b, c = Event(sim), Event(sim), Event(sim)
        agenda.schedule(a, 2.0)
        agenda.schedule(b, 1.0)
        agenda.schedule(c, 2.0)
        batch = []
        assert agenda.pop_batch(batch) == 1
        assert batch[0][2] is b
        batch.clear()
        assert agenda.pop_batch(batch) == 2
        assert [entry[2] for entry in batch] == [a, c]  # tie: schedule order

    def test_pop_batch_pops_whole_timestamp_run(self):
        agenda = Agenda()
        sim = Simulator()
        events = [Event(sim) for _ in range(5)]
        for event in events:
            agenda.schedule(event, 3.0)
        agenda.schedule(Event(sim), 4.0)
        batch = []
        assert agenda.pop_batch(batch) == 5
        assert [entry[2] for entry in batch] == events
        assert len(agenda) == 1

    def test_pop_batch_entries_can_be_pushed_back(self):
        agenda = Agenda()
        sim = Simulator()
        first, second = Event(sim), Event(sim)
        agenda.schedule(first, 1.0)
        agenda.schedule(second, 1.0)
        batch = []
        agenda.pop_batch(batch)
        heapq.heappush(agenda._heap, batch[1])  # put the tail back
        when, event = agenda.pop()
        assert when == 1.0 and event is second

    def test_pop_batch_on_empty_agenda_raises(self):
        agenda = Agenda()
        with pytest.raises(SimulationError):
            agenda.pop_batch([])

    def test_same_instant_entries_use_the_fifo(self):
        agenda = Agenda()
        sim = Simulator()
        event = Event(sim)
        agenda.schedule(event, 0.0)  # == agenda's current instant
        assert len(agenda._heap) == 0 and len(agenda._dq) == 1
        assert agenda.peek() == 0.0
        agenda.flush()
        assert len(agenda._heap) == 1 and len(agenda._dq) == 0

    def test_len_counts_both_lanes(self):
        agenda = Agenda()
        sim = Simulator()
        agenda.schedule(Event(sim), 0.0)
        agenda.schedule(Event(sim), 7.0)
        assert len(agenda) == 2
        assert bool(agenda)


# -- KernelHooks --------------------------------------------------------------


class TestKernelHooks:
    def test_run_stops_exactly_at_target_count(self):
        sim = Simulator()
        records = []

        def producer():
            for index in range(10):
                yield sim.timeout(1.0)
                records.append(index)

        sim.process(producer())
        sim.run(hooks=KernelHooks(records, 4))
        assert len(records) == 4
        assert sim.now == 4.0
        sim.run(hooks=KernelHooks(records, 7))
        assert len(records) == 7

    def test_already_satisfied_hooks_do_not_advance(self):
        sim = Simulator()
        sim.timeout(5.0)
        hooks = KernelHooks([1, 2], 2)
        assert hooks.satisfied()
        sim.run(hooks=hooks)
        assert sim.now == 0.0
        assert sim.peek() == 5.0

    def test_hooks_with_drained_agenda_returns(self):
        sim = Simulator()
        records = []
        sim.timeout(1.0).add_callback(lambda e: records.append(1))
        sim.run(hooks=KernelHooks(records, 5))  # drains before target
        assert records == [1]
        assert sim.peek() == float("inf")

    def test_stop_event_mid_batch_preserves_remaining_events(self):
        sim = Simulator()
        order = []
        first = sim.timeout(1.0)
        first.add_callback(lambda e: order.append("first"))
        second = sim.timeout(1.0)
        second.add_callback(lambda e: order.append("second"))
        value = sim.run(stop=first)
        assert order == ["first"]
        assert value is first.value
        # the rest of the t=1.0 batch is still pending
        assert sim.peek() == 1.0
        sim.run()
        assert order == ["first", "second"]


# -- composite events: callback detachment ------------------------------------


class TestCompositeDetach:
    def test_any_of_detaches_losers(self):
        sim = Simulator()
        slow = sim.timeout(5.0)
        fast = sim.timeout(1.0)
        any_event = AnyOf(sim, [slow, fast])
        sim.run(until=1.0)
        assert any_event.processed
        # the loser no longer carries the composite's callback
        assert slow._cb is None and not slow.callbacks

    def test_any_of_losers_return_to_timeout_pool(self):
        """Regression: detached losers must become recyclable again.

        Each iteration races a fast timeout against a slow one; once
        the composite fires, the loser is detached, so when it finally
        fires nothing references it and it returns to the free list.
        Before the detach fix the losers kept the composite's bound
        callback (pinning the whole AnyOf graph) and never recycled.
        """
        sim = Simulator()

        def proc():
            for _ in range(40):
                fast = sim.timeout(0.001)
                slow = sim.timeout(1000.0)
                yield sim.any_of([fast, slow])

        sim.process(proc())
        sim.run()
        assert len(sim._timeout_pool) > 0

    def test_all_of_detaches_on_early_failure(self):
        sim = Simulator()
        failing = sim.event()
        pending = sim.timeout(10.0)
        all_event = AllOf(sim, [failing, pending])
        failing.fail(ValueError("boom"))
        sim.run(until=0.5)
        assert all_event.processed and not all_event.ok
        assert pending._cb is None and not pending.callbacks

    def test_all_of_still_collects_every_value(self):
        sim = Simulator()
        events = [sim.timeout(t, value=t) for t in (1.0, 2.0, 3.0)]
        all_event = AllOf(sim, events)
        sim.run()
        assert sorted(all_event.value.values()) == [1.0, 2.0, 3.0]

    def test_any_of_fail_detaches_and_propagates(self):
        sim = Simulator()
        failing = sim.event()
        pending = sim.timeout(10.0)
        any_event = AnyOf(sim, [failing, pending])
        failing.fail(RuntimeError("first failure wins"))
        sim.run(until=0.5)
        assert any_event.processed and not any_event.ok
        assert pending._cb is None and not pending.callbacks


# -- fired() ------------------------------------------------------------------


def test_fired_event_fires_with_value_through_run():
    sim = Simulator()
    seen = []

    def proc():
        value = yield sim.fired("granted")
        seen.append((sim.now, value))

    sim.process(proc())
    sim.run()
    assert seen == [(0.0, "granted")]


def test_fired_preserves_scheduling_order_with_succeed():
    sim = Simulator()
    order = []
    a = sim.event()
    a.add_callback(lambda e: order.append("succeed"))
    a.succeed()
    b = sim.fired()
    b.add_callback(lambda e: order.append("fired"))
    sim.run()
    assert order == ["succeed", "fired"]


# -- Timeout identity through the free list -----------------------------------


def test_timeout_class_identity_preserved_through_recycling():
    sim = Simulator()
    timer = sim.timeout(1.0)
    assert isinstance(timer, Timeout)
    sim.run()

    def churn():
        for _ in range(20):
            served = yield sim.timeout(0.5, value="v")
            assert served == "v"

    sim.process(churn())
    sim.run()
    assert sim.timeout_reuses > 0
    assert isinstance(sim.timeout(1.0), Timeout)  # pool-served instance
