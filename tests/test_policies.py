"""Tests for the external-queue policies."""

import pytest

from repro.core.policies import (
    FifoPolicy,
    PriorityPolicy,
    SjfPolicy,
    make_policy,
)
from repro.dbms.transaction import Priority, Transaction


def _tx(tid, priority=Priority.LOW, cpu=0.01):
    return Transaction(
        tid=tid, type_name="t", cpu_demand=cpu, page_accesses=0, priority=priority
    )


class TestFifoPolicy:
    def test_order(self):
        policy = FifoPolicy()
        for tid in (1, 2, 3):
            policy.push(_tx(tid))
        assert [policy.pop().tid for _ in range(3)] == [1, 2, 3]

    def test_len_and_bool(self):
        policy = FifoPolicy()
        assert not policy
        policy.push(_tx(1))
        assert policy and len(policy) == 1


class TestPriorityPolicy:
    def test_high_first(self):
        policy = PriorityPolicy()
        policy.push(_tx(1, Priority.LOW))
        policy.push(_tx(2, Priority.HIGH))
        policy.push(_tx(3, Priority.LOW))
        policy.push(_tx(4, Priority.HIGH))
        assert [policy.pop().tid for _ in range(4)] == [2, 4, 1, 3]

    def test_fifo_within_class(self):
        policy = PriorityPolicy()
        for tid in (1, 2, 3):
            policy.push(_tx(tid, Priority.HIGH))
        assert [policy.pop().tid for _ in range(3)] == [1, 2, 3]


class TestSjfPolicy:
    def test_shortest_first(self):
        policy = SjfPolicy()
        policy.push(_tx(1, cpu=0.030))
        policy.push(_tx(2, cpu=0.010))
        policy.push(_tx(3, cpu=0.020))
        assert [policy.pop().tid for _ in range(3)] == [2, 3, 1]

    def test_custom_estimator(self):
        policy = SjfPolicy(estimator=lambda tx: -tx.cpu_demand)  # longest first
        policy.push(_tx(1, cpu=0.010))
        policy.push(_tx(2, cpu=0.030))
        assert policy.pop().tid == 2


class TestMakePolicy:
    @pytest.mark.parametrize(
        "name,cls",
        [("fifo", FifoPolicy), ("priority", PriorityPolicy), ("sjf", SjfPolicy)],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_case_insensitive(self):
        assert isinstance(make_policy("FIFO"), FifoPolicy)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_policy("lifo")
