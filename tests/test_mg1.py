"""Tests for the textbook reference formulas."""

import pytest

from repro.queueing.mg1 import (
    erlang_c,
    mg1_fifo_response_time,
    mg1_ps_response_time,
    mm1_response_time,
    mmk_response_time,
)


def test_mm1_known_value():
    # rho = 0.5 -> E[T] = E[S]/(1-rho) = 2 E[S]
    assert mm1_response_time(0.5, 1.0) == pytest.approx(2.0)


def test_mg1_fifo_reduces_to_mm1_for_scv_one():
    assert mg1_fifo_response_time(0.5, 1.0, 1.0) == pytest.approx(
        mm1_response_time(0.5, 1.0)
    )


def test_mg1_fifo_grows_with_scv():
    low = mg1_fifo_response_time(0.5, 1.0, 1.0)
    high = mg1_fifo_response_time(0.5, 1.0, 15.0)
    assert high > 4 * low


def test_mg1_ps_insensitive_to_scv():
    # PS formula only takes load; sanity: equals M/M/1
    assert mg1_ps_response_time(0.7, 1.0) == pytest.approx(1.0 / 0.3)


def test_deterministic_fifo_halves_waiting():
    # M/D/1 waiting is half of M/M/1 waiting
    md1 = mg1_fifo_response_time(0.5, 1.0, 0.0) - 1.0
    mm1 = mg1_fifo_response_time(0.5, 1.0, 1.0) - 1.0
    assert md1 == pytest.approx(mm1 / 2)


def test_erlang_c_single_server_is_rho():
    assert erlang_c(1, 0.6) == pytest.approx(0.6)


def test_erlang_c_two_servers_known_value():
    # offered 1.0 erlang over 2 servers: C(2, 1.0) = 1/3
    assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)


def test_mmk_reduces_to_mm1():
    assert mmk_response_time(0.5, 1.0, 1) == pytest.approx(
        mm1_response_time(0.5, 1.0)
    )


def test_mmk_beats_mm1_at_same_total_load():
    # two servers at the same per-server load wait less than one
    one = mm1_response_time(0.8, 1.0)
    two = mmk_response_time(1.6, 1.0, 2)
    assert two < one


def test_load_validation():
    with pytest.raises(ValueError):
        mm1_response_time(1.0, 1.0)
    with pytest.raises(ValueError):
        mg1_fifo_response_time(2.0, 1.0, 1.0)
    with pytest.raises(ValueError):
        erlang_c(2, 2.0)
    with pytest.raises(ValueError):
        erlang_c(0, 0.5)
    with pytest.raises(ValueError):
        mg1_fifo_response_time(0.5, 1.0, -1.0)
