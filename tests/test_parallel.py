"""Tests for the parallel experiment runner, result cache, and bench CLI."""

import json
import os

import pytest

from repro.core.system import RunResult, canonical_jsonable
from repro.experiments import figures
from repro.experiments.__main__ import main as cli_main
from repro.experiments.parallel import (
    ParallelRunner,
    ResultCache,
    RunSpec,
    get_runner,
    run_grid,
    using_runner,
)
from repro.experiments.runner import run_setup
from repro.sim.random import derive_seed, replicate_seeds
from repro.workloads.setups import get_setup


def _grid(transactions=120, seed=7):
    return [
        RunSpec(setup_id=1, mpl=mpl, transactions=transactions, seed=seed)
        for mpl in (1, 3, 5, 8)
    ]


class TestDeterminism:
    def test_parallel_bit_identical_to_sequential(self):
        """--jobs N must reproduce --jobs 1 exactly, for any N."""
        specs = _grid()
        sequential = ParallelRunner(jobs=1).run(specs)
        parallel = ParallelRunner(jobs=4).run(specs)
        assert [r.to_json_dict() for r in sequential] == [
            r.to_json_dict() for r in parallel
        ]

    def test_matches_direct_simulation(self):
        spec = RunSpec(setup_id=1, mpl=5, transactions=150, seed=3)
        direct = run_setup(get_setup(1), mpl=5, transactions=150, seed=3)
        pooled = ParallelRunner(jobs=2).run([spec, spec])
        assert pooled[0].to_json_dict() == direct.to_json_dict()

    def test_duplicate_specs_execute_once(self):
        spec = RunSpec(setup_id=1, mpl=2, transactions=100, seed=5)
        runner = ParallelRunner(jobs=1)
        first, second = runner.run([spec, spec])
        assert runner.stats.executed == 1
        assert runner.stats.deduplicated == 1
        assert first.to_json_dict() == second.to_json_dict()


class TestResultCache:
    def test_warm_cache_short_circuits(self, tmp_path):
        specs = _grid()
        cold = ParallelRunner(jobs=1, cache_dir=str(tmp_path))
        cold_results = cold.run(specs)
        assert cold.stats.executed == len(specs)
        warm = ParallelRunner(jobs=1, cache_dir=str(tmp_path))
        warm_results = warm.run(specs)
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits == len(specs)
        assert warm.stats.elapsed_s < cold.stats.elapsed_s
        assert [r.to_json_dict() for r in warm_results] == [
            r.to_json_dict() for r in cold_results
        ]

    def test_different_config_misses(self, tmp_path):
        runner = ParallelRunner(jobs=1, cache_dir=str(tmp_path))
        runner.run([RunSpec(setup_id=1, mpl=2, transactions=100, seed=5)])
        runner.run([RunSpec(setup_id=1, mpl=2, transactions=100, seed=6)])
        assert runner.stats.cache_hits == 0
        assert runner.stats.executed == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        spec = RunSpec(setup_id=1, mpl=2, transactions=100, seed=5)
        cache = ResultCache(str(tmp_path))
        key = spec.fingerprint()
        path = os.path.join(str(tmp_path), key[:2], f"{key}.json")
        os.makedirs(os.path.dirname(path))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert cache.load(key) is None
        runner = ParallelRunner(jobs=1, cache_dir=str(tmp_path))
        runner.run([spec])
        assert runner.stats.executed == 1
        assert cache.load(key) is not None


class TestFingerprints:
    def test_stable_and_distinct(self):
        a = RunSpec(setup_id=1, mpl=5, transactions=300, seed=11)
        assert a.fingerprint() == RunSpec(
            setup_id=1, mpl=5, transactions=300, seed=11
        ).fingerprint()
        assert a.fingerprint() != RunSpec(
            setup_id=1, mpl=6, transactions=300, seed=11
        ).fingerprint()
        assert a.fingerprint() != RunSpec(
            setup_id=2, mpl=5, transactions=300, seed=11
        ).fingerprint()

    def test_tag_not_hashed(self):
        base = RunSpec(setup_id=1, mpl=5, transactions=300, tag="")
        tagged = RunSpec(setup_id=1, mpl=5, transactions=300, tag="panel-a")
        assert base.fingerprint() == tagged.fingerprint()

    def test_canonical_jsonable_roundtrips_to_json(self):
        spec = RunSpec(setup_id=1, mpl=5, transactions=300)
        blob = json.dumps(canonical_jsonable(spec.config()), sort_keys=True)
        assert "W_CPU-inventory" in blob


class TestRunResultSerialization:
    def test_round_trip(self):
        result = run_setup(get_setup(1), mpl=4, transactions=150, seed=2)
        rebuilt = RunResult.from_json_dict(
            json.loads(json.dumps(result.to_json_dict()))
        )
        assert rebuilt == result
        assert rebuilt.response_time_by_class == result.response_time_by_class

    def test_class_keys_serialize_numerically(self):
        """Priority IntEnum keys must encode as digits on every Python.

        ``str(IntEnum)`` is version-dependent ('Priority.LOW' on 3.10);
        a non-numeric key would make ``from_json_dict`` raise and turn
        every cache lookup into a silent miss.
        """
        result = run_setup(
            get_setup(1), mpl=4, transactions=150, seed=2,
            policy="priority", high_priority_fraction=0.2,
        )
        payload = result.to_json_dict()
        assert payload["response_time_by_class"]
        for field in ("response_time_by_class", "count_by_class"):
            assert all(key.isdigit() for key in payload[field])


class TestActiveRunner:
    def test_run_grid_uses_active_runner(self, tmp_path):
        runner = ParallelRunner(jobs=1, cache_dir=str(tmp_path))
        with using_runner(runner):
            assert get_runner() is runner
            run_grid(_grid(transactions=80))
        assert get_runner() is not runner
        assert runner.stats.executed == 4

    def test_figures_hit_cache_through_run_setup(self, tmp_path):
        runner = ParallelRunner(jobs=1, cache_dir=str(tmp_path))
        with using_runner(runner):
            run_setup(get_setup(1), mpl=3, transactions=90, seed=4)
            assert runner.stats.executed == 1
            run_setup(get_setup(1), mpl=3, transactions=90, seed=4)
            assert runner.stats.cache_hits == 1
            assert runner.stats.executed == 0

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=0)

    def test_totals_accumulate_across_calls(self, tmp_path):
        runner = ParallelRunner(jobs=1, cache_dir=str(tmp_path))
        runner.run(_grid(transactions=80))
        runner.run(_grid(transactions=80))
        assert runner.stats.cache_hits == 4
        assert runner.totals.executed == 4
        assert runner.totals.cache_hits == 4
        assert runner.totals.submitted == 8
        delta = runner.totals.since(runner.stats)
        assert delta.executed == 4 and delta.cache_hits == 0


class TestSeedDerivation:
    def test_derive_seed_stable(self):
        assert derive_seed(11, "replicate", 0) == derive_seed(11, "replicate", 0)
        assert derive_seed(11, "replicate", 0) != derive_seed(11, "replicate", 1)
        assert derive_seed(11, "a") != derive_seed(12, "a")

    def test_replicate_seeds(self):
        seeds = replicate_seeds(11, 5)
        assert len(seeds) == len(set(seeds)) == 5
        assert seeds == replicate_seeds(11, 5)
        with pytest.raises(ValueError):
            replicate_seeds(11, -1)


class TestCli:
    def test_positional_targets(self, capsys):
        assert cli_main(["7"]) == 0
        assert "Figure 7" in capsys.readouterr().out

    def test_unknown_positional_target_errors(self, capsys):
        assert cli_main(["nonsense"]) == 2
        err = capsys.readouterr().err
        assert "unknown target" in err and "s4.3" in err

    def test_unknown_figure_flag_lists_choices(self, capsys):
        assert cli_main(["--figure", "99"]) == 2
        err = capsys.readouterr().err
        assert "unknown figure" in err and "available" in err

    def test_jobs_validation(self, capsys):
        assert cli_main(["--figure", "7", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_figure_with_cache_dir(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert cli_main(["--figure", "7", "--cache-dir", cache]) == 0
        capsys.readouterr()

    def test_bench_emits_artifact(self, tmp_path, capsys):
        output = str(tmp_path / "BENCH_smoke.json")
        cache = str(tmp_path / "cache")
        assert cli_main(
            ["bench", "--jobs", "2", "--cache-dir", cache, "--output", output]
        ) == 0
        assert "warm speedup" in capsys.readouterr().out
        with open(output, encoding="utf-8") as handle:
            artifact = json.load(handle)
        assert artifact["figure"] == "smoke"
        assert artifact["grid_size"] == len(artifact["runs"])
        assert [p["pass"] for p in artifact["passes"]] == ["cold", "warm"]
        assert artifact["passes"][1]["cache_hits"] == artifact["grid_size"]
        assert artifact["passes"][1]["executed"] == 0
        for run in artifact["runs"]:
            assert run["throughput"] > 0

    def test_bench_unknown_grid(self, capsys):
        assert cli_main(["bench", "--figure", "zzz"]) == 2
        assert "unknown figure grid" in capsys.readouterr().err

    def test_bench_baseline_gate_passes_against_itself(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert cli_main(
            ["bench", "--cache-dir", str(tmp_path / "c1"), "--output", baseline]
        ) == 0
        assert cli_main(
            ["bench", "--cache-dir", str(tmp_path / "c2"),
             "--output", str(tmp_path / "check.json"),
             "--baseline", baseline, "--max-regression", "1000"]
        ) == 0
        assert "vs baseline" in capsys.readouterr().out

    def test_bench_baseline_gate_fails_on_regression(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert cli_main(
            ["bench", "--cache-dir", str(tmp_path / "c1"), "--output", baseline]
        ) == 0
        assert cli_main(
            ["bench", "--cache-dir", str(tmp_path / "c2"),
             "--output", str(tmp_path / "check.json"),
             "--baseline", baseline, "--max-regression", "0.000001"]
        ) == 1
        assert "regressed" in capsys.readouterr().err

    def test_bench_baseline_figure_mismatch_rejected(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert cli_main(
            ["bench", "--figure", "smoke", "--cache-dir", str(tmp_path / "c1"),
             "--output", baseline]
        ) == 0
        with open(baseline, encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["figure"] = "2"
        with open(baseline, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        assert cli_main(
            ["bench", "--figure", "smoke", "--cache-dir", str(tmp_path / "c2"),
             "--output", str(tmp_path / "check.json"), "--baseline", baseline]
        ) == 2
        assert "not comparable" in capsys.readouterr().err

    def test_bench_unreadable_baseline_rejected(self, tmp_path, capsys):
        assert cli_main(
            ["bench", "--cache-dir", str(tmp_path / "c"),
             "--output", str(tmp_path / "out.json"),
             "--baseline", str(tmp_path / "missing.json")]
        ) == 2
        assert "unreadable baseline" in capsys.readouterr().err

    def test_bench_jobs_and_repeats_validation(self, capsys):
        assert cli_main(["bench", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err
        assert cli_main(["bench", "--repeats", "0"]) == 2
        assert "--repeats" in capsys.readouterr().err

    def test_bench_repeats_derive_distinct_seeds(self, tmp_path, capsys):
        output = str(tmp_path / "bench.json")
        assert cli_main(
            ["bench", "--repeats", "2", "--cache-dir", str(tmp_path / "c"),
             "--output", output]
        ) == 0
        capsys.readouterr()
        with open(output, encoding="utf-8") as handle:
            artifact = json.load(handle)
        assert artifact["repeats"] == 2
        assert artifact["grid_size"] == 2 * len(figures.smoke_grid())
        # replicates get distinct derived seeds, but within a replicate
        # every grid point shares one seed (common random numbers)
        seeds = {run["seed"] for run in artifact["runs"]}
        assert len(seeds) == 2
        fingerprints = {run["fingerprint"] for run in artifact["runs"]}
        assert len(fingerprints) == artifact["grid_size"]


class TestFigureGrids:
    def test_grids_are_data(self):
        from repro.core.scenario import ScenarioSpec

        for key, builder in figures.FIGURE_GRIDS.items():
            grid = builder(fast=True)
            assert grid, key
            assert all(isinstance(spec, ScenarioSpec) for spec in grid)

    def test_figure2_consumes_its_grid(self):
        mpls = (1, 5)
        grid = figures.figure2_grid(fast=True, mpls=mpls)
        assert len(grid) == 4 * len(mpls)
        assert {spec.setup_id for spec in grid} == {1, 2, 3, 4}

    def test_grid_defs_preserve_seed_grids(self):
        """The registry must re-express the seed's hand-written grids.

        Expectations are spelled out literally (setup order, MPL axis,
        per-panel sample sizes from the pre-refactor helpers) so a typo
        in GRID_DEFS cannot hide behind the wrappers that now delegate
        to it.
        """
        expected = {
            # key: (mpls, [(setup_ids, fast_txns, full_txns), ...])
            "2": ((1, 2, 3, 5, 7, 10, 15, 20, 30),
                  [((1, 2), 700, 2500), ((3, 4), 400, 1500)]),
            "3": ((1, 2, 3, 5, 7, 10, 15, 20, 30),
                  [((5, 6, 7, 8), 350, 1200), ((9, 10), 250, 600)]),
            "4": ((1, 2, 3, 5, 7, 10, 15, 20, 30, 35),
                  [((11, 12), 700, 2500)]),
            "5": ((1, 2, 3, 5, 7, 10, 15, 20, 30, 40),
                  [((17, 1), 700, 2500), ((16, 15), 700, 2500)]),
        }
        for key, (mpls, panels) in expected.items():
            for fast in (True, False):
                grid = figures.GRID_DEFS[key].build(fast)
                want = [
                    (setup_id, mpl, txns if fast else full_txns)
                    for setup_ids, txns, full_txns in panels
                    for setup_id in setup_ids
                    for mpl in mpls
                ]
                got = [(s.setup_id, s.mpl, s.transactions) for s in grid]
                assert got == want, (key, fast)

    def test_smoke_grid_shrinks_when_fast(self):
        assert len(figures.smoke_grid(fast=True)) < len(figures.smoke_grid(fast=False))

    def test_replica_fanout_grid_shape(self):
        """One primary-only baseline, then every fan-out per replica count."""
        grid = figures.replica_fanout_grid(fast=True)
        cells = [
            (s.topology.replicas_per_shard, s.topology.read_fanout) for s in grid
        ]
        assert cells == [
            (0, "primary"),
            (1, "primary"), (1, "round_robin"), (1, "least_in_flight"),
            (2, "primary"), (2, "round_robin"), (2, "least_in_flight"),
        ]
        assert {s.topology.shards for s in grid} == {figures.RF_SHARDS}
        assert {s.arrival.rate for s in grid} == {
            figures.RF_RATE_PER_SHARD * figures.RF_SHARDS
        }
        assert "rf" in figures.GRID_DEFS

    def test_partly_open_grid_holds_offered_load(self):
        grid = figures.partly_open_grid(fast=True)
        assert all(spec.arrival is not None for spec in grid)
        rates = {round(spec.arrival.transaction_rate, 6) for spec in grid}
        assert rates == {figures.PARTLY_OPEN_NOMINAL_RATE}
        mixes = {spec.arrival.mean_session_length for spec in grid}
        assert mixes == set(figures.PARTLY_OPEN_MIXES)
