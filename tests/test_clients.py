"""Tests for the ``repro.core.clients`` backwards-compatibility shim.

The behavioral tests of the closed/open sources live with the arrival
layer itself (``tests/test_arrivals.py``); this file only checks the
shim's contract: every legacy name resolves to the *same object* the
arrival layer exports, each access raises a ``DeprecationWarning``
naming the new home, and unknown attributes fail normally.
"""

import warnings

import pytest

from repro.core import arrivals
from repro.core import clients


@pytest.mark.parametrize("name", clients.__all__)
def test_every_legacy_name_aliases_arrivals(name):
    with pytest.warns(DeprecationWarning, match="repro.core.arrivals"):
        aliased = getattr(clients, name)
    assert aliased is getattr(arrivals, name)


def test_warning_names_the_accessed_attribute():
    with pytest.warns(DeprecationWarning, match="clients.OpenSource"):
        clients.OpenSource  # noqa: B018 - attribute access is the trigger


def test_open_source_still_aliases_open_poisson():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        assert clients.OpenSource is arrivals.OpenPoisson


def test_unknown_attribute_raises_without_warning():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        with pytest.raises(AttributeError, match="NoSuchThing"):
            clients.NoSuchThing


def test_dir_lists_the_legacy_surface():
    assert set(clients.__all__) <= set(dir(clients))


def test_legacy_import_style_works_with_warning():
    with pytest.warns(DeprecationWarning):
        from repro.core.clients import ClosedPopulation
    assert ClosedPopulation is arrivals.ClosedPopulation
