"""Tests for the closed/open transaction sources."""

import pytest

from repro.core.clients import (
    ClosedPopulation,
    OpenSource,
    fraction_high_assigner,
)
from repro.core.frontend import ExternalScheduler
from repro.dbms.config import HardwareConfig
from repro.dbms.engine import DatabaseEngine
from repro.dbms.transaction import Priority
from repro.metrics.collector import MetricsCollector
from repro.sim.distributions import Deterministic, Exponential
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.workloads.synthetic import synthetic_workload


def _stack(mpl=None):
    sim = Simulator()
    streams = RandomStreams(9)
    engine = DatabaseEngine(
        sim,
        HardwareConfig(memory_mb=3072, bufferpool_mb=1024),
        db_pages=1000,
        streams=streams,
    )
    collector = MetricsCollector()
    frontend = ExternalScheduler(sim, engine, mpl=mpl, collector=collector)
    workload = synthetic_workload("s", demand_mean_ms=5.0, scv=1.0)
    return sim, streams, frontend, collector, workload


def test_closed_population_keeps_n_outstanding():
    sim, streams, frontend, collector, workload = _stack()
    clients = ClosedPopulation(
        sim, frontend, workload, num_clients=7, think_time=None,
        rng=streams.stream("clients"),
    )
    clients.start()
    sim.run(until=0.5)
    # at any time exactly 7 transactions are in the system (no think)
    assert frontend.in_service + frontend.queue_length == 7
    assert collector.arrivals >= 7


def test_closed_population_start_idempotent():
    sim, streams, frontend, collector, workload = _stack()
    clients = ClosedPopulation(
        sim, frontend, workload, num_clients=3, think_time=None,
        rng=streams.stream("clients"),
    )
    clients.start()
    clients.start()
    sim.run(until=0.1)
    assert frontend.in_service + frontend.queue_length == 3


def test_closed_population_think_time_idles_clients():
    sim, streams, frontend, collector, workload = _stack()
    clients = ClosedPopulation(
        sim, frontend, workload, num_clients=5,
        think_time=Deterministic(10.0), rng=streams.stream("clients"),
    )
    clients.start()
    sim.run(until=1.0)
    # after the first round everyone is thinking
    assert frontend.in_service == 0


def test_open_source_rate():
    sim, streams, frontend, collector, workload = _stack(mpl=50)
    source = OpenSource(
        sim, frontend, workload, interarrival=Exponential(0.01),
        rng=streams.stream("arrivals"),
    )
    source.start()
    sim.run(until=10.0)
    # ~100/s for 10s
    assert collector.arrivals == pytest.approx(1000, rel=0.15)


def test_open_source_max_arrivals():
    sim, streams, frontend, collector, workload = _stack()
    source = OpenSource(
        sim, frontend, workload, interarrival=Deterministic(0.001),
        rng=streams.stream("arrivals"), max_arrivals=25,
    )
    source.start()
    sim.run()
    assert collector.arrivals == 25


def test_priority_assigner_applied():
    sim, streams, frontend, collector, workload = _stack()
    clients = ClosedPopulation(
        sim, frontend, workload, num_clients=4, think_time=None,
        rng=streams.stream("clients"),
        priority_assigner=fraction_high_assigner(1.0),
    )
    clients.start()
    sim.run(until=0.2)
    assert all(r.priority == Priority.HIGH for r in collector.records)


def test_fraction_high_assigner_validation():
    with pytest.raises(ValueError):
        fraction_high_assigner(1.5)


def test_closed_population_validation():
    sim, streams, frontend, _collector, workload = _stack()
    with pytest.raises(ValueError):
        ClosedPopulation(
            sim, frontend, workload, num_clients=0, think_time=None,
            rng=streams.stream("clients"),
        )
