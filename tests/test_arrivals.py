"""Tests for the pluggable arrival layer.

Covers the new sources (partly-open sessions, modulated rates), their
bit-identical determinism under any ``--jobs N``, and — critically —
the fingerprint-stability guarantee: legacy ``SystemConfig`` values
must hash to the exact digests they produced before the ``arrival``
field existed, so every pre-existing cache entry still hits.
"""

import math
import random

import pytest

from repro.core.arrivals import (
    ClosedArrivals,
    ClosedPopulation,
    ModulatedArrivals,
    OpenArrivals,
    OpenPoisson,
    PartlyOpenArrivals,
    PartlyOpenSessions,
    PiecewiseRate,
    SinusoidRate,
    fraction_high_assigner,
)
from repro.core.frontend import ExternalScheduler
from repro.core.system import SimulatedSystem, SystemConfig
from repro.dbms.config import HardwareConfig
from repro.dbms.engine import DatabaseEngine
from repro.dbms.transaction import Priority
from repro.experiments.parallel import ParallelRunner, RunSpec
from repro.metrics.collector import MetricsCollector
from repro.sim.distributions import Deterministic, Exponential
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.workloads.setups import get_setup
from repro.workloads.synthetic import synthetic_workload


def _config(arrival=None, **kwargs):
    setup = get_setup(1)
    return SystemConfig(
        workload=setup.workload,
        hardware=setup.hardware,
        isolation=setup.isolation,
        arrival=arrival,
        **kwargs,
    )


class TestFingerprintStability:
    """Legacy configs must keep their pre-`arrival` content hashes.

    The expected digests below were produced at the commit *before*
    the arrival layer existed; a mismatch means existing result caches
    silently stop hitting.
    """

    EXPECTED = {
        (1, 5, 300, 11, "fifo", 0.0, None):
            "47affd2ecb66d0aa7dffcdf436ed6259a0de0e2c618fac76ec253345849028d6",
        (3, None, 150, 7, "priority", 0.1, None):
            "c3b9eb7fc51d133c3fa37fda4d1d12175caa7b3ce6342e4567935a1f0ceb2bf1",
        (5, 2, 100, 5, "fifo", 0.0, 4.0):
            "184cdbf8ff63ec4ddbc2232944bbe681d8867188388469de33f6c048f0a13889",
    }

    def test_legacy_runspec_fingerprints_unchanged(self):
        for (sid, mpl, txns, seed, policy, high, rate), digest in self.EXPECTED.items():
            spec = RunSpec(
                setup_id=sid, mpl=mpl, transactions=txns, seed=seed,
                policy=policy, high_priority_fraction=high, arrival_rate=rate,
            )
            assert spec.fingerprint() == digest, spec

    def test_legacy_config_fingerprints_unchanged(self):
        config = _config(mpl=4, seed=2)
        assert config.fingerprint() == (
            "c8ab3b88ad3a980e35795060155ff50d937f2595c5479dd10e71f77f0d2b9e47"
        )
        assert config.fingerprint(transactions=500, warmup_fraction=0.2) == (
            "81c1b78b977fecdd56207882e6775b24193d36198ea3c5cdc0d51fe62d167964"
        )

    def test_arrival_spec_changes_fingerprint(self):
        base = _config(mpl=4, seed=2)
        closed = _config(mpl=4, seed=2, arrival=ClosedArrivals())
        partly = _config(
            mpl=4, seed=2, arrival=PartlyOpenArrivals(session_rate=5.0)
        )
        assert base.fingerprint() != closed.fingerprint()
        assert closed.fingerprint() != partly.fingerprint()

    def test_distinct_arrival_specs_hash_distinct(self):
        specs = [
            PartlyOpenArrivals(session_rate=5.0),
            PartlyOpenArrivals(session_rate=5.0, mean_session_length=2.0),
            ModulatedArrivals(SinusoidRate(base=10.0, amplitude=5.0, period=8.0)),
            ModulatedArrivals(SinusoidRate(base=10.0, amplitude=6.0, period=8.0)),
            ModulatedArrivals(PiecewiseRate(points=((0.0, 10.0), (4.0, 20.0)))),
        ]
        digests = {_config(arrival=spec).fingerprint() for spec in specs}
        assert len(digests) == len(specs)


class TestLegacyNormalization:
    def test_default_is_closed(self):
        assert _config().arrival_spec() == ClosedArrivals(
            num_clients=100, think_time_s=0.0
        )

    def test_arrival_rate_is_open(self):
        assert _config(arrival_rate=7.5).arrival_spec() == OpenArrivals(rate=7.5)

    def test_explicit_spec_wins(self):
        spec = PartlyOpenArrivals(session_rate=2.0)
        assert _config(arrival=spec).arrival_spec() is spec

    def test_spec_and_legacy_rate_conflict(self):
        with pytest.raises(ValueError):
            _config(arrival=OpenArrivals(rate=1.0), arrival_rate=2.0)


class TestJobsDeterminism:
    """Partly-open and modulated runs must be --jobs invariant."""

    def _grid(self):
        return [
            RunSpec(
                setup_id=1, mpl=mpl, transactions=150, seed=9,
                arrival=PartlyOpenArrivals.for_load(30.0, 4.0, think_time_s=0.05),
            )
            for mpl in (2, 6)
        ] + [
            RunSpec(
                setup_id=1, mpl=mpl, transactions=150, seed=9,
                arrival=ModulatedArrivals(
                    SinusoidRate(base=25.0, amplitude=15.0, period=10.0)
                ),
            )
            for mpl in (2, 6)
        ] + [
            RunSpec(
                setup_id=1, mpl=4, transactions=150, seed=9,
                arrival=ModulatedArrivals(
                    PiecewiseRate(points=((0.0, 10.0), (3.0, 40.0)), period=6.0)
                ),
            )
        ]

    def test_parallel_bit_identical_to_sequential(self):
        specs = self._grid()
        sequential = ParallelRunner(jobs=1).run(specs)
        parallel = ParallelRunner(jobs=4).run(specs)
        assert [r.to_json_dict() for r in sequential] == [
            r.to_json_dict() for r in parallel
        ]

    def test_cache_round_trip(self, tmp_path):
        specs = self._grid()[:2]
        cold = ParallelRunner(jobs=1, cache_dir=str(tmp_path))
        cold_results = cold.run(specs)
        warm = ParallelRunner(jobs=1, cache_dir=str(tmp_path))
        warm_results = warm.run(specs)
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits == len(specs)
        assert [r.to_json_dict() for r in warm_results] == [
            r.to_json_dict() for r in cold_results
        ]


class TestPartlyOpenSessions:
    def test_for_load_holds_transaction_rate(self):
        spec = PartlyOpenArrivals.for_load(40.0, 8.0)
        assert spec.session_rate == pytest.approx(5.0)
        assert spec.transaction_rate == pytest.approx(40.0)

    def test_session_lengths_have_geometric_mean(self):
        config = _config(arrival=PartlyOpenArrivals(session_rate=1.0))
        system = SimulatedSystem(config)
        source = system.source
        assert isinstance(source, PartlyOpenSessions)
        rng = random.Random(42)
        source._rng = rng
        draws = [source._session_length() for _ in range(4000)]
        assert min(draws) >= 1
        assert sum(draws) / len(draws) == pytest.approx(5.0, rel=0.1)

    def test_mean_one_degenerates_to_single_transaction(self):
        config = _config(
            arrival=PartlyOpenArrivals(session_rate=1.0, mean_session_length=1.0)
        )
        source = SimulatedSystem(config).source
        assert all(source._session_length() == 1 for _ in range(50))

    def test_sessions_complete(self):
        config = _config(
            mpl=4,
            arrival=PartlyOpenArrivals(
                session_rate=8.0, mean_session_length=3.0, think_time_s=0.01
            ),
        )
        system = SimulatedSystem(config)
        system.run_transactions(200)
        source = system.source
        assert source.sessions_started > 0
        assert 0 <= source.active_sessions <= source.sessions_started

    def test_validation(self):
        with pytest.raises(ValueError):
            PartlyOpenArrivals(session_rate=0.0)
        with pytest.raises(ValueError):
            PartlyOpenArrivals(session_rate=1.0, mean_session_length=0.5)
        with pytest.raises(ValueError):
            PartlyOpenArrivals(session_rate=1.0, think_time_s=-1.0)


class TestRateFunctions:
    def test_piecewise_steps_and_period(self):
        rate = PiecewiseRate(points=((0.0, 5.0), (10.0, 20.0)), period=30.0)
        assert rate.rate(0.0) == 5.0
        assert rate.rate(9.999) == 5.0
        assert rate.rate(10.0) == 20.0
        assert rate.rate(29.0) == 20.0
        assert rate.rate(31.0) == 5.0  # wrapped
        assert rate.max_rate() == 20.0

    def test_piecewise_without_period_holds_last_rate(self):
        rate = PiecewiseRate(points=((0.0, 5.0), (10.0, 20.0)))
        assert rate.rate(1e9) == 20.0

    def test_piecewise_validation(self):
        with pytest.raises(ValueError):
            PiecewiseRate(points=())
        with pytest.raises(ValueError):
            PiecewiseRate(points=((1.0, 5.0),))  # must start at 0
        with pytest.raises(ValueError):
            PiecewiseRate(points=((0.0, 5.0), (0.0, 6.0)))  # ascending
        with pytest.raises(ValueError):
            PiecewiseRate(points=((0.0, -5.0),))
        with pytest.raises(ValueError):
            PiecewiseRate(points=((0.0, 5.0), (10.0, 6.0)), period=10.0)

    def test_sinusoid_profile(self):
        rate = SinusoidRate(base=10.0, amplitude=4.0, period=8.0)
        assert rate.rate(0.0) == pytest.approx(10.0)
        assert rate.rate(2.0) == pytest.approx(14.0)  # peak at period/4
        assert rate.rate(6.0) == pytest.approx(6.0)  # trough
        assert rate.max_rate() == 14.0

    def test_sinusoid_clips_at_zero(self):
        rate = SinusoidRate(base=1.0, amplitude=5.0, period=4.0)
        assert rate.rate(3.0) == 0.0  # trough would be negative

    def test_sinusoid_validation(self):
        with pytest.raises(ValueError):
            SinusoidRate(base=0.0, amplitude=1.0, period=1.0)
        with pytest.raises(ValueError):
            SinusoidRate(base=1.0, amplitude=-1.0, period=1.0)
        with pytest.raises(ValueError):
            SinusoidRate(base=1.0, amplitude=1.0, period=0.0)


class TestModulatedThroughput:
    def test_observed_rate_tracks_profile(self):
        """Thinned arrivals should average the profile's mean rate."""
        rate_function = SinusoidRate(base=30.0, amplitude=20.0, period=5.0)
        config = _config(
            mpl=None, arrival=ModulatedArrivals(rate_function), seed=3
        )
        system = SimulatedSystem(config)
        records = system.run_transactions(600)
        elapsed = records[-1].completion_time - records[0].completion_time
        observed = (len(records) - 1) / elapsed
        # mean of the sinusoid is its base; allow simulation noise
        assert observed == pytest.approx(rate_function.base, rel=0.25)

    def test_piecewise_bursts_modulate_arrivals(self):
        """Arrivals during a high-rate phase outnumber the low phase."""
        rate_function = PiecewiseRate(points=((0.0, 5.0), (5.0, 50.0)), period=10.0)
        config = _config(mpl=None, arrival=ModulatedArrivals(rate_function), seed=3)
        system = SimulatedSystem(config)
        records = system.run_transactions(400)
        low = sum(1 for r in records if (r.arrival_time % 10.0) < 5.0)
        high = len(records) - low
        assert high > 2 * low


def _stack(mpl=None):
    """A bare front-end + engine to drive sources against directly."""
    sim = Simulator()
    streams = RandomStreams(9)
    engine = DatabaseEngine(
        sim,
        HardwareConfig(memory_mb=3072, bufferpool_mb=1024),
        db_pages=1000,
        streams=streams,
    )
    collector = MetricsCollector()
    frontend = ExternalScheduler(sim, engine, mpl=mpl, collector=collector)
    workload = synthetic_workload("s", demand_mean_ms=5.0, scv=1.0)
    return sim, streams, frontend, collector, workload


class TestClosedPopulation:
    """Behavior of the closed source (formerly tests/test_clients.py)."""

    def test_keeps_n_outstanding(self):
        sim, streams, frontend, collector, workload = _stack()
        clients = ClosedPopulation(
            sim, frontend, workload, num_clients=7, think_time=None,
            rng=streams.stream("clients"),
        )
        clients.start()
        sim.run(until=0.5)
        # at any time exactly 7 transactions are in the system (no think)
        assert frontend.in_service + frontend.queue_length == 7
        assert collector.arrivals >= 7

    def test_start_idempotent(self):
        sim, streams, frontend, collector, workload = _stack()
        clients = ClosedPopulation(
            sim, frontend, workload, num_clients=3, think_time=None,
            rng=streams.stream("clients"),
        )
        clients.start()
        clients.start()
        sim.run(until=0.1)
        assert frontend.in_service + frontend.queue_length == 3

    def test_think_time_idles_clients(self):
        sim, streams, frontend, collector, workload = _stack()
        clients = ClosedPopulation(
            sim, frontend, workload, num_clients=5,
            think_time=Deterministic(10.0), rng=streams.stream("clients"),
        )
        clients.start()
        sim.run(until=1.0)
        # after the first round everyone is thinking
        assert frontend.in_service == 0

    def test_priority_assigner_applied(self):
        sim, streams, frontend, collector, workload = _stack()
        clients = ClosedPopulation(
            sim, frontend, workload, num_clients=4, think_time=None,
            rng=streams.stream("clients"),
            priority_assigner=fraction_high_assigner(1.0),
        )
        clients.start()
        sim.run(until=0.2)
        assert all(r.priority == Priority.HIGH for r in collector.records)

    def test_validation(self):
        sim, streams, frontend, _collector, workload = _stack()
        with pytest.raises(ValueError):
            ClosedPopulation(
                sim, frontend, workload, num_clients=0, think_time=None,
                rng=streams.stream("clients"),
            )
        with pytest.raises(ValueError):
            fraction_high_assigner(1.5)


class TestOpenPoissonSource:
    """Behavior of the open source (formerly tests/test_clients.py)."""

    def test_rate(self):
        sim, streams, frontend, collector, workload = _stack(mpl=50)
        source = OpenPoisson(
            sim, frontend, workload, interarrival=Exponential(0.01),
            rng=streams.stream("arrivals"),
        )
        source.start()
        sim.run(until=10.0)
        # ~100/s for 10s
        assert collector.arrivals == pytest.approx(1000, rel=0.15)

    def test_max_arrivals(self):
        sim, streams, frontend, collector, workload = _stack()
        source = OpenPoisson(
            sim, frontend, workload, interarrival=Deterministic(0.001),
            rng=streams.stream("arrivals"), max_arrivals=25,
        )
        source.start()
        sim.run()
        assert collector.arrivals == 25


class TestTraceReplayZeroSpan:
    """Looping a zero-span stream must be rejected, not livelock.

    The wrap offset is the trace's span; with a single record (or all
    timestamps equal at zero) the span is zero and the pre-fix replay
    loop re-submitted the whole stream at the same instant forever.
    These construct the replay directly — the generated-trace twin of
    the CSV-level check in ``tests/test_scenario.py``.
    """

    def _replay(self, times, loop):
        from repro.core.arrivals import TraceReplay

        return TraceReplay(
            sim=None, frontend=None, workload=None,
            arrival_times=times, rng=random.Random(0), loop=loop,
        )

    def test_rejects_single_record_loop(self):
        with pytest.raises(ValueError, match="zero-span"):
            self._replay([0.0], loop=True)

    def test_rejects_all_zero_timestamps_loop(self):
        with pytest.raises(ValueError, match="zero-span"):
            self._replay([0.0, 0.0, 0.0], loop=True)

    def test_accepts_zero_span_without_loop(self):
        replay = self._replay([0.0, 0.0], loop=False)
        assert replay.arrival_times == [0.0, 0.0]

    def test_accepts_positive_span_loop(self):
        replay = self._replay([0.0, 0.5, 1.0], loop=True)
        assert replay.loop


class TestGeometryOfGeometric:
    """The closed-form geometric sampler must match its distribution."""

    def test_matches_naive_bernoulli_mean(self):
        mean = 7.0
        rng = random.Random(7)
        p = 1.0 / mean
        draws = []
        for _ in range(4000):
            u = rng.random()
            draws.append(1 + int(math.log(1.0 - u) / math.log(1.0 - p)))
        assert sum(draws) / len(draws) == pytest.approx(mean, rel=0.1)
