"""Tests for the lock manager: 2PL, deadlocks, priority policies, POW."""

import pytest

from repro.dbms.config import LockSchedulingPolicy
from repro.dbms.lockmgr import DeadlockError, LockManager, LockMode
from repro.dbms.transaction import Priority, Transaction
from repro.sim.engine import Simulator


def _tx(tid, priority=Priority.LOW):
    return Transaction(
        tid=tid, type_name=f"t{tid}", cpu_demand=0.0, page_accesses=0,
        priority=priority,
    )


def test_exclusive_lock_blocks_second_writer():
    sim = Simulator()
    lockmgr = LockManager(sim)
    t1, t2 = _tx(1), _tx(2)
    log = []

    def holder():
        yield lockmgr.acquire(t1, 7, True)
        yield sim.timeout(2.0)
        lockmgr.release_all(t1)

    def waiter():
        yield sim.timeout(0.1)
        yield lockmgr.acquire(t2, 7, True)
        log.append(sim.now)

    sim.process(holder())
    sim.process(waiter())
    sim.run()
    assert log == [pytest.approx(2.0)]
    assert t2.lock_wait_time == pytest.approx(1.9)


def test_shared_locks_compatible():
    sim = Simulator()
    lockmgr = LockManager(sim)
    t1, t2 = _tx(1), _tx(2)
    granted = []

    def reader(tx):
        yield lockmgr.acquire(tx, 7, False)
        granted.append(sim.now)

    sim.process(reader(t1))
    sim.process(reader(t2))
    sim.run()
    assert granted == [0.0, 0.0]


def test_reader_behind_queued_writer_waits():
    """No barging: an S request behind a queued X request waits."""
    sim = Simulator()
    lockmgr = LockManager(sim)
    t1, t2, t3 = _tx(1), _tx(2), _tx(3)
    order = []

    def first_reader():
        yield lockmgr.acquire(t1, 7, False)
        yield sim.timeout(1.0)
        lockmgr.release_all(t1)

    def writer():
        yield sim.timeout(0.1)
        yield lockmgr.acquire(t2, 7, True)
        order.append(("writer", sim.now))
        yield sim.timeout(1.0)
        lockmgr.release_all(t2)

    def second_reader():
        yield sim.timeout(0.2)
        yield lockmgr.acquire(t3, 7, False)
        order.append(("reader", sim.now))

    sim.process(first_reader())
    sim.process(writer())
    sim.process(second_reader())
    sim.run()
    assert order == [("writer", pytest.approx(1.0)), ("reader", pytest.approx(2.0))]


def test_reentrant_grant():
    sim = Simulator()
    lockmgr = LockManager(sim)
    t1 = _tx(1)
    done = []

    def proc():
        yield lockmgr.acquire(t1, 7, True)
        yield lockmgr.acquire(t1, 7, True)  # re-entrant
        yield lockmgr.acquire(t1, 7, False)  # weaker mode, still held
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [0.0]


def test_upgrade_waits_for_other_readers():
    sim = Simulator()
    lockmgr = LockManager(sim)
    t1, t2 = _tx(1), _tx(2)
    upgraded = []

    def upgrader():
        yield lockmgr.acquire(t1, 7, False)
        yield sim.timeout(0.1)
        yield lockmgr.acquire(t1, 7, True)  # upgrade S -> X
        upgraded.append(sim.now)

    def other_reader():
        yield lockmgr.acquire(t2, 7, False)
        yield sim.timeout(1.0)
        lockmgr.release_all(t2)

    sim.process(upgrader())
    sim.process(other_reader())
    sim.run()
    assert upgraded == [pytest.approx(1.0)]
    assert lockmgr.holders_of(7) == {1: True}


def test_deadlock_detected_and_requester_aborted():
    sim = Simulator()
    lockmgr = LockManager(sim)
    t1, t2 = _tx(1), _tx(2)
    failures = []

    def proc_a():
        yield lockmgr.acquire(t1, 1, True)
        yield sim.timeout(0.1)
        yield lockmgr.acquire(t1, 2, True)  # blocks on t2
        lockmgr.release_all(t1)

    def proc_b():
        yield lockmgr.acquire(t2, 2, True)
        yield sim.timeout(0.2)
        try:
            yield lockmgr.acquire(t2, 1, True)  # would close the cycle
        except DeadlockError:
            failures.append(sim.now)
            lockmgr.abort(t2)

    sim.process(proc_a())
    sim.process(proc_b())
    sim.run()
    assert failures == [pytest.approx(0.2)]
    assert lockmgr.deadlocks == 1
    # after t2 aborted, t1 got item 2 and finished; everything released
    assert lockmgr.holders_of(1) == {}
    assert lockmgr.holders_of(2) == {}


def test_priority_policy_reorders_waiters():
    sim = Simulator()
    lockmgr = LockManager(sim, policy=LockSchedulingPolicy.PRIORITY)
    holder = _tx(1)
    low = _tx(2, Priority.LOW)
    high = _tx(3, Priority.HIGH)
    order = []

    def holding():
        yield lockmgr.acquire(holder, 7, True)
        yield sim.timeout(1.0)
        lockmgr.release_all(holder)

    def wait(tx, name, delay):
        yield sim.timeout(delay)
        yield lockmgr.acquire(tx, 7, True)
        order.append(name)
        lockmgr.release_all(tx)

    sim.process(holding())
    sim.process(wait(low, "low", 0.1))  # queues first
    sim.process(wait(high, "high", 0.2))  # queues second but jumps ahead
    sim.run()
    assert order == ["high", "low"]


def test_fifo_policy_keeps_arrival_order():
    sim = Simulator()
    lockmgr = LockManager(sim, policy=LockSchedulingPolicy.FIFO)
    holder = _tx(1)
    low = _tx(2, Priority.LOW)
    high = _tx(3, Priority.HIGH)
    order = []

    def holding():
        yield lockmgr.acquire(holder, 7, True)
        yield sim.timeout(1.0)
        lockmgr.release_all(holder)

    def wait(tx, name, delay):
        yield sim.timeout(delay)
        yield lockmgr.acquire(tx, 7, True)
        order.append(name)
        lockmgr.release_all(tx)

    sim.process(holding())
    sim.process(wait(low, "low", 0.1))
    sim.process(wait(high, "high", 0.2))
    sim.run()
    assert order == ["low", "high"]


def test_pow_preempts_blocked_low_priority_holder():
    """POW: a low-priority holder that is itself waiting gets evicted."""
    sim = Simulator()
    preempted = []

    def preempt(tx):
        preempted.append(tx.tid)
        lockmgr.abort(tx)

    lockmgr = LockManager(sim, policy=LockSchedulingPolicy.POW, preempt=preempt)
    blocker = _tx(1, Priority.LOW)
    victim = _tx(2, Priority.LOW)
    vip = _tx(3, Priority.HIGH)
    got = []

    def blocker_proc():
        yield lockmgr.acquire(blocker, 100, True)
        yield sim.timeout(10.0)
        lockmgr.release_all(blocker)

    def victim_proc():
        yield lockmgr.acquire(victim, 7, True)  # holds what vip wants
        yield sim.timeout(0.1)
        yield lockmgr.acquire(victim, 100, True)  # blocks behind blocker

    def vip_proc():
        yield sim.timeout(0.2)
        yield lockmgr.acquire(vip, 7, True)
        got.append(sim.now)

    sim.process(blocker_proc())
    sim.process(victim_proc())
    sim.process(vip_proc())
    sim.run()
    assert preempted == [2]
    assert lockmgr.preemptions == 1
    # vip obtained the lock right after the preemption, not after 10s
    assert got and got[0] < 1.0


def test_pow_does_not_preempt_running_holder():
    """POW only evicts holders that are blocked at another queue."""
    sim = Simulator()
    preempted = []

    def preempt(tx):
        preempted.append(tx.tid)
        lockmgr.abort(tx)

    lockmgr = LockManager(sim, policy=LockSchedulingPolicy.POW, preempt=preempt)
    holder = _tx(1, Priority.LOW)
    vip = _tx(2, Priority.HIGH)
    got = []

    def holder_proc():
        yield lockmgr.acquire(holder, 7, True)
        yield sim.timeout(2.0)  # running, not lock-blocked
        lockmgr.release_all(holder)

    def vip_proc():
        yield sim.timeout(0.1)
        yield lockmgr.acquire(vip, 7, True)
        got.append(sim.now)

    sim.process(holder_proc())
    sim.process(vip_proc())
    sim.run()
    assert preempted == []
    assert got == [pytest.approx(2.0)]


def test_pow_requires_preempt_callback():
    sim = Simulator()
    with pytest.raises(ValueError):
        LockManager(sim, policy=LockSchedulingPolicy.POW)


def test_cancel_waits_removes_queued_request():
    sim = Simulator()
    lockmgr = LockManager(sim)
    t1, t2 = _tx(1), _tx(2)

    def holder():
        yield lockmgr.acquire(t1, 7, True)
        yield sim.timeout(1.0)
        lockmgr.release_all(t1)

    def waiter():
        yield sim.timeout(0.1)
        lockmgr.acquire(t2, 7, True)  # not yielded: stays queued
        yield sim.timeout(0.1)
        lockmgr.cancel_waits(t2)

    sim.process(holder())
    sim.process(waiter())
    sim.run()
    assert lockmgr.queue_length(7) == 0
    assert not lockmgr.is_waiting(t2)


def test_release_all_wakes_next_in_line():
    sim = Simulator()
    lockmgr = LockManager(sim)
    t1, t2, t3 = _tx(1), _tx(2), _tx(3)
    order = []

    def chain(tx, name, delay):
        yield sim.timeout(delay)
        yield lockmgr.acquire(tx, 7, True)
        order.append(name)
        yield sim.timeout(0.5)
        lockmgr.release_all(tx)

    sim.process(chain(t1, "a", 0.0))
    sim.process(chain(t2, "b", 0.1))
    sim.process(chain(t3, "c", 0.2))
    sim.run()
    assert order == ["a", "b", "c"]
    assert lockmgr.total_waiting == 0


def test_wait_statistics_accumulate():
    sim = Simulator()
    lockmgr = LockManager(sim)
    t1, t2 = _tx(1), _tx(2)

    def holder():
        yield lockmgr.acquire(t1, 7, True)
        yield sim.timeout(3.0)
        lockmgr.release_all(t1)

    def waiter():
        yield sim.timeout(1.0)
        yield lockmgr.acquire(t2, 7, True)
        lockmgr.release_all(t2)

    sim.process(holder())
    sim.process(waiter())
    sim.run()
    assert lockmgr.lock_waits == 1
    assert lockmgr.total_wait_time == pytest.approx(2.0)


def test_lock_mode_constants():
    assert LockMode.SHARED is False
    assert LockMode.EXCLUSIVE is True
