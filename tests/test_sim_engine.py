"""Tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(2.5)
    sim.run()
    assert sim.now == 2.5


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_run_until_stops_early():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run(until=3.0)
    assert sim.now == 3.0


def test_run_until_in_past_rejected():
    sim = Simulator()
    sim.timeout(1.0)
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=0.5)


def test_process_receives_timeout_value():
    sim = Simulator()
    seen = []

    def proc():
        value = yield sim.timeout(1.0, value="hello")
        seen.append(value)

    sim.process(proc())
    sim.run()
    assert seen == ["hello"]


def test_process_return_value_becomes_event_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        return 42

    process = sim.process(proc())
    sim.run()
    assert process.value == 42
    assert process.processed


def test_processes_wait_on_each_other():
    sim = Simulator()

    def inner():
        yield sim.timeout(2.0)
        return "inner-done"

    def outer():
        result = yield sim.process(inner())
        return result + "!"

    process = sim.process(outer())
    sim.run()
    assert process.value == "inner-done!"
    assert sim.now == 2.0


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    order = []

    def make(name):
        def proc():
            yield sim.timeout(1.0)
            order.append(name)

        return proc

    for name in "abc":
        sim.process(make(name)())
    sim.run()
    assert order == ["a", "b", "c"]


def test_event_succeed_twice_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()


def test_event_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.event().fail("not an exception")  # type: ignore[arg-type]


def test_failed_event_raises_inside_process():
    sim = Simulator()
    caught = []

    def proc():
        event = sim.event()
        event.fail(ValueError("boom"))
        try:
            yield event
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(proc())
    sim.run()
    assert caught == ["boom"]


def test_exception_escaping_process_propagates_in_strict_mode():
    sim = Simulator(strict=True)

    def proc():
        yield sim.timeout(1.0)
        raise RuntimeError("bug in process")

    sim.process(proc())
    with pytest.raises(RuntimeError):
        sim.run()


def test_exception_fails_process_event_in_lenient_mode():
    sim = Simulator(strict=False)

    def proc():
        yield sim.timeout(1.0)
        raise RuntimeError("bug")

    process = sim.process(proc())
    sim.run()
    assert not process.ok
    assert isinstance(process.value, RuntimeError)


def test_interrupt_is_raised_in_target():
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            log.append(("interrupted", sim.now, interrupt.cause))

    def attacker(target):
        yield sim.timeout(1.0)
        target.interrupt("because")

    target = sim.process(victim())
    sim.process(attacker(target))
    sim.run()
    assert log == [("interrupted", 1.0, "because")]


def test_interrupting_finished_process_rejected():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)

    process = sim.process(proc())
    sim.run()
    with pytest.raises(SimulationError):
        process.interrupt()


def test_any_of_fires_on_first():
    sim = Simulator()
    results = []

    def proc():
        first = sim.timeout(5.0, value="slow")
        second = sim.timeout(1.0, value="fast")
        fired = yield sim.any_of([first, second])
        results.append(list(fired.values()))

    sim.process(proc())
    sim.run()
    assert results == [["fast"]]


def test_all_of_waits_for_every_event():
    sim = Simulator()
    results = []

    def proc():
        events = [sim.timeout(t, value=t) for t in (1.0, 3.0, 2.0)]
        fired = yield sim.all_of(events)
        results.append(sorted(fired.values()))

    sim.process(proc())
    sim.run()
    assert results == [[1.0, 2.0, 3.0]]
    assert sim.now == 3.0


def test_empty_any_of_and_all_of_fire_immediately():
    sim = Simulator()
    any_event = AnyOf(sim, [])
    all_event = AllOf(sim, [])
    sim.run()
    assert any_event.processed and all_event.processed


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def proc():
        yield 42  # type: ignore[misc]

    sim.process(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(4.0)
    assert sim.peek() == 4.0


def test_step_on_empty_agenda_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_run_with_stop_event():
    sim = Simulator()

    def proc():
        yield sim.timeout(2.0)
        return "stopped"

    process = sim.process(proc())
    sim.timeout(100.0)
    value = sim.run(stop=process)
    assert value == "stopped"
    assert sim.now == 2.0


def test_callback_after_processed_runs_immediately():
    sim = Simulator()
    event = sim.timeout(1.0, value="x")
    sim.run()
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    assert seen == ["x"]


def test_many_callbacks_fire_in_registration_order():
    """The single-callback slot plus overflow list must preserve order."""
    sim = Simulator()
    event = sim.timeout(1.0)
    order = []
    for name in "abcd":
        event.add_callback(lambda e, name=name: order.append(name))
    sim.run()
    assert order == list("abcd")


def test_remove_callback_promotes_overflow_head():
    sim = Simulator()
    event = sim.timeout(1.0)
    order = []
    first = lambda e: order.append("first")  # noqa: E731
    event.add_callback(first)
    event.add_callback(lambda e: order.append("second"))
    event.add_callback(lambda e: order.append("third"))
    event.remove_callback(first)
    sim.run()
    assert order == ["second", "third"]


def test_remove_callback_after_processed_is_noop():
    sim = Simulator()
    event = sim.timeout(1.0)
    callback = lambda e: None  # noqa: E731
    event.add_callback(callback)
    sim.run()
    event.remove_callback(callback)  # must not raise


def test_timeouts_are_recycled_when_unreferenced():
    """The free list must engage on the yield-a-timeout hot path."""
    sim = Simulator()

    def proc():
        for _ in range(200):
            yield sim.timeout(0.001)

    sim.process(proc())
    sim.run()
    assert sim.timeout_reuses > 0


def test_referenced_timeouts_are_never_recycled():
    """Events user code still holds must keep their identity and state."""
    sim = Simulator()
    held = [sim.timeout(0.5, value=i) for i in range(5)]

    def churn():
        for _ in range(300):
            yield sim.timeout(0.01)

    sim.process(churn())
    sim.run()
    # the held events fired exactly once and kept their values
    assert [event.value for event in held] == list(range(5))
    assert all(event.processed for event in held)
    assert len(set(map(id, held))) == 5


def test_recycled_timeout_behaves_like_fresh():
    sim = Simulator()
    seen = []

    def proc():
        value = yield sim.timeout(1.0, value="first")
        seen.append(value)
        value = yield sim.timeout(1.0, value="second")
        seen.append(value)

    sim.process(proc())
    sim.run()
    assert seen == ["first", "second"]
    assert sim.now == 2.0


def test_interrupt_then_timer_fire_does_not_resume_twice():
    """A detached wait's original timer must not resume the process."""
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(5.0)
            log.append("timer")
        except Interrupt:
            log.append("interrupted")
            yield sim.timeout(100.0)
            log.append("after")

    def attacker(target):
        yield sim.timeout(1.0)
        target.interrupt()

    target = sim.process(victim())
    sim.process(attacker(target))
    sim.run()
    assert log == ["interrupted", "after"]
