"""Tests for the model-jump-started MPL tuner."""


from repro.core.controller import Thresholds
from repro.core.system import SystemConfig
from repro.core.tuner import (
    MplTuner,
    model_initial_mpl_response_time,
    model_initial_mpl_throughput,
)
from repro.dbms.config import HardwareConfig
from repro.workloads.setups import get_setup
from repro.workloads.synthetic import synthetic_workload


class TestModelJumpStarts:
    def test_throughput_start_grows_with_resources(self):
        few = model_initial_mpl_throughput({"disk": 0.9}, {"disk": 1}, 0.05)
        many = model_initial_mpl_throughput({"disk": 0.9}, {"disk": 4}, 0.05)
        assert many > few

    def test_throughput_start_single_resource_is_one(self):
        assert model_initial_mpl_throughput({"cpu": 0.99}, {"cpu": 1}, 0.05) == 1

    def test_response_time_start_grows_with_scv(self):
        low = model_initial_mpl_response_time(0.7, 2.0, 0.10)
        high = model_initial_mpl_response_time(0.7, 15.0, 0.10)
        assert high > low

    def test_response_time_start_grows_with_load(self):
        relaxed = model_initial_mpl_response_time(0.7, 15.0, 0.10)
        loaded = model_initial_mpl_response_time(0.9, 15.0, 0.10)
        assert loaded >= relaxed


class TestTuner:
    def _config(self):
        return SystemConfig(
            workload=synthetic_workload("s", demand_mean_ms=5.0, scv=1.0),
            hardware=HardwareConfig(num_cpus=1, num_disks=1, memory_mb=3072,
                                    bufferpool_mb=1024),
            num_clients=30,
            seed=5,
        )

    def test_tune_produces_feasible_low_mpl(self):
        tuner = MplTuner(self._config(), baseline_transactions=1200, window=150)
        result = tuner.tune()
        assert result.final_mpl >= 1
        assert result.final_mpl < 30  # far below the client count
        assert result.baseline.throughput > 0
        assert result.initial_mpl == max(
            result.model_mpl_throughput, result.model_mpl_response_time
        )

    def test_tuning_a_paper_setup_converges_quickly(self):
        from repro.experiments.runner import tune_setup

        tuning = tune_setup(get_setup(1), transactions=800)
        assert tuning.report.converged
        assert tuning.report.iterations <= 12
        assert 1 <= tuning.final_mpl <= 20

    def test_thresholds_respected_in_report(self):
        tuner = MplTuner(
            self._config(),
            thresholds=Thresholds(max_throughput_loss=0.20),
            baseline_transactions=800,
            window=120,
        )
        result = tuner.tune()
        final_obs = [o for o in result.report.trajectory
                     if o.mpl == result.final_mpl]
        assert final_obs and final_obs[-1].feasible
