"""Tests for hardware and policy configuration."""

import pytest

from repro.dbms.config import (
    HardwareConfig,
    InternalPolicy,
    IsolationLevel,
    LockSchedulingPolicy,
)
from repro.dbms.transaction import Priority


class TestHardwareConfig:
    def test_defaults_valid(self):
        hardware = HardwareConfig()
        assert hardware.num_cpus == 1
        assert hardware.cache_pages > 0

    def test_cache_scales_with_memory(self):
        small = HardwareConfig(memory_mb=512, bufferpool_mb=100)
        large = HardwareConfig(memory_mb=3072, bufferpool_mb=100)
        assert large.cache_pages > 4 * small.cache_pages

    def test_bufferpool_floor(self):
        # when memory is tiny the buffer pool still counts
        config = HardwareConfig(memory_mb=300, bufferpool_mb=1024)
        floor = int(0.75 * 1024 * 1024) // 4
        assert config.cache_pages == floor

    def test_with_hardware_copies(self):
        base = HardwareConfig(num_cpus=1, num_disks=1)
        varied = base.with_hardware(num_cpus=2, num_disks=4)
        assert (varied.num_cpus, varied.num_disks) == (2, 4)
        assert base.num_cpus == 1  # frozen original untouched
        assert varied.memory_mb == base.memory_mb

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_cpus": 0},
            {"num_disks": 0},
            {"memory_mb": 0},
            {"cpu_speed": 0.0},
            {"disk_service_mean_ms": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            HardwareConfig(**kwargs)


class TestInternalPolicy:
    def test_stock_has_no_prioritization(self):
        policy = InternalPolicy.stock()
        assert policy.lock_scheduling is LockSchedulingPolicy.FIFO
        assert policy.cpu_weight(Priority.HIGH) == 1.0
        assert policy.cpu_weight(Priority.LOW) == 1.0

    def test_pow_policy(self):
        assert InternalPolicy.pow_locks().lock_scheduling is LockSchedulingPolicy.POW

    def test_cpu_priorities_weights(self):
        policy = InternalPolicy.cpu_priorities(high_weight=20.0, low_weight=1.0)
        assert policy.cpu_weight(Priority.HIGH) == 20.0
        assert policy.cpu_weight(Priority.LOW) == 1.0
        # unknown classes default to weight 1
        assert policy.cpu_weight(42) == 1.0


class TestIsolationLevel:
    def test_members(self):
        assert IsolationLevel.RR.value == "RR"
        assert IsolationLevel.UR.value == "UR"
