"""The scenario fuzzer: walker determinism, oracles, shrinker, corpus.

The fuzzer is itself part of the reproduction's safety net, so it gets
the same treatment as the simulator: the walk must be a pure function
of its seed, every spec it emits must survive ``validate()`` and the
codec, the shrinker must converge on strictly-smaller reproducers, and
the checked-in corpus must replay green from any working directory.
"""

import json
import os

import pytest

from repro.core.faults import FaultSpec, KillShard, RestoreShard
from repro.core.resilience import ResilienceSpec
from repro.core.scenario import (
    MeasurementSpec,
    ScenarioSpec,
    ScenarioValidationError,
    StaticMpl,
    TopologySpec,
    WorkloadRef,
)
from repro.experiments import fuzz
from repro.experiments.fuzz import (
    ORACLES,
    OracleFailure,
    ScenarioWalker,
    check_scenario,
    fault_timeline_is_safe,
    replay_corpus,
    run_fuzz,
    shrink_scenario,
    write_reproducer,
)

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "data", "fuzz_corpus")


class TestWalkerDeterminism:
    def test_same_seed_same_fingerprint_sequence(self):
        first = [s.fingerprint() for s in ScenarioWalker(seed=7).specs(30)]
        second = [s.fingerprint() for s in ScenarioWalker(seed=7).specs(30)]
        assert first == second

    def test_different_seeds_diverge(self):
        first = [s.fingerprint() for s in ScenarioWalker(seed=0).specs(12)]
        second = [s.fingerprint() for s in ScenarioWalker(seed=1).specs(12)]
        assert first != second

    def test_walk_explores_rather_than_repeats(self):
        fingerprints = [
            s.fingerprint() for s in ScenarioWalker(seed=0).specs(40)
        ]
        # a mutation step can occasionally be a no-op, but the walk must
        # not get stuck in one place
        assert len(set(fingerprints)) >= 30


class TestWalkerValidity:
    def test_every_emitted_spec_validates_and_round_trips(self):
        for spec in ScenarioWalker(seed=3).specs(60):
            decoded = ScenarioSpec.validate(spec.to_json_dict())
            assert decoded.fingerprint() == spec.fingerprint()

    def test_fault_timelines_are_always_safe(self):
        for spec in ScenarioWalker(seed=5).specs(80):
            if spec.faults is None:
                continue
            assert fault_timeline_is_safe(
                spec.faults.events,
                spec.topology.shards,
                spec.topology.replicas_per_shard,
            )

    def test_walk_exercises_the_resilience_axis(self):
        resilient = [
            spec for spec in ScenarioWalker(seed=4).specs(40)
            if spec.resilience is not None
        ]
        assert len(resilient) >= 4
        # the interesting sub-mechanisms each show up in the walk
        assert any(s.resilience.max_attempts > 0 for s in resilient)
        assert any(s.resilience.breaker_enabled for s in resilient)

    def test_walk_exercises_the_distributed_axis(self):
        distributed = [
            spec for spec in ScenarioWalker(seed=4).specs(40)
            if spec.distributed is not None
        ]
        assert len(distributed) >= 4
        # reconciliation keeps the 2PC shape runnable: enough shards
        # for the fan-out, no replica groups, timeout-abort armed
        for spec in distributed:
            assert spec.topology.shards >= 2
            assert spec.topology.replicas_per_shard == 0
            assert 2 <= spec.distributed.fanout_k <= spec.topology.shards
            assert spec.distributed.abort_on_prepare_timeout
        assert any(s.distributed.fanout_k > 2 for s in distributed)

    def test_resilient_specs_respect_the_cross_field_rules(self):
        # _reconcile must deliver constructor-valid combinations: the
        # constructor itself enforces these, so reaching it with a bad
        # combo would raise inside specs()
        for spec in ScenarioWalker(seed=2).specs(60):
            if spec.resilience is None:
                continue
            assert spec.topology.replicas_per_shard == 0
            if spec.resilience.breaker_enabled:
                assert spec.topology.shards >= 2
            if spec.resilience.queue_cap is not None:
                assert spec.is_open


class TestFaultTimelineSafety:
    def test_single_survivor_is_safe(self):
        events = (KillShard(at=0.4, shard=0),)
        assert fault_timeline_is_safe(events, shards=2, replicas=0)

    def test_killing_every_shard_is_unsafe(self):
        events = (KillShard(at=0.4, shard=0), KillShard(at=0.6, shard=1))
        assert not fault_timeline_is_safe(events, shards=2, replicas=0)

    def test_restore_revives_a_shard_for_later_kills(self):
        events = (
            KillShard(at=0.4, shard=0),
            RestoreShard(at=0.8, shard=0),
            KillShard(at=1.0, shard=1),
        )
        assert fault_timeline_is_safe(events, shards=2, replicas=0)

    def test_order_is_by_time_not_tuple_position(self):
        # same events, shuffled: the restore at 0.8 still precedes the
        # kill at 1.0, so the timeline stays safe
        events = (
            KillShard(at=1.0, shard=1),
            RestoreShard(at=0.8, shard=0),
            KillShard(at=0.4, shard=0),
        )
        assert fault_timeline_is_safe(events, shards=2, replicas=0)

    def test_replicas_do_not_relax_the_model(self):
        events = (KillShard(at=0.4, shard=0), KillShard(at=0.6, shard=1))
        assert not fault_timeline_is_safe(events, shards=2, replicas=2)


class TestOracles:
    def test_clean_scenario_passes_every_oracle(self):
        spec = ScenarioSpec(
            topology=TopologySpec(shards=2),
            control=StaticMpl(mpl=6),
            measurement=MeasurementSpec(transactions=40),
            arrival_rate=50.0,
            seed=3,
        )
        assert check_scenario(spec, check_jobs=True) is None

    def test_oracle_names_are_the_report_vocabulary(self):
        assert set(ORACLES) == {
            "codec-roundtrip",
            "validate-accepts",
            "conservation",
            "mpl-sanity",
            "disposition",
            "atomicity",
            "replay",
            "jobs-invariance",
        }

    def test_resilient_scenario_passes_every_oracle(self):
        spec = ScenarioSpec(
            topology=TopologySpec(shards=2, routing="least_in_flight"),
            control=StaticMpl(mpl=8),
            resilience=ResilienceSpec(
                deadline_s=1.0, max_attempts=1, base_backoff_s=0.01,
                jitter_fraction=0.5, queue_cap=12,
            ),
            measurement=MeasurementSpec(transactions=60),
            arrival_rate=60.0,
            seed=4,
        )
        assert check_scenario(spec, check_jobs=True) is None


class TestShrinker:
    def _rich_spec(self):
        return ScenarioSpec(
            workload=WorkloadRef(setup_id=2),
            topology=TopologySpec(
                shards=2, routing="least_in_flight", replicas_per_shard=1,
            ),
            control=StaticMpl(mpl=8),
            faults=FaultSpec(events=(
                KillShard(at=0.4, shard=0),
                RestoreShard(at=1.0, shard=0),
            )),
            measurement=MeasurementSpec(
                transactions=120,
                metrics=("standard", "percentiles", "timeline"),
            ),
            high_priority_fraction=0.2,
            arrival_rate=60.0,
            seed=9,
        )

    def test_shrink_converges_to_a_simpler_failing_spec(self, monkeypatch):
        def toy_oracle(ctx):
            raise OracleFailure("toy: fails on every spec")

        # register as a structural oracle so shrinking never has to
        # execute candidate scenarios
        monkeypatch.setitem(fuzz.ORACLES, "toy", toy_oracle)
        monkeypatch.setattr(fuzz, "_STRUCTURAL", fuzz._STRUCTURAL + ("toy",))

        spec = self._rich_spec()
        minimized = shrink_scenario(spec, "toy", max_rounds=30)
        verdict = check_scenario(minimized)
        assert verdict is not None and verdict[0] == "toy"
        assert minimized.faults is None
        assert minimized.topology.replicas_per_shard == 0
        assert minimized.measurement.transactions <= 30
        assert minimized.measurement.metrics == ("standard",)
        assert minimized.high_priority_fraction == 0.0

    def test_shrink_preserves_the_failing_property(self, monkeypatch):
        def needs_faults(ctx):
            if ctx.spec.faults is not None:
                raise OracleFailure("faulted specs are (pretend-)broken")

        monkeypatch.setitem(fuzz.ORACLES, "toy", needs_faults)
        monkeypatch.setattr(fuzz, "_STRUCTURAL", fuzz._STRUCTURAL + ("toy",))

        minimized = shrink_scenario(self._rich_spec(), "toy", max_rounds=30)
        # everything else shrinks, but the faults axis must survive —
        # dropping it would make the failure vanish
        assert minimized.faults is not None
        assert minimized.topology.shards >= 2

    def test_shrink_simplifies_the_resilience_axis(self, monkeypatch):
        def toy_oracle(ctx):
            raise OracleFailure("toy: fails on every spec")

        monkeypatch.setitem(fuzz.ORACLES, "toy", toy_oracle)
        monkeypatch.setattr(fuzz, "_STRUCTURAL", fuzz._STRUCTURAL + ("toy",))

        spec = ScenarioSpec(
            topology=TopologySpec(shards=2, routing="least_in_flight"),
            control=StaticMpl(mpl=8),
            resilience=ResilienceSpec(
                deadline_s=1.0, high_deadline_s=3.0, max_attempts=2,
                base_backoff_s=0.05, jitter_fraction=0.5, queue_cap=8,
                breaker_enabled=True,
            ),
            measurement=MeasurementSpec(transactions=100),
            arrival_rate=60.0,
            seed=6,
        )
        minimized = shrink_scenario(spec, "toy", max_rounds=30)
        # the whole axis is droppable for an axis-independent failure
        assert minimized.resilience is None

    def test_shrink_keeps_resilience_when_the_failure_needs_it(
        self, monkeypatch
    ):
        def needs_resilience(ctx):
            if ctx.spec.resilience is not None:
                raise OracleFailure("resilient specs are (pretend-)broken")

        monkeypatch.setitem(fuzz.ORACLES, "toy", needs_resilience)
        monkeypatch.setattr(fuzz, "_STRUCTURAL", fuzz._STRUCTURAL + ("toy",))

        spec = ScenarioSpec(
            topology=TopologySpec(shards=2, routing="least_in_flight"),
            control=StaticMpl(mpl=8),
            resilience=ResilienceSpec(
                deadline_s=1.0, high_deadline_s=3.0, max_attempts=2,
                base_backoff_s=0.05, jitter_fraction=0.5, queue_cap=8,
                breaker_enabled=True,
            ),
            measurement=MeasurementSpec(transactions=100),
            arrival_rate=60.0,
            seed=6,
        )
        minimized = shrink_scenario(spec, "toy", max_rounds=30)
        assert minimized.resilience is not None
        # ...but the knobs the failure does not need are simplified away
        assert not minimized.resilience.breaker_enabled
        assert minimized.resilience.queue_cap is None
        assert minimized.resilience.max_attempts == 0
        assert minimized.resilience.jitter_fraction == 0.0
        assert minimized.resilience.high_deadline_s is None


class TestCorpus:
    def test_checked_in_corpus_replays_green(self):
        failures = replay_corpus(CORPUS_DIR)
        assert failures == []

    def test_corpus_has_the_contracted_minimum(self):
        entries = [
            name for name in os.listdir(CORPUS_DIR) if name.endswith(".json")
        ]
        assert len(entries) >= 3

    def test_reproducer_round_trip(self, tmp_path):
        spec = ScenarioSpec(
            topology=TopologySpec(shards=2),
            measurement=MeasurementSpec(transactions=40),
            arrival_rate=45.0,
            seed=4,
        )
        path = write_reproducer(
            str(tmp_path), spec, "conservation", "exemplar", seed=0,
            iteration=1,
        )
        payload = json.loads(open(path, encoding="utf-8").read())
        assert payload["format"] == fuzz.CORPUS_FORMAT
        assert payload["fingerprint"] == spec.fingerprint()
        assert replay_corpus(str(tmp_path)) == []

    def test_replay_flags_entries_the_validator_now_accepts(self, tmp_path):
        # an expect=validation_error entry that validate() accepts is a
        # regression: the guard it pinned has been lost
        payload = {
            "format": fuzz.CORPUS_FORMAT,
            "expect": "validation_error",
            "oracle": "validate-accepts",
            "spec": ScenarioSpec().to_json_dict(),
        }
        target = tmp_path / "repro-bogus.json"
        target.write_text(json.dumps(payload))
        failures = replay_corpus(str(tmp_path))
        assert len(failures) == 1
        assert "accepted" in failures[0]


class TestCampaign:
    def test_small_campaign_is_deterministic_and_green(self):
        first = run_fuzz(seed=11, iterations=6, check_jobs_every=3)
        second = run_fuzz(seed=11, iterations=6, check_jobs_every=3)
        assert first.ok
        assert first.jobs_checked == 2
        assert first.fingerprints == second.fingerprints
        assert len(first.fingerprints) == 6

    def test_report_serializes(self):
        report = run_fuzz(seed=2, iterations=2, check_jobs_every=0)
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["fuzzer"] == "scenario-walk"
        assert payload["iterations"] == 2
        assert payload["failures"] == []

    def test_failures_produce_minimized_reproducers(self, tmp_path,
                                                    monkeypatch):
        def toy_oracle(ctx):
            raise OracleFailure("every spec is (pretend-)broken")

        monkeypatch.setitem(fuzz.ORACLES, "toy", toy_oracle)
        monkeypatch.setattr(fuzz, "_STRUCTURAL", fuzz._STRUCTURAL + ("toy",))

        report = run_fuzz(
            seed=0, iterations=2, check_jobs_every=0,
            corpus_dir=str(tmp_path),
        )
        assert not report.ok
        failure = report.failures[0]
        assert failure.oracle == "toy"
        assert failure.minimized is not None
        assert failure.reproducer_path is not None
        written = json.loads(
            open(failure.reproducer_path, encoding="utf-8").read()
        )
        assert written["oracle"] == "toy"
        decoded = ScenarioSpec.validate(written["spec"])
        assert decoded.fingerprint() == failure.minimized.fingerprint()


class TestCli:
    def test_fuzz_cli_green_run(self, tmp_path, capsys):
        from repro.experiments.__main__ import fuzz_main

        code = fuzz_main([
            "--seed", "3", "--iterations", "2", "--check-jobs-every", "0",
            "--corpus-dir", str(tmp_path),
            "--output", str(tmp_path / "report.json"),
        ])
        assert code == 0
        report = json.loads((tmp_path / "report.json").read_text())
        assert report["iterations"] == 2
        assert report["failures"] == []

    def test_fuzz_cli_replay_mode(self, capsys):
        from repro.experiments.__main__ import fuzz_main

        assert fuzz_main(["--replay", "--corpus-dir", CORPUS_DIR,
                          "--check-jobs-every", "0"]) == 0

    def test_fuzz_cli_rejects_bad_iterations(self, capsys):
        from repro.experiments.__main__ import fuzz_main

        assert fuzz_main(["--iterations", "0"]) == 2


class TestValidationRejectsFuzzedEdgeCases:
    """The bugs this fuzzer flushed out stay fixed at the spec layer."""

    def test_nan_routing_weight_is_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            TopologySpec(
                shards=2, routing="weighted",
                routing_weights=(float("nan"), 1.0),
            )

    def test_validate_payload_with_nan_weight_is_rejected(self):
        payload = ScenarioSpec(
            topology=TopologySpec(shards=2)
        ).to_json_dict()
        payload["topology"]["routing"] = "weighted"
        payload["topology"]["routing_weights"] = [float("nan"), 1.0]
        with pytest.raises(ScenarioValidationError):
            ScenarioSpec.validate(payload)

    def test_non_finite_fault_time_is_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            KillShard(at=float("nan"), shard=0)
        with pytest.raises(ValueError, match="finite"):
            KillShard(at=float("inf"), shard=0)
