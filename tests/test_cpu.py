"""Tests for the weighted processor-sharing CPU pool."""

import pytest

from repro.dbms.cpu import ProcessorSharingPool
from repro.sim.engine import Simulator


def _finish_time(sim, event):
    done = {}
    event.add_callback(lambda e: done.setdefault("t", sim.now))
    return done


def test_single_job_runs_at_full_speed():
    sim = Simulator()
    cpu = ProcessorSharingPool(sim, cores=1)
    record = _finish_time(sim, cpu.execute(2.0))
    sim.run()
    assert record["t"] == pytest.approx(2.0)


def test_two_equal_jobs_share_one_core():
    sim = Simulator()
    cpu = ProcessorSharingPool(sim, cores=1)
    first = _finish_time(sim, cpu.execute(1.0))
    second = _finish_time(sim, cpu.execute(1.0))
    sim.run()
    # both progress at rate 1/2, finishing together at t=2
    assert first["t"] == pytest.approx(2.0)
    assert second["t"] == pytest.approx(2.0)


def test_two_jobs_on_two_cores_run_independently():
    sim = Simulator()
    cpu = ProcessorSharingPool(sim, cores=2)
    first = _finish_time(sim, cpu.execute(1.0))
    second = _finish_time(sim, cpu.execute(3.0))
    sim.run()
    assert first["t"] == pytest.approx(1.0)
    assert second["t"] == pytest.approx(3.0)


def test_single_job_cannot_use_two_cores():
    sim = Simulator()
    cpu = ProcessorSharingPool(sim, cores=2)
    record = _finish_time(sim, cpu.execute(2.0))
    sim.run()
    assert record["t"] == pytest.approx(2.0)  # capped at one core


def test_three_jobs_two_cores_processor_sharing():
    sim = Simulator()
    cpu = ProcessorSharingPool(sim, cores=2)
    records = [_finish_time(sim, cpu.execute(1.0)) for _ in range(3)]
    sim.run()
    # each runs at 2/3 until the pool drains; equal demands finish together
    for record in records:
        assert record["t"] == pytest.approx(1.5)


def test_late_arrival_slows_running_job():
    sim = Simulator()
    cpu = ProcessorSharingPool(sim, cores=1)
    first = _finish_time(sim, cpu.execute(2.0))

    def late():
        yield sim.timeout(1.0)
        second = cpu.execute(1.0)
        record = _finish_time(sim, second)
        return record

    process = sim.process(late())
    sim.run()
    # first runs alone [0,1) (1 unit done), shares [1,3) (rate 1/2):
    # finishes at 3.  The late 1-unit job also finishes at 3.
    assert first["t"] == pytest.approx(3.0)
    assert process.value["t"] == pytest.approx(3.0)


def test_weighted_sharing_ratio():
    sim = Simulator()
    cpu = ProcessorSharingPool(sim, cores=1)
    heavy = _finish_time(sim, cpu.execute(3.0, weight=3.0))
    light = _finish_time(sim, cpu.execute(1.0, weight=1.0))
    sim.run()
    # rates 3/4 and 1/4; both need time 4 for their demand
    assert heavy["t"] == pytest.approx(4.0)
    assert light["t"] == pytest.approx(4.0)


def test_weight_cap_at_one_core():
    sim = Simulator()
    cpu = ProcessorSharingPool(sim, cores=2)
    # huge weight still limited to one core
    vip = _finish_time(sim, cpu.execute(1.0, weight=100.0))
    other = _finish_time(sim, cpu.execute(1.0, weight=1.0))
    sim.run()
    assert vip["t"] == pytest.approx(1.0)
    assert other["t"] == pytest.approx(1.0)  # spare core serves it fully


def test_zero_demand_completes_immediately():
    sim = Simulator()
    cpu = ProcessorSharingPool(sim, cores=1)
    event = cpu.execute(0.0)
    assert event.triggered


def test_busy_core_time_tracks_work():
    sim = Simulator()
    cpu = ProcessorSharingPool(sim, cores=1)
    cpu.execute(2.0)
    sim.run()
    assert cpu.busy_core_time == pytest.approx(2.0)
    assert cpu.utilization(4.0) == pytest.approx(0.5)


def test_work_completed_accumulates():
    sim = Simulator()
    cpu = ProcessorSharingPool(sim, cores=1)
    cpu.execute(1.5)
    cpu.execute(0.5)
    sim.run()
    assert cpu.work_completed == pytest.approx(2.0)


def test_speed_scales_service():
    sim = Simulator()
    cpu = ProcessorSharingPool(sim, cores=1, speed=2.0)
    record = _finish_time(sim, cpu.execute(2.0))
    sim.run()
    assert record["t"] == pytest.approx(1.0)


def test_invalid_arguments():
    sim = Simulator()
    with pytest.raises(ValueError):
        ProcessorSharingPool(sim, cores=0)
    cpu = ProcessorSharingPool(sim, cores=1)
    with pytest.raises(ValueError):
        cpu.execute(-1.0)
    with pytest.raises(ValueError):
        cpu.execute(1.0, weight=0.0)


def test_active_jobs_counter():
    sim = Simulator()
    cpu = ProcessorSharingPool(sim, cores=1)
    cpu.execute(1.0)
    cpu.execute(1.0)
    assert cpu.active_jobs == 2
    sim.run()
    assert cpu.active_jobs == 0


def test_many_jobs_conservation():
    """Total work served equals total demand regardless of arrival mix."""
    sim = Simulator()
    cpu = ProcessorSharingPool(sim, cores=3)
    demands = [0.5, 1.0, 1.5, 2.0, 0.25, 0.75]

    def submit(delay, demand):
        def proc():
            yield sim.timeout(delay)
            yield cpu.execute(demand)

        sim.process(proc())

    for index, demand in enumerate(demands):
        submit(index * 0.2, demand)
    sim.run()
    assert cpu.work_completed == pytest.approx(sum(demands))
    assert cpu.busy_core_time == pytest.approx(sum(demands))
