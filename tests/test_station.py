"""Tests for the unified Station protocol and its implementations."""

import pytest

from repro.core.system import SystemConfig, run_system
from repro.dbms.config import HardwareConfig
from repro.dbms.cpu import ProcessorSharingPool
from repro.dbms.disk import Disk, DiskArray
from repro.dbms.engine import DatabaseEngine
from repro.dbms.lockmgr import LockManager
from repro.dbms.transaction import Priority, Transaction
from repro.dbms.wal import LogManager
from repro.sim.distributions import Deterministic
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.sim.station import ClassStats, DelayStation, Station
from repro.workloads.setups import get_setup


def _engine(sim=None, hardware=None, seed=1):
    sim = sim or Simulator()
    return sim, DatabaseEngine(
        sim,
        hardware or HardwareConfig(),
        db_pages=10_000,
        streams=RandomStreams(seed),
    )


class TestProtocol:
    def test_every_resource_is_a_station(self):
        sim, engine = _engine()
        for station in (engine.cpu, engine.disks, engine.log, engine.lockmgr):
            assert isinstance(station, Station)

    def test_engine_station_registry(self):
        sim, engine = _engine()
        assert set(engine.stations) == {"cpu", "disk", "log", "locks"}
        assert engine.stations["cpu"] is engine.cpu
        assert engine.stations["locks"] is engine.lockmgr

    def test_duplicate_station_rejected(self):
        sim, engine = _engine()
        with pytest.raises(ValueError):
            engine.add_station(DelayStation(sim, name="cpu"))

    def test_snapshot_reports_only_servers(self):
        """The lock table (is_server=False) stays out of snapshots,
        keeping RunResult.utilizations byte-compatible with old runs."""
        sim, engine = _engine()
        assert set(engine.utilization_snapshot(1.0)) == {"cpu", "disk", "log"}

    def test_default_acquire_release_are_immediate(self):
        sim = Simulator()
        station = DelayStation(sim)
        event = station.acquire()
        station.release()
        sim.run()
        assert event.processed

    def test_serve_unimplemented_raises(self):
        sim = Simulator()
        lockmgr = LockManager(sim)
        with pytest.raises(NotImplementedError):
            lockmgr.serve(1.0)

    def test_sampled_service_stations_reject_explicit_demand(self):
        """Disk/array/log sample their own times; a caller-provided
        demand must fail loudly instead of being silently ignored."""
        sim = Simulator()
        streams = RandomStreams(3)
        disk = Disk(sim, Deterministic(0.5), rng=None)
        array = DiskArray(sim, 2, Deterministic(0.25), rng=None)
        log = LogManager(sim, Deterministic(0.01), streams.stream("log"))
        for station in (disk, array, log):
            with pytest.raises(ValueError):
                station.serve(0.005)


class TestPerClassMetrics:
    def test_cpu_records_by_priority(self):
        sim = Simulator()
        cpu = ProcessorSharingPool(sim, cores=1)
        cpu.serve(2.0, priority=int(Priority.HIGH))
        cpu.serve(1.0, priority=int(Priority.LOW))
        sim.run()
        stats = cpu.class_stats()
        assert stats[int(Priority.HIGH)].requests == 1
        assert stats[int(Priority.HIGH)].service_time == pytest.approx(2.0)
        assert stats[int(Priority.LOW)].requests == 1
        assert cpu.requests_served == 2

    def test_disk_records_service_and_wait(self):
        sim = Simulator()
        disk = Disk(sim, Deterministic(0.5), rng=None)
        first = disk.serve(priority=0)
        second = disk.serve(priority=1)
        sim.run()
        assert first.processed and second.processed
        stats = disk.class_stats()
        assert stats[0].requests == 1
        assert stats[0].wait_time == pytest.approx(0.0)
        assert stats[1].wait_time == pytest.approx(0.5)  # queued behind first
        assert disk.busy_time == pytest.approx(1.0)

    def test_disk_array_merges_member_stats(self):
        sim = Simulator()
        array = DiskArray(sim, 2, Deterministic(0.25), rng=None)
        for _ in range(4):
            array.serve(priority=2)
        sim.run()
        assert array.requests_served == 4
        merged = array.class_stats()
        assert merged[2].requests == 4
        assert merged[2].service_time == pytest.approx(1.0)

    def test_log_records_write_service_and_wait(self):
        sim = Simulator()
        streams = RandomStreams(3)
        log = LogManager(sim, Deterministic(0.01), streams.stream("log"))
        log.serve(priority=1)  # starts the first write immediately
        log.commit()  # pends behind it, forced by the second write
        sim.run()
        stats = log.class_stats()
        assert stats[1].requests == 1
        assert stats[1].service_time == pytest.approx(0.01)
        assert stats[1].wait_time == pytest.approx(0.0)
        assert stats[0].requests == 1
        assert stats[0].wait_time == pytest.approx(0.01)

    def test_lockmgr_records_grant_waits(self):
        sim = Simulator()
        lockmgr = LockManager(sim)
        holder = Transaction(tid=1, type_name="t", cpu_demand=0, page_accesses=0,
                             lock_requests=[], priority=int(Priority.LOW))
        waiter = Transaction(tid=2, type_name="t", cpu_demand=0, page_accesses=0,
                             lock_requests=[], priority=int(Priority.HIGH))
        lockmgr.acquire(holder, item=7, exclusive=True)
        blocked = lockmgr.acquire(waiter, item=7, exclusive=True)
        sim.run()
        assert not blocked.processed

        def releaser():
            yield sim.timeout(0.3)
            lockmgr.release(holder)

        sim.process(releaser())
        sim.run()
        assert blocked.processed
        stats = lockmgr.class_stats()
        assert stats[int(Priority.LOW)].requests == 1
        assert stats[int(Priority.HIGH)].wait_time == pytest.approx(0.3)

    def test_engine_class_stats_snapshot(self):
        setup = get_setup(1)
        config = SystemConfig(
            workload=setup.workload, hardware=setup.hardware,
            isolation=setup.isolation, mpl=4, seed=2,
            high_priority_fraction=0.3, policy="priority",
        )
        from repro.core.system import SimulatedSystem

        system = SimulatedSystem(config)
        system.run_transactions(100)
        snapshot = system.engine.class_stats_snapshot()
        assert set(snapshot) == {"cpu", "disk", "log", "locks"}
        cpu_classes = snapshot["cpu"]
        assert int(Priority.LOW) in cpu_classes
        assert int(Priority.HIGH) in cpu_classes
        assert cpu_classes[int(Priority.LOW)]["requests"] > 0

    def test_class_stats_repr_and_dict(self):
        stats = ClassStats()
        stats.requests = 2
        assert stats.as_dict() == {
            "requests": 2, "service_time": 0.0, "wait_time": 0.0
        }


class TestDelayStation:
    def test_fixed_delay(self):
        sim = Simulator()
        station = DelayStation(sim, name="net")
        done = station.serve(0.25)
        sim.run()
        assert done.processed
        assert sim.now == pytest.approx(0.25)
        assert station.busy_time == pytest.approx(0.25)

    def test_sampled_delay(self):
        sim = Simulator()
        streams = RandomStreams(5)
        station = DelayStation(
            sim, delay=Deterministic(0.1), rng=streams.stream("net")
        )
        station.serve()
        sim.run()
        assert sim.now == pytest.approx(0.1)

    def test_sampling_without_rng_rejected(self):
        sim = Simulator()
        station = DelayStation(sim, delay=Deterministic(0.1))
        with pytest.raises(ValueError):
            station.serve()

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            DelayStation(sim).serve(-1.0)

    def test_infinite_server_no_queueing(self):
        sim = Simulator()
        station = DelayStation(sim)
        events = [station.serve(0.5) for _ in range(10)]
        sim.run()
        assert sim.now == pytest.approx(0.5)  # all in parallel
        assert all(e.processed for e in events)
        # Little's law view: 10 concurrent * 0.5s over 0.5s elapsed
        assert station.utilization(0.5) == pytest.approx(10.0)


class TestNetworkDelayDropIn:
    def test_engine_gains_network_station(self):
        sim, engine = _engine(hardware=HardwareConfig(network_delay_ms=5.0))
        assert engine.network is not None
        assert "network" in engine.stations
        assert "network" in engine.utilization_snapshot(1.0)

    def test_network_delay_inflates_response_time(self):
        import dataclasses

        setup = get_setup(1)
        base = SystemConfig(
            workload=setup.workload, hardware=setup.hardware,
            isolation=setup.isolation, mpl=4, seed=2,
        )
        delayed = dataclasses.replace(
            base,
            hardware=dataclasses.replace(setup.hardware, network_delay_ms=40.0),
        )
        fast = run_system(base, transactions=150)
        slow = run_system(delayed, transactions=150)
        assert slow.mean_response_time > fast.mean_response_time

    def test_network_field_omitted_from_fingerprint_at_default(self):
        hardware = HardwareConfig()
        from repro.core.system import canonical_jsonable

        encoded = canonical_jsonable(hardware)
        assert "network_delay_ms" not in encoded
        with_delay = canonical_jsonable(HardwareConfig(network_delay_ms=1.0))
        assert with_delay["network_delay_ms"] == 1.0

    def test_negative_network_delay_rejected(self):
        with pytest.raises(ValueError):
            HardwareConfig(network_delay_ms=-1.0)
