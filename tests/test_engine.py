"""Tests for the DBMS engine."""

import pytest

from repro.dbms.config import HardwareConfig, InternalPolicy, IsolationLevel
from repro.dbms.engine import DatabaseEngine
from repro.dbms.transaction import Priority, Transaction, TxStatus
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


def _engine(sim, isolation=IsolationLevel.RR, internal=None, **hardware_kwargs):
    defaults = dict(num_cpus=1, num_disks=1, memory_mb=3072, bufferpool_mb=1024)
    defaults.update(hardware_kwargs)
    hardware = HardwareConfig(**defaults)
    return DatabaseEngine(
        sim, hardware, db_pages=100_000, streams=RandomStreams(3),
        isolation=isolation, internal=internal,
    )


def _tx(tid, cpu=0.010, pages=0, locks=None, update=False, priority=Priority.LOW):
    return Transaction(
        tid=tid, type_name="t", cpu_demand=cpu, page_accesses=pages,
        lock_requests=locks or [], is_update=update, priority=priority,
    )


def test_transaction_commits():
    sim = Simulator()
    engine = _engine(sim)
    tx = _tx(1)
    process = engine.execute(tx)
    sim.run()
    assert process.value is tx
    assert tx.status is TxStatus.COMMITTED
    assert tx.completion_time is not None
    assert engine.committed == 1
    assert engine.in_flight == 0


def test_cpu_only_transaction_takes_cpu_time():
    sim = Simulator()
    engine = _engine(sim)
    tx = _tx(1, cpu=0.020)
    engine.execute(tx)
    sim.run()
    assert sim.now == pytest.approx(0.020, rel=0.01)


def test_update_transaction_forces_log():
    sim = Simulator()
    engine = _engine(sim)
    engine.execute(_tx(1, update=True))
    sim.run()
    assert engine.log.writes == 1


def test_read_only_transaction_skips_log():
    sim = Simulator()
    engine = _engine(sim)
    engine.execute(_tx(1, update=False))
    sim.run()
    assert engine.log.writes == 0


def test_locks_released_after_commit():
    sim = Simulator()
    engine = _engine(sim)
    engine.execute(_tx(1, locks=[(5, True), (9, False)]))
    sim.run()
    assert engine.lockmgr.holders_of(5) == {}
    assert engine.lockmgr.holders_of(9) == {}


def test_uncommitted_read_skips_shared_locks():
    sim = Simulator()
    engine = _engine(sim, isolation=IsolationLevel.UR)
    holds = []
    tx = _tx(1, cpu=0.010, locks=[(5, False), (9, True)])
    original_acquire = engine.lockmgr.acquire

    def spy(tx_arg, item, exclusive):
        holds.append((item, exclusive))
        return original_acquire(tx_arg, item, exclusive)

    engine.lockmgr.acquire = spy
    engine.execute(tx)
    sim.run()
    assert holds == [(9, True)]  # the shared request was elided


def test_repeatable_read_takes_all_locks():
    sim = Simulator()
    engine = _engine(sim, isolation=IsolationLevel.RR)
    holds = []
    original_acquire = engine.lockmgr.acquire

    def spy(tx_arg, item, exclusive):
        holds.append((item, exclusive))
        return original_acquire(tx_arg, item, exclusive)

    engine.lockmgr.acquire = spy
    engine.execute(_tx(1, locks=[(5, False), (9, True)]))
    sim.run()
    assert (5, False) in holds and (9, True) in holds


def test_conflicting_transactions_serialize():
    sim = Simulator()
    engine = _engine(sim)
    a = _tx(1, cpu=0.050, locks=[(5, True)])
    b = _tx(2, cpu=0.050, locks=[(5, True)])
    engine.execute(a)
    engine.execute(b)
    sim.run()
    assert engine.committed == 2
    # with full lock conflict they cannot overlap on the hot item
    assert sim.now >= 0.095


def test_deadlock_restarts_and_eventually_commits():
    sim = Simulator()
    engine = _engine(sim)
    # opposite acquisition orders with CPU work between the acquisitions
    a = _tx(1, cpu=0.050, locks=[(1, True), (2, True)])
    b = _tx(2, cpu=0.050, locks=[(2, True), (1, True)])
    engine.execute(a)
    engine.execute(b)
    sim.run()
    assert engine.committed == 2
    # at least one deadlock restart happened (orders conflict head-on)
    assert engine.restarts >= 1
    assert engine.lockmgr.holders_of(1) == {}


def test_io_bound_transaction_uses_disks():
    sim = Simulator()
    hardware = HardwareConfig(num_cpus=1, num_disks=1, memory_mb=512,
                              bufferpool_mb=100)
    engine = DatabaseEngine(
        sim, hardware, db_pages=1_500_000, streams=RandomStreams(3),
    )
    assert engine.miss_probability > 0.5
    engine.execute(_tx(1, cpu=0.001, pages=40))
    sim.run()
    assert engine.disks.requests_served > 0


def test_estimated_demand():
    sim = Simulator()
    engine = _engine(sim)
    tx = _tx(1, cpu=0.010, pages=100)
    expected = 0.010 + 100 * engine.miss_probability * engine.disk_service_mean
    assert engine.estimated_demand(tx) == pytest.approx(expected)


def test_utilization_snapshot_keys():
    sim = Simulator()
    engine = _engine(sim)
    engine.execute(_tx(1))
    sim.run()
    snapshot = engine.utilization_snapshot(sim.now)
    assert set(snapshot) == {"cpu", "disk", "log"}
    assert snapshot["cpu"] > 0.9


def test_cpu_weights_prioritize_high():
    sim = Simulator()
    engine = _engine(sim, internal=InternalPolicy.cpu_priorities(high_weight=20.0))
    high = _tx(1, cpu=0.100, priority=Priority.HIGH)
    low = _tx(2, cpu=0.100, priority=Priority.LOW)
    times = {}
    engine.execute(high).add_callback(lambda e: times.setdefault("high", sim.now))
    engine.execute(low).add_callback(lambda e: times.setdefault("low", sim.now))
    sim.run()
    assert times["high"] < times["low"]


def test_lock_schedule_spreads_locks():
    schedule = DatabaseEngine._lock_schedule(4, 8)
    assert tuple(schedule) == (0, 2, 4, 6)
    assert tuple(DatabaseEngine._lock_schedule(0, 5)) == ()
    assert tuple(DatabaseEngine._lock_schedule(3, 1)) == (0, 0, 0)
    # memoized: the same shape returns the same immutable schedule
    assert DatabaseEngine._lock_schedule(4, 8) is schedule
