"""Dual-lane parity: the compiled kernel must be bit-identical to Python.

The compiled (cffi) lane re-implements the agenda heap, the run loop's
phase-1 drain, and the PS-pool settle kernel in C.  Nothing here is
allowed to be "close": every test asserts *exact* equality — pop
order, sequence numbers, event timestamps, canonical result JSON —
because lane choice must never change results (only wall-clock).

Every C-lane test is skipped when the extension is not built, so the
suite passes unchanged on a box without a compiler.
"""

import json

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships with [dev]
    HAVE_HYPOTHESIS = False

from repro.core.scenario import execute_scenario
from repro.dbms.cpu import CProcessorSharingPool, ProcessorSharingPool, make_ps_pool
from repro.experiments.runner import scenario_for
from repro.sim import _ckernel
from repro.sim.engine import (
    CAgenda,
    SimulationError,
    Simulator,
    resolve_kernel_lane,
)
from repro.workloads.setups import get_setup

needs_c = pytest.mark.skipif(
    not _ckernel.available(), reason="compiled kernel lane is not built"
)
needs_hypothesis = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="hypothesis is not installed"
)


# -- lane resolution ----------------------------------------------------------


def test_default_lane_is_python(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    assert resolve_kernel_lane() == "py"
    assert Simulator().kernel_lane == "py"


def test_env_selects_lane(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "py")
    assert resolve_kernel_lane() == "py"


def test_explicit_lane_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "c")
    assert resolve_kernel_lane("py") == "py"


def test_unknown_lane_rejected():
    with pytest.raises(SimulationError):
        resolve_kernel_lane("fortran")


def test_auto_lane_resolves():
    lane = resolve_kernel_lane("auto")
    assert lane == ("c" if _ckernel.available() else "py")


@needs_c
def test_c_lane_simulator_uses_cagenda():
    sim = Simulator(kernel_lane="c")
    assert sim.kernel_lane == "c"
    assert isinstance(sim._agenda, CAgenda)


# -- agenda parity (property-based) -------------------------------------------

# delays are multiples of small binary fractions, so `now + delay`
# frequently lands on existing timestamps and exercises tie-breaking,
# and 0.0 exercises the same-instant FIFO on both lanes
_DELAYS = (0.0, 0.0, 0.25, 0.25, 0.5, 1.0, 1.0, 2.75)

_ops_strategy = (
    st.lists(
        st.one_of(
            st.tuples(st.just("schedule"), st.sampled_from(_DELAYS)),
            st.just("pop"),
            st.just("flush"),
        ),
        min_size=1,
        max_size=80,
    )
    if HAVE_HYPOTHESIS
    else None
)


def _replay(ops):
    """Drive both agendas through ``ops``; return both pop histories.

    Events are matched across lanes by creation index, so a history is
    a list of ``(when, sequence, event_index)`` triples — the complete
    observable order of the agenda.
    """
    sims = (Simulator(kernel_lane="py"), Simulator(kernel_lane="c"))
    agendas = tuple(sim._agenda for sim in sims)
    events = ([], [])
    indexes = ({}, {})
    histories = ([], [])
    pending = 0
    for op in ops:
        if op == "pop":
            if not pending:
                continue
            counts = []
            for lane, agenda in enumerate(agendas):
                batch = []
                counts.append(agenda.pop_batch(batch))
                histories[lane].extend(
                    (when, seq, indexes[lane][id(event)])
                    for when, seq, event in batch
                )
            assert counts[0] == counts[1]
            pending -= counts[0]
        elif op == "flush":
            for agenda in agendas:
                agenda.flush()
        else:
            _, delay = op
            for lane, (sim, agenda) in enumerate(zip(sims, agendas)):
                event = sim.event()
                indexes[lane][id(event)] = len(events[lane])
                events[lane].append(event)
                agenda.schedule(event, agenda._now + delay)
            pending += 1
    assert len(agendas[0]) == len(agendas[1])
    return histories


@needs_c
@needs_hypothesis
@settings(max_examples=80, deadline=None)
@given(ops=_ops_strategy)
def test_agenda_pop_order_parity(ops):
    """Identical schedule/pop/flush sequences → identical pop order.

    Compares the full ``(when, sequence, event)`` triples, so both the
    firing order *and* the sequence-number streams must match — the
    property the bit-identical guarantee rests on.
    """
    py_history, c_history = _replay(ops)
    assert py_history == c_history


# -- PS-pool parity -----------------------------------------------------------


def _drive_pool(lane):
    """A weighted PS workload on one lane; returns the completion log."""
    sim = Simulator(kernel_lane=lane)
    pool = make_ps_pool(sim, cores=2, speed=1.0)
    log = []
    demands = (0.5, 0.125, 2.0, 0.25, 1.0, 0.75, 0.0625, 3.0)
    weights = (1.0, 4.0, 1.0, 2.0, 1.0, 1.0, 8.0, 1.0)

    def submit(index):
        event = pool.execute(demands[index], weight=weights[index],
                             priority=index % 2)
        event.add_callback(lambda _e, i=index: log.append((i, sim.now)))

    sim.timeout(0.0).add_callback(lambda _e: [submit(i) for i in range(4)])
    sim.timeout(0.375).add_callback(lambda _e: [submit(i) for i in range(4, 8)])
    sim.run()
    return pool, log


@needs_c
def test_ps_pool_completion_parity():
    """Weighted water-fill completions match exactly across lanes."""
    py_pool, py_log = _drive_pool("py")
    c_pool, c_log = _drive_pool("c")
    assert isinstance(c_pool, CProcessorSharingPool)
    assert py_log == c_log  # same order, bit-identical times
    assert py_pool.work_completed == c_pool.work_completed
    assert py_pool.active_jobs == c_pool.active_jobs == 0


def test_py_lane_uses_python_pool():
    sim = Simulator(kernel_lane="py")
    pool = make_ps_pool(sim, cores=1)
    assert type(pool) is ProcessorSharingPool


# -- end-to-end result parity -------------------------------------------------


def _outcome_json(lane, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", lane)
    spec = scenario_for(get_setup(1), mpl=4, transactions=150, seed=7)
    outcome = execute_scenario(spec)
    return json.dumps(outcome.to_json_dict(), sort_keys=True)


@needs_c
def test_scenario_outcome_byte_identical(monkeypatch):
    """A full scenario's canonical JSON is byte-equal across lanes.

    This is the tentpole guarantee: the lane is an implementation
    detail, invisible to fingerprints, caches, and golden corpora.
    """
    assert _outcome_json("py", monkeypatch) == _outcome_json("c", monkeypatch)


@needs_c
def test_step_parity():
    """One-at-a-time stepping agrees event for event across lanes."""

    def trajectory(lane):
        sim = Simulator(kernel_lane=lane)
        for delay in (0.5, 0.5, 1.25, 0.0, 3.0):
            sim.timeout(delay)
        times = []
        while sim.peek() != float("inf"):
            sim.step()
            times.append(sim.now)
        return times

    assert trajectory("py") == trajectory("c")
