"""Tests for the MPL feedback controller."""

import pytest

from repro.core.controller import Baseline, MplController, Thresholds
from repro.core.system import SimulatedSystem, SystemConfig
from repro.dbms.config import HardwareConfig
from repro.workloads.synthetic import synthetic_workload


def _fast_system(mpl=8, seed=3):
    config = SystemConfig(
        workload=synthetic_workload("s", demand_mean_ms=5.0, scv=1.0),
        hardware=HardwareConfig(num_cpus=1, num_disks=1, memory_mb=3072,
                                bufferpool_mb=1024),
        num_clients=30,
        mpl=mpl,
        seed=seed,
    )
    return SimulatedSystem(config)


def _baseline(seed=3):
    config = SystemConfig(
        workload=synthetic_workload("s", demand_mean_ms=5.0, scv=1.0),
        hardware=HardwareConfig(num_cpus=1, num_disks=1, memory_mb=3072,
                                bufferpool_mb=1024),
        num_clients=30,
        mpl=None,
        seed=seed,
    )
    result = SimulatedSystem(config).run(transactions=1500)
    return Baseline(throughput=result.throughput,
                    mean_response_time=result.mean_response_time)


class TestThresholds:
    def test_defaults(self):
        thresholds = Thresholds()
        assert thresholds.max_throughput_loss == 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            Thresholds(max_throughput_loss=1.0)
        with pytest.raises(ValueError):
            Thresholds(max_response_time_increase=-0.1)


class TestController:
    def test_converges_to_feasible_mpl(self):
        system = _fast_system(mpl=8)
        controller = MplController(
            system, baseline=_baseline(), thresholds=Thresholds(),
            initial_mpl=8, window=150,
        )
        report = controller.tune()
        assert report.converged
        assert report.final_mpl >= 1
        assert report.iterations <= controller.max_iterations
        # the system was left running at the chosen MPL
        assert system.frontend.mpl == report.final_mpl

    def test_trajectory_recorded(self):
        system = _fast_system(mpl=6)
        controller = MplController(
            system, baseline=_baseline(), thresholds=Thresholds(),
            initial_mpl=6, window=120,
        )
        report = controller.tune()
        assert len(report.trajectory) == report.iterations
        assert all(o.completed >= 120 for o in report.trajectory)

    def test_constant_step_mode_still_converges(self):
        system = _fast_system(mpl=5)
        controller = MplController(
            system, baseline=_baseline(), thresholds=Thresholds(),
            initial_mpl=5, window=120, adaptive=False,
        )
        report = controller.tune()
        assert report.final_mpl >= 1

    def test_infeasible_start_steps_up(self):
        """Start at MPL 1 on a multi-resource-ish system: must move up
        or prove 1 feasible."""
        system = _fast_system(mpl=1)
        baseline = _baseline()
        controller = MplController(
            system, baseline=baseline, thresholds=Thresholds(),
            initial_mpl=1, window=150,
        )
        report = controller.tune()
        first = report.trajectory[0]
        if not first.feasible:
            assert report.final_mpl > 1

    def test_validation(self):
        system = _fast_system()
        baseline = Baseline(throughput=10.0, mean_response_time=1.0)
        with pytest.raises(ValueError):
            MplController(system, baseline, Thresholds(), initial_mpl=0)
        with pytest.raises(ValueError):
            MplController(system, baseline, Thresholds(), initial_mpl=1, window=1)
        with pytest.raises(ValueError):
            MplController(system, baseline, Thresholds(), initial_mpl=1, step=0)
        with pytest.raises(ValueError):
            Baseline(throughput=0.0, mean_response_time=1.0)
