"""Property-based tests (hypothesis) on core invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.mg1 import mg1_fifo_response_time, mg1_ps_response_time
from repro.queueing.mpl_ps_queue import MplPsQueue, h2_params
from repro.queueing.mva import Station, mva
from repro.queueing.throughput_model import ThroughputModel, balanced_min_mpl
from repro.sim.distributions import fit_hyperexponential
from repro.sim.engine import Simulator
from repro.dbms.cpu import ProcessorSharingPool


@given(
    mean=st.floats(min_value=1e-3, max_value=100.0),
    scv=st.floats(min_value=0.0, max_value=50.0),
)
@settings(max_examples=150, deadline=None)
def test_fitted_distribution_mean_always_exact(mean, scv):
    dist = fit_hyperexponential(mean, scv)
    assert dist.mean == pytest.approx(mean, rel=1e-6)
    assert dist.variance >= -1e-12


@given(
    demands=st.lists(
        st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=6
    ),
    population=st.integers(min_value=1, max_value=30),
)
@settings(max_examples=100, deadline=None)
def test_mva_invariants(demands, population):
    """Throughput is monotone in N, bounded by the bottleneck, and
    queue lengths always sum to the population."""
    stations = [Station(f"s{i}", demand=d) for i, d in enumerate(demands)]
    result = mva(stations, population)
    throughputs = result.throughputs
    assert all(b >= a - 1e-9 for a, b in zip(throughputs, throughputs[1:]))
    assert throughputs[-1] <= result.max_throughput * (1 + 1e-9)
    assert sum(result.queue_lengths[-1].values()) == pytest.approx(
        float(population), rel=1e-6
    )


@given(
    resources=st.integers(min_value=1, max_value=32),
    fraction=st.floats(min_value=0.05, max_value=0.99),
)
@settings(max_examples=150, deadline=None)
def test_balanced_min_mpl_achieves_fraction(resources, fraction):
    """The closed-form minimum MPL really achieves the fraction, and
    one less does not (unless it is already 1)."""
    mpl = balanced_min_mpl(resources, fraction)
    achieved = mpl / (mpl + resources - 1)
    assert achieved >= fraction - 1e-9
    if mpl > 1:
        below = (mpl - 1) / (mpl - 1 + resources - 1)
        assert below < fraction + 1e-9


@given(
    load=st.floats(min_value=0.05, max_value=0.92),
    scv=st.floats(min_value=1.0, max_value=25.0),
    mpl=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=40, deadline=None)
def test_qbd_between_fifo_and_ps(load, scv, mpl):
    """For any MPL the model's E[T] lies between the PS (lower) and
    FIFO (upper) references."""
    mean = 1.0
    lam = load / mean
    model = MplPsQueue(arrival_rate=lam, mpl=mpl, service_mean=mean,
                       service_scv=scv)
    value = model.mean_response_time()
    ps = mg1_ps_response_time(lam, mean)
    fifo = mg1_fifo_response_time(lam, mean, scv)
    assert value >= ps * (1 - 1e-6)
    assert value <= fifo * (1 + 1e-6)


@given(
    mean=st.floats(min_value=0.01, max_value=10.0),
    scv=st.floats(min_value=1.0, max_value=40.0),
)
@settings(max_examples=150, deadline=None)
def test_h2_params_valid_distribution(mean, scv):
    p, mu1, mu2 = h2_params(mean, scv)
    assert 0.0 < p <= 1.0
    assert mu1 > 0 and mu2 > 0


@given(
    demands=st.lists(
        st.floats(min_value=0.01, max_value=2.0), min_size=1, max_size=8
    ),
    cores=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=60, deadline=None)
def test_cpu_pool_conserves_work(demands, cores):
    """The PS pool serves exactly the submitted work, never more."""
    sim = Simulator()
    pool = ProcessorSharingPool(sim, cores=cores)
    for demand in demands:
        pool.execute(demand)
    sim.run()
    assert pool.work_completed == pytest.approx(sum(demands), rel=1e-6)
    # the pool can never have been busier than `cores` the whole time
    assert pool.busy_core_time <= cores * sim.now * (1 + 1e-9) + 1e-9


@given(
    demands=st.lists(
        st.floats(min_value=0.05, max_value=2.0), min_size=2, max_size=6
    ),
)
@settings(max_examples=60, deadline=None)
def test_cpu_pool_finish_order_matches_demand_order(demands):
    """With equal weights and simultaneous arrival, smaller jobs never
    finish after larger ones (PS property)."""
    sim = Simulator()
    pool = ProcessorSharingPool(sim, cores=1)
    finish = {}
    for index, demand in enumerate(demands):
        event = pool.execute(demand)
        event.add_callback(lambda e, i=index: finish.setdefault(i, sim.now))
    sim.run()
    ordered = sorted(range(len(demands)), key=lambda i: demands[i])
    times = [finish[i] for i in ordered]
    assert all(b >= a - 1e-9 for a, b in zip(times, times[1:]))


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_workload_sampling_never_produces_invalid_transactions(seed):
    from repro.workloads.setups import WORKLOADS

    rng = random.Random(seed)
    for spec in WORKLOADS.values():
        tx = spec.sample_transaction(rng, 1)
        assert tx.cpu_demand >= 0
        assert tx.page_accesses >= 0
        items = [item for item, _mode in tx.lock_requests]
        assert len(items) == len(set(items))


@given(
    fraction=st.floats(min_value=0.5, max_value=0.95),
    resources=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=60, deadline=None)
def test_model_min_mpl_monotone_in_fraction(fraction, resources):
    model = ThroughputModel.balanced(resources)
    lower = model.min_mpl_for_fraction(fraction)
    higher = model.min_mpl_for_fraction(min(0.99, fraction + 0.04))
    assert higher >= lower
