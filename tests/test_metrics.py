"""Tests for metrics collection and statistics."""

import pytest

from repro.dbms.transaction import Priority, Transaction
from repro.metrics.collector import MetricsCollector, TransactionRecord
from repro.metrics.stats import (
    confidence_interval,
    mean,
    percentile,
    relative_half_width,
    scv,
    variance,
)


def _record(tid, arrival, dispatch, completion, priority=Priority.LOW, restarts=0):
    return TransactionRecord(
        tid=tid, type_name="t", priority=priority,
        arrival_time=arrival, dispatch_time=dispatch,
        completion_time=completion, restarts=restarts, lock_wait_time=0.0,
    )


def _completed_tx(tid, arrival, dispatch, completion, priority=Priority.LOW):
    tx = Transaction(tid=tid, type_name="t", cpu_demand=0.01, page_accesses=0,
                     priority=priority)
    tx.arrival_time = arrival
    tx.dispatch_time = dispatch
    tx.completion_time = completion
    return tx


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_variance_unbiased(self):
        assert variance([1.0, 3.0]) == pytest.approx(2.0)
        assert variance([5.0]) == 0.0

    def test_scv(self):
        assert scv([1.0, 1.0, 1.0]) == 0.0
        values = [0.5, 1.5]
        assert scv(values) == pytest.approx(variance(values) / 1.0)

    def test_confidence_interval_shrinks_with_samples(self):
        small = confidence_interval([1.0, 2.0, 3.0])[1]
        large = confidence_interval([1.0, 2.0, 3.0] * 30)[1]
        assert large < small

    def test_relative_half_width(self):
        assert relative_half_width([2.0, 2.0, 2.0, 2.0]) == 0.0
        assert relative_half_width([1.0]) == float("inf")

    def test_percentile(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == pytest.approx(50.5)
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 100
        with pytest.raises(ValueError):
            percentile(values, 150)


class TestTransactionRecord:
    def test_derived_times(self):
        record = _record(1, arrival=1.0, dispatch=2.0, completion=5.0)
        assert record.response_time == pytest.approx(4.0)
        assert record.execution_time == pytest.approx(3.0)
        assert record.external_wait == pytest.approx(1.0)


class TestCollector:
    def test_on_completion_requires_finished_tx(self):
        collector = MetricsCollector()
        tx = Transaction(tid=1, type_name="t", cpu_demand=0.0, page_accesses=0)
        with pytest.raises(ValueError):
            collector.on_completion(tx)

    def test_throughput_over_completion_span(self):
        collector = MetricsCollector()
        for tid in range(5):
            collector.on_completion(_completed_tx(tid, 0.0, 0.0, 1.0 + tid))
        # 5 completions spread over 4 seconds -> 1/s
        assert collector.throughput() == pytest.approx(1.0)

    def test_warmup_trims_prefix(self):
        collector = MetricsCollector()
        for tid in range(10):
            collector.on_completion(_completed_tx(tid, 0.0, 0.0, float(tid + 1)))
        assert len(collector.completed(warmup=4)) == 6
        with pytest.raises(ValueError):
            collector.completed(warmup=-1)

    def test_mean_response_time_by_class(self):
        collector = MetricsCollector()
        collector.on_completion(_completed_tx(1, 0.0, 0.0, 1.0, Priority.HIGH))
        collector.on_completion(_completed_tx(2, 0.0, 0.0, 3.0, Priority.LOW))
        collector.on_completion(_completed_tx(3, 0.0, 0.0, 5.0, Priority.LOW))
        assert collector.mean_response_time(priority=Priority.HIGH) == 1.0
        assert collector.mean_response_time(priority=Priority.LOW) == 4.0
        per_class = collector.per_class_response_times()
        assert per_class == {Priority.HIGH: 1.0, Priority.LOW: 4.0}

    def test_completed_after(self):
        collector = MetricsCollector()
        for tid in range(4):
            collector.on_completion(_completed_tx(tid, 0.0, 0.0, float(tid)))
        assert len(collector.completed_after(1.5)) == 2

    def test_restart_rate(self):
        collector = MetricsCollector()
        tx = _completed_tx(1, 0.0, 0.0, 1.0)
        tx.restarts = 2
        collector.on_completion(tx)
        collector.on_completion(_completed_tx(2, 0.0, 0.0, 2.0))
        assert collector.restart_rate() == pytest.approx(1.0)

    def test_reset(self):
        collector = MetricsCollector()
        collector.on_arrival(Transaction(tid=1, type_name="t", cpu_demand=0,
                                         page_accesses=0))
        collector.on_completion(_completed_tx(1, 0.0, 0.0, 1.0))
        collector.reset()
        assert collector.arrivals == 0
        assert collector.records == []

    def test_empty_collector_safe(self):
        collector = MetricsCollector()
        assert collector.throughput() == 0.0
        assert collector.mean_response_time() == 0.0
        assert collector.restart_rate() == 0.0
