"""Property-based invariant tests for the Station protocol and routing.

Seeded hypothesis sweeps over topology (shard count, routing policy,
seed, priority mix) assert the conservation laws that make the cluster
refactor safe to build on:

* every transaction the router accepts is in exactly one place:
  per shard, ``routed = completed + in_service + external queue``;
* no transaction is ever routed twice;
* the cluster-wide completion stream is exactly the disjoint union of
  the per-shard streams — per-class counts included;
* the Station protocol's bookkeeping (``ClassStats``, ``busy_time``,
  ``utilization``) is internally consistent for any request sequence.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import ClusterConfig, ClusteredSystem
from repro.core.system import SystemConfig
from repro.dbms.transaction import Transaction
from repro.sim.engine import Simulator
from repro.sim.station import (
    ROUTING_POLICIES,
    DelayStation,
    HashRouting,
    LeastInFlightRouting,
    RouterStation,
    RoundRobinRouting,
    Station,
    WeightedRouting,
    make_routing,
)
from repro.workloads.setups import get_setup


def _cluster(shards, routing, seed, high_fraction=0.0, mpl=None, rate=40.0):
    setup = get_setup(1)
    base = SystemConfig(
        workload=setup.workload,
        hardware=setup.hardware,
        isolation=setup.isolation,
        mpl=mpl,
        seed=seed,
        arrival_rate=rate,
        high_priority_fraction=high_fraction,
        policy="priority" if high_fraction > 0 else "fifo",
    )
    weights = tuple(float(i + 1) for i in range(shards)) if routing == "weighted" else None
    return ClusteredSystem(
        ClusterConfig.scale_out(base, shards, routing=routing,
                                routing_weights=weights)
    )


class TestRoutingConservation:
    @given(
        shards=st.integers(min_value=1, max_value=4),
        routing=st.sampled_from(ROUTING_POLICIES),
        seed=st.integers(min_value=0, max_value=10_000),
        high_fraction=st.sampled_from([0.0, 0.1]),
    )
    @settings(max_examples=12, deadline=None)
    def test_arrivals_equal_completions_plus_in_flight_per_shard(
        self, shards, routing, seed, high_fraction
    ):
        system = _cluster(shards, routing, seed, high_fraction, mpl=2 * shards)
        system.run_transactions(60)
        router = system.router
        assert router.routed == system.collector.arrivals
        for routed, shard in zip(router.routed_by_shard, system.shards):
            frontend = shard.frontend
            assert routed == (
                frontend.completed + frontend.in_service + frontend.queue_length
            )
            # the shard-local arrival count matches what was routed to it
            assert shard.collector.arrivals == routed

    @given(
        shards=st.integers(min_value=2, max_value=4),
        routing=st.sampled_from(ROUTING_POLICIES),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=10, deadline=None)
    def test_cluster_stream_is_the_disjoint_union_of_shard_streams(
        self, shards, routing, seed
    ):
        system = _cluster(shards, routing, seed, high_fraction=0.1, mpl=3 * shards)
        system.run_transactions(60)
        shard_tids = [
            {r.tid for r in shard.collector.records} for shard in system.shards
        ]
        cluster_tids = {r.tid for r in system.collector.records}
        # no transaction completed on two shards...
        assert sum(len(tids) for tids in shard_tids) == len(cluster_tids)
        # ...and the union is exactly the cluster stream
        assert set().union(*shard_tids) == cluster_tids
        # per-class counts sum across shards to the cluster totals
        result = system.result()
        for priority, count in result.count_by_class.items():
            assert count == sum(
                sum(1 for r in shard.collector.records if r.priority == priority)
                for shard in system.shards
            )

    @given(
        shards=st.integers(min_value=2, max_value=4),
        routing=st.sampled_from(ROUTING_POLICIES),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=8, deadline=None)
    def test_router_class_stats_sum_to_shard_arrivals(self, shards, routing, seed):
        system = _cluster(shards, routing, seed, high_fraction=0.2, mpl=2 * shards)
        system.run_transactions(50)
        router_totals = {
            priority: stats.requests
            for priority, stats in system.router.class_stats().items()
        }
        assert sum(router_totals.values()) == system.router.routed
        # the engine-side cpu station saw every priority class the
        # router admitted (transactions may still be queued, so the
        # router count is an upper bound)
        cpu_totals = system.aggregate_class_requests("cpu")
        assert set(cpu_totals) <= set(router_totals)

    def test_no_transaction_routed_twice(self):
        system = _cluster(2, "round_robin", seed=1, mpl=4)
        system.run_transactions(20)
        record = system.collector.records[0]
        duplicate = Transaction(
            tid=record.tid, type_name="dup", priority=0,
            cpu_demand=0.001, page_accesses=0,
        )
        with pytest.raises(ValueError, match="already routed"):
            system.router.submit(duplicate)


class TestRoutingPolicies:
    @given(
        n=st.integers(min_value=1, max_value=8),
        picks=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=30, deadline=None)
    def test_round_robin_is_balanced(self, n, picks):
        policy = RoundRobinRouting(n)
        targets = list(range(n))
        counts = [0] * n
        for _ in range(picks):
            counts[policy.choose(None, targets)] += 1
        assert max(counts) - min(counts) <= 1

    @given(
        tids=st.lists(st.integers(min_value=0, max_value=2**40), min_size=1,
                      max_size=50),
        n=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_hash_routing_is_a_stable_pure_function(self, tids, n):
        policy = HashRouting()
        targets = list(range(n))

        class Tx:
            def __init__(self, tid):
                self.tid = tid

        first = [policy.choose(Tx(tid), targets) for tid in tids]
        second = [HashRouting().choose(Tx(tid), targets) for tid in tids]
        assert first == second
        assert all(0 <= shard < n for shard in first)

    @given(
        loads=st.lists(st.integers(min_value=0, max_value=20), min_size=1,
                       max_size=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_least_in_flight_picks_a_minimum(self, loads):
        class Target:
            def __init__(self, load):
                self.in_service = load
                self.queue_length = 0

        targets = [Target(load) for load in loads]
        chosen = LeastInFlightRouting().choose(None, targets)
        assert loads[chosen] == min(loads)
        # ties break to the lowest index, deterministically
        assert chosen == loads.index(min(loads))

    @given(
        weights=st.lists(
            st.integers(min_value=1, max_value=5), min_size=2, max_size=5
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_weighted_shares_are_exactly_proportional_per_cycle(self, weights):
        """Over one full weight cycle, SWRR gives exact integer shares."""
        policy = WeightedRouting(weights)
        targets = list(range(len(weights)))
        total = sum(weights)
        counts = [0] * len(weights)
        for _ in range(total):
            counts[policy.choose(None, targets)] += 1
        assert counts == list(weights)

    def test_make_routing_validation(self):
        with pytest.raises(ValueError):
            make_routing("nope", 2)
        with pytest.raises(ValueError):
            make_routing("round_robin", 0)
        with pytest.raises(ValueError):
            make_routing("weighted", 2, weights=(1.0,))
        with pytest.raises(ValueError):
            WeightedRouting(())
        with pytest.raises(ValueError):
            WeightedRouting((1.0, -2.0))
        with pytest.raises(ValueError):
            RoundRobinRouting(0)
        with pytest.raises(ValueError):
            RouterStation(Simulator(), [], RoundRobinRouting(1))

    def test_routing_policy_base_is_abstract(self):
        from repro.sim.station import RoutingPolicy

        with pytest.raises(NotImplementedError):
            RoutingPolicy().choose(None, [object()])

    def test_router_rejects_out_of_range_policy_choices(self):
        class BrokenPolicy(RoundRobinRouting):
            def choose(self, tx, targets):
                return len(targets)  # one past the end

        class Target:
            in_service = 0
            queue_length = 0

            def submit(self, tx):  # pragma: no cover - never reached
                raise AssertionError

        class Tx:
            tid = 1
            priority = 0

        router = RouterStation(Simulator(), [Target()], BrokenPolicy(1))
        with pytest.raises(ValueError, match="chose shard"):
            router.submit(Tx())


class TestStationProtocol:
    @given(
        jobs=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=2.0),
                st.integers(min_value=0, max_value=2),
            ),
            min_size=1,
            max_size=30,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_delay_station_bookkeeping_is_consistent(self, jobs):
        sim = Simulator()
        station = DelayStation(sim, "d")
        for demand, priority in jobs:
            station.serve(demand, priority=priority)
        sim.run()
        total = sum(demand for demand, _priority in jobs)
        assert station.busy_time == pytest.approx(total)
        assert station.requests_served == len(jobs)
        per_class = station.class_stats()
        assert sum(s.requests for s in per_class.values()) == len(jobs)
        assert sum(s.service_time for s in per_class.values()) == pytest.approx(total)
        if sim.now > 0:
            assert station.utilization(sim.now) == pytest.approx(total / sim.now)
        assert station.utilization(0.0) == 0.0

    @given(
        priorities=st.lists(st.integers(min_value=0, max_value=3), min_size=1,
                            max_size=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_base_station_grants_immediately_and_counts_classes(self, priorities):
        sim = Simulator()
        station = Station(sim, "admission")
        for priority in priorities:
            event = station.acquire()
            assert event.triggered
            station._record(priority)
        station.release()
        assert station.requests_served == len(priorities)
        for priority in set(priorities):
            assert station.per_class[priority].requests == priorities.count(priority)
        with pytest.raises(NotImplementedError):
            station.serve(1.0)

    def test_router_is_not_a_server(self):
        sim = Simulator()

        class Target:
            in_service = 0
            queue_length = 0

            def submit(self, tx):
                raise AssertionError("not exercised here")

        router = RouterStation(sim, [Target()], RoundRobinRouting(1))
        assert not router.is_server
        assert router.busy_time == 0.0
        assert router.queue_length == 0
        assert router.in_service == 0
