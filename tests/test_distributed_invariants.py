"""Property-based invariants for cross-shard 2PC + cluster SLO control.

Seeded hypothesis sweeps over the distributed axis (shard count,
cross-shard fraction, fan-out, coordinator placement, seed) and fault
schedules assert the simulated two-phase commit never loses or
half-commits an atom:

* ledger conservation — ``commits + in_flight == cross_shard`` and
  ``commits + aborts <= attempts <= commits + aborts + in_flight``
  through any mix, including kill -> elect -> restore timelines;
* atomicity — the coordinator's self-check list stays empty: no branch
  ever commits under an abort decision or vice versa;
* strict 2PL through prepare — a branch parked at its commit gate
  still holds every lock it acquired;
* distributed runs are deterministic — bit-identical replay, identical
  results for any ``--jobs N``, byte-equal outcome JSON across the
  python and compiled kernel lanes on a real xs figure cell;
* ``cross_shard_fraction=0`` is result-identical to the same scenario
  without the axis, and the axis fingerprints orthogonally.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributed import (
    DistributedSpec,
    TwoPhaseCoordinator,
    decode_distributed_spec,
    distributed_field_errors,
    encode_distributed_spec,
)
from repro.core.faults import FaultSpec, KillShard, RestoreShard
from repro.core.resilience import GoodputStarved, ResilienceSpec
from repro.core.scenario import (
    ClusterSlo,
    MeasurementSpec,
    ScenarioSpec,
    ScenarioValidationError,
    StaticMpl,
    TopologySpec,
    WorkloadRef,
    execute_scenario,
    run_scenario,
)
from repro.experiments.figures import _xs_spec
from repro.experiments.parallel import ParallelRunner
from repro.sim import _ckernel

needs_c = pytest.mark.skipif(
    not _ckernel.available(), reason="compiled kernel lane is not built"
)


def _dspec(
    shards=2,
    fraction=0.3,
    fanout=2,
    seed=11,
    transactions=60,
    mpl=None,
    coordinator="hash",
    prepare_timeout_s=5.0,
    abort_on_prepare_timeout=True,
    faults=None,
    metrics=("standard",),
):
    """A closed-loop distributed scenario with ample MPL headroom."""
    return ScenarioSpec(
        workload=WorkloadRef(setup_id=1),
        topology=TopologySpec(shards=shards, routing="hash"),
        control=StaticMpl(mpl=mpl if mpl is not None else 3 * shards),
        distributed=DistributedSpec(
            cross_shard_fraction=fraction,
            fanout_k=min(fanout, shards),
            prepare_timeout_s=prepare_timeout_s,
            coordinator=coordinator,
            abort_on_prepare_timeout=abort_on_prepare_timeout,
        ),
        measurement=MeasurementSpec(transactions=transactions, metrics=metrics),
        faults=faults,
        seed=seed,
        tag="inv-2pc",
    )


def _assert_ledger_conserved(report):
    """The 2PC ledger's conservation laws (the fuzzer's atomicity oracle)."""
    assert report["atomicity_violations"] == []
    assert report["commits"] + report["in_flight"] == report["cross_shard"]
    settled = report["commits"] + report["aborts"]
    assert settled <= report["attempts"] <= settled + report["in_flight"]
    assert report["aborts"] == sum(report["aborts_by_cause"].values())


class TestTwoPhaseLedger:
    @given(
        shards=st.integers(min_value=2, max_value=4),
        fraction=st.sampled_from([0.05, 0.2, 0.5, 1.0]),
        fanout=st.integers(min_value=2, max_value=4),
        coordinator=st.sampled_from(["hash", "lowest"]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=10, deadline=None)
    def test_ledger_conserved_through_any_mix(
        self, shards, fraction, fanout, coordinator, seed
    ):
        system, outcome = run_scenario(_dspec(
            shards=shards, fraction=fraction, fanout=fanout,
            coordinator=coordinator, seed=seed,
        ))
        _assert_ledger_conserved(outcome.distributed)
        # sibling branches (negative tids) never reach the collector
        assert all(r.tid >= 0 for r in system.collector.records)
        # every admitted transaction is either single- or cross-shard
        report = outcome.distributed
        assert report["single_shard"] + report["cross_shard"] > 0

    @given(
        fraction=st.sampled_from([0.2, 0.5, 1.0]),
        seed=st.integers(min_value=0, max_value=10_000),
        restore=st.booleans(),
    )
    @settings(max_examples=8, deadline=None)
    def test_conserved_under_participant_death(self, fraction, seed, restore):
        """Kill a shard mid-run (restore it or not): attempts with a
        branch queued there abort as participant deaths, nothing is
        lost, and the ledger still balances."""
        events = [KillShard(at=0.4, shard=0)]
        if restore:
            events.append(RestoreShard(at=1.0, shard=0))
        system, outcome = run_scenario(_dspec(
            shards=3, fraction=fraction, fanout=3, seed=seed,
            faults=FaultSpec(events=tuple(events)),
        ))
        _assert_ledger_conserved(outcome.distributed)
        assert outcome.shard_health is not None
        assert all(r.tid >= 0 for r in system.collector.records)

    def test_prepare_timeout_abort_is_gated_by_the_flag(self):
        """With ``abort_on_prepare_timeout=False`` a lapsed prepare
        timer counts but never aborts: every atom still commits."""
        _, outcome = run_scenario(_dspec(
            fraction=1.0, mpl=8, transactions=40,
            prepare_timeout_s=0.001, abort_on_prepare_timeout=False,
        ))
        report = outcome.distributed
        assert report["prepare_timeouts"] > 0
        assert report["aborts"] == 0
        _assert_ledger_conserved(report)

    def test_prepared_branch_still_holds_its_locks(self, monkeypatch):
        """Strict 2PL through the prepare gate: a branch parked waiting
        for the commit decision holds every lock it acquired."""
        observed = []
        original = TwoPhaseCoordinator.prepared

        def spy(self, tx):
            gate = original(self, tx)
            entry = self._branch_of.get(tx.tid)
            if gate is not None and entry is not None and tx.lock_requests:
                ltx, pos = entry
                frontend = ltx.frontends[pos]
                if frontend is not None and ltx.decided is None:
                    held = frontend.engine.lockmgr.held_by(tx.tid)
                    wanted = {item for item, _ in tx.lock_requests}
                    observed.append(wanted <= held)
            return gate

        monkeypatch.setattr(TwoPhaseCoordinator, "prepared", spy)
        run_scenario(_dspec(fraction=1.0, mpl=8, transactions=40))
        assert observed, "no branch ever parked at the prepare gate"
        assert all(observed)


class TestResilienceComposition:
    def test_resilient_retries_reenter_2pc(self):
        """PR 9's deadline/retry gate composes with 2PC: a timed-out
        cross-shard attempt aborts atomically and the retry re-enters
        the coordinator, not the bare router."""
        import dataclasses as dc
        spec = dc.replace(
            _dspec(fraction=0.5, mpl=4, transactions=80, seed=7,
                   prepare_timeout_s=0.5),
            resilience=ResilienceSpec(
                deadline_s=0.4, max_attempts=3, base_backoff_s=0.01
            ),
        )
        _, outcome = run_scenario(spec)
        _assert_ledger_conserved(outcome.distributed)
        resilience = outcome.resilience
        # the deadline actually bit, and retries flowed through 2PC
        assert resilience["timeout_events"] > 0
        assert resilience["retries"] > 0
        assert outcome.distributed["aborts"] > 0

    def test_unrelieved_abort_storm_raises_goodput_starved(self):
        """A prepare timeout far below any branch's service time can
        never commit; the coordinator's starvation guard refuses to
        spin forever (mirroring the resilience layer's)."""
        with pytest.raises(GoodputStarved, match="2PC goodput starved"):
            run_scenario(_dspec(
                fraction=1.0, mpl=2, transactions=20,
                prepare_timeout_s=0.0001,
            ))


class TestAtomicitySelfCheck:
    """The coordinator's own ledger must flag a half-committed atom."""

    def _coordinator(self):
        from repro.sim.engine import Simulator

        coordinator = TwoPhaseCoordinator(DistributedSpec(), seed=1)
        coordinator.sim = Simulator()
        return coordinator

    def _ltx(self, statuses):
        from repro.core.distributed import _DistributedTx
        from repro.dbms.transaction import Transaction, TxStatus

        branches = []
        for pos, status in enumerate(statuses):
            tx = Transaction(
                tid=pos if pos == 0 else -pos,
                type_name="t", cpu_demand=0.0, page_accesses=0,
                lock_requests=[], is_update=False,
            )
            tx.status = getattr(TxStatus, status)
            branches.append(tx)
        return _DistributedTx(branches[0], tuple(branches), (0, 1), 0)

    def test_finish_commit_flags_an_unfinished_branch(self):
        coordinator = self._coordinator()
        ltx = self._ltx(["COMMITTED", "ABORTED"])
        ltx.decided = "commit"
        coordinator._finish_commit(ltx)
        assert len(coordinator.atomicity_violations) == 1
        assert coordinator.atomicity_violations[0]["status"] == "ABORTED"

    def test_branch_commit_under_abort_decision_is_flagged(self):
        import types

        coordinator = self._coordinator()
        ltx = self._ltx(["COMMITTED", "COMMITTED"])
        ltx.decided = "abort"
        ltx.generation = 1
        coordinator._on_branch_done(
            ltx, 0, 1, types.SimpleNamespace(value=ltx.branches[0])
        )
        assert len(coordinator.atomicity_violations) == 1
        assert coordinator.atomicity_violations[0]["decided"] == "abort"


class TestDistributedDeterminism:
    def _spec(self):
        return _dspec(
            shards=3, fraction=0.5, fanout=3, seed=23, transactions=80,
            faults=FaultSpec(events=(
                KillShard(at=0.5, shard=1),
                RestoreShard(at=1.2, shard=1),
            )),
            metrics=("standard", "percentiles", "timeline"),
        )

    def test_replay_is_bit_identical(self):
        first = json.dumps(
            execute_scenario(self._spec()).to_json_dict(), sort_keys=True
        )
        second = json.dumps(
            execute_scenario(self._spec()).to_json_dict(), sort_keys=True
        )
        assert first == second

    def test_results_identical_for_any_jobs_n(self):
        grid = [
            _xs_spec(2, 0.2, "static", transactions=120, seed=3),
            _xs_spec(2, 0.5, "static", transactions=120, seed=3),
        ]
        serial = ParallelRunner(jobs=1).run(grid)
        parallel = ParallelRunner(jobs=2).run(grid)
        for a, b in zip(serial, parallel):
            assert a.throughput == b.throughput
            assert a.mean_response_time == b.mean_response_time
            assert a.completed == b.completed

    @needs_c
    def test_kernel_lane_parity_on_an_xs_cell(self, monkeypatch):
        """A real xs figure cell's canonical outcome JSON is byte-equal
        across the python and compiled kernel lanes."""

        def outcome_json(lane):
            monkeypatch.setenv("REPRO_KERNEL", lane)
            spec = _xs_spec(2, 0.2, "static", transactions=120, seed=3)
            return json.dumps(execute_scenario(spec).to_json_dict(), sort_keys=True)

        assert outcome_json("py") == outcome_json("c")


class TestFractionZeroIdentity:
    def test_fraction_zero_is_result_identical_to_no_axis(self):
        base = ScenarioSpec(
            workload=WorkloadRef(setup_id=1),
            topology=TopologySpec(shards=2, routing="hash"),
            control=StaticMpl(mpl=6),
            measurement=MeasurementSpec(
                transactions=80, metrics=("standard", "percentiles")
            ),
            seed=9,
        )
        import dataclasses as dc
        zero = dc.replace(
            base, distributed=DistributedSpec(cross_shard_fraction=0.0)
        )
        plain = execute_scenario(base)
        zeroed = execute_scenario(zero)
        assert plain.result.to_json_dict() == zeroed.result.to_json_dict()
        assert plain.percentiles == zeroed.percentiles
        report = zeroed.distributed
        assert report["cross_shard"] == 0
        assert report["attempts"] == 0


class TestAxisFingerprints:
    def test_the_axis_changes_the_digest_orthogonally(self):
        digests = {
            _dspec(fraction=f, transactions=50, seed=1).fingerprint()
            for f in (0.1, 0.5, 1.0)
        }
        base = ScenarioSpec(
            workload=WorkloadRef(setup_id=1),
            topology=TopologySpec(shards=2, routing="hash"),
            control=StaticMpl(mpl=6),
            measurement=MeasurementSpec(transactions=50),
            seed=1,
            tag="inv-2pc",
        )
        digests.add(base.fingerprint())
        assert len(digests) == 4

    def test_component_fingerprints_cover_the_axis(self):
        spec = _dspec()
        components = spec.component_fingerprints()
        assert "distributed" in components
        none_digest = ScenarioSpec().component_fingerprints()["distributed"]
        assert components["distributed"] != none_digest


class TestCodecAndValidation:
    def test_spec_round_trips_with_cluster_slo_control(self):
        spec = ScenarioSpec(
            workload=WorkloadRef(setup_id=1),
            topology=TopologySpec(shards=4, routing="hash"),
            control=ClusterSlo(
                high_p95_target_s=0.4, initial_mpl=32, window=120, max_mpl=128
            ),
            distributed=DistributedSpec(
                cross_shard_fraction=0.2, fanout_k=3,
                prepare_timeout_s=1.5, coordinator="lowest",
            ),
            measurement=MeasurementSpec(transactions=200),
            policy="priority",
            high_priority_fraction=0.2,
            arrival_rate=120.0,
            seed=5,
        )
        decoded = ScenarioSpec.from_json_dict(
            json.loads(json.dumps(spec.to_json_dict()))
        )
        assert decoded == spec
        assert decoded.fingerprint() == spec.fingerprint()

    def test_distributed_codec_round_trips(self):
        spec = DistributedSpec(
            cross_shard_fraction=0.5, fanout_k=4,
            prepare_timeout_s=2.0, coordinator="lowest",
            abort_on_prepare_timeout=False,
        )
        assert decode_distributed_spec(encode_distributed_spec(spec)) == spec
        assert encode_distributed_spec(None) is None
        assert decode_distributed_spec(None) is None

    def test_validate_reports_json_pointer_paths(self):
        payload = ScenarioSpec(
            workload=WorkloadRef(setup_id=1),
            topology=TopologySpec(shards=2, routing="hash"),
            distributed=DistributedSpec(),
        ).to_json_dict()
        payload["distributed"]["fanout_k"] = 1
        payload["distributed"]["coordinator"] = "quorum"
        payload["distributed"]["bogus"] = True
        with pytest.raises(ScenarioValidationError) as excinfo:
            ScenarioSpec.validate(payload)
        paths = {path for path, _ in excinfo.value.errors}
        assert "/distributed/fanout_k" in paths
        assert "/distributed/coordinator" in paths
        assert "/distributed/bogus" in paths

    def test_validate_rejects_cross_field_rule_breaks(self):
        payload = _dspec().to_json_dict()
        payload["topology"]["shards"] = 1
        with pytest.raises(ScenarioValidationError, match="sharded topology"):
            ScenarioSpec.validate(payload)
        payload = _dspec(shards=2).to_json_dict()
        payload["distributed"]["fanout_k"] = 5
        with pytest.raises(ScenarioValidationError, match="cannot exceed"):
            ScenarioSpec.validate(payload)

    def test_field_errors_check_defaults_for_missing_keys(self):
        errors = distributed_field_errors({"cross_shard_fraction": 2.0})
        assert errors == [
            ("/cross_shard_fraction", "must be in [0, 1], got 2.0"),
        ]
        assert distributed_field_errors("nope")

    def test_field_errors_cover_every_field(self):
        errors = dict(distributed_field_errors({
            "cross_shard_fraction": float("nan"),
            "fanout_k": "two",
            "prepare_timeout_s": 0.0,
            "coordinator": "hash",
            "abort_on_prepare_timeout": 1,
        }))
        assert "/cross_shard_fraction" in errors
        assert "/fanout_k" in errors
        assert "/prepare_timeout_s" in errors
        assert "/abort_on_prepare_timeout" in errors
        errors = dict(distributed_field_errors({
            "prepare_timeout_s": "soon",
        }))
        assert "must be a finite number" in errors["/prepare_timeout_s"]

    def test_constructor_and_decoder_reject_bad_values(self):
        with pytest.raises(ValueError, match="bad distributed spec"):
            DistributedSpec(cross_shard_fraction=1.5)
        with pytest.raises(ValueError, match="bad distributed payload"):
            decode_distributed_spec({"fanout_k": 0})

    def test_install_requires_a_sharded_topology(self):
        coordinator = TwoPhaseCoordinator(DistributedSpec(), seed=1)
        with pytest.raises(ValueError, match="sharded topology"):
            coordinator.install(object())
