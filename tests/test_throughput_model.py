"""Tests for the Figure 6/7 throughput-vs-MPL model."""

import pytest

from repro.queueing.throughput_model import ThroughputModel, balanced_min_mpl


class TestBalancedModel:
    def test_single_resource_needs_mpl_one(self):
        model = ThroughputModel.balanced(1)
        assert model.relative_throughput(1) == pytest.approx(1.0)
        assert model.min_mpl_for_fraction(0.95) == 1

    def test_relative_throughput_closed_form(self):
        model = ThroughputModel.balanced(4)
        for mpl in (1, 2, 5, 10, 50):
            assert model.relative_throughput(mpl) == pytest.approx(
                mpl / (mpl + 3), rel=1e-9
            )

    def test_min_mpl_matches_closed_form(self):
        for resources in (1, 2, 3, 4, 8, 16):
            model = ThroughputModel.balanced(resources)
            for fraction in (0.80, 0.95):
                assert model.min_mpl_for_fraction(fraction) == balanced_min_mpl(
                    resources, fraction
                )

    def test_paper_figure7_linearity(self):
        """The 80% and 95% minimum MPLs are linear in the disk count."""
        mpls_80 = [balanced_min_mpl(m, 0.80) for m in range(2, 17)]
        mpls_95 = [balanced_min_mpl(m, 0.95) for m in range(2, 17)]
        diffs_80 = {b - a for a, b in zip(mpls_80, mpls_80[1:])}
        diffs_95 = {b - a for a, b in zip(mpls_95, mpls_95[1:])}
        assert diffs_80 == {4}  # slope f/(1-f) = 4 at 80%
        assert diffs_95 == {19}  # slope 19 at 95%

    def test_more_resources_need_higher_mpl(self):
        values = [
            ThroughputModel.balanced(m).min_mpl_for_fraction(0.9)
            for m in (1, 2, 4, 8)
        ]
        assert values == sorted(values)
        assert values[0] < values[-1]


class TestUnbalancedModel:
    def test_bottleneck_only_counts(self):
        # one fast, one dominant resource: behaves nearly like 1 resource
        model = ThroughputModel([1.0, 0.05])
        assert model.min_mpl_for_fraction(0.9) <= 3

    def test_throughput_curve_monotone(self):
        model = ThroughputModel([1.0, 0.6, 0.3])
        curve = model.throughput_curve(30)
        assert all(b >= a - 1e-12 for a, b in zip(curve, curve[1:]))

    def test_multiserver_resources(self):
        model = ThroughputModel([1.0], servers=[2])
        assert model.relative_throughput(2) == pytest.approx(1.0, rel=0.01)


class TestFromUtilizations:
    def test_insignificant_resources_dropped(self):
        model = ThroughputModel.from_utilizations(
            {"cpu": 0.95, "disk": 0.05, "log": 0.01}
        )
        assert len(model.stations) == 1

    def test_counts_expand_resources(self):
        model = ThroughputModel.from_utilizations(
            {"disk": 0.9}, counts={"disk": 4}
        )
        assert len(model.stations) == 4

    def test_demands_proportional_to_utilization(self):
        model = ThroughputModel.from_utilizations({"cpu": 0.9, "disk": 0.45})
        demands = sorted(s.demand for s in model.stations)
        assert demands == pytest.approx([0.5, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ThroughputModel.from_utilizations({})
        with pytest.raises(ValueError):
            ThroughputModel.from_utilizations({"cpu": 0.0})


class TestValidation:
    def test_bad_fraction(self):
        model = ThroughputModel.balanced(2)
        with pytest.raises(ValueError):
            model.min_mpl_for_fraction(0.0)
        with pytest.raises(ValueError):
            model.min_mpl_for_fraction(1.0)

    def test_bad_demands(self):
        with pytest.raises(ValueError):
            ThroughputModel([])
        with pytest.raises(ValueError):
            ThroughputModel([0.0])
        with pytest.raises(ValueError):
            ThroughputModel([1.0], servers=[1, 2])

    def test_unreachable_fraction(self):
        model = ThroughputModel.balanced(4)
        with pytest.raises(ValueError):
            model.min_mpl_for_fraction(0.9999, max_mpl=10)


def test_think_time_station():
    model = ThroughputModel([1.0], think_time=9.0)
    # with N=1 and Z=9: X = 1/(1+9) = 0.1 -> relative = 0.1
    assert model.throughput(1) == pytest.approx(0.1)
