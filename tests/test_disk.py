"""Tests for the FCFS disks and the striped array."""

import random

import pytest

from repro.dbms.disk import Disk, DiskArray
from repro.sim.distributions import Deterministic
from repro.sim.engine import Simulator


def _completion_times(sim, events):
    times = {}
    for index, event in enumerate(events):
        event.add_callback(lambda e, i=index: times.setdefault(i, sim.now))
    return times


def test_single_request_takes_service_time():
    sim = Simulator()
    disk = Disk(sim, Deterministic(0.008), random.Random(0))
    times = _completion_times(sim, [disk.submit()])
    sim.run()
    assert times[0] == pytest.approx(0.008)


def test_fcfs_ordering():
    sim = Simulator()
    disk = Disk(sim, Deterministic(1.0), random.Random(0))
    times = _completion_times(sim, [disk.submit() for _ in range(3)])
    sim.run()
    assert times[0] == pytest.approx(1.0)
    assert times[1] == pytest.approx(2.0)
    assert times[2] == pytest.approx(3.0)


def test_priority_order_serves_high_first():
    sim = Simulator()
    disk = Disk(sim, Deterministic(1.0), random.Random(0), priority_order=True)
    low = disk.submit(priority=0)
    mid = disk.submit(priority=1)
    high = disk.submit(priority=2)
    times = _completion_times(sim, [low, mid, high])
    sim.run()
    # the first (low) request is already in service; the rest reorder
    assert times[0] == pytest.approx(1.0)
    assert times[2] == pytest.approx(2.0)
    assert times[1] == pytest.approx(3.0)


def test_busy_time_and_utilization():
    sim = Simulator()
    disk = Disk(sim, Deterministic(0.5), random.Random(0))
    disk.submit()
    disk.submit()
    sim.run()
    assert disk.busy_time == pytest.approx(1.0)
    assert disk.requests_served == 2
    assert disk.utilization(2.0) == pytest.approx(0.5)


def test_queue_length_excludes_in_service():
    sim = Simulator()
    disk = Disk(sim, Deterministic(1.0), random.Random(0))
    disk.submit()
    disk.submit()
    disk.submit()
    assert disk.queue_length == 2


def test_array_stripes_round_robin():
    sim = Simulator()
    array = DiskArray(sim, 3, Deterministic(1.0), random.Random(0))
    home = array.assign_home()
    for sequence in range(6):
        array.submit(home, sequence)
    sim.run()
    # six requests over three disks = two each
    assert [d.requests_served for d in array.disks] == [2, 2, 2]


def test_array_homes_rotate():
    sim = Simulator()
    array = DiskArray(sim, 4, Deterministic(1.0), random.Random(0))
    homes = [array.assign_home() for _ in range(6)]
    assert homes == [0, 1, 2, 3, 0, 1]


def test_array_parallelism():
    sim = Simulator()
    array = DiskArray(sim, 2, Deterministic(1.0), random.Random(0))
    events = [array.submit(0, 0), array.submit(1, 0)]  # different disks
    times = _completion_times(sim, events)
    sim.run()
    assert times[0] == pytest.approx(1.0)
    assert times[1] == pytest.approx(1.0)  # served in parallel


def test_array_utilization_averages_disks():
    sim = Simulator()
    array = DiskArray(sim, 2, Deterministic(1.0), random.Random(0))
    array.submit(0, 0)
    sim.run()
    assert array.utilization(1.0) == pytest.approx(0.5)


def test_invalid_disk_count():
    sim = Simulator()
    with pytest.raises(ValueError):
        DiskArray(sim, 0, Deterministic(1.0), random.Random(0))
