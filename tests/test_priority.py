"""Tests for prioritization: assignment and evaluation (§5)."""

import random

import pytest

from repro.dbms.config import InternalPolicy
from repro.dbms.transaction import Priority
from repro.priority.assignment import PriorityAssignment
from repro.priority.evaluation import (
    evaluate_external_prioritization,
    evaluate_internal_prioritization,
)
from repro.workloads.setups import get_setup


class TestPriorityAssignment:
    def test_fraction_respected(self):
        assignment = PriorityAssignment(high_fraction=0.10)
        rng = random.Random(1)
        draws = [assignment.assign(rng) for _ in range(20_000)]
        fraction = sum(1 for d in draws if d == Priority.HIGH) / len(draws)
        assert fraction == pytest.approx(0.10, abs=0.01)

    def test_per_client_is_sticky(self):
        assignment = PriorityAssignment(high_fraction=0.5, per_client=True, seed=3)
        rng = random.Random(1)
        first = assignment.assign(rng, client_id=7)
        for _ in range(10):
            assert assignment.assign(rng, client_id=7) == first

    def test_zero_and_one_fractions(self):
        rng = random.Random(1)
        always_low = PriorityAssignment(high_fraction=0.0)
        always_high = PriorityAssignment(high_fraction=1.0)
        assert all(always_low.assign(rng) == Priority.LOW for _ in range(50))
        assert all(always_high.assign(rng) == Priority.HIGH for _ in range(50))

    def test_validation(self):
        with pytest.raises(ValueError):
            PriorityAssignment(high_fraction=1.5)


class TestExternalPrioritization:
    def test_low_mpl_differentiates_strongly(self):
        outcome = evaluate_external_prioritization(
            get_setup(1), mpl=5, transactions=900, seed=4
        )
        assert outcome.high < outcome.low
        assert outcome.differentiation > 3.0
        # low-priority suffering stays bounded (paper: ~1.15-1.4x)
        assert outcome.low_penalty < 2.0

    def test_unlimited_mpl_removes_differentiation(self):
        outcome = evaluate_external_prioritization(
            get_setup(1), mpl=None, transactions=900, seed=4
        )
        assert outcome.differentiation < 2.0

    def test_lower_mpl_gives_more_differentiation(self):
        tight = evaluate_external_prioritization(
            get_setup(1), mpl=4, transactions=900, seed=4
        )
        loose = evaluate_external_prioritization(
            get_setup(1), mpl=30, transactions=900, seed=4
        )
        assert tight.differentiation > loose.differentiation


class TestInternalPrioritization:
    def test_pow_locks_differentiate_on_lock_bound_setup(self):
        outcome = evaluate_internal_prioritization(
            get_setup(1), InternalPolicy.pow_locks(), transactions=900, seed=4
        )
        assert outcome.differentiation > 2.0

    def test_cpu_weights_differentiate_on_cpu_bound_setup(self):
        outcome = evaluate_internal_prioritization(
            get_setup(3), InternalPolicy.cpu_priorities(), transactions=500, seed=4
        )
        assert outcome.high < outcome.low

    def test_outcome_metrics_consistent(self):
        outcome = evaluate_internal_prioritization(
            get_setup(1), InternalPolicy.pow_locks(), transactions=600, seed=4
        )
        assert outcome.overall_penalty > 0
        assert 0.0 <= outcome.throughput_loss < 1.0
