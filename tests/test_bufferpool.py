"""Tests for the buffer-pool models."""

import random

import pytest

from repro.dbms.bufferpool import AnalyticBufferPool, LRUBufferPool


class TestAnalyticBufferPool:
    def test_everything_cached(self):
        pool = AnalyticBufferPool(db_pages=100, pool_pages=200)
        assert pool.hit_probability == 1.0

    def test_hot_set_cached(self):
        # pool exactly covers the hot 20% -> all hot accesses (80%) hit
        pool = AnalyticBufferPool(db_pages=1000, pool_pages=200)
        assert pool.hit_probability == pytest.approx(0.8)

    def test_partial_hot_set(self):
        # pool holds half the hot set
        pool = AnalyticBufferPool(db_pages=1000, pool_pages=100)
        assert pool.hit_probability == pytest.approx(0.4)

    def test_hot_plus_some_cold(self):
        pool = AnalyticBufferPool(db_pages=1000, pool_pages=600)
        # hot 200 fully cached (0.8) + 400/800 of cold (0.2 * 0.5)
        assert pool.hit_probability == pytest.approx(0.9)

    def test_uniform_access(self):
        pool = AnalyticBufferPool(
            db_pages=1000, pool_pages=250,
            hot_access_fraction=0.0, hot_page_fraction=1e-9,
        )
        assert pool.hit_probability == pytest.approx(0.25, abs=0.01)

    def test_access_tracks_rate(self):
        pool = AnalyticBufferPool(db_pages=1000, pool_pages=200)
        rng = random.Random(3)
        for _ in range(20_000):
            pool.access(rng)
        assert pool.observed_hit_rate == pytest.approx(0.8, abs=0.02)

    def test_sample_misses_matches_probability_small(self):
        pool = AnalyticBufferPool(db_pages=1000, pool_pages=200)  # miss 0.2
        rng = random.Random(1)
        total = sum(pool.sample_misses(rng, 50) for _ in range(4000))
        assert total / (4000 * 50) == pytest.approx(0.2, abs=0.01)

    def test_sample_misses_matches_probability_large(self):
        pool = AnalyticBufferPool(db_pages=1000, pool_pages=200)
        rng = random.Random(1)
        total = sum(pool.sample_misses(rng, 500) for _ in range(1000))
        assert total / (1000 * 500) == pytest.approx(0.2, abs=0.01)

    def test_sample_misses_bounds(self):
        pool = AnalyticBufferPool(db_pages=1000, pool_pages=200)
        rng = random.Random(1)
        for accesses in (0, 1, 64, 65, 1000):
            misses = pool.sample_misses(rng, accesses)
            assert 0 <= misses <= accesses

    def test_sample_misses_fully_cached(self):
        pool = AnalyticBufferPool(db_pages=10, pool_pages=100)
        assert pool.sample_misses(random.Random(0), 100) == 0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            AnalyticBufferPool(db_pages=0, pool_pages=1)
        with pytest.raises(ValueError):
            AnalyticBufferPool(db_pages=1, pool_pages=1, hot_access_fraction=1.5)


class TestLRUBufferPool:
    def test_hit_and_miss(self):
        pool = LRUBufferPool(capacity=2)
        rng = random.Random(0)
        assert pool.access(rng, 1) is False
        assert pool.access(rng, 1) is True
        assert pool.access(rng, 2) is False
        assert pool.access(rng, 3) is False  # evicts 1
        assert 1 not in pool
        assert pool.access(rng, 2) is True

    def test_access_refreshes_recency(self):
        pool = LRUBufferPool(capacity=2)
        rng = random.Random(0)
        pool.access(rng, 1)
        pool.access(rng, 2)
        pool.access(rng, 1)  # 2 is now LRU
        pool.access(rng, 3)  # evicts 2
        assert 1 in pool and 3 in pool and 2 not in pool

    def test_requires_page_id(self):
        pool = LRUBufferPool(capacity=2)
        with pytest.raises(ValueError):
            pool.access(random.Random(0), None)

    def test_len_capped(self):
        pool = LRUBufferPool(capacity=3)
        rng = random.Random(0)
        for page in range(10):
            pool.access(rng, page)
        assert len(pool) == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUBufferPool(capacity=0)


def test_analytic_matches_exact_lru_on_skewed_accesses():
    """Cross-validation: the analytic model tracks a real LRU cache.

    Accesses follow the 80/20 skew the analytic model assumes.  The
    closed form ("the cache retains the hottest pages") is an upper
    bound right at the pool == hot-set boundary where cold accesses
    pollute a real LRU, so the comparison uses a comfortably larger
    pool, where the approximation is tight.
    """
    db_pages, pool_pages = 2000, 1200  # pool well above the 400-page hot set
    analytic = AnalyticBufferPool(db_pages, pool_pages)
    lru = LRUBufferPool(pool_pages)
    rng = random.Random(7)
    hot_pages = int(0.2 * db_pages)
    for _ in range(120_000):
        if rng.random() < 0.8:
            page = rng.randrange(hot_pages)
        else:
            page = hot_pages + rng.randrange(db_pages - hot_pages)
        lru.access(rng, page)
    assert lru.observed_hit_rate == pytest.approx(
        analytic.hit_probability, abs=0.07
    )


def test_analytic_is_upper_bound_at_the_boundary():
    """At pool == hot set, a real LRU hits less than the closed form."""
    db_pages, pool_pages = 2000, 400
    analytic = AnalyticBufferPool(db_pages, pool_pages)
    lru = LRUBufferPool(pool_pages)
    rng = random.Random(7)
    hot_pages = int(0.2 * db_pages)
    for _ in range(60_000):
        if rng.random() < 0.8:
            page = rng.randrange(hot_pages)
        else:
            page = hot_pages + rng.randrange(db_pages - hot_pages)
        lru.access(rng, page)
    assert lru.observed_hit_rate <= analytic.hit_probability
