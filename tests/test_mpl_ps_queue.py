"""Tests for the FIFO -> PS(MPL) response-time model (Figures 8-10)."""

import numpy as np
import pytest

from repro.queueing.mg1 import mg1_fifo_response_time, mg1_ps_response_time
from repro.queueing.mpl_ps_queue import MplPsQueue, h2_params


class TestH2Params:
    def test_scv_one_degenerates_to_exponential(self):
        p, mu1, mu2 = h2_params(2.0, 1.0)
        assert p == 1.0
        assert mu1 == pytest.approx(0.5)
        assert mu2 == pytest.approx(0.5)

    @pytest.mark.parametrize("scv", [1.5, 2.0, 5.0, 15.0])
    def test_moments_reproduced(self, scv):
        p, mu1, mu2 = h2_params(3.0, scv)
        mean = p / mu1 + (1 - p) / mu2
        second = 2 * p / mu1**2 + 2 * (1 - p) / mu2**2
        assert mean == pytest.approx(3.0, rel=1e-9)
        assert second / mean**2 - 1 == pytest.approx(scv, rel=1e-9)

    def test_scv_below_one_rejected(self):
        with pytest.raises(ValueError):
            h2_params(1.0, 0.5)


class TestModelAnchors:
    """The three sanity anchors from the module docstring."""

    @pytest.mark.parametrize("scv", [1.0, 2.0, 5.0, 15.0])
    @pytest.mark.parametrize("load", [0.5, 0.7, 0.9])
    def test_mpl_one_matches_pollaczek_khinchine(self, scv, load):
        mean = 0.05
        lam = load / mean
        model = MplPsQueue(arrival_rate=lam, mpl=1, service_mean=mean,
                           service_scv=scv)
        assert model.mean_response_time() == pytest.approx(
            mg1_fifo_response_time(lam, mean, scv), rel=1e-6
        )

    @pytest.mark.parametrize("scv", [2.0, 15.0])
    def test_large_mpl_approaches_ps(self, scv):
        mean, load = 0.05, 0.7
        lam = load / mean
        model = MplPsQueue(arrival_rate=lam, mpl=60, service_mean=mean,
                           service_scv=scv)
        ps = mg1_ps_response_time(lam, mean)
        assert model.mean_response_time() == pytest.approx(ps, rel=0.02)

    @pytest.mark.parametrize("mpl", [1, 3, 10, 25])
    def test_exponential_sizes_are_mpl_insensitive(self, mpl):
        """With C^2 = 1 the queue is M/M/1 at every MPL."""
        mean, lam = 0.05, 14.0
        model = MplPsQueue(arrival_rate=lam, mpl=mpl, service_mean=mean,
                           service_scv=1.0)
        mm1 = mean / (1 - lam * mean)
        assert model.mean_response_time() == pytest.approx(mm1, rel=1e-6)


class TestMonotonicity:
    def test_response_time_decreases_with_mpl_for_variable_sizes(self):
        mean, lam, scv = 0.05, 14.0, 15.0
        values = [
            MplPsQueue(arrival_rate=lam, mpl=mpl, service_mean=mean,
                       service_scv=scv).mean_response_time()
            for mpl in (1, 2, 5, 10, 20, 35)
        ]
        assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))
        assert values[0] > values[-1] * 2  # MPL matters a lot at C^2=15

    def test_higher_scv_needs_higher_mpl(self):
        """Minimum MPL within 10% of PS grows with C^2 (Figure 10)."""
        mean, lam = 0.05, 14.0
        ps = mg1_ps_response_time(lam, mean)

        def min_mpl(scv):
            for mpl in range(1, 61):
                model = MplPsQueue(arrival_rate=lam, mpl=mpl,
                                   service_mean=mean, service_scv=scv)
                if model.mean_response_time() <= 1.1 * ps:
                    return mpl
            return 61

        needs = [min_mpl(scv) for scv in (1.0, 2.0, 5.0, 15.0)]
        assert needs == sorted(needs)
        assert needs[0] == 1
        assert needs[-1] >= 5

    def test_higher_load_needs_higher_mpl(self):
        mean, scv = 0.05, 15.0
        ps_time = {}

        def min_mpl(load):
            lam = load / mean
            ps = mg1_ps_response_time(lam, mean)
            for mpl in range(1, 80):
                model = MplPsQueue(arrival_rate=lam, mpl=mpl,
                                   service_mean=mean, service_scv=scv)
                if model.mean_response_time() <= 1.1 * ps:
                    return mpl
            return 80

        assert min_mpl(0.7) < min_mpl(0.9)


class TestDistributionOutputs:
    def test_level_probabilities_sum_to_one(self):
        model = MplPsQueue(arrival_rate=10.0, mpl=4, service_mean=0.05,
                           service_scv=5.0)
        probabilities = model.level_probabilities(400)
        assert sum(probabilities) == pytest.approx(1.0, abs=1e-6)
        assert all(p >= 0 for p in probabilities)

    def test_mean_number_consistent_with_levels(self):
        model = MplPsQueue(arrival_rate=10.0, mpl=3, service_mean=0.05,
                           service_scv=5.0)
        probabilities = model.level_probabilities(2000)
        direct = sum(n * p for n, p in enumerate(probabilities))
        assert model.mean_number_in_system() == pytest.approx(direct, rel=1e-4)

    def test_little_law(self):
        lam = 12.0
        model = MplPsQueue(arrival_rate=lam, mpl=5, service_mean=0.05,
                           service_scv=10.0)
        assert model.mean_response_time() == pytest.approx(
            model.mean_number_in_system() / lam
        )


class TestGeneratorStructure:
    def test_figure9_blocks_for_mpl2(self):
        """The repeating blocks reproduce the published MPL=2 chain."""
        lam, mean, scv = 0.5, 1.0, 8.0
        model = MplPsQueue(arrival_rate=lam, mpl=2, service_mean=mean,
                           service_scv=scv)
        p, q = model.p, model.q
        mu1, mu2 = model.mu1, model.mu2
        a0, a1, a2 = model.repeating_blocks()
        # rows are i = number of phase-1 jobs among the 2 in service
        assert np.allclose(a0, lam * np.eye(3))
        # i=2 (both phase 1): phase-1 completes at rate 2*mu1/2 = mu1;
        # promoted job is phase-1 w.p. p (stay at i=2) or phase-2 (i=1)
        assert a2[2, 2] == pytest.approx(mu1 * p)
        assert a2[2, 1] == pytest.approx(mu1 * q)
        # i=0 (both phase 2): phase-2 completes at rate mu2; promotion
        # to phase-1 moves i to 1
        assert a2[0, 1] == pytest.approx(mu2 * p)
        assert a2[0, 0] == pytest.approx(mu2 * q)
        # mixed state i=1: both phases present at half speed
        assert a2[1, 0] == pytest.approx((mu1 / 2) * q)
        assert a2[1, 2] == pytest.approx((mu2 / 2) * p)
        # generator rows of A0+A1+A2 sum to zero
        rows = (a0 + a1 + a2).sum(axis=1)
        assert np.allclose(rows, 0.0, atol=1e-12)

    def test_boundary_blocks_conserve_rate(self):
        model = MplPsQueue(arrival_rate=0.5, mpl=3, service_mean=1.0,
                           service_scv=5.0)
        for level in range(1, 3):
            up = model.boundary_up(level)
            down = model.boundary_down(level)
            local = model.boundary_local(level)
            rows = up.sum(axis=1) + down.sum(axis=1) + local.sum(axis=1)
            assert np.allclose(rows, 0.0, atol=1e-12)


class TestValidation:
    def test_unstable_load_rejected(self):
        model = MplPsQueue(arrival_rate=25.0, mpl=2, service_mean=0.05,
                           service_scv=2.0)
        with pytest.raises(ValueError):
            model.solve()

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            MplPsQueue(arrival_rate=0.0, mpl=1, service_mean=1.0, service_scv=1.0)
        with pytest.raises(ValueError):
            MplPsQueue(arrival_rate=1.0, mpl=0, service_mean=1.0, service_scv=1.0)
        with pytest.raises(ValueError):
            MplPsQueue(arrival_rate=1.0, mpl=1)
