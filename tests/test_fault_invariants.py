"""Property-based invariants for faulted clusters + digest pins.

Seeded hypothesis sweeps over topology (shard count, replicas, seed)
and fault schedules (kill / kill+restore / degrade) assert that the
fail-stop model never loses a transaction:

* cluster-wide conservation — every transaction the router accepted is
  in exactly one frontend (completed / in-service / queued, election
  buffer included) through any kill -> elect -> restore sequence;
* per-shard conservation with the re-route transfer counters:
  ``routed_by_shard[i] + rerouted_to[i] - rerouted_from[i]`` matches
  shard ``i``'s frontend accounting;
* faulted runs are deterministic — identical schedules replay
  bit-identically, and results are independent of ``--jobs N``;
* scenarios with no faults and 0 replicas keep their exact pre-fault
  content digests (pinned sha256 values).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import ClusterConfig, ClusteredSystem
from repro.core.controller import ElasticCapacityController
from repro.core.faults import (
    DegradeShard,
    FaultInjector,
    FaultSpec,
    KillShard,
    RestoreShard,
)
from repro.core.scenario import (
    ElasticMpl,
    MeasurementSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadRef,
    component_fingerprint,
    demo_scenarios,
    execute_scenario,
)
from repro.core.system import SystemConfig
from repro.experiments.parallel import ParallelRunner
from repro.workloads.setups import get_setup


def _cluster(shards, seed, replicas=0, mpl=None, rate=50.0):
    setup = get_setup(1)
    base = SystemConfig(
        workload=setup.workload,
        hardware=setup.hardware,
        isolation=setup.isolation,
        mpl=mpl,
        seed=seed,
        arrival_rate=rate,
    )
    return ClusteredSystem(
        ClusterConfig.scale_out(
            base, shards, replicas_per_shard=replicas,
            election_timeout_s=0.2,
        )
    )


def _schedule(kind, shard):
    if kind == "kill":
        return FaultSpec(events=(KillShard(at=0.4, shard=shard),))
    if kind == "kill+restore":
        return FaultSpec(events=(
            KillShard(at=0.4, shard=shard),
            RestoreShard(at=1.0, shard=shard),
        ))
    return FaultSpec(events=(DegradeShard(at=0.4, shard=shard, factor=0.5),))


def _assert_conserved(system):
    router = system.router
    frontends = [shard.frontend for shard in system.shards]
    # cluster-wide: every routed transaction is in exactly one frontend
    assert router.routed == sum(
        f.completed + f.in_service + f.queue_length for f in frontends
    )
    # per-shard, re-route transfers included
    for index, frontend in enumerate(frontends):
        assert (
            router.routed_by_shard[index]
            + router.rerouted_to[index]
            - router.rerouted_from[index]
        ) == frontend.completed + frontend.in_service + frontend.queue_length
        # arrivals are counted where the router first placed the tx
        assert (
            system.shards[index].collector.arrivals
            == router.routed_by_shard[index]
        )
    assert router.rerouted == sum(router.rerouted_from)
    assert router.rerouted == sum(router.rerouted_to)


class TestFaultedConservation:
    @given(
        shards=st.integers(min_value=2, max_value=4),
        replicas=st.integers(min_value=0, max_value=1),
        seed=st.integers(min_value=0, max_value=10_000),
        kind=st.sampled_from(["kill", "kill+restore", "degrade"]),
    )
    @settings(max_examples=14, deadline=None)
    def test_conservation_through_any_schedule(
        self, shards, replicas, seed, kind
    ):
        system = _cluster(shards, seed, replicas=replicas, mpl=2 * shards)
        injector = FaultInjector(system, _schedule(kind, shard=0))
        injector.arm()
        system.run_transactions(60)
        _assert_conserved(system)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_full_shard_death_reroutes_without_loss(self, seed):
        """Kill both members of a replicated shard: the router takes it
        out of rotation, evacuates the backlog, and nothing is lost."""
        system = _cluster(2, seed, replicas=1, mpl=6, rate=70.0)
        FaultInjector(system, FaultSpec(events=(
            KillShard(at=0.3, shard=0),
            KillShard(at=0.6, shard=0),
        ))).arm()
        system.run_transactions(60)
        _assert_conserved(system)
        group = system.shards[0].group
        if not group.available:
            assert not system.router.alive[0]

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        replicas=st.integers(min_value=0, max_value=1),
    )
    @settings(max_examples=6, deadline=None)
    def test_faulted_runs_replay_bit_identically(self, seed, replicas):
        def run():
            system = _cluster(2, seed, replicas=replicas, mpl=6, rate=60.0)
            FaultInjector(system, _schedule("kill+restore", 0)).arm()
            system.run_transactions(70)
            return [
                (r.tid, r.arrival_time, r.completion_time)
                for r in system.collector.records
            ]

        assert run() == run()


class TestElasticInvariants:
    def test_resplit_conserves_the_global_mpl(self):
        system = _cluster(4, seed=3, mpl=16, rate=150.0)
        controller = ElasticCapacityController(
            system, global_mpl=16, interval_s=0.25
        ).install()
        system.run_transactions(150)
        report = controller.report
        assert sum(report.final_mpls) == 16
        assert all(mpl >= 1 for mpl in report.final_mpls)
        for action in report.actions:
            if action.kind == "resplit":
                assert sum(action.mpls) == 16

    def test_elastic_under_a_kill_shifts_mpl_to_survivors(self):
        system = _cluster(2, seed=5, replicas=1, mpl=12, rate=80.0)
        FaultInjector(system, FaultSpec(events=(
            KillShard(at=0.3, shard=0),
            KillShard(at=0.5, shard=0),
        ))).arm()
        controller = ElasticCapacityController(
            system, global_mpl=12, interval_s=0.25
        ).install()
        system.run_transactions(120)
        _assert_conserved(system)
        report = controller.report
        assert sum(report.final_mpls) == 12
        if not system.router.alive[0]:
            # the dead shard is parked at the floor, survivors got the rest
            assert report.final_mpls[0] == 1
            assert report.final_mpls[1] == 11

    def test_global_mpl_must_cover_every_shard(self):
        system = _cluster(4, seed=1, mpl=16)
        with pytest.raises(ValueError, match="cannot cover"):
            ElasticCapacityController(system, global_mpl=3)

    def test_rejects_inverted_watermarks_at_construction(self):
        # inverted watermarks would park on one tick and re-activate on
        # the next, forever; pre-fix the constructor accepted them
        system = _cluster(2, seed=1, mpl=8)
        with pytest.raises(ValueError, match="watermarks"):
            ElasticCapacityController(
                system, global_mpl=8,
                low_watermark=0.9, high_watermark=0.2,
            )
        with pytest.raises(ValueError, match="watermarks"):
            ElasticCapacityController(
                system, global_mpl=8,
                low_watermark=0.5, high_watermark=0.5,
            )

    def test_rejects_bad_interval_min_shards_and_ticks(self):
        system = _cluster(2, seed=1, mpl=8)
        with pytest.raises(ValueError, match="interval_s"):
            ElasticCapacityController(system, global_mpl=8, interval_s=0.0)
        with pytest.raises(ValueError, match="min_shards"):
            ElasticCapacityController(system, global_mpl=8, min_shards=0)
        with pytest.raises(ValueError, match="max_ticks"):
            ElasticCapacityController(system, global_mpl=8, max_ticks=0)

    def test_spec_path_rejects_inverted_watermarks_too(self):
        # both faces of the rule: the ElasticMpl spec and the controller
        with pytest.raises(ValueError, match="watermark"):
            ElasticMpl(mpl=8, low_watermark=0.9, high_watermark=0.2)


class TestScenarioDeterminism:
    def _spec(self):
        return ScenarioSpec(
            workload=WorkloadRef(setup_id=1),
            topology=TopologySpec(
                shards=2, routing="least_in_flight", replicas_per_shard=1,
            ),
            control=ElasticMpl(mpl=8, interval_s=0.5),
            faults=FaultSpec(events=(
                KillShard(at=0.5, shard=0),
                RestoreShard(at=1.5, shard=0),
            )),
            measurement=MeasurementSpec(
                transactions=120,
                metrics=("standard", "percentiles", "timeline"),
            ),
            arrival_rate=70.0,
            seed=17,
            tag="inv-failover",
        )

    def test_execution_is_deterministic(self):
        first = execute_scenario(self._spec())
        second = execute_scenario(self._spec())
        assert first.result.throughput == second.result.throughput
        assert first.result.mean_response_time == second.result.mean_response_time
        assert first.timeline == second.timeline
        assert first.faults == second.faults

    def test_results_identical_for_any_jobs_n(self, tmp_path):
        grid = [self._spec(), self._spec()]
        serial = ParallelRunner(jobs=1).run(grid)
        parallel = ParallelRunner(jobs=2).run(grid)
        for a, b in zip(serial, parallel):
            assert a.throughput == b.throughput
            assert a.mean_response_time == b.mean_response_time
            assert a.completed == b.completed


class TestDigestPins:
    """Pre-fault content digests, pinned byte-for-byte.

    These sha256 values were recorded before the fault / replica /
    elastic axes existed; any drift means pre-existing cache entries
    and the golden corpus would be invalidated.
    """

    def test_no_fault_scenarios_keep_their_digests(self):
        assert ScenarioSpec().fingerprint() == (
            "360205e58fed441f9d11ad31752d4372fb832046f778a02b0384d41a4fe71e03"
        )
        assert ScenarioSpec(
            topology=TopologySpec(shards=4, routing="least_in_flight")
        ).fingerprint() == (
            "22975e7f0704ce5b8f379bf6d00587183dca7e84751e061e39165b4fe14fc4cb"
        )

    def test_component_digests_are_stable(self):
        assert component_fingerprint(TopologySpec()) == (
            "d02f611680891219025d3b5a8d1c7144904e3835f189ad8b8210c48c54db25a1"
        )
        assert component_fingerprint(
            TopologySpec(shards=4, routing="least_in_flight")
        ) == (
            "60dc02f2a752ec6b286eaf48aae2ccb7947aabfa678c273aa0523036dbcfaacb"
        )
        assert component_fingerprint(MeasurementSpec()) == (
            "e20bb9ee0455d1cf4393ec0b71ad469fed984a9f22c1f3ef100dd20cf3b27d5a"
        )

    def test_failover_demo_digest_is_pinned(self):
        assert demo_scenarios()["failover"].fingerprint() == (
            "b9532c62223967cf4e4c3d4ef27d091f7799206e6e486a0a67485e7a06a77f45"
        )

    def test_new_axes_change_the_digest(self):
        base = ScenarioSpec(topology=TopologySpec(shards=2))
        replicated = ScenarioSpec(
            topology=TopologySpec(shards=2, replicas_per_shard=1)
        )
        faulted = ScenarioSpec(
            topology=TopologySpec(shards=2),
            faults=FaultSpec(events=(KillShard(at=1.0, shard=0),)),
        )
        digests = {
            base.fingerprint(),
            replicated.fingerprint(),
            faulted.fingerprint(),
        }
        assert len(digests) == 3
