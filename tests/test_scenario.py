"""The Scenario API: composition, fingerprints, execution, CLI.

The heart of the suite is compatibility: every legacy ``RunSpec``
shape used by the figure grids must keep its exact content digest
through ``to_scenario()`` (the golden corpus pinned in
``tests/data/scenario_golden_fingerprints.json``), and an all-default
scenario must run bit-identically to the legacy path.  On top of that:
the JSON codec round-trips, the trace arrival seam replays
deterministically, and the two controller-carrying control specs
(``FeedbackMpl``, ``PerClassSlo``) drive their loops from pure data.
"""

import dataclasses
import json
import os

import pytest

from repro.core.arrivals import (
    ClosedArrivals,
    ModulatedArrivals,
    OpenArrivals,
    PartlyOpenArrivals,
    PiecewiseRate,
    SinusoidRate,
    TraceArrivals,
    TraceReplay,
)
from repro.core.cluster import ClusterConfig, build_system
from repro.core.controller import (
    ControllerReport,
    ElasticReport,
    PerClassSloController,
    SloReport,
)
from repro.core.faults import (
    DegradeShard,
    FaultSpec,
    KillShard,
    RestoreShard,
)
from repro.core.scenario import (
    ElasticMpl,
    FeedbackMpl,
    MeasurementSpec,
    PerClassSlo,
    ScenarioSpec,
    ScenarioValidationError,
    StaticMpl,
    TopologySpec,
    WorkloadRef,
    component_fingerprint,
    demo_scenarios,
    execute_scenario,
)
from repro.core.system import SimulatedSystem, SystemConfig
from repro.dbms.config import InternalPolicy
from repro.dbms.transaction import Priority
from repro.experiments import figures
from repro.experiments.__main__ import main as cli_main
from repro.experiments.parallel import RunSpec, as_scenario, execute_spec
from repro.workloads.setups import get_setup
from repro.workloads.traces import get_trace

GOLDEN = os.path.join(os.path.dirname(__file__), "data",
                      "scenario_golden_fingerprints.json")


class TestGoldenCorpus:
    """Every legacy grid shape keeps its pre-scenario cache key."""

    @pytest.fixture(scope="class")
    def corpus(self):
        with open(GOLDEN, encoding="utf-8") as handle:
            return json.load(handle)["corpus"]

    def test_grid_fingerprints_match_corpus(self, corpus):
        expected = {}
        for entry in corpus:
            expected.setdefault((entry["grid"], entry["fast"]), set()).add(
                entry["fingerprint"]
            )
        for (grid, fast), want in sorted(expected.items()):
            got = {s.fingerprint() for s in figures.FIGURE_GRIDS[grid](fast=fast)}
            assert got == want, f"grid {grid} fast={fast} digests drifted"

    def test_grids_are_scenarios(self):
        for key, builder in figures.FIGURE_GRIDS.items():
            assert all(isinstance(s, ScenarioSpec) for s in builder(fast=True)), key

    def test_legacy_runspec_shapes_round_trip(self, corpus):
        """Corpus entries expressible as plain RunSpecs rebuild + match."""
        checked = 0
        for entry in corpus:
            if entry["grid"] in ("po", "sh"):
                continue  # carry arrival specs not captured in the row
            spec = RunSpec(
                setup_id=entry["setup_id"],
                mpl=entry["mpl"],
                transactions=entry["transactions"],
                seed=entry["seed"],
                policy=entry["policy"],
                high_priority_fraction=entry["high_priority_fraction"],
                arrival_rate=entry["arrival_rate"],
                warmup_fraction=entry["warmup_fraction"],
            )
            assert spec.fingerprint() == entry["fingerprint"]
            assert spec.to_scenario().fingerprint() == entry["fingerprint"]
            checked += 1
        assert checked > 100

    def test_json_round_trip_preserves_every_grid_fingerprint(self):
        for key, builder in figures.FIGURE_GRIDS.items():
            for spec in builder(fast=True):
                clone = ScenarioSpec.from_json_dict(
                    json.loads(json.dumps(spec.to_json_dict()))
                )
                assert clone == spec, key
                assert clone.fingerprint() == spec.fingerprint(), key


class TestLegacyAdapter:
    """RunSpec is a thin adapter over ScenarioSpec — bit-identical."""

    LEGACY_PINS = {
        (1, 5, 300, 11, "fifo", 0.0, None):
            "47affd2ecb66d0aa7dffcdf436ed6259a0de0e2c618fac76ec253345849028d6",
        (3, None, 150, 7, "priority", 0.1, None):
            "c3b9eb7fc51d133c3fa37fda4d1d12175caa7b3ce6342e4567935a1f0ceb2bf1",
        (5, 2, 100, 5, "fifo", 0.0, 4.0):
            "184cdbf8ff63ec4ddbc2232944bbe681d8867188388469de33f6c048f0a13889",
    }

    def test_pinned_digests_via_scenario(self):
        for (sid, mpl, txns, seed, policy, high, rate), digest in (
            self.LEGACY_PINS.items()
        ):
            scenario = ScenarioSpec(
                workload=WorkloadRef(setup_id=sid),
                control=StaticMpl(mpl),
                measurement=MeasurementSpec(transactions=txns),
                policy=policy,
                high_priority_fraction=high,
                arrival_rate=rate,
                seed=seed,
            )
            assert scenario.fingerprint() == digest

    def test_all_default_scenario_equals_default_runspec(self):
        assert ScenarioSpec().fingerprint() == RunSpec(setup_id=1).fingerprint()

    def test_default_scenario_result_is_bit_identical_to_direct_run(self):
        scenario = ScenarioSpec(
            control=StaticMpl(4), measurement=MeasurementSpec(transactions=150),
            seed=3,
        )
        outcome = execute_scenario(scenario)
        setup = get_setup(1)
        config = SystemConfig(
            workload=setup.workload, hardware=setup.hardware,
            isolation=setup.isolation, mpl=4, seed=3,
        )
        direct = SimulatedSystem(config).run(transactions=150)
        assert outcome.result == direct
        assert outcome.control is None
        assert execute_spec(RunSpec(
            setup_id=1, mpl=4, transactions=150, seed=3
        )) == direct

    def test_as_scenario_is_identity_on_scenarios(self):
        scenario = ScenarioSpec()
        assert as_scenario(scenario) is scenario
        assert as_scenario(RunSpec(setup_id=2)).workload.setup_id == 2

    def test_sharded_runspec_config_via_scenario(self):
        spec = RunSpec(setup_id=1, mpl=8, transactions=100, seed=3, shards=2)
        config = spec.config()
        assert isinstance(config, ClusterConfig)
        assert config.num_shards == 2
        assert config.global_mpl == 8

    def test_build_system_dispatches_on_scenario(self):
        system = build_system(ScenarioSpec(control=StaticMpl(2)))
        assert isinstance(system, SimulatedSystem)
        assert system.frontend.mpl == 2
        with pytest.raises(TypeError):
            build_system(42)

    def test_tag_not_hashed(self):
        assert ScenarioSpec(tag="x").fingerprint() == ScenarioSpec().fingerprint()


class TestComposition:
    """The axes are orthogonal and individually fingerprinted."""

    def test_component_fingerprints_are_orthogonal(self):
        base = ScenarioSpec()
        variants = {
            "workload": dataclasses.replace(
                base, workload=WorkloadRef(setup_id=3)
            ),
            "arrival": dataclasses.replace(base, arrival=OpenArrivals(rate=5.0)),
            "topology": dataclasses.replace(
                base, topology=TopologySpec(shards=2)
            ),
            "control": dataclasses.replace(base, control=StaticMpl(7)),
            "measurement": dataclasses.replace(
                base, measurement=MeasurementSpec(transactions=99)
            ),
        }
        reference = base.component_fingerprints()
        for axis, variant in variants.items():
            fingerprints = variant.component_fingerprints()
            assert fingerprints[axis] != reference[axis], axis
            for other in reference:
                if other != axis:
                    assert fingerprints[other] == reference[other], (axis, other)
            assert variant.fingerprint() != base.fingerprint(), axis

    def test_component_fingerprint_of_none_arrival_is_stable(self):
        assert component_fingerprint(None) == component_fingerprint(None)

    def test_non_default_metrics_change_fingerprint(self):
        base = ScenarioSpec()
        extra = dataclasses.replace(
            base,
            measurement=MeasurementSpec(metrics=("standard", "percentiles")),
        )
        assert extra.fingerprint() != base.fingerprint()

    def test_control_spec_changes_fingerprint_beyond_config(self):
        static = ScenarioSpec(control=StaticMpl(8))
        feedback = ScenarioSpec(control=FeedbackMpl(initial_mpl=8))
        slo = ScenarioSpec(
            control=PerClassSlo(initial_mpl=8),
            policy="priority",
            high_priority_fraction=0.1,
        )
        digests = {static.fingerprint(), feedback.fingerprint(), slo.fingerprint()}
        assert len(digests) == 3

    def test_accessor_properties(self):
        scenario = ScenarioSpec(
            workload=WorkloadRef(setup_id=4),
            topology=TopologySpec(shards=2, routing="hash"),
            control=StaticMpl(6),
            measurement=MeasurementSpec(transactions=77, warmup_fraction=0.1),
        )
        assert scenario.setup_id == 4
        assert scenario.mpl == 6
        assert scenario.transactions == 77
        assert scenario.warmup_fraction == 0.1
        assert scenario.shards == 2
        assert scenario.routing == "hash"
        assert not scenario.is_open
        assert ScenarioSpec(arrival_rate=5.0).is_open
        assert ScenarioSpec(arrival=OpenArrivals(rate=2.0)).is_open
        assert not ScenarioSpec(arrival=ClosedArrivals()).is_open


class TestValidation:
    def test_workload_ref_needs_exactly_one_source(self):
        with pytest.raises(ValueError):
            WorkloadRef(setup_id=None, trace=None)
        with pytest.raises(ValueError):
            WorkloadRef(setup_id=1, trace="online-retailer")

    def test_topology_validation(self):
        with pytest.raises(ValueError):
            TopologySpec(shards=0)
        with pytest.raises(ValueError):
            TopologySpec(routing="nope")
        with pytest.raises(ValueError):
            TopologySpec(shards=2, routing_weights=(1.0,))
        with pytest.raises(ValueError):
            TopologySpec(shards=2, routing_weights=(1.0, 0.0))

    def test_measurement_validation(self):
        with pytest.raises(ValueError):
            MeasurementSpec(transactions=0)
        with pytest.raises(ValueError):
            MeasurementSpec(warmup_fraction=1.0)
        with pytest.raises(ValueError):
            MeasurementSpec(metrics=())
        with pytest.raises(ValueError):
            MeasurementSpec(metrics=("percentiles",))
        with pytest.raises(ValueError):
            MeasurementSpec(metrics=("standard", "nope"))

    def test_control_validation(self):
        with pytest.raises(ValueError):
            StaticMpl(0)
        with pytest.raises(ValueError):
            FeedbackMpl(max_throughput_loss=1.5)
        with pytest.raises(ValueError):
            FeedbackMpl(initial_mpl=0)
        with pytest.raises(ValueError):
            FeedbackMpl(baseline_transactions=1)
        with pytest.raises(ValueError):
            FeedbackMpl(baseline_throughput=50.0)  # missing its RT half
        with pytest.raises(ValueError):
            FeedbackMpl(baseline_throughput=0.0, baseline_response_time=0.1,
                        initial_mpl=2)
        with pytest.raises(ValueError):
            # explicit baseline carries no utilizations to jump-start from
            FeedbackMpl(baseline_throughput=50.0, baseline_response_time=0.1)

    def test_sharded_feedback_needs_explicit_initial_mpl(self):
        with pytest.raises(ValueError):
            ScenarioSpec(
                topology=TopologySpec(shards=2),
                control=FeedbackMpl(initial_mpl=None),
            )
        with pytest.raises(ValueError):
            PerClassSlo(high_p95_target_s=0.0)
        with pytest.raises(ValueError):
            PerClassSlo(initial_mpl=0)
        with pytest.raises(ValueError):
            PerClassSlo(initial_mpl=9, max_mpl=8)

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec(workload="setup 1")
        with pytest.raises(ValueError):
            ScenarioSpec(topology="1 shard")
        with pytest.raises(ValueError):
            ScenarioSpec(control="static")
        with pytest.raises(ValueError):
            ScenarioSpec(measurement="default")
        with pytest.raises(ValueError):
            ScenarioSpec(arrival=OpenArrivals(rate=1.0), arrival_rate=2.0)
        with pytest.raises(ValueError):
            ScenarioSpec(high_priority_fraction=1.5)

    def test_per_class_slo_needs_high_traffic_and_one_shard(self):
        with pytest.raises(ValueError):
            ScenarioSpec(control=PerClassSlo())
        with pytest.raises(ValueError):
            ScenarioSpec(
                control=PerClassSlo(),
                high_priority_fraction=0.1,
                topology=TopologySpec(shards=2),
            )

    def test_trace_arrivals_validation(self):
        with pytest.raises(ValueError):
            TraceArrivals("online-retailer", time_scale=0.0)
        with pytest.raises(ValueError):
            TraceArrivals("online-retailer", transactions=0)
        with pytest.raises(ValueError):
            TraceArrivals("no-such-trace")

    def test_trace_arrivals_reject_zero_span_loop(self, tmp_path):
        # a single-record (or all-equal-timestamp) trace has zero span:
        # loop=True would wrap with zero period and livelock the source.
        # Pre-fix this was only discovered by hanging the simulation.
        single = tmp_path / "single.csv"
        single.write_text("0.0,0.01\n")
        with pytest.raises(ValueError, match="span is zero"):
            TraceArrivals(f"file:{single}", loop=True)
        equal = tmp_path / "equal.csv"
        equal.write_text("0.0,0.01\n0.0,0.02\n0.0,0.03\n")
        with pytest.raises(ValueError, match="span is zero"):
            TraceArrivals(f"file:{equal}", loop=True)
        # without looping the same traces are fine (finite replay)
        assert TraceArrivals(f"file:{single}", loop=False).digest
        assert TraceArrivals(f"file:{equal}", loop=False).digest


class TestJsonCodec:
    ZOO = [
        ScenarioSpec(),
        ScenarioSpec(
            arrival=PartlyOpenArrivals(
                session_rate=5.0, mean_session_length=4.0, think_time_s=0.1
            ),
            topology=TopologySpec(
                shards=2, routing="weighted", routing_weights=(1.0, 3.0)
            ),
            control=StaticMpl(12),
            seed=3,
        ),
        ScenarioSpec(
            arrival=ModulatedArrivals(
                SinusoidRate(base=40.0, amplitude=10.0, period=15.0, phase=0.5)
            ),
            control=FeedbackMpl(initial_mpl=4, window=80),
        ),
        ScenarioSpec(
            arrival=ModulatedArrivals(
                PiecewiseRate(points=((0.0, 10.0), (4.0, 20.0)), period=8.0)
            ),
        ),
        ScenarioSpec(
            workload=WorkloadRef(
                setup_id=None, trace="auction-site", trace_transactions=500
            ),
            arrival=TraceArrivals(
                "auction-site", transactions=500, time_scale=2.0, loop=True
            ),
        ),
        ScenarioSpec(
            policy="priority",
            high_priority_fraction=0.1,
            internal=InternalPolicy.pow_locks(),
            control=PerClassSlo(high_p95_target_s=0.3),
        ),
        ScenarioSpec(
            internal=InternalPolicy.cpu_priorities(),
            arrival_rate=7.5,
            measurement=MeasurementSpec(
                transactions=250, warmup_fraction=0.1,
                metrics=("standard", "percentiles"),
            ),
            tag="zoo",
        ),
    ]

    @pytest.mark.parametrize("spec", ZOO, ids=range(len(ZOO)))
    def test_round_trip(self, spec):
        clone = ScenarioSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.fingerprint() == spec.fingerprint()

    def test_round_trip_is_canonical(self):
        spec = self.ZOO[1]
        once = spec.to_json(indent=2)
        twice = ScenarioSpec.from_json(once).to_json(indent=2)
        assert once == twice

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec.from_json_dict({"unknown_knob": 1})
        with pytest.raises(ValueError):
            ScenarioSpec.from_json_dict({"workload": {"setup": 1}})
        with pytest.raises(ValueError):
            ScenarioSpec.from_json_dict({"measurement": {"warmup": 0.1}})

    def test_bad_payload_shapes_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec.from_json_dict([1, 2])
        with pytest.raises(ValueError):
            ScenarioSpec.from_json_dict({"workload": "setup 1"})
        with pytest.raises(ValueError):
            ScenarioSpec.from_json_dict({"arrival": {"rate": 5.0}})
        with pytest.raises(ValueError):
            ScenarioSpec.from_json_dict({"arrival": {"type": "nope"}})
        with pytest.raises(ValueError):
            ScenarioSpec.from_json_dict({"control": {"type": "nope"}})
        with pytest.raises(ValueError):
            ScenarioSpec.from_json_dict(
                {"arrival": {"type": "modulated", "rate_function": {"base": 1}}}
            )
        with pytest.raises(ValueError):
            ScenarioSpec.from_json_dict(
                {"arrival": {"type": "modulated",
                             "rate_function": {"type": "nope"}}}
            )
        with pytest.raises(ValueError):
            ScenarioSpec.from_json_dict({"internal": "pow"})
        with pytest.raises(ValueError):
            ScenarioSpec.from_json_dict({"internal": {"locks": "pow"}})
        with pytest.raises(ValueError):
            ScenarioSpec.from_json_dict({"control": {"mpl": 5}})

    def test_unregistered_spec_cannot_encode(self):
        class Rogue(StaticMpl):
            pass

        with pytest.raises(ValueError):
            ScenarioSpec(control=Rogue(2)).to_json_dict()

    def test_control_base_class_is_abstract(self):
        from repro.core.scenario import ControlSpec

        with pytest.raises(NotImplementedError):
            ControlSpec().config_mpl()
        with pytest.raises(NotImplementedError):
            ControlSpec().apply(None, None)

    def test_internal_policy_round_trip(self):
        for policy in (InternalPolicy.pow_locks(), InternalPolicy.cpu_priorities()):
            spec = ScenarioSpec(internal=policy)
            assert ScenarioSpec.from_json(spec.to_json()).internal == policy


class TestTraceArrivals:
    def test_digest_is_stable_and_content_sensitive(self):
        a = TraceArrivals("online-retailer", transactions=300)
        b = TraceArrivals("online-retailer", transactions=300)
        assert a.digest and a.digest == b.digest
        assert TraceArrivals("online-retailer", transactions=301).digest != a.digest
        assert TraceArrivals("online-retailer", transactions=300, seed=1).digest != a.digest
        assert TraceArrivals("auction-site", transactions=300).digest != a.digest

    def test_digest_changes_scenario_fingerprint(self):
        def fingerprint(**kwargs):
            return ScenarioSpec(
                arrival=TraceArrivals("online-retailer", **kwargs)
            ).fingerprint()

        assert fingerprint(transactions=300) == fingerprint(transactions=300)
        assert fingerprint(transactions=300) != fingerprint(transactions=400)

    def test_replay_is_deterministic(self):
        spec = ScenarioSpec(
            workload=WorkloadRef(
                setup_id=None, trace="online-retailer", trace_transactions=600
            ),
            arrival=TraceArrivals("online-retailer", transactions=600),
            control=StaticMpl(8),
            measurement=MeasurementSpec(transactions=300),
        )
        assert execute_scenario(spec).result == execute_scenario(spec).result

    def test_replay_follows_trace_timestamps(self):
        trace = get_trace("online-retailer", 50)
        system = build_system(
            ScenarioSpec(
                arrival=TraceArrivals("online-retailer", transactions=50),
                control=StaticMpl(4),
            )
        )
        assert isinstance(system.source, TraceReplay)
        records = system.run_transactions(50)
        arrivals = sorted(r.arrival_time for r in records)
        expected = [r.arrival_time for r in trace.records]
        assert arrivals == pytest.approx(expected)

    def test_time_scale_stretches_arrivals(self):
        system = build_system(
            ScenarioSpec(
                arrival=TraceArrivals(
                    "online-retailer", transactions=50, time_scale=2.0
                ),
                control=StaticMpl(4),
            )
        )
        records = system.run_transactions(50)
        trace = get_trace("online-retailer", 50)
        assert min(r.arrival_time for r in records) == pytest.approx(
            2.0 * trace.records[0].arrival_time
        )

    def test_loop_wraps_past_trace_end(self):
        system = build_system(
            ScenarioSpec(
                arrival=TraceArrivals(
                    "online-retailer", transactions=40, loop=True
                ),
                control=StaticMpl(4),
            )
        )
        records = system.run_transactions(100)
        assert len(records) == 100
        assert system.source.replayed >= 100

    def test_demo_trace_scenarios_run(self):
        demos = demo_scenarios()
        for name in ("trace-retailer", "trace-auction"):
            outcome = execute_scenario(
                dataclasses.replace(
                    demos[name], measurement=MeasurementSpec(
                        transactions=200, metrics=("standard", "percentiles")
                    )
                )
            )
            assert outcome.result.completed > 0
            assert outcome.result.throughput > 0
            assert outcome.percentiles["all"]["p95"] > 0


class TestFeedbackScenario:
    def test_feedback_runs_from_spec_and_reports(self):
        spec = ScenarioSpec(
            control=FeedbackMpl(
                initial_mpl=None, window=80, baseline_transactions=400
            ),
            measurement=MeasurementSpec(transactions=200),
            seed=5,
        )
        outcome = execute_scenario(spec)
        assert isinstance(outcome.control, ControllerReport)
        assert outcome.control.final_mpl >= 1
        assert outcome.result.completed >= 160
        # the reported window excludes the control phase
        assert outcome.result.mpl == outcome.control.final_mpl

    def test_explicit_baseline_skips_the_twin_run(self):
        """A pre-measured baseline produces the same loop as a twin run."""
        twin = ScenarioSpec(control=StaticMpl(None),
                            measurement=MeasurementSpec(transactions=400),
                            seed=5)
        reference = execute_scenario(twin).result
        injected = ScenarioSpec(
            control=FeedbackMpl(
                initial_mpl=4, window=80,
                baseline_throughput=reference.throughput,
                baseline_response_time=reference.mean_response_time,
            ),
            measurement=MeasurementSpec(transactions=200),
            seed=5,
        )
        measured = ScenarioSpec(
            control=FeedbackMpl(
                initial_mpl=4, window=80, baseline_transactions=400,
            ),
            measurement=MeasurementSpec(transactions=200),
            seed=5,
        )
        assert (execute_scenario(injected).control
                == execute_scenario(measured).control)

    def test_open_arrival_spec_jump_starts_like_arrival_rate(self):
        """The §4.2 RT model applies however the open regime is spelled."""
        from repro.core.tuner import model_jump_start
        from repro.core.controller import Thresholds

        reference = execute_scenario(ScenarioSpec(
            arrival_rate=40.0, control=StaticMpl(None),
            measurement=MeasurementSpec(transactions=400), seed=5,
        )).result
        legacy_cfg = ScenarioSpec(arrival_rate=40.0).build_config()
        spec_cfg = ScenarioSpec(arrival=OpenArrivals(rate=40.0)).build_config()
        thresholds = Thresholds()
        assert model_jump_start(
            legacy_cfg, reference, thresholds
        ) == model_jump_start(spec_cfg, reference, thresholds, is_open=True)

    def test_feedback_on_cluster_tunes_each_shard(self):
        spec = ScenarioSpec(
            arrival=PartlyOpenArrivals.for_load(80.0, 4.0, think_time_s=0.1),
            topology=TopologySpec(shards=2, routing="least_in_flight"),
            control=FeedbackMpl(
                initial_mpl=2, window=60, baseline_transactions=300
            ),
            measurement=MeasurementSpec(transactions=200),
            seed=5,
        )
        outcome = execute_scenario(spec)
        assert len(outcome.control.shards) == 2
        assert all(r.final_mpl >= 1 for r in outcome.control.shards)
        payload = outcome.to_json_dict()
        assert payload["control"]["type"] == "shards"
        assert len(payload["control"]["shards"]) == 2


class TestPerClassSlo:
    """The new controller: SLO held, LOW throughput sacrificed knowingly."""

    @staticmethod
    def _scenario(target, seed=7, **kwargs):
        return ScenarioSpec(
            workload=WorkloadRef(setup_id=1),
            policy="priority",
            high_priority_fraction=0.1,
            control=PerClassSlo(
                high_p95_target_s=target, initial_mpl=6, window=120,
                max_mpl=32, max_iterations=15, **kwargs,
            ),
            measurement=MeasurementSpec(
                transactions=500, metrics=("standard", "percentiles")
            ),
            seed=seed,
        )

    def test_converges_under_time_varying_load(self):
        demo = demo_scenarios()["slo-tv"]
        outcome = execute_scenario(demo)
        report = outcome.control
        assert isinstance(report, SloReport)
        assert report.converged
        # the accepted operating point met the SLO when observed
        accepted = [o for o in report.trajectory
                    if o.feasible and o.mpl == report.final_mpl]
        assert accepted
        assert accepted[-1].high_p95 <= demo.control.high_p95_target_s

    def test_high_p95_held_under_target(self):
        scenario = self._scenario(0.5)
        outcome = execute_scenario(scenario)
        report = outcome.control
        assert report.converged
        final_obs = [o for o in report.trajectory if o.mpl == report.final_mpl]
        assert final_obs[-1].feasible
        assert final_obs[-1].high_p95 <= 0.5
        # measured post-control HIGH p95 stays in the target's band
        assert outcome.percentiles[str(int(Priority.HIGH))]["p95"] <= 2 * 0.5

    def test_monotone_low_throughput_sacrifice(self):
        """Tighter targets cost MPL, and below the knee, LOW throughput."""
        outcomes = [
            execute_scenario(self._scenario(target))
            for target in (0.5, 0.15, 0.06)
        ]
        finals = [o.control.final_mpl for o in outcomes]
        assert finals == sorted(finals, reverse=True)
        assert finals[0] > finals[-1]

        def low_throughput(outcome):
            low = outcome.result.count_by_class.get(int(Priority.LOW), 0)
            return outcome.result.throughput * low / outcome.result.completed

        loose, mid, tight = (low_throughput(o) for o in outcomes)
        # saturation hides the first step (both above the knee) ...
        assert mid <= loose * 1.10
        # ... but the sub-knee operating point pays visibly
        assert tight < 0.9 * loose

    def test_unattainable_target_holds_the_floor(self):
        outcome = execute_scenario(self._scenario(0.001))
        assert outcome.control.final_mpl == 1
        assert not outcome.control.converged

    def test_controller_validation(self):
        system = build_system(ScenarioSpec(control=StaticMpl(2)))
        with pytest.raises(ValueError):
            PerClassSloController(system, target_p95_s=0.0, initial_mpl=2)
        with pytest.raises(ValueError):
            PerClassSloController(system, target_p95_s=0.1, initial_mpl=0)
        with pytest.raises(ValueError):
            PerClassSloController(
                system, target_p95_s=0.1, initial_mpl=4, max_mpl=2
            )
        with pytest.raises(ValueError):
            PerClassSloController(
                system, target_p95_s=0.1, initial_mpl=2, window=1
            )
        with pytest.raises(ValueError):
            PerClassSloController(
                system, target_p95_s=0.1, initial_mpl=2, step=0
            )


class TestScenarioCli:
    def _write(self, tmp_path, payload):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_show_normalizes_a_spec_file(self, tmp_path, capsys):
        path = self._write(tmp_path, {"control": {"type": "static", "mpl": 5}})
        assert cli_main(["scenario", "show", path]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["control"] == {"type": "static", "mpl": 5}
        assert shown["workload"]["setup_id"] == 1

    def test_fingerprint_matches_api(self, tmp_path, capsys):
        path = self._write(tmp_path, ScenarioSpec().to_json_dict())
        assert cli_main(["scenario", "fingerprint", path, "--components"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fingerprint"] == ScenarioSpec().fingerprint()
        assert payload["components"] == ScenarioSpec().component_fingerprints()

    def test_grid_show_then_fingerprint_round_trip(self, tmp_path, capsys):
        assert cli_main(["scenario", "show", "--grid", "smoke"]) == 0
        shown = capsys.readouterr().out
        path = tmp_path / "grid.json"
        path.write_text(shown)
        assert cli_main(["scenario", "fingerprint", str(path)]) == 0
        from_file = json.loads(capsys.readouterr().out)
        assert cli_main(["scenario", "fingerprint", "--grid", "smoke"]) == 0
        direct = json.loads(capsys.readouterr().out)
        assert from_file == direct

    def test_run_per_class_slo_from_json(self, tmp_path, capsys):
        spec = ScenarioSpec(
            policy="priority",
            high_priority_fraction=0.1,
            control=PerClassSlo(
                high_p95_target_s=0.5, initial_mpl=4, window=60,
                max_mpl=16, max_iterations=6,
            ),
            measurement=MeasurementSpec(
                transactions=150, metrics=("standard", "percentiles")
            ),
        )
        path = self._write(tmp_path, spec.to_json_dict())
        out_path = tmp_path / "outcome.json"
        assert cli_main(
            ["scenario", "run", path, "--output", str(out_path)]
        ) == 0
        outcome = json.loads(out_path.read_text())
        assert outcome["control"]["type"] == "per_class_slo"
        assert outcome["control"]["final_mpl"] >= 1
        assert outcome["result"]["throughput"] > 0
        assert outcome["fingerprint"] == spec.fingerprint()
        assert outcome["percentiles"]

    def test_run_demo_by_name(self, capsys):
        assert cli_main(["scenario", "run", "--demo", "trace-retailer"]) == 0
        outcome = json.loads(capsys.readouterr().out)
        assert outcome["result"]["completed"] > 0

    def test_list_demos(self, capsys):
        assert cli_main(["scenario", "--list-demos"]) == 0
        names = capsys.readouterr().out.split()
        assert "slo-tv" in names and "trace-retailer" in names
        assert cli_main(["scenario", "show", "--list-demos"]) == 0

    def test_missing_action_errors(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["scenario"])

    def test_input_source_errors(self, tmp_path, capsys):
        assert cli_main(["scenario", "show"]) == 2
        assert cli_main(["scenario", "show", "--grid", "nope"]) == 2
        assert cli_main(["scenario", "show", "--demo", "nope"]) == 2
        assert cli_main(["scenario", "show", str(tmp_path / "missing.json")]) == 2
        path = self._write(tmp_path, {"control": {"type": "static", "mpl": 5}})
        assert cli_main(["scenario", "show", path, "--grid", "smoke"]) == 2


class TestDemos:
    def test_every_demo_builds_and_fingerprints(self):
        demos = demo_scenarios()
        assert set(demos) == {
            "trace-retailer", "trace-auction", "slo-tv", "failover",
        }
        digests = {name: spec.fingerprint() for name, spec in demos.items()}
        assert len(set(digests.values())) == len(digests)
        for spec in demos.values():
            clone = ScenarioSpec.from_json(spec.to_json())
            assert clone.fingerprint() == spec.fingerprint()


class TestScenarioV2:
    """Replica groups, faults, elasticity, timelines — the v2 axes."""

    FAULTED = dict(
        topology=TopologySpec(shards=2, replicas_per_shard=1),
        faults=FaultSpec(events=(
            KillShard(at=0.5, shard=0),
            RestoreShard(at=1.5, shard=0),
        )),
    )

    def test_topology_v2_validation(self):
        with pytest.raises(ValueError):
            TopologySpec(replicas_per_shard=-1)
        with pytest.raises(ValueError):
            TopologySpec(read_fanout="nope")
        with pytest.raises(ValueError):
            TopologySpec(election_timeout_s=-0.1)
        with pytest.raises(ValueError):
            MeasurementSpec(timeline_bucket_s=0.0)

    def test_faults_need_a_clustered_topology(self):
        with pytest.raises(ValueError):
            ScenarioSpec(faults=FaultSpec(events=(KillShard(at=1.0, shard=0),)))
        with pytest.raises(ValueError):
            # event shard out of range for the topology
            ScenarioSpec(
                topology=TopologySpec(shards=2),
                faults=FaultSpec(events=(KillShard(at=1.0, shard=2),)),
            )
        with pytest.raises(ValueError):
            ScenarioSpec(faults="kill")
        # a replicated single shard IS clustered: faults are fine
        ScenarioSpec(
            topology=TopologySpec(shards=1, replicas_per_shard=1),
            faults=FaultSpec(events=(KillShard(at=1.0, shard=0),)),
        )

    def test_elastic_needs_a_cluster_and_enough_mpl(self):
        with pytest.raises(ValueError):
            ElasticMpl(mpl=0)
        with pytest.raises(ValueError):
            ElasticMpl(interval_s=0.0)
        with pytest.raises(ValueError):
            ElasticMpl(low_watermark=0.9, high_watermark=0.5)
        with pytest.raises(ValueError):
            ElasticMpl(min_shards=0)
        with pytest.raises(ValueError):
            ScenarioSpec(control=ElasticMpl(mpl=8))  # single engine
        with pytest.raises(ValueError):
            ScenarioSpec(
                topology=TopologySpec(shards=4),
                control=ElasticMpl(mpl=2),  # cannot cover 4 shards
            )
        with pytest.raises(ValueError):
            ElasticMpl(mpl=8).apply(
                SimulatedSystem(ScenarioSpec().build_config()), ScenarioSpec()
            )

    def test_v2_axes_round_trip_with_stable_fingerprints(self):
        spec = ScenarioSpec(
            arrival=OpenArrivals(rate=90.0),
            topology=TopologySpec(
                shards=2, routing="least_in_flight",
                replicas_per_shard=1, read_fanout="least_in_flight",
                election_timeout_s=0.25,
            ),
            control=ElasticMpl(
                mpl=12, interval_s=0.5, high_watermark=0.8,
                low_watermark=0.2, min_shards=1,
            ),
            faults=FaultSpec(events=(
                KillShard(at=0.5, shard=0),
                DegradeShard(at=1.0, shard=1, factor=0.5),
                RestoreShard(at=1.5, shard=0),
            )),
            measurement=MeasurementSpec(
                transactions=200,
                metrics=("standard", "percentiles", "timeline"),
                timeline_bucket_s=0.5,
            ),
        )
        clone = ScenarioSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.fingerprint() == spec.fingerprint()
        payload = spec.to_json_dict()
        assert payload["control"]["type"] == "elastic"
        assert payload["faults"]["events"][0]["type"] == "kill"
        # the fault axis is individually fingerprinted
        assert "faults" in spec.component_fingerprints()

    def test_default_v2_fields_do_not_change_legacy_digests(self):
        """Explicitly-default v2 knobs hash like they don't exist."""
        legacy = ScenarioSpec(topology=TopologySpec(shards=2))
        explicit = ScenarioSpec(topology=TopologySpec(
            shards=2, replicas_per_shard=0, read_fanout="round_robin",
            election_timeout_s=0.5,
        ))
        assert explicit.fingerprint() == legacy.fingerprint()
        assert (
            ScenarioSpec(measurement=MeasurementSpec(timeline_bucket_s=1.0))
            .fingerprint() == ScenarioSpec().fingerprint()
        )

    def test_validate_collects_every_problem_with_paths(self):
        payload = {
            "nope": 1,
            "topology": {"shards": 0},
            "control": {"type": "wat"},
            "faults": {"events": [{"type": "zap"}], "oops": 2},
            "measurement": {"transactions": -5},
        }
        with pytest.raises(ScenarioValidationError) as excinfo:
            ScenarioSpec.validate(payload)
        paths = [path for path, _message in excinfo.value.errors]
        assert "/nope" in paths
        assert "/topology" in paths
        assert "/control" in paths
        assert "/faults/oops" in paths
        assert "/faults/events/0" in paths
        assert "/measurement" in paths
        assert len(paths) >= 6
        # the message is one line per problem
        assert str(excinfo.value).count("\n") >= len(paths)

    def test_validate_reports_cross_field_problems_at_the_root(self):
        with pytest.raises(ScenarioValidationError) as excinfo:
            ScenarioSpec.validate({
                "faults": {"events": [
                    {"type": "kill", "at": 1.0, "shard": 0}
                ]},
            })
        assert any(path == "" for path, _message in excinfo.value.errors)
        with pytest.raises(ScenarioValidationError):
            ScenarioSpec.validate([1, 2])

    def test_validate_accepts_what_from_json_dict_accepts(self):
        for spec in (ScenarioSpec(), demo_scenarios()["failover"]):
            payload = spec.to_json_dict()
            assert ScenarioSpec.validate(payload) == spec

    def test_failover_demo_executes_with_timeline_and_fault_log(self):
        # the demo is sized so the restore (t=8s) fires mid-run
        demo = demo_scenarios()["failover"]
        outcome = execute_scenario(demo)
        assert outcome.result.completed >= 900  # 1200 minus warmup
        kinds = [fault["kind"] for fault in outcome.faults]
        assert kinds == ["kill", "restore"]
        assert outcome.faults[0]["at"] == pytest.approx(3.0)
        assert outcome.timeline
        assert {"t", "completions", "throughput", "mean_response_time",
                "p95_response_time"} <= set(outcome.timeline[0])
        payload = outcome.to_json_dict()
        assert payload["control"]["type"] == "elastic"
        assert payload["faults"] == outcome.faults
        assert payload["timeline"] == outcome.timeline
        report = outcome.control
        assert isinstance(report, ElasticReport)
        assert sum(report.final_mpls) == demo.control.mpl

    def test_timeline_works_on_a_single_engine(self):
        outcome = execute_scenario(ScenarioSpec(
            arrival_rate=50.0,
            control=StaticMpl(8),
            measurement=MeasurementSpec(
                transactions=150, metrics=("standard", "timeline"),
                timeline_bucket_s=0.5,
            ),
        ))
        assert outcome.timeline
        assert sum(row["completions"] for row in outcome.timeline) == 150
        # buckets are anchored at absolute t=0 and strictly increasing
        ts = [row["t"] for row in outcome.timeline]
        assert ts == sorted(ts)
        assert all(t == pytest.approx(round(t / 0.5) * 0.5) for t in ts)

    def test_run_failover_demo_via_cli(self, tmp_path, capsys):
        path = tmp_path / "failover.json"
        path.write_text(demo_scenarios()["failover"].to_json())
        out_path = tmp_path / "outcome.json"
        assert cli_main(
            ["scenario", "run", str(path), "--output", str(out_path)]
        ) == 0
        outcome = json.loads(out_path.read_text())
        assert outcome["control"]["type"] == "elastic"
        assert [f["kind"] for f in outcome["faults"]] == ["kill", "restore"]
        assert outcome["timeline"]

    def test_cli_reports_every_validation_problem(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "nope": 1,
            "topology": {"shards": 0},
            "faults": {"events": [{"type": "zap"}]},
        }))
        assert cli_main(["scenario", "show", str(path)]) == 2
        err = capsys.readouterr().err
        assert "/nope" in err
        assert "/topology" in err
        assert "/faults/events/0" in err


class TestRunSpecDeprecation:
    """The loose shards/routing/routing_weights fields are deprecated."""

    def test_loose_topology_fields_warn(self):
        with pytest.warns(DeprecationWarning, match="topology"):
            RunSpec(setup_id=1, shards=2)
        with pytest.warns(DeprecationWarning, match="topology"):
            RunSpec(setup_id=1, routing="hash")
        with pytest.warns(DeprecationWarning, match="topology"):
            RunSpec(setup_id=1, shards=2, routing="weighted",
                    routing_weights=(1.0, 2.0))

    def test_defaults_and_topology_spelling_do_not_warn(self):
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            RunSpec(setup_id=1)
            RunSpec(setup_id=1, topology=TopologySpec(shards=2))

    def test_both_spellings_rejected_together(self):
        with pytest.raises(ValueError, match="not both"):
            RunSpec(setup_id=1, shards=2, topology=TopologySpec(shards=2))

    def test_loose_and_topology_spellings_fingerprint_identically(self):
        with pytest.warns(DeprecationWarning):
            loose = RunSpec(
                setup_id=1, mpl=8, shards=2, routing="least_in_flight"
            )
        explicit = RunSpec(
            setup_id=1, mpl=8,
            topology=TopologySpec(shards=2, routing="least_in_flight"),
        )
        assert loose.fingerprint() == explicit.fingerprint()
        assert (loose.to_scenario().fingerprint()
                == explicit.to_scenario().fingerprint())
        assert loose.resolved_topology() == explicit.resolved_topology()

    def test_spec_for_uses_the_topology_spelling(self):
        import warnings as warnings_module

        from repro.experiments.runner import spec_for

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            plain = spec_for(get_setup(1), mpl=4)
            sharded = spec_for(
                get_setup(1), mpl=4, shards=2, routing="least_in_flight"
            )
        assert plain.topology is None
        assert sharded.topology == TopologySpec(
            shards=2, routing="least_in_flight"
        )
