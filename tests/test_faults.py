"""Fault injection, replica groups, and router liveness.

The fail-stop model in one suite: ``FaultSpec`` is pure fingerprinted
data with a strict codec; the ``FaultInjector`` fires the spec's
events at their simulated instants; ``ReplicaGroup`` buffers + elects
deterministically when a primary dies; and the router's liveness masks
(``alive`` for faults, ``in_rotation`` for elastic parking) re-route
around dead shards without losing a single transaction.
"""

import pytest

from repro.core.cluster import (
    READ_FANOUT_POLICIES,
    ClusterConfig,
    ClusteredSystem,
)
from repro.core.faults import (
    FAULT_EVENT_TYPES,
    DegradeShard,
    FaultInjector,
    FaultSpec,
    KillShard,
    RestoreShard,
    decode_fault_event,
    decode_fault_spec,
    encode_fault_event,
    encode_fault_spec,
)
from repro.core.system import SystemConfig
from repro.sim.engine import SimulationError, Simulator
from repro.sim.station import RouterStation, RoundRobinRouting
from repro.workloads.setups import get_setup


def _cluster(
    shards,
    seed=11,
    replicas=0,
    mpl=None,
    rate=40.0,
    routing="round_robin",
    read_fanout="round_robin",
    election_timeout_s=0.5,
):
    setup = get_setup(1)
    base = SystemConfig(
        workload=setup.workload,
        hardware=setup.hardware,
        isolation=setup.isolation,
        mpl=mpl,
        seed=seed,
        arrival_rate=rate,
    )
    return ClusteredSystem(
        ClusterConfig.scale_out(
            base,
            shards,
            routing=routing,
            replicas_per_shard=replicas,
            read_fanout=read_fanout,
            election_timeout_s=election_timeout_s,
        )
    )


def _conserved(system):
    """Cluster-wide conservation: every routed tx is in one frontend."""
    total = sum(
        shard.frontend.completed
        + shard.frontend.in_service
        + shard.frontend.queue_length
        for shard in system.shards
    )
    assert system.router.routed == total


class TestFaultSpecValidation:
    def test_needs_at_least_one_event(self):
        with pytest.raises(ValueError, match="at least one"):
            FaultSpec(events=())

    def test_events_must_be_fault_events(self):
        with pytest.raises(ValueError, match="FaultEvent"):
            FaultSpec(events=("kill",))

    def test_event_field_validation(self):
        with pytest.raises(ValueError, match="time"):
            KillShard(at=-1.0, shard=0)
        with pytest.raises(ValueError, match="time"):
            KillShard(at=True, shard=0)
        with pytest.raises(ValueError, match="shard"):
            KillShard(at=1.0, shard=-1)
        with pytest.raises(ValueError, match="shard"):
            KillShard(at=1.0, shard=1.5)

    def test_degrade_factor_bounds(self):
        with pytest.raises(ValueError, match="factor"):
            DegradeShard(at=1.0, shard=0, factor=0.0)
        with pytest.raises(ValueError, match="factor"):
            DegradeShard(at=1.0, shard=0, factor=1.5)
        with pytest.raises(ValueError, match="factor"):
            DegradeShard(at=1.0, shard=0, factor=True)
        assert DegradeShard(at=1.0, shard=0, factor=1.0).factor == 1.0

    def test_max_shard(self):
        spec = FaultSpec(events=(
            KillShard(at=1.0, shard=2),
            RestoreShard(at=2.0, shard=0),
        ))
        assert spec.max_shard() == 2

    def test_describe(self):
        assert "kill shard 1" in KillShard(at=2.0, shard=1).describe()
        assert "0.25x" in DegradeShard(at=1.0, shard=0, factor=0.25).describe()


class TestFaultFingerprints:
    def test_kill_and_restore_hash_distinctly(self):
        """Same fields, different event class -> different digest."""
        kill = KillShard(at=3.0, shard=0)
        restore = RestoreShard(at=3.0, shard=0)
        assert kill.fingerprint() != restore.fingerprint()

    def test_fingerprint_is_stable_and_field_sensitive(self):
        a = KillShard(at=3.0, shard=0)
        assert a.fingerprint() == KillShard(at=3.0, shard=0).fingerprint()
        assert a.fingerprint() != KillShard(at=3.0, shard=1).fingerprint()
        assert a.fingerprint() != KillShard(at=4.0, shard=0).fingerprint()

    def test_spec_fingerprint_covers_order_and_events(self):
        kill = KillShard(at=1.0, shard=0)
        restore = RestoreShard(at=2.0, shard=0)
        forward = FaultSpec(events=(kill, restore))
        backward = FaultSpec(events=(restore, kill))
        assert forward.fingerprint() != backward.fingerprint()
        assert forward.event_fingerprints() == (
            kill.fingerprint(), restore.fingerprint(),
        )


class TestFaultCodec:
    def test_round_trip_every_event_type(self):
        spec = FaultSpec(events=(
            KillShard(at=1.0, shard=0),
            DegradeShard(at=2.0, shard=1, factor=0.25),
            RestoreShard(at=3.0, shard=0),
        ))
        clone = decode_fault_spec(encode_fault_spec(spec))
        assert clone == spec
        assert clone.fingerprint() == spec.fingerprint()

    def test_none_passes_through(self):
        assert encode_fault_spec(None) is None
        assert decode_fault_spec(None) is None

    def test_unknown_event_type_errors(self):
        with pytest.raises(ValueError, match="unknown fault event type"):
            decode_fault_event({"type": "zap", "at": 1.0, "shard": 0})

    def test_unknown_event_keys_error(self):
        with pytest.raises(ValueError, match="unknown keys"):
            decode_fault_event(
                {"type": "kill", "at": 1.0, "shard": 0, "oops": 1}
            )
        # factor belongs to degrade only
        with pytest.raises(ValueError, match="unknown keys"):
            decode_fault_event(
                {"type": "kill", "at": 1.0, "shard": 0, "factor": 0.5}
            )

    def test_unknown_spec_keys_error(self):
        with pytest.raises(ValueError, match="unknown keys"):
            decode_fault_spec({"events": [], "oops": 1})
        with pytest.raises(ValueError, match="must be a list"):
            decode_fault_spec({"events": "kill"})
        with pytest.raises(ValueError, match="must be an object"):
            decode_fault_spec([1])
        with pytest.raises(ValueError, match="must be an object"):
            decode_fault_event("kill")

    def test_registry_matches_kind_tags(self):
        for kind, cls in FAULT_EVENT_TYPES.items():
            assert cls.kind == kind


class TestRouterLiveness:
    def _router(self, n=3):
        sim = Simulator()

        class Target:
            def __init__(self):
                self.in_service = 0
                self.queue_length = 0
                self.submitted = []
                self.adopted = []

            def submit(self, tx):
                self.submitted.append(tx)

            def adopt(self, tx):
                self.adopted.append(tx)

        class Tx:
            def __init__(self, tid):
                self.tid = tid
                self.priority = 0

        targets = [Target() for _ in range(n)]
        return RouterStation(sim, targets, RoundRobinRouting(n)), targets, Tx

    def test_dead_shard_falls_back_cyclically(self):
        router, targets, Tx = self._router(3)
        router.set_alive(1, False)
        assert not router.routable(1)
        assert router.live_targets() == [0, 2]
        for tid in range(1, 7):
            router.submit(Tx(tid))
        # round robin would have sent tids 2 and 5 to shard 1; the
        # cyclic fallback hands them to the next live shard (2)
        assert not targets[1].submitted
        assert len(targets[0].submitted) + len(targets[2].submitted) == 6

    def test_parked_survivor_is_the_target_of_last_resort(self):
        # a parked-but-alive shard must still take work when every
        # in-rotation shard is dead (elastic park racing a kill fault)
        router, targets, Tx = self._router(2)
        router.set_alive(0, False)
        router.set_rotation(1, False)
        router.submit(Tx(1))
        assert len(targets[1].submitted) == 1

    def test_no_live_targets_raises(self):
        router, _targets, Tx = self._router(2)
        router.set_alive(0, False)
        router.set_alive(1, False)
        router.set_rotation(1, False)
        with pytest.raises(SimulationError, match="no live targets"):
            router.submit(Tx(1))

    def test_reroute_counts_and_adopts(self):
        router, targets, Tx = self._router(2)
        router.submit(Tx(1))
        router.set_alive(0, False)
        tx = Tx(2)
        router.reroute(tx, 0)
        assert tx in targets[1].adopted
        assert router.rerouted == 1
        assert router.rerouted_from[0] == 1
        assert router.rerouted_to[1] == 1
        # reroute does not double-count the original routing decision
        assert router.routed == 1

    def test_index_validation(self):
        router, _targets, _Tx = self._router(2)
        with pytest.raises(ValueError, match="out of range"):
            router.set_alive(2, False)
        with pytest.raises(ValueError, match="out of range"):
            router.set_rotation(-1, False)


class TestClusterConfigReplicaValidation:
    def test_bad_values_rejected(self):
        setup = get_setup(1)
        base = SystemConfig(
            workload=setup.workload, hardware=setup.hardware,
            isolation=setup.isolation,
        )
        with pytest.raises(ValueError, match="replicas_per_shard"):
            ClusterConfig.scale_out(base, 2, replicas_per_shard=-1)
        with pytest.raises(ValueError, match="read fan-out"):
            ClusterConfig.scale_out(base, 2, read_fanout="nope")
        with pytest.raises(ValueError, match="election_timeout_s"):
            ClusterConfig.scale_out(base, 2, election_timeout_s=-1.0)

    def test_replicated_config_fingerprint_differs(self):
        setup = get_setup(1)
        base = SystemConfig(
            workload=setup.workload, hardware=setup.hardware,
            isolation=setup.isolation, mpl=8,
        )
        plain = ClusterConfig.scale_out(base, 2)
        replicated = ClusterConfig.scale_out(base, 2, replicas_per_shard=1)
        assert plain.fingerprint() != replicated.fingerprint()
        # a 1-shard cluster only collapses to the engine fingerprint
        # when it carries no replicas
        solo = ClusterConfig.scale_out(base, 1)
        solo_replicated = ClusterConfig.scale_out(base, 1, replicas_per_shard=1)
        assert solo.fingerprint() != solo_replicated.fingerprint()


class TestReplicaGroups:
    def test_kill_elects_deterministically(self):
        system = _cluster(2, replicas=1, mpl=8, rate=60.0)
        FaultInjector(system, FaultSpec(events=(
            KillShard(at=0.5, shard=0),
        ))).arm()
        system.run_transactions(80)
        group = system.shards[0].group
        assert group.elections == 1
        assert group.primary == 1
        assert group.alive == [False, True]
        # the shard stayed in rotation throughout: a live replica served
        assert system.router.alive[0]
        _conserved(system)

    def test_restore_revives_the_dead_member(self):
        system = _cluster(2, replicas=1, mpl=8, rate=60.0)
        FaultInjector(system, FaultSpec(events=(
            KillShard(at=0.4, shard=0),
            RestoreShard(at=1.2, shard=0),
        ))).arm()
        system.run_transactions(100)
        group = system.shards[0].group
        assert group.alive == [True, True]
        assert group.elections == 1
        _conserved(system)

    def test_double_kill_takes_the_shard_out_of_rotation(self):
        system = _cluster(2, replicas=1, mpl=8, rate=60.0,
                          election_timeout_s=0.2)
        FaultInjector(system, FaultSpec(events=(
            KillShard(at=0.4, shard=0),
            KillShard(at=0.8, shard=0),
        ))).arm()
        system.run_transactions(80)
        group = system.shards[0].group
        assert group.alive == [False, False]
        assert not group.available
        assert not system.router.alive[0]
        _conserved(system)

    def test_degrade_halves_and_restore_resets_the_mpl(self):
        system = _cluster(2, mpl=8, rate=60.0)
        assert system.shards[0].frontend.mpl == 4
        detail = system.degrade_shard(0, 0.5)
        assert system.shards[0].frontend.mpl == 2
        assert "4 -> 2" in detail
        # degrades compound, restore returns to the pre-degrade limit
        system.degrade_shard(0, 0.5)
        assert system.shards[0].frontend.mpl == 1
        system.restore_shard(0)
        assert system.shards[0].frontend.mpl == 4

    def test_degrade_is_a_noop_without_an_mpl(self):
        system = _cluster(2, mpl=None)
        assert "no-op" in system.degrade_shard(0, 0.5)
        with pytest.raises(ValueError, match="factor"):
            system.degrade_shard(0, 0.0)
        with pytest.raises(ValueError, match="out of range"):
            system.kill_shard(9)

    def test_plain_shard_kill_reroutes_queued_work(self):
        system = _cluster(2, mpl=4, rate=80.0)
        FaultInjector(system, FaultSpec(events=(
            KillShard(at=0.5, shard=0),
        ))).arm()
        system.run_transactions(60)
        assert not system.router.alive[0]
        assert system.kill_shard(0) == "shard already dead"
        _conserved(system)

    def test_faulted_runs_are_bit_identical(self):
        def run():
            system = _cluster(2, replicas=1, mpl=8, rate=60.0)
            FaultInjector(system, FaultSpec(events=(
                KillShard(at=0.4, shard=0),
                RestoreShard(at=1.2, shard=0),
            ))).arm()
            system.run_transactions(90)
            return [
                (r.tid, r.arrival_time, r.completion_time)
                for r in system.collector.records
            ]

        assert run() == run()

    def test_read_fanout_spreads_over_live_members(self):
        for fanout in READ_FANOUT_POLICIES:
            system = _cluster(1, replicas=1, mpl=8, rate=60.0,
                              read_fanout=fanout)
            system.run_transactions(40)
            group = system.shards[0].group
            dispatched = [m.dispatched for m in group.members]
            if fanout == "primary":
                assert dispatched[1] == 0
            else:
                assert all(d > 0 for d in dispatched), fanout
            _conserved(system)


class TestFaultInjector:
    def test_arm_twice_raises(self):
        system = _cluster(2, mpl=4)
        injector = FaultInjector(
            system, FaultSpec(events=(KillShard(at=1.0, shard=0),))
        )
        injector.arm()
        with pytest.raises(ValueError, match="already armed"):
            injector.arm()

    def test_past_events_are_rejected(self):
        system = _cluster(2, mpl=4, rate=60.0)
        system.run_transactions(30)
        assert system.sim.now > 0.0
        injector = FaultInjector(
            system, FaultSpec(events=(KillShard(at=0.0, shard=0),))
        )
        with pytest.raises(ValueError, match="in the past"):
            injector.arm()

    def test_applied_log_records_fire_times_and_details(self):
        system = _cluster(2, replicas=1, mpl=8, rate=60.0)
        injector = FaultInjector(system, FaultSpec(events=(
            KillShard(at=0.4, shard=0),
            DegradeShard(at=0.8, shard=1, factor=0.5),
            RestoreShard(at=1.2, shard=0),
        )))
        injector.arm()
        system.run_transactions(100)
        kinds = [fault["kind"] for fault in injector.applied_jsonable()]
        assert kinds == ["kill", "degrade", "restore"]
        for fault, at in zip(injector.applied, (0.4, 0.8, 1.2)):
            assert fault.at == pytest.approx(at)
        assert "election" in injector.applied[0].detail
