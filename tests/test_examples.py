"""The examples must stay runnable: execute each in a subprocess.

The heavyweight ones are exercised with reduced work via environment
independence — they are plain scripts, so we simply run them and check
for a zero exit and the expected headline output.
"""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"
SRC = EXAMPLES.parent / "src"


def _run(name, timeout=420):
    # child processes don't inherit pytest's in-process pythonpath
    # setting, so forward src explicitly for bare-checkout runs
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "ecommerce_priority.py",
        "mpl_autotuning.py",
        "capacity_planning.py",
        "open_system_response_time.py",
        "sharded_cluster.py",
    } <= names


def test_quickstart_runs():
    proc = _run("quickstart.py")
    assert proc.returncode == 0, proc.stderr
    assert "unlimited" in proc.stdout
    assert "throughput" in proc.stdout


def test_capacity_planning_runs():
    proc = _run("capacity_planning.py")
    assert proc.returncode == 0, proc.stderr
    assert "Figure 7" in proc.stdout or "linear" in proc.stdout


@pytest.mark.slow
def test_mpl_autotuning_runs():
    proc = _run("mpl_autotuning.py")
    assert proc.returncode == 0, proc.stderr
    assert "final MPL" in proc.stdout


@pytest.mark.slow
def test_ecommerce_priority_runs():
    proc = _run("ecommerce_priority.py")
    assert proc.returncode == 0, proc.stderr
    assert "VIP" in proc.stdout


@pytest.mark.slow
def test_open_system_example_runs():
    proc = _run("open_system_response_time.py")
    assert proc.returncode == 0, proc.stderr
    assert "C^2 = 15" in proc.stdout


def test_sharded_cluster_example_runs():
    proc = _run("sharded_cluster.py")
    assert proc.returncode == 0, proc.stderr
    assert "least_in_flight" in proc.stdout
    assert "re-splitting" in proc.stdout
