"""Tests for named random streams."""

from repro.sim.random import RandomStreams


def test_same_seed_same_stream():
    a = RandomStreams(42).stream("arrivals")
    b = RandomStreams(42).stream("arrivals")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_differ():
    streams = RandomStreams(42)
    a = streams.stream("arrivals")
    b = streams.stream("service")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_differ():
    a = RandomStreams(1).stream("x")
    b = RandomStreams(2).stream("x")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_stream_is_cached():
    streams = RandomStreams(7)
    assert streams.stream("x") is streams.stream("x")


def test_creation_order_does_not_matter():
    first = RandomStreams(9)
    first.stream("a")
    a_then = first.stream("b").random()
    second = RandomStreams(9)
    b_only = second.stream("b").random()
    assert a_then == b_only


def test_spawn_is_independent():
    parent = RandomStreams(5)
    child = parent.spawn("worker")
    assert child.seed != parent.seed
    assert parent.stream("x").random() != child.stream("x").random()


def test_spawn_is_reproducible():
    a = RandomStreams(5).spawn("worker").stream("x").random()
    b = RandomStreams(5).spawn("worker").stream("x").random()
    assert a == b
