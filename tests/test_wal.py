"""Tests for the WAL log manager."""

import random

import pytest

from repro.dbms.wal import LogManager
from repro.sim.distributions import Deterministic
from repro.sim.engine import Simulator


def _completion_times(sim, events):
    times = {}
    for index, event in enumerate(events):
        event.add_callback(lambda e, i=index: times.setdefault(i, sim.now))
    return times


def test_single_commit_takes_one_write():
    sim = Simulator()
    log = LogManager(sim, Deterministic(0.002), random.Random(0))
    times = _completion_times(sim, [log.commit()])
    sim.run()
    assert times[0] == pytest.approx(0.002)
    assert log.writes == 1


def test_group_commit_batches_concurrent_commits():
    sim = Simulator()
    log = LogManager(sim, Deterministic(1.0), random.Random(0), group_commit=True)
    first = log.commit()  # starts the write immediately

    def late_commits():
        yield sim.timeout(0.5)
        # both arrive during the in-flight write -> share the next one
        a = log.commit()
        b = log.commit()
        times = _completion_times(sim, [a, b])
        return times

    process = sim.process(late_commits())
    times0 = _completion_times(sim, [first])
    sim.run()
    assert times0[0] == pytest.approx(1.0)
    assert process.value[0] == pytest.approx(2.0)
    assert process.value[1] == pytest.approx(2.0)
    assert log.writes == 2
    assert log.commits == 3


def test_without_group_commit_each_write_separate():
    sim = Simulator()
    log = LogManager(sim, Deterministic(1.0), random.Random(0), group_commit=False)
    events = [log.commit() for _ in range(3)]
    times = _completion_times(sim, events)
    sim.run()
    assert times[0] == pytest.approx(1.0)
    assert times[1] == pytest.approx(2.0)
    assert times[2] == pytest.approx(3.0)
    assert log.writes == 3


def test_busy_time_and_utilization():
    sim = Simulator()
    log = LogManager(sim, Deterministic(0.5), random.Random(0))
    log.commit()
    sim.run()
    assert log.busy_time == pytest.approx(0.5)
    assert log.utilization(1.0) == pytest.approx(0.5)
    assert log.utilization(0.0) == 0.0
