"""Tests for the assembled simulated system."""

import pytest

from repro.core.system import RunResult, SimulatedSystem, SystemConfig, run_system
from repro.dbms.config import HardwareConfig
from repro.dbms.transaction import Priority
from repro.workloads.synthetic import synthetic_workload


def _config(**kwargs):
    defaults = dict(
        workload=synthetic_workload("s", demand_mean_ms=10.0, scv=1.0),
        hardware=HardwareConfig(num_cpus=1, num_disks=1, memory_mb=3072,
                                bufferpool_mb=1024),
        num_clients=20,
        seed=3,
    )
    defaults.update(kwargs)
    return SystemConfig(**defaults)


def test_closed_run_completes_requested_transactions():
    system = SimulatedSystem(_config())
    result = system.run(transactions=300)
    assert result.completed == 240  # 20% warmup dropped
    assert result.throughput > 0
    assert result.mean_response_time > 0


def test_closed_saturated_throughput_matches_capacity():
    result = run_system(_config(mpl=10), transactions=800)
    # 10ms exponential demands on one CPU: ~100 tx/s at saturation
    assert result.throughput == pytest.approx(100.0, rel=0.1)


def test_same_seed_reproduces_exactly():
    a = SimulatedSystem(_config()).run(transactions=200)
    b = SimulatedSystem(_config()).run(transactions=200)
    assert a.throughput == b.throughput
    assert a.mean_response_time == b.mean_response_time


def test_different_seeds_differ():
    a = SimulatedSystem(_config(seed=1)).run(transactions=200)
    b = SimulatedSystem(_config(seed=2)).run(transactions=200)
    assert a.mean_response_time != b.mean_response_time


def test_open_system_mode():
    config = _config(arrival_rate=50.0, mpl=5)
    result = SimulatedSystem(config).run(transactions=400)
    # offered load 0.5 on a 100/s server: throughput tracks arrivals
    assert result.throughput == pytest.approx(50.0, rel=0.15)


def test_open_system_little_law():
    config = _config(arrival_rate=60.0, mpl=10)
    system = SimulatedSystem(config)
    result = system.run(transactions=1500)
    # E[N] = lambda E[T]; mean number in system from Little should be
    # consistent with response times (sanity, loose tolerance)
    assert result.mean_response_time < 0.2  # stable queue


def test_priority_fraction_splits_classes():
    config = _config(high_priority_fraction=0.3, policy="priority", mpl=2)
    result = SimulatedSystem(config).run(transactions=600)
    high = result.count_by_class.get(int(Priority.HIGH), 0)
    low = result.count_by_class.get(int(Priority.LOW), 0)
    assert high + low == result.completed
    assert high / result.completed == pytest.approx(0.3, abs=0.07)


def test_priority_policy_differentiates():
    config = _config(high_priority_fraction=0.1, policy="priority", mpl=1,
                     num_clients=40)
    result = SimulatedSystem(config).run(transactions=800)
    assert result.high_response_time < result.low_response_time
    assert result.differentiation > 2.0


def test_think_time_reduces_load():
    saturated = SimulatedSystem(_config()).run(transactions=400)
    relaxed = SimulatedSystem(
        _config(think_time_s=1.0)
    ).run(transactions=400)
    assert relaxed.mean_response_time < saturated.mean_response_time


def test_run_result_fields_populated():
    result = SimulatedSystem(_config(mpl=4)).run(transactions=300)
    assert isinstance(result, RunResult)
    assert result.mpl == 4
    assert set(result.utilizations) == {"cpu", "disk", "log"}
    assert result.sim_time > 0
    assert result.mean_external_wait >= 0
    assert result.restart_rate >= 0


def test_run_transactions_returns_window():
    system = SimulatedSystem(_config(mpl=2))
    first = system.run_transactions(50)
    second = system.run_transactions(50)
    assert len(first) == 50 and len(second) == 50
    assert second[0].completion_time >= first[-1].completion_time


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        SimulatedSystem(_config(arrival_rate=-1.0))
    system = SimulatedSystem(_config())
    with pytest.raises(ValueError):
        system.run_transactions(0)
    with pytest.raises(ValueError):
        system.run(transactions=100, warmup_fraction=1.0)
