"""Tests for the experiment runner helpers."""

import pytest

from repro.dbms.config import InternalPolicy, IsolationLevel
from repro.experiments.runner import (
    find_min_mpl_experimental,
    setup_config,
    tune_setup,
)
from repro.workloads.setups import get_setup


class TestSetupConfig:
    def test_carries_setup_pieces(self):
        setup = get_setup(14)  # UR isolation
        config = setup_config(setup, mpl=7, policy="priority")
        assert config.isolation is IsolationLevel.UR
        assert config.mpl == 7
        assert config.policy == "priority"
        assert config.hardware == setup.hardware

    def test_internal_policy_forwarded(self):
        config = setup_config(get_setup(1), internal=InternalPolicy.pow_locks())
        assert config.internal.lock_scheduling.value == "pow"

    def test_open_mode(self):
        config = setup_config(get_setup(1), arrival_rate=25.0)
        assert config.arrival_rate == 25.0


class TestTuneSetup:
    def test_produces_converging_result(self):
        tuning = tune_setup(get_setup(1), transactions=600)
        assert tuning.final_mpl >= 1
        assert tuning.report.iterations >= 1
        assert tuning.baseline.throughput > 0

    def test_looser_budget_allows_lower_mpl(self):
        tight = tune_setup(get_setup(8), max_throughput_loss=0.05,
                           transactions=500)
        loose = tune_setup(get_setup(8), max_throughput_loss=0.30,
                           transactions=500)
        assert loose.final_mpl <= tight.final_mpl


class TestFindMinMpl:
    def test_validation(self):
        with pytest.raises(ValueError):
            find_min_mpl_experimental(get_setup(1), fraction=0.0)

    def test_min_mpl_increases_with_fraction(self):
        relaxed = find_min_mpl_experimental(
            get_setup(2), fraction=0.6,
            candidate_mpls=(1, 2, 4, 8, 16), transactions=400,
        )
        strict = find_min_mpl_experimental(
            get_setup(2), fraction=0.95,
            candidate_mpls=(1, 2, 4, 8, 16), transactions=400,
        )
        assert strict.min_mpl >= relaxed.min_mpl
