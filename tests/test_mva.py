"""Tests for the exact MVA solver."""

import pytest

from repro.queueing.mva import (
    Station,
    balanced_throughput_fraction,
    mva,
)


def test_single_station_single_job():
    result = mva([Station("cpu", demand=2.0)], population=1)
    assert result.throughput(1) == pytest.approx(0.5)


def test_single_station_saturates():
    result = mva([Station("cpu", demand=2.0)], population=50)
    assert result.throughput(50) == pytest.approx(0.5, rel=1e-6)
    assert result.max_throughput == pytest.approx(0.5)


def test_balanced_network_matches_closed_form():
    """For M identical stations: X(n) = n / (D (n + M - 1)) exactly."""
    stations = [Station(f"s{i}", demand=1.0) for i in range(4)]
    result = mva(stations, population=20)
    for n in range(1, 21):
        expected = n / (n + 4 - 1)
        assert result.throughput(n) == pytest.approx(expected, rel=1e-9)
        assert balanced_throughput_fraction(4, n) == pytest.approx(expected)


def test_unbalanced_bottleneck_dominates():
    stations = [Station("fast", demand=0.5), Station("slow", demand=2.0)]
    result = mva(stations, population=40)
    assert result.throughput(40) == pytest.approx(0.5, rel=0.01)
    assert result.max_throughput == pytest.approx(0.5)


def test_throughput_monotone_in_population():
    stations = [Station("a", demand=1.0), Station("b", demand=0.7)]
    result = mva(stations, population=30)
    throughputs = result.throughputs
    assert all(b >= a - 1e-12 for a, b in zip(throughputs, throughputs[1:]))


def test_delay_station_adds_think_time():
    # interactive response time law: X = N / (R + Z)
    result = mva(
        [Station("cpu", demand=1.0), Station("think", demand=9.0, delay=True)],
        population=1,
    )
    assert result.throughput(1) == pytest.approx(0.1)


def test_multiserver_station_matches_two_singles_at_high_load():
    """A 2-server station saturates at 2/D like two parallel servers."""
    result = mva([Station("pool", demand=1.0, servers=2)], population=40)
    assert result.throughput(40) == pytest.approx(2.0, rel=0.01)
    assert result.max_throughput == pytest.approx(2.0)


def test_multiserver_one_job_sees_no_queueing():
    result = mva([Station("pool", demand=1.0, servers=4)], population=1)
    assert result.throughput(1) == pytest.approx(1.0)


def test_multiserver_marginal_probabilities_consistent():
    # queue lengths from the load-dependent recursion must sum to N
    stations = [
        Station("pool", demand=1.0, servers=2),
        Station("disk", demand=0.8),
    ]
    result = mva(stations, population=10)
    total_queue = sum(result.queue_lengths[-1].values())
    assert total_queue == pytest.approx(10.0, rel=1e-6)


def test_queue_lengths_sum_to_population_single_servers():
    stations = [Station(f"s{i}", demand=1.0 + 0.1 * i) for i in range(3)]
    result = mva(stations, population=12)
    assert sum(result.queue_lengths[-1].values()) == pytest.approx(12.0, rel=1e-9)


def test_relative_throughput_bounds():
    result = mva([Station("a", demand=1.0)], population=5)
    for n in range(1, 6):
        assert 0.0 < result.relative_throughput(n) <= 1.0


def test_population_validation():
    with pytest.raises(ValueError):
        mva([Station("a", demand=1.0)], population=0)
    with pytest.raises(ValueError):
        mva([], population=1)
    result = mva([Station("a", demand=1.0)], population=3)
    with pytest.raises(ValueError):
        result.throughput(4)


def test_station_validation():
    with pytest.raises(ValueError):
        Station("bad", demand=-1.0)
    with pytest.raises(ValueError):
        Station("bad", demand=1.0, servers=0)


def test_balanced_fraction_validation():
    with pytest.raises(ValueError):
        balanced_throughput_fraction(0, 1)
    with pytest.raises(ValueError):
        balanced_throughput_fraction(1, 0)
