"""Analytic cross-check of the partly-open arrival regime (ROADMAP item).

Schroeder et al.'s open/closed criterion says a partly-open system
behaves like an *open* system when sessions are short (mean length
→ 1) and drifts toward *closed* behavior as sessions grow.  The same
way Figures 7/10 are locked to their queueing models, this suite pins
the `po` sweep to the analytic anchors of that criterion on a
single-resource workload the models describe exactly (one CPU, pure-CPU
demands, C² = 2 — an M/G/1 up to the MPL limit):

* **stability** — throughput equals the offered rate at every session
  mix (a partly-open system is open at the session level, so offered
  load below capacity must be carried);
* **open limit** — at mix 1 and unbounded MPL the mean response time
  matches M/G/1-PS;
* **FIFO limit** — at mix 1 and MPL 1 it falls in the
  Pollaczek–Khinchine band (≥ PS, ≈ M/G/1-FIFO);
* **MPL sensitivity** — for C² > 1 the open-ish regime pays a strict
  response-time penalty at MPL 1 (the paper's §3.2 criterion), seed by
  seed under common random numbers;
* **closed drift** — long sessions (mix 16) at generous MPL beat the
  short-session system at MPL 1 on average.
"""

import pytest

from repro.core.arrivals import PartlyOpenArrivals
from repro.core.system import SimulatedSystem, SystemConfig
from repro.dbms.config import HardwareConfig
from repro.experiments.figures import partly_open_grid
from repro.metrics import stats
from repro.queueing.mg1 import mg1_fifo_response_time, mg1_ps_response_time

#: One CPU, database fully cached: the engine degenerates to a single
#: PS server with the workload's CPU demand — exactly what the M/G/1
#: references describe.
SERVICE_MEAN_S = 0.020
SERVICE_SCV = 2.0
LOAD = 0.6
RATE = LOAD / SERVICE_MEAN_S  # 30 tx/s offered
SEEDS = (3, 7, 11, 23)
TRANSACTIONS = 2500


@pytest.fixture(scope="module")
def measurements():
    """All (mix, mpl, seed) cells the assertions below share."""
    from repro.workloads.synthetic import synthetic_workload

    workload = synthetic_workload(
        "po-crosscheck", demand_mean_ms=SERVICE_MEAN_S * 1000.0, scv=SERVICE_SCV
    )
    hardware = HardwareConfig(num_cpus=1, memory_mb=4096, bufferpool_mb=4096)
    cells = {}
    for mix, mpl in ((1.0, 1), (1.0, None), (16.0, None)):
        for seed in SEEDS:
            config = SystemConfig(
                workload=workload,
                hardware=hardware,
                mpl=mpl,
                seed=seed,
                arrival=PartlyOpenArrivals.for_load(RATE, mix),
            )
            cells[(mix, mpl, seed)] = SimulatedSystem(config).run(
                transactions=TRANSACTIONS
            )
    return cells


def _mean_rt(cells, mix, mpl):
    return stats.mean(
        [cells[(mix, mpl, seed)].mean_response_time for seed in SEEDS]
    )


class TestOpenClosedCriterion:
    def test_stability_throughput_tracks_offered_rate_at_every_mix(
        self, measurements
    ):
        """Below capacity, every mix must carry the offered load.

        Short sessions are checked seed-by-seed; long sessions make
        the finite measurement window bursty (a 2500-transaction run
        sees only ~150 sessions), so the mix-16 rate is held to the
        seed average instead.
        """
        for seed in SEEDS:
            for mpl in (1, None):
                observed = measurements[(1.0, mpl, seed)].throughput
                assert observed == pytest.approx(RATE, rel=0.05), (mpl, seed)
        mix16 = stats.mean(
            [measurements[(16.0, None, seed)].throughput for seed in SEEDS]
        )
        assert mix16 == pytest.approx(RATE, rel=0.10)

    def test_open_limit_matches_mg1_ps(self, measurements):
        """Mix 1 + unbounded MPL is the paper's open system: M/G/1-PS."""
        ps = mg1_ps_response_time(RATE, SERVICE_MEAN_S)
        assert _mean_rt(measurements, 1.0, None) == pytest.approx(ps, rel=0.25)

    def test_mpl_one_falls_in_the_pollaczek_khinchine_band(self, measurements):
        """Mix 1 + MPL 1 serializes the server: ≥ PS, ≈ M/G/1-FIFO."""
        ps = mg1_ps_response_time(RATE, SERVICE_MEAN_S)
        fifo = mg1_fifo_response_time(RATE, SERVICE_MEAN_S, SERVICE_SCV)
        observed = _mean_rt(measurements, 1.0, 1)
        assert observed >= 0.95 * ps
        assert observed == pytest.approx(fifo, rel=0.35)

    def test_low_mpl_penalty_for_variable_demand_every_seed(self, measurements):
        """§3.2's criterion: with C² > 1, MPL 1 strictly inflates the
        open-ish system's response time — paired per seed (common
        random numbers), like the paper's hardware experiments."""
        for seed in SEEDS:
            limited = measurements[(1.0, 1, seed)].mean_response_time
            unlimited = measurements[(1.0, None, seed)].mean_response_time
            assert limited > 1.1 * unlimited, seed

    def test_long_sessions_drift_toward_closed_behavior(self, measurements):
        """Mix 16 at generous MPL averages below the open-ish system
        pinned at MPL 1 — the closed-direction half of the criterion."""
        assert _mean_rt(measurements, 16.0, None) < _mean_rt(measurements, 1.0, 1)


class TestPoGridAnalyticInvariants:
    def test_offered_rate_is_mix_invariant_by_construction(self):
        """`for_load` holds the transaction rate constant across mixes
        — the property that makes the `po` figure's columns comparable."""
        specs = partly_open_grid(fast=True, mpls=(2, 8), rate=40.0)
        for spec in specs:
            assert spec.arrival.transaction_rate == pytest.approx(40.0)

    def test_mixes_span_open_to_nearly_closed(self):
        specs = partly_open_grid(fast=True, mpls=(2,))
        mixes = {spec.arrival.mean_session_length for spec in specs}
        assert min(mixes) == 1.0  # the pure-open corner is present
        assert max(mixes) >= 16.0  # and a strongly closed-leaning one
