"""Tests for the matrix-geometric QBD solver."""

import numpy as np
import pytest

from repro.queueing.qbd import (
    QbdConvergenceError,
    compute_rate_matrix,
    geometric_tail_sums,
    validate_generator_rows,
)


def test_mm1_rate_matrix_is_rho():
    """For M/M/1 as a 1-phase QBD, R = lambda/mu."""
    lam, mu = 0.6, 1.0
    a0 = np.array([[lam]])
    a1 = np.array([[-(lam + mu)]])
    a2 = np.array([[mu]])
    r = compute_rate_matrix(a0, a1, a2)
    assert r[0, 0] == pytest.approx(lam / mu, rel=1e-9)


def test_unstable_chain_raises():
    lam, mu = 1.2, 1.0  # offered load > 1
    a0 = np.array([[lam]])
    a1 = np.array([[-(lam + mu)]])
    a2 = np.array([[mu]])
    with pytest.raises(QbdConvergenceError):
        compute_rate_matrix(a0, a1, a2)


def test_rate_matrix_solves_quadratic():
    """R must satisfy A0 + R A1 + R^2 A2 = 0."""
    lam = 0.5
    mu1, mu2, p = 2.0, 0.25, 0.7
    size = 3
    rng = np.random.default_rng(1)
    # build a small random-but-valid QBD: uniformized service phases
    a0 = lam * np.eye(size)
    a2 = np.array(
        [[0.8, 0.1, 0.0], [0.2, 0.6, 0.1], [0.0, 0.3, 0.7]]
    )
    local_off = np.array(
        [[0.0, 0.1, 0.0], [0.05, 0.0, 0.05], [0.0, 0.1, 0.0]]
    )
    a1 = local_off.copy()
    for i in range(size):
        a1[i, i] = -(lam + a2[i].sum() + local_off[i].sum())
    r = compute_rate_matrix(a0, a1, a2)
    residual = a0 + r @ a1 + r @ r @ a2
    assert np.max(np.abs(residual)) < 1e-9
    assert np.all(r >= -1e-12)


def test_geometric_tail_sums():
    r = np.array([[0.5]])
    inv1, inv2 = geometric_tail_sums(r)
    assert inv1[0, 0] == pytest.approx(2.0)
    assert inv2[0, 0] == pytest.approx(4.0)


def test_mismatched_blocks_rejected():
    with pytest.raises(ValueError):
        compute_rate_matrix(np.eye(2), np.eye(3), np.eye(2))


def test_validate_generator_rows():
    validate_generator_rows(np.zeros(3))
    with pytest.raises(ValueError):
        validate_generator_rows(np.array([0.0, 1e-3]))
