"""Tests for the workload generators and the Table 1/2 catalog."""

import hashlib
import json
import os
import random

import pytest

from repro.core.arrivals import TraceArrivals
from repro.core.system import canonical_jsonable
from repro.dbms.config import IsolationLevel
from repro.metrics import stats
from repro.sim.distributions import Deterministic, Exponential
from repro.workloads.setups import (
    NUM_CLIENTS,
    SETUPS,
    WORKLOADS,
    WORKLOAD_MEMORY,
    get_setup,
    get_workload,
)
from repro.workloads.spec import TransactionType, WorkloadSpec
from repro.workloads.synthetic import synthetic_workload
from repro.workloads.tpcc import tpcc_workload
from repro.workloads.tpcw import tpcw_workload
from repro.workloads.traces import (
    auction_site_trace,
    get_trace,
    load_trace_file,
    online_retailer_trace,
    trace_workload,
)


def _sample_cpu_scv(spec, n=30_000, seed=2):
    rng = random.Random(seed)
    demands = [spec.sample_transaction(rng, i).cpu_demand for i in range(n)]
    return stats.mean(demands), stats.scv(demands)


class TestWorkloadSpec:
    def _spec(self, **kwargs):
        tx_type = TransactionType(
            name="only", weight=1.0,
            cpu_demand=Exponential(0.01),
            page_accesses=Deterministic(10),
            hot_locks=1, shared_locks=2, exclusive_locks=1,
        )
        defaults = dict(name="w", types=(tx_type,), db_mb=100)
        defaults.update(kwargs)
        return WorkloadSpec(**defaults)

    def test_db_pages(self):
        assert self._spec(db_mb=4).db_pages == 1024  # 4 MB of 4 KB pages

    def test_sample_transaction_fields(self):
        spec = self._spec()
        tx = spec.sample_transaction(random.Random(0), 7)
        assert tx.tid == 7
        assert tx.cpu_demand > 0
        assert tx.page_accesses >= 0
        assert len(tx.lock_requests) >= 1

    def test_locks_sorted_when_not_disordered(self):
        spec = self._spec(lock_disorder=0.0)
        rng = random.Random(0)
        for tid in range(50):
            tx = spec.sample_transaction(rng, tid)
            items = [item for item, _mode in tx.lock_requests]
            assert items == sorted(items)

    def test_locks_deduplicated_strongest_mode(self):
        spec = self._spec(hot_set_size=1, lock_disorder=0.0)
        rng = random.Random(0)
        tx = spec.sample_transaction(rng, 1)
        items = [item for item, _mode in tx.lock_requests]
        assert len(items) == len(set(items))

    def test_demand_moments_match_sampling(self):
        spec = self._spec()
        mean, scv = spec.demand_moments(0.008, 0.5)
        rng = random.Random(1)
        sampled = [
            spec.sample_transaction(rng, i).cpu_demand + 10 * 0.5 * 0.008
            for i in range(30_000)
        ]
        assert mean == pytest.approx(stats.mean(sampled), rel=0.05)

    def test_update_fraction(self):
        spec = self._spec()
        assert spec.update_fraction() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            self._spec(db_mb=0)
        with pytest.raises(ValueError):
            WorkloadSpec(name="w", types=(), db_mb=10)


class TestTpccWorkload:
    def test_cpu_mean_calibrated(self):
        spec = tpcc_workload("t", db_mb=1024, cpu_mean_ms=15.0,
                             pages_mean=40.0, warehouses=10)
        mean, _scv = spec.cpu_demand_moments()
        assert mean == pytest.approx(0.015, rel=1e-6)

    def test_scv_in_paper_band(self):
        """The paper measures C^2 in 1.0-1.5 for TPC-C (3.2)."""
        spec = tpcc_workload("t", db_mb=1024, cpu_mean_ms=15.0,
                             pages_mean=40.0, warehouses=10)
        _mean, scv = _sample_cpu_scv(spec)
        assert 0.9 <= scv <= 1.8

    def test_mix_is_tpcc(self):
        spec = tpcc_workload("t", db_mb=1024, cpu_mean_ms=15.0,
                             pages_mean=40.0, warehouses=10)
        names = {t.name for t in spec.types}
        assert names == {"NewOrder", "Payment", "OrderStatus", "Delivery", "StockLevel"}
        assert spec.update_fraction() == pytest.approx(0.92)

    def test_hot_set_scales_with_warehouses(self):
        small = tpcc_workload("s", 1024, 15.0, 40.0, warehouses=10)
        large = tpcc_workload("l", 6144, 5.0, 31.0, warehouses=60)
        assert large.hot_set_size == 6 * small.hot_set_size

    def test_invalid_warehouses(self):
        with pytest.raises(ValueError):
            tpcc_workload("t", 1024, 15.0, 40.0, warehouses=0)


class TestTpcwWorkload:
    def test_browsing_scv_near_paper_value(self):
        """The paper measures C^2 ~= 15 for TPC-W (3.2)."""
        spec = tpcw_workload("t", db_mb=300, cpu_mean_ms=105.0,
                             pages_mean=30.0, mix="browsing")
        _mean, scv = _sample_cpu_scv(spec, n=60_000)
        assert 10.0 <= scv <= 22.0

    def test_ordering_mix_has_more_updates(self):
        browsing = tpcw_workload("b", 300, 105.0, 30.0, mix="browsing")
        ordering = tpcw_workload("o", 300, 55.0, 25.0, mix="ordering")
        assert ordering.update_fraction() > browsing.update_fraction()

    def test_cpu_mean_calibrated(self):
        spec = tpcw_workload("t", 300, 105.0, 30.0, mix="browsing")
        mean, _ = spec.cpu_demand_moments()
        assert mean == pytest.approx(0.105, rel=1e-6)

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError):
            tpcw_workload("t", 300, 105.0, 30.0, mix="banana")


class TestSyntheticWorkload:
    @pytest.mark.parametrize("scv", [1.0, 2.0, 5.0, 15.0])
    def test_scv_dialled_in(self, scv):
        spec = synthetic_workload("s", demand_mean_ms=50.0, scv=scv)
        mean, measured = _sample_cpu_scv(spec, n=60_000)
        assert mean == pytest.approx(0.050, rel=0.05)
        assert measured == pytest.approx(scv, rel=0.25)

    def test_io_fraction_splits_demand(self):
        spec = synthetic_workload("s", demand_mean_ms=100.0, scv=2.0,
                                  io_fraction=0.4)
        mean, _ = spec.cpu_demand_moments()
        assert mean == pytest.approx(0.060, rel=1e-6)
        assert spec.page_access_mean() == pytest.approx(0.040 / 0.008, rel=1e-6)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            synthetic_workload("s", demand_mean_ms=-1.0, scv=1.0)
        with pytest.raises(ValueError):
            synthetic_workload("s", demand_mean_ms=1.0, scv=1.0, io_fraction=1.0)


class TestTraces:
    def test_retailer_scv_near_two(self):
        trace = online_retailer_trace(transactions=20_000)
        assert trace.demand_scv == pytest.approx(2.0, rel=0.15)

    def test_auction_scv_near_two(self):
        trace = auction_site_trace(transactions=20_000)
        assert trace.demand_scv == pytest.approx(2.2, rel=0.15)

    def test_arrivals_are_increasing(self):
        trace = online_retailer_trace(transactions=100)
        arrivals = [r.arrival_time for r in trace.records]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0

    def test_trace_workload_preserves_moments(self):
        trace = online_retailer_trace(transactions=5000)
        spec = trace_workload(trace)
        mean, scv = spec.cpu_demand_moments()
        demands = trace.demands
        assert mean == pytest.approx(stats.mean(demands), rel=1e-9)

    def test_traces_are_reproducible(self):
        a = online_retailer_trace(transactions=100, seed=1)
        b = online_retailer_trace(transactions=100, seed=1)
        assert a.demands == b.demands


FIXTURE_CSV = os.path.join(os.path.dirname(__file__), "data", "trace_fixture.csv")
FIXTURE_JSONL = os.path.join(os.path.dirname(__file__), "data", "trace_fixture.jsonl")


class TestFileTraces:
    def test_csv_fixture_loads(self):
        trace = load_trace_file(FIXTURE_CSV)
        assert trace.name == "trace_fixture.csv"
        assert len(trace.records) == 12
        assert trace.records[0].arrival_time == 0.0
        assert trace.records[-1].service_demand == 0.031
        # the duplicate timestamp (two arrivals at 0.125) survives
        assert [r.arrival_time for r in trace.records].count(0.125) == 2

    def test_digest_is_file_sha256(self):
        with open(FIXTURE_CSV, "rb") as fh:
            expected = hashlib.sha256(fh.read()).hexdigest()
        assert load_trace_file(FIXTURE_CSV).digest == expected

    def test_jsonl_parses_same_records_with_different_digest(self):
        csv_trace = load_trace_file(FIXTURE_CSV)
        jsonl_trace = load_trace_file(FIXTURE_JSONL)
        assert jsonl_trace.records == csv_trace.records
        # identity is the file bytes, not the parsed floats: a format
        # change deliberately invalidates cached results
        assert jsonl_trace.digest != csv_trace.digest

    def test_get_trace_routes_file_prefix(self):
        trace = get_trace(f"file:{FIXTURE_CSV}")
        assert trace.records == load_trace_file(FIXTURE_CSV).records
        # memoized: the file is read once per process
        assert get_trace(f"file:{FIXTURE_CSV}") is trace

    def test_file_traces_take_no_generation_params(self):
        with pytest.raises(ValueError, match="no generation parameters"):
            get_trace(f"file:{FIXTURE_CSV}", transactions=10)

    def test_rewritten_file_is_not_served_stale(self, tmp_path):
        # pre-fix the memo was keyed by name alone, so a file whose
        # bytes changed within one process kept returning the old
        # records under the old digest
        path = tmp_path / "rewrite.csv"
        path.write_text("0.0,0.01\n1.0,0.01\n")
        first = get_trace(f"file:{path}")
        assert len(first.records) == 2
        path.write_text("0.0,0.01\n1.0,0.01\n2.0,0.02\n")
        second = get_trace(f"file:{path}")
        assert len(second.records) == 3
        assert second.digest != first.digest

    def test_rejects_negative_timestamps(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("-5.0,0.01\n1.0,0.01\n")
        with pytest.raises(ValueError, match=">= 0"):
            load_trace_file(str(path))

    def test_trace_arrivals_digest_is_file_sha256(self):
        with open(FIXTURE_CSV, "rb") as fh:
            expected = hashlib.sha256(fh.read()).hexdigest()
        spec = TraceArrivals(trace_name=f"file:{FIXTURE_CSV}")
        assert expected in json.dumps(canonical_jsonable(spec))

    def test_rejects_decreasing_timestamps(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("0.5,0.01\n0.25,0.01\n")
        with pytest.raises(ValueError, match="non-decreasing"):
            load_trace_file(str(path))

    def test_rejects_negative_demand(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("0.0,-0.01\n")
        with pytest.raises(ValueError, match="negative service demand"):
            load_trace_file(str(path))

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("# only a comment\n")
        with pytest.raises(ValueError, match="no records"):
            load_trace_file(str(path))

    def test_rejects_non_numeric_data_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("timestamp,demand\n0.0,0.01\nnope,0.02\n")
        with pytest.raises(ValueError, match="non-numeric"):
            load_trace_file(str(path))

    def test_jsonl_pair_and_object_rows_mix(self, tmp_path):
        path = tmp_path / "mix.jsonl"
        path.write_text('{"timestamp": 0.0, "demand": 0.01}\n[0.5, 0.02]\n')
        trace = load_trace_file(str(path))
        assert [r.service_demand for r in trace.records] == [0.01, 0.02]

    def test_jsonl_rejects_bad_shapes(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"timestamp": 0.0}\n')
        with pytest.raises(ValueError, match="keys"):
            load_trace_file(str(path))
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="pair"):
            load_trace_file(str(path))


class TestSetupCatalog:
    def test_six_workloads(self):
        assert len(WORKLOADS) == 6
        assert set(WORKLOAD_MEMORY) == set(WORKLOADS)

    def test_seventeen_setups(self):
        assert len(SETUPS) == 17
        assert [s.setup_id for s in SETUPS] == list(range(1, 18))

    def test_table2_rows_match_paper(self):
        s1 = get_setup(1)
        assert (s1.workload_name, s1.num_cpus, s1.num_disks, s1.isolation) == (
            "W_CPU-inventory", 1, 1, IsolationLevel.RR,
        )
        s8 = get_setup(8)
        assert (s8.workload_name, s8.num_disks) == ("W_IO-inventory", 4)
        s17 = get_setup(17)
        assert (s17.workload_name, s17.isolation) == (
            "W_CPU-inventory", IsolationLevel.UR,
        )

    def test_hardware_from_table1_memory(self):
        setup = get_setup(5)  # W_IO-inventory: 512 MB memory, 100 MB pool
        hardware = setup.hardware
        assert hardware.memory_mb == 512
        assert hardware.bufferpool_mb == 100
        # a 6 GB database against that machine is I/O bound
        assert hardware.cache_pages * 4 < setup.workload.db_mb * 1024 // 4

    def test_io_workloads_miss_and_cpu_workloads_hit(self):
        from repro.dbms.bufferpool import AnalyticBufferPool

        def hit_probability(setup_id):
            setup = get_setup(setup_id)
            pool = AnalyticBufferPool(setup.workload.db_pages,
                                      setup.hardware.cache_pages)
            return pool.hit_probability

        assert hit_probability(1) == 1.0  # W_CPU-inventory fully cached
        assert hit_probability(3) == 1.0  # W_CPU-browsing fully cached
        assert hit_probability(5) < 0.3  # W_IO-inventory mostly misses

    def test_get_helpers_validate(self):
        with pytest.raises(KeyError):
            get_setup(0)
        with pytest.raises(KeyError):
            get_setup(18)
        with pytest.raises(KeyError):
            get_workload("nope")

    def test_describe_mentions_pieces(self):
        text = get_setup(12).describe()
        assert "W_CPU+IO-inventory" in text and "2 CPU" in text

    def test_num_clients_constant(self):
        assert NUM_CLIENTS == 100
