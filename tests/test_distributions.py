"""Tests for the service-time distributions."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.distributions import (
    Deterministic,
    Empirical,
    Erlang,
    Exponential,
    Hyperexponential,
    LogNormal,
    Mixture,
    Pareto,
    Uniform,
    fit_hyperexponential,
    moments_to_scv,
)


def _sample_mean(dist, n=40_000, seed=1):
    rng = random.Random(seed)
    return sum(dist.sample(rng) for _ in range(n)) / n


def _sample_moments(dist, n=60_000, seed=1):
    rng = random.Random(seed)
    values = [dist.sample(rng) for _ in range(n)]
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return mean, var


class TestDeterministic:
    def test_sample_is_constant(self):
        dist = Deterministic(3.5)
        rng = random.Random(0)
        assert all(dist.sample(rng) == 3.5 for _ in range(10))

    def test_moments(self):
        dist = Deterministic(3.5)
        assert dist.mean == 3.5
        assert dist.variance == 0.0
        assert dist.scv == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Deterministic(-1.0)


class TestExponential:
    def test_moments(self):
        dist = Exponential(2.0)
        assert dist.mean == 2.0
        assert dist.variance == 4.0
        assert dist.scv == 1.0

    def test_sample_mean_close(self):
        assert _sample_mean(Exponential(0.5)) == pytest.approx(0.5, rel=0.03)

    def test_invalid_mean(self):
        with pytest.raises(ValueError):
            Exponential(0.0)


class TestUniform:
    def test_moments(self):
        dist = Uniform(1.0, 3.0)
        assert dist.mean == 2.0
        assert dist.variance == pytest.approx(4.0 / 12.0)

    def test_samples_within_bounds(self):
        dist = Uniform(1.0, 3.0)
        rng = random.Random(0)
        assert all(1.0 <= dist.sample(rng) <= 3.0 for _ in range(100))

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Uniform(3.0, 1.0)


class TestErlang:
    def test_scv_is_inverse_k(self):
        assert Erlang(4, 1.0).scv == pytest.approx(0.25)

    def test_sampled_moments(self):
        mean, var = _sample_moments(Erlang(3, 2.0), n=40_000)
        assert mean == pytest.approx(2.0, rel=0.03)
        assert var == pytest.approx(4.0 / 3.0, rel=0.1)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            Erlang(0, 1.0)


class TestHyperexponential:
    def test_moments_formula(self):
        dist = Hyperexponential([0.3, 0.7], [2.0, 0.5])
        expected_mean = 0.3 / 2.0 + 0.7 / 0.5
        assert dist.mean == pytest.approx(expected_mean)

    def test_sampled_moments_match(self):
        dist = Hyperexponential([0.6, 0.4], [4.0, 0.8])
        mean, var = _sample_moments(dist)
        assert mean == pytest.approx(dist.mean, rel=0.03)
        assert var == pytest.approx(dist.variance, rel=0.1)

    def test_probs_must_sum_to_one(self):
        with pytest.raises(ValueError):
            Hyperexponential([0.5, 0.6], [1.0, 1.0])

    def test_rates_must_be_positive(self):
        with pytest.raises(ValueError):
            Hyperexponential([0.5, 0.5], [1.0, 0.0])


class TestFitHyperexponential:
    def test_scv_one_gives_exponential(self):
        dist = fit_hyperexponential(2.0, 1.0)
        assert isinstance(dist, Exponential)
        assert dist.mean == 2.0

    def test_scv_zero_gives_deterministic(self):
        dist = fit_hyperexponential(2.0, 0.0)
        assert isinstance(dist, Deterministic)

    def test_scv_below_one_gives_erlang(self):
        dist = fit_hyperexponential(2.0, 0.25)
        assert isinstance(dist, Erlang)
        assert dist.scv == pytest.approx(0.25)

    @pytest.mark.parametrize("scv", [1.5, 2.0, 5.0, 10.0, 15.0, 40.0])
    def test_high_scv_fit_is_exact(self, scv):
        dist = fit_hyperexponential(3.0, scv)
        assert dist.mean == pytest.approx(3.0, rel=1e-9)
        assert dist.scv == pytest.approx(scv, rel=1e-6)

    @given(
        mean=st.floats(min_value=1e-3, max_value=1e3),
        scv=st.floats(min_value=1.0, max_value=100.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_fit_matches_requested_moments(self, mean, scv):
        dist = fit_hyperexponential(mean, scv)
        assert dist.mean == pytest.approx(mean, rel=1e-6)
        assert dist.scv == pytest.approx(scv, rel=1e-4)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            fit_hyperexponential(-1.0, 2.0)
        with pytest.raises(ValueError):
            fit_hyperexponential(1.0, -0.5)


class TestPareto:
    def test_moments(self):
        dist = Pareto(alpha=2.5, mean=4.0)
        assert dist.mean == 4.0
        sampled_mean = _sample_mean(dist, n=200_000)
        assert sampled_mean == pytest.approx(4.0, rel=0.1)

    def test_requires_finite_variance(self):
        with pytest.raises(ValueError):
            Pareto(alpha=2.0, mean=1.0)


class TestLogNormal:
    def test_moments(self):
        dist = LogNormal(2.0, 3.0)
        assert dist.mean == 2.0
        assert dist.scv == pytest.approx(3.0)

    def test_sampled_moments(self):
        dist = LogNormal(1.0, 2.0)
        mean, var = _sample_moments(dist, n=100_000)
        assert mean == pytest.approx(1.0, rel=0.05)
        assert var == pytest.approx(2.0, rel=0.2)


class TestEmpirical:
    def test_resamples_only_observed_values(self):
        dist = Empirical([1.0, 2.0, 3.0])
        rng = random.Random(0)
        assert all(dist.sample(rng) in {1.0, 2.0, 3.0} for _ in range(50))

    def test_moments_match_population(self):
        values = [1.0, 2.0, 3.0, 4.0]
        dist = Empirical(values)
        assert dist.mean == 2.5
        assert dist.variance == pytest.approx(1.25)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Empirical([])


class TestMixture:
    def test_moments_combine(self):
        mix = Mixture([Deterministic(1.0), Deterministic(3.0)], weights=[1.0, 1.0])
        assert mix.mean == 2.0
        assert mix.variance == pytest.approx(1.0)

    def test_weights_normalized(self):
        mix = Mixture([Exponential(1.0), Exponential(2.0)], weights=[2.0, 6.0])
        assert mix.weights == pytest.approx([0.25, 0.75])

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError):
            Mixture([Exponential(1.0)], weights=[1.0, 2.0])


class TestScaled:
    def test_scaling_preserves_scv(self):
        base = fit_hyperexponential(1.0, 5.0)
        scaled = base.scaled(10.0)
        assert scaled.mean == pytest.approx(10.0)
        assert scaled.scv == pytest.approx(5.0, rel=1e-6)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            Exponential(1.0).scaled(0.0)


def test_moments_to_scv():
    assert moments_to_scv(2.0, 8.0) == pytest.approx(1.0)
    assert moments_to_scv(1.0, 1.0) == 0.0
    with pytest.raises(ValueError):
        moments_to_scv(0.0, 1.0)
