"""Transaction prioritization — external and internal (§5)."""

from repro.priority.assignment import PriorityAssignment
from repro.priority.evaluation import (
    PrioritizationOutcome,
    evaluate_external_prioritization,
    evaluate_internal_prioritization,
)

__all__ = [
    "PriorityAssignment",
    "PrioritizationOutcome",
    "evaluate_external_prioritization",
    "evaluate_internal_prioritization",
]
