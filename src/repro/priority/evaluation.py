"""Prioritization experiments: external vs internal scheduling (§5).

The helpers here run paired experiments under common random numbers:

* :func:`evaluate_external_prioritization` — priority-ordered external
  queue at a given MPL, against the same system with no priorities
  and no MPL (the paper's "No Prio" reference in Figure 11).
* :func:`evaluate_internal_prioritization` — no MPL limit, but the
  DBMS internals prioritize: POW lock scheduling for lock-bound
  workloads, weighted CPU shares for CPU-bound ones (§5.2–5.3).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.system import RunResult, SimulatedSystem, SystemConfig
from repro.dbms.config import InternalPolicy
from repro.workloads.setups import Setup

#: The paper's §5 assignment: 10% of transactions are high priority.
HIGH_PRIORITY_FRACTION = 0.10


@dataclasses.dataclass(frozen=True)
class PrioritizationOutcome:
    """Results of one prioritization experiment.

    ``high`` / ``low`` / ``overall`` are mean response times (seconds)
    under prioritization; ``no_prio`` is the overall mean of the
    untouched system (no priorities, no MPL).
    """

    label: str
    mpl: Optional[int]
    high: float
    low: float
    overall: float
    no_prio: float
    throughput: float
    no_prio_throughput: float

    @property
    def differentiation(self) -> float:
        """How many times better high fares than low (paper's factor)."""
        if self.high <= 0:
            return 0.0
        return self.low / self.high

    @property
    def low_penalty(self) -> float:
        """Low-class response time relative to no prioritization."""
        if self.no_prio <= 0:
            return 0.0
        return self.low / self.no_prio

    @property
    def overall_penalty(self) -> float:
        """Overall response-time inflation vs the untouched system."""
        if self.no_prio <= 0:
            return 0.0
        return self.overall / self.no_prio

    @property
    def throughput_loss(self) -> float:
        """Throughput loss vs the untouched system."""
        if self.no_prio_throughput <= 0:
            return 0.0
        return max(0.0, 1.0 - self.throughput / self.no_prio_throughput)


def outcome_from_runs(
    label: str,
    mpl: Optional[int],
    result: RunResult,
    no_prio: RunResult,
) -> PrioritizationOutcome:
    """Assemble an outcome from a prioritized run and its reference.

    Figure reproductions that execute both runs through the parallel
    grid use this to build the outcome without re-running anything.
    """
    return PrioritizationOutcome(
        label=label,
        mpl=mpl,
        high=result.high_response_time,
        low=result.low_response_time,
        overall=result.mean_response_time,
        no_prio=no_prio.mean_response_time,
        throughput=result.throughput,
        no_prio_throughput=no_prio.throughput,
    )


def _base_config(setup: Setup, seed: int) -> SystemConfig:
    return SystemConfig(
        workload=setup.workload,
        hardware=setup.hardware,
        isolation=setup.isolation,
        seed=seed,
    )


def _no_prio_reference(setup: Setup, seed: int, transactions: int) -> RunResult:
    config = dataclasses.replace(
        _base_config(setup, seed), mpl=None, policy="fifo",
        high_priority_fraction=0.0,
    )
    return SimulatedSystem(config).run(transactions=transactions)


def evaluate_external_prioritization(
    setup: Setup,
    mpl: Optional[int],
    transactions: int = 1500,
    seed: int = 11,
    label: str = "",
    no_prio: Optional[RunResult] = None,
) -> PrioritizationOutcome:
    """External priority scheduling at a fixed MPL vs the stock system."""
    if no_prio is None:
        no_prio = _no_prio_reference(setup, seed, transactions)
    config = dataclasses.replace(
        _base_config(setup, seed),
        mpl=mpl,
        policy="priority",
        high_priority_fraction=HIGH_PRIORITY_FRACTION,
    )
    result = SimulatedSystem(config).run(transactions=transactions)
    return outcome_from_runs(label or f"ext mpl={mpl}", mpl, result, no_prio)


def evaluate_internal_prioritization(
    setup: Setup,
    internal: InternalPolicy,
    transactions: int = 1500,
    seed: int = 11,
    label: str = "internal",
    no_prio: Optional[RunResult] = None,
) -> PrioritizationOutcome:
    """Internal prioritization (POW locks or CPU weights), no MPL limit."""
    if no_prio is None:
        no_prio = _no_prio_reference(setup, seed, transactions)
    config = dataclasses.replace(
        _base_config(setup, seed),
        mpl=None,
        policy="fifo",
        internal=internal,
        high_priority_fraction=HIGH_PRIORITY_FRACTION,
    )
    result = SimulatedSystem(config).run(transactions=transactions)
    return outcome_from_runs(label, None, result, no_prio)
