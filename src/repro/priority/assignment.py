"""Priority-class assignment.

The paper does not prescribe how transactions obtain their class — it
simply assigns 10% of transactions "high" priority at random (§5.1,
"the e-commerce vendor has reasons for choosing some
transactions/clients to be higher or lower-priority").  This module
packages that rule, plus a per-client variant (whole clients are
premium customers) useful for the e-commerce example.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.dbms.transaction import Priority


class PriorityAssignment:
    """Assigns priority classes to transactions.

    Parameters
    ----------
    high_fraction:
        Probability a transaction (or client) is HIGH priority; the
        paper uses 0.10.
    per_client:
        When true, the draw is made once per client id and then
        remembered, modelling premium *customers* rather than premium
        transactions.
    seed:
        Seed for the per-client draws (ignored in per-transaction
        mode, where the caller's stream is used).
    """

    def __init__(
        self,
        high_fraction: float = 0.10,
        per_client: bool = False,
        seed: int = 0,
    ):
        if not 0.0 <= high_fraction <= 1.0:
            raise ValueError(
                f"high_fraction must be in [0, 1], got {high_fraction!r}"
            )
        self.high_fraction = high_fraction
        self.per_client = per_client
        self._client_classes: dict = {}
        self._client_rng = random.Random(seed)

    def assign(self, rng: random.Random, client_id: Optional[int] = None) -> int:
        """Class for the next transaction (HIGH with prob. ``high_fraction``)."""
        if self.per_client and client_id is not None:
            cached = self._client_classes.get(client_id)
            if cached is None:
                draw = self._client_rng.random() < self.high_fraction
                cached = Priority.HIGH if draw else Priority.LOW
                self._client_classes[client_id] = cached
            return cached
        return Priority.HIGH if rng.random() < self.high_fraction else Priority.LOW

    def __call__(self, rng: random.Random) -> int:
        return self.assign(rng)
