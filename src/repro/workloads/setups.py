"""Table 1's six workloads and Table 2's seventeen setups, as data.

The calibration constants (CPU means, page-touch means) are chosen so
the simulated saturation throughputs land near the paper's figures —
see the module docstrings of :mod:`repro.workloads.tpcc` and
:mod:`repro.workloads.tpcw` and EXPERIMENTS.md for the paper-vs-
measured comparison.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from repro.dbms.config import HardwareConfig, IsolationLevel
from repro.workloads.spec import WorkloadSpec
from repro.workloads.tpcc import tpcc_workload
from repro.workloads.tpcw import tpcw_workload

#: Number of closed-loop clients used in every experiment (§2.2).
NUM_CLIENTS = 100


def _build_workloads() -> Dict[str, WorkloadSpec]:
    return {
        "W_CPU-inventory": tpcc_workload(
            "W_CPU-inventory",
            db_mb=1024,
            cpu_mean_ms=15.0,
            pages_mean=40.0,
            warehouses=10,
            configuration="10 warehouses, 1GB",
        ),
        "W_CPU-browsing": tpcw_workload(
            "W_CPU-browsing",
            db_mb=300,
            cpu_mean_ms=105.0,
            pages_mean=30.0,
            mix="browsing",
            emulated_browsers=100,
            configuration="Browsing 100 EBs, 10K items, 140K customers",
        ),
        "W_IO-browsing": tpcw_workload(
            "W_IO-browsing",
            db_mb=2048,
            cpu_mean_ms=250.0,
            pages_mean=90.0,
            mix="browsing",
            emulated_browsers=500,
            configuration="Browsing 500 EBs, 10K items, 288K customers",
        ),
        "W_IO-inventory": tpcc_workload(
            "W_IO-inventory",
            db_mb=6144,
            cpu_mean_ms=5.0,
            pages_mean=31.0,
            warehouses=60,
            configuration="60 warehouses, 6GB",
        ),
        "W_CPU+IO-inventory": tpcc_workload(
            "W_CPU+IO-inventory",
            db_mb=1024,
            cpu_mean_ms=15.0,
            pages_mean=35.0,
            warehouses=10,
            configuration="10 warehouses, 1GB",
        ),
        "W_CPU-ordering": tpcw_workload(
            "W_CPU-ordering",
            db_mb=300,
            cpu_mean_ms=55.0,
            pages_mean=25.0,
            mix="ordering",
            emulated_browsers=100,
            configuration="Ordering 100 EBs, 10K items, 140K customers",
        ),
    }


#: Table 1: workload name → WorkloadSpec.
WORKLOADS: Dict[str, WorkloadSpec] = _build_workloads()

#: Table 1's memory columns: workload → (main memory MB, buffer pool MB).
WORKLOAD_MEMORY: Dict[str, Tuple[int, int]] = {
    "W_CPU-inventory": (3072, 1024),
    "W_CPU-browsing": (3072, 512),
    "W_IO-browsing": (512, 100),
    "W_IO-inventory": (512, 100),
    "W_CPU+IO-inventory": (1024, 1024),
    "W_CPU-ordering": (3072, 512),
}

#: Table 1's qualitative load columns: workload → (cpu load, io load).
WORKLOAD_LOAD: Dict[str, Tuple[str, str]] = {
    "W_CPU-inventory": ("high", "low"),
    "W_CPU-browsing": ("high", "low"),
    "W_IO-browsing": ("low", "high"),
    "W_IO-inventory": ("low", "high"),
    "W_CPU+IO-inventory": ("high", "high"),
    "W_CPU-ordering": ("high", "low"),
}


@dataclasses.dataclass(frozen=True)
class Setup:
    """One row of Table 2: a workload on a concrete machine."""

    setup_id: int
    workload_name: str
    num_cpus: int
    num_disks: int
    isolation: IsolationLevel

    @property
    def workload(self) -> WorkloadSpec:
        """The workload spec this setup runs."""
        return WORKLOADS[self.workload_name]

    @property
    def hardware(self) -> HardwareConfig:
        """The machine: Table 2's CPU/disk counts + Table 1's memory."""
        memory_mb, bufferpool_mb = WORKLOAD_MEMORY[self.workload_name]
        return HardwareConfig(
            num_cpus=self.num_cpus,
            num_disks=self.num_disks,
            memory_mb=memory_mb,
            bufferpool_mb=bufferpool_mb,
        )

    def describe(self) -> str:
        """One-line human-readable description."""
        return (
            f"setup {self.setup_id}: {self.workload_name}, "
            f"{self.num_cpus} CPU(s), {self.num_disks} disk(s), "
            f"{self.isolation.value}"
        )


_RR = IsolationLevel.RR
_UR = IsolationLevel.UR

#: Table 2: the seventeen experimental setups.
SETUPS: Tuple[Setup, ...] = (
    Setup(1, "W_CPU-inventory", 1, 1, _RR),
    Setup(2, "W_CPU-inventory", 2, 1, _RR),
    Setup(3, "W_CPU-browsing", 1, 1, _RR),
    Setup(4, "W_CPU-browsing", 2, 1, _RR),
    Setup(5, "W_IO-inventory", 1, 1, _RR),
    Setup(6, "W_IO-inventory", 1, 2, _RR),
    Setup(7, "W_IO-inventory", 1, 3, _RR),
    Setup(8, "W_IO-inventory", 1, 4, _RR),
    Setup(9, "W_IO-browsing", 1, 1, _RR),
    Setup(10, "W_IO-browsing", 1, 4, _RR),
    Setup(11, "W_CPU+IO-inventory", 1, 1, _RR),
    Setup(12, "W_CPU+IO-inventory", 2, 4, _RR),
    Setup(13, "W_CPU-ordering", 1, 1, _RR),
    Setup(14, "W_CPU-ordering", 1, 1, _UR),
    Setup(15, "W_CPU-ordering", 2, 1, _RR),
    Setup(16, "W_CPU-ordering", 2, 1, _UR),
    Setup(17, "W_CPU-inventory", 1, 1, _UR),
)


def get_workload(name: str) -> WorkloadSpec:
    """Look up a Table 1 workload by name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}"
        ) from None


def get_setup(setup_id: int) -> Setup:
    """Look up a Table 2 setup by its 1-based id."""
    if not 1 <= setup_id <= len(SETUPS):
        raise KeyError(f"setup ids run 1..{len(SETUPS)}, got {setup_id!r}")
    return SETUPS[setup_id - 1]
