"""Workload specifications: what a transaction mix looks like.

A :class:`WorkloadSpec` describes everything the simulator needs to
generate transactions: the type mix, per-type CPU/page/lock demands,
the database footprint (which, against a machine's cache, decides the
I/O intensity), and the hot-set sizes that drive lock contention.

The spec can also *analyze itself*: :meth:`WorkloadSpec.demand_moments`
computes the mean and C² of total service demand, the statistic the
paper's §3.2 identifies as the dominant factor for the response-time
safe MPL.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional, Tuple

from repro.dbms.transaction import Priority, Transaction
from repro.sim.distributions import Distribution, Exponential


@dataclasses.dataclass(frozen=True)
class TransactionType:
    """One transaction type within a mix.

    Parameters
    ----------
    name:
        Type name (e.g. ``"NewOrder"``).
    weight:
        Relative frequency in the mix.
    cpu_demand:
        Distribution of total CPU seconds.
    page_accesses:
        Distribution of logical page touches (sampled then rounded).
    is_update:
        Whether commit forces a log write.
    hot_locks:
        Exclusive locks taken on the small hot item set (contended).
    shared_locks:
        Shared locks taken on the large item space (mostly
        uncontended; skipped entirely under Uncommitted Read).
    exclusive_locks:
        Exclusive locks on the large item space.
    """

    name: str
    weight: float
    cpu_demand: Distribution
    page_accesses: Distribution
    is_update: bool = False
    hot_locks: int = 0
    shared_locks: int = 0
    exclusive_locks: int = 0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight!r}")
        if min(self.hot_locks, self.shared_locks, self.exclusive_locks) < 0:
            raise ValueError("lock counts must be non-negative")


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """A complete workload: mix + database footprint + lock geometry.

    Parameters
    ----------
    name:
        Workload name, e.g. ``"W_CPU-inventory"``.
    types:
        The transaction mix.
    db_mb:
        Database size in megabytes (Table 1's "Database" column).
    hot_set_size:
        Number of contended items (warehouse/district rows in TPC-C,
        best-seller stock in TPC-W).
    item_space:
        Size of the mostly-uncontended item id space.
    benchmark / configuration:
        Table 1 metadata strings (for reporting only).
    hot_access_fraction / hot_page_fraction:
        Page-access skew forwarded to the buffer-pool model.
    """

    name: str
    types: Tuple[TransactionType, ...]
    db_mb: int
    hot_set_size: int = 128
    item_space: int = 1_000_000
    benchmark: str = ""
    configuration: str = ""
    hot_access_fraction: float = 0.8
    hot_page_fraction: float = 0.2
    page_kb: int = 4
    #: Probability a transaction acquires its locks out of table order
    #: (application code paths that touch tables in a different order);
    #: this is what makes deadlocks possible, and their restart cost is
    #: the lock-thrashing mechanism behind Figure 5's decline.
    lock_disorder: float = 0.05

    def __post_init__(self) -> None:
        if not self.types:
            raise ValueError("a workload needs at least one transaction type")
        if self.db_mb <= 0:
            raise ValueError(f"db_mb must be positive, got {self.db_mb!r}")
        if self.hot_set_size < 1 or self.item_space < 1:
            raise ValueError("hot_set_size and item_space must be positive")
        # Sampling hot-path constants (frozen dataclass, so set via
        # object.__setattr__; not dataclass fields, so fingerprints and
        # equality are untouched).
        object.__setattr__(self, "_total_weight", sum(t.weight for t in self.types))
        object.__setattr__(self, "_hot_bits", self.hot_set_size.bit_length())
        object.__setattr__(self, "_item_bits", self.item_space.bit_length())

    @property
    def db_pages(self) -> int:
        """Database size in pages."""
        return max(1, (self.db_mb * 1024) // self.page_kb)

    @property
    def total_weight(self) -> float:
        """Sum of type weights."""
        return self._total_weight

    def choose_type(self, rng: random.Random) -> TransactionType:
        """Draw a transaction type according to the mix weights."""
        target = rng.random() * self._total_weight
        acc = 0.0
        for tx_type in self.types:
            acc += tx_type.weight
            if target < acc:
                return tx_type
        return self.types[-1]

    def sample_transaction(
        self,
        rng: random.Random,
        tid: int,
        priority: int = Priority.LOW,
        client_id: Optional[int] = None,
    ) -> Transaction:
        """Generate one transaction instance with sampled demands."""
        tx_type = self.choose_type(rng)
        # demand draws, with the exponential case (nearly every Table 2
        # workload) devirtualized to a direct expovariate call
        demand = tx_type.cpu_demand
        if demand.__class__ is Exponential:
            cpu = rng.expovariate(1.0 / demand._mean)
        else:
            cpu = demand.sample(rng)
        pages_dist = tx_type.page_accesses
        if pages_dist.__class__ is Exponential:
            pages = max(0, round(rng.expovariate(1.0 / pages_dist._mean)))
        else:
            pages = max(0, round(pages_dist.sample(rng)))
        # Item draws replicate random.Random.randrange's rejection loop
        # verbatim (k = n.bit_length(); draw getrandbits(k) until < n),
        # consuming the stream bit-for-bit identically while skipping
        # two Python frames per draw — lock-item selection is the
        # hottest RNG path in the simulator.
        getrandbits = rng.getrandbits
        hot_set = self.hot_set_size
        hot_bits = self._hot_bits
        item_space = self.item_space
        item_bits = self._item_bits
        # Deduplicate as we draw (strongest mode kept): an exclusive
        # draw forces the mode to True, a shared draw only registers an
        # absent item — exactly `strongest[item] = strongest.get(item,
        # False) or exclusive` over the draw sequence, without building
        # the intermediate (item, mode) list.
        strongest: dict = {}
        for _ in range(tx_type.hot_locks):
            r = getrandbits(hot_bits)
            while r >= hot_set:
                r = getrandbits(hot_bits)
            strongest[r] = True
        for _ in range(tx_type.exclusive_locks):
            r = getrandbits(item_bits)
            while r >= item_space:
                r = getrandbits(item_bits)
            strongest[hot_set + r] = True
        if tx_type.shared_locks:
            random = rng.random
            for _ in range(tx_type.shared_locks):
                # shared reads also touch the hot rows part of the time,
                # as TPC-C's reads of warehouse/district rows do
                if random() < 0.3:
                    r = getrandbits(hot_bits)
                    while r >= hot_set:
                        r = getrandbits(hot_bits)
                    if r not in strongest:
                        strongest[r] = False
                else:
                    r = getrandbits(item_bits)
                    while r >= item_space:
                        r = getrandbits(item_bits)
                    item = hot_set + r
                    if item not in strongest:
                        strongest[item] = False
        # Acquire in item order: real OLTP transactions touch tables in
        # a fixed statement order, which is what keeps production
        # deadlock rates low.
        locks: List[Tuple[int, bool]] = sorted(strongest.items())
        if self.lock_disorder > 0 and len(locks) > 1:
            if rng.random() < self.lock_disorder:
                rng.shuffle(locks)
        return Transaction(
            tid=tid,
            type_name=tx_type.name,
            cpu_demand=cpu,
            page_accesses=pages,
            lock_requests=locks,
            is_update=tx_type.is_update,
            priority=priority,
            client_id=client_id,
        )

    # -- analytic self-description ------------------------------------------

    def cpu_demand_moments(self) -> Tuple[float, float]:
        """(mean, C²) of per-transaction CPU demand across the mix."""
        total = self.total_weight
        mean = sum(t.weight * t.cpu_demand.mean for t in self.types) / total
        second = sum(t.weight * t.cpu_demand.second_moment for t in self.types) / total
        if mean == 0:
            return 0.0, 0.0
        return mean, max(0.0, second / mean**2 - 1.0)

    def page_access_mean(self) -> float:
        """Mean logical page touches per transaction."""
        total = self.total_weight
        return sum(t.weight * t.page_accesses.mean for t in self.types) / total

    def demand_moments(
        self, disk_service_mean: float, miss_probability: float
    ) -> Tuple[float, float]:
        """(mean, C²) of total service demand (CPU + physical I/O).

        This is the workload-variability statistic of §3.2.  Per-type
        demand is CPU + pages * miss probability * disk time; the
        moments combine within-type variability and across-type mix
        variability.
        """
        total = self.total_weight
        mean = 0.0
        second = 0.0
        for t in self.types:
            io_mean = t.page_accesses.mean * miss_probability * disk_service_mean
            io_var = t.page_accesses.variance * (miss_probability * disk_service_mean) ** 2
            type_mean = t.cpu_demand.mean + io_mean
            type_var = t.cpu_demand.variance + io_var
            mean += t.weight * type_mean
            second += t.weight * (type_var + type_mean**2)
        mean /= total
        second /= total
        if mean == 0:
            return 0.0, 0.0
        return mean, max(0.0, second / mean**2 - 1.0)

    def update_fraction(self) -> float:
        """Fraction of transactions that are updates."""
        weight = sum(t.weight for t in self.types if t.is_update)
        return weight / self.total_weight
