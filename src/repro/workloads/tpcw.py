"""A TPC-W-like web-commerce transaction mix.

TPC-W's web interactions translate into very uneven database work: most
interactions (Home, Product Detail, Search) are light, while the Best
Sellers query is infamously heavy — that skew is what gives TPC-W its
measured demand variability of C² ≈ 15 (§3.2), an order of magnitude
above TPC-C's.  We reproduce it structurally: light types with
exponential demands plus a Best-Sellers type whose demand is itself a
high-C² hyperexponential.  The resulting aggregate C² is ≈ 15 for the
browsing mix and ≈ 10 for the ordering mix (verified by
``tests/test_workloads.py``).

The ordering mix shifts weight onto the buy path (cart updates, buy
confirm), raising the update fraction and the exclusive-lock traffic on
the hot stock rows — which is what makes ``W_CPU-ordering`` the
paper's lock-bound workload (Figure 5b).
"""

from __future__ import annotations

from repro.sim.distributions import Exponential, fit_hyperexponential
from repro.workloads.spec import TransactionType, WorkloadSpec

#: C² of the Best-Sellers interaction's own demand distribution.
_BEST_SELLER_SCV = 8.0

# name, weight, relative demand, heavy?, update, hot_x, shared, excl
_BROWSING_PROFILE = (
    ("Home", 0.29, 0.5, False, False, 0, 1, 0),
    ("ProductDetail", 0.21, 0.6, False, False, 0, 2, 0),
    ("Search", 0.23, 0.9, False, False, 0, 2, 0),
    ("NewProducts", 0.11, 1.1, False, False, 0, 2, 0),
    ("BestSellers", 0.11, 4.5, True, False, 0, 3, 0),
    ("BuyPath", 0.05, 1.0, False, True, 1, 1, 2),
)

_ORDERING_PROFILE = (
    ("Home", 0.16, 0.5, False, False, 0, 1, 0),
    ("ProductDetail", 0.17, 0.6, False, False, 0, 2, 0),
    ("Search", 0.20, 0.9, False, False, 0, 2, 0),
    ("BestSellers", 0.05, 4.5, True, False, 0, 3, 0),
    ("OrderInquiry", 0.06, 0.8, False, False, 0, 2, 0),
    ("ShoppingCart", 0.14, 0.7, False, True, 1, 1, 1),
    ("BuyRequest", 0.12, 0.9, False, True, 2, 1, 1),
    ("BuyConfirm", 0.10, 1.4, False, True, 4, 1, 3),
)

_PROFILES = {"browsing": _BROWSING_PROFILE, "ordering": _ORDERING_PROFILE}


def tpcw_workload(
    name: str,
    db_mb: int,
    cpu_mean_ms: float,
    pages_mean: float,
    mix: str = "browsing",
    emulated_browsers: int = 100,
    configuration: str = "",
) -> WorkloadSpec:
    """Build a TPC-W-like workload.

    Parameters
    ----------
    name:
        Workload name (e.g. ``"W_CPU-browsing"``).
    db_mb:
        Database size (300 MB for the 140K-customer store, 2 GB for the
        288K-customer one, per Table 1).
    cpu_mean_ms / pages_mean:
        Aggregate mean CPU demand and logical page touches.
    mix:
        ``"browsing"`` or ``"ordering"`` (TPC-W's two mixes).
    emulated_browsers:
        TPC-W scale metadata (EBs); recorded for reporting.
    """
    profile = _PROFILES.get(mix)
    if profile is None:
        raise ValueError(f"mix must be one of {sorted(_PROFILES)}, got {mix!r}")

    demand_aggregate = sum(w * rel for _n, w, rel, _h, _u, _hx, _s, _x in profile)
    cpu_unit = (cpu_mean_ms / 1000.0) / demand_aggregate
    pages_unit = pages_mean / demand_aggregate

    types = []
    for type_name, weight, rel, heavy, update, hot_x, shared, excl in profile:
        if heavy:
            cpu_dist = fit_hyperexponential(rel * cpu_unit, _BEST_SELLER_SCV)
            pages_dist = fit_hyperexponential(rel * pages_unit, _BEST_SELLER_SCV)
        else:
            cpu_dist = Exponential(rel * cpu_unit)
            pages_dist = Exponential(rel * pages_unit)
        types.append(
            TransactionType(
                name=type_name,
                weight=weight,
                cpu_demand=cpu_dist,
                page_accesses=pages_dist,
                is_update=update,
                hot_locks=hot_x,
                shared_locks=shared,
                exclusive_locks=excl,
            )
        )
    return WorkloadSpec(
        name=name,
        types=tuple(types),
        db_mb=db_mb,
        # The contended stock rows: the ordering mix funnels its buy
        # path through a smaller set of popular items.
        hot_set_size=60 if mix == "ordering" else 100,
        item_space=200_000,
        benchmark=f"TPC-W {mix.capitalize()}",
        configuration=configuration
        or f"{emulated_browsers} EBs, 10K items, {db_mb} MB",
    )
