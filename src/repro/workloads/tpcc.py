"""A TPC-C-like transaction mix.

We reproduce the five-type TPC-C mix (NewOrder 45%, Payment 43%,
OrderStatus / Delivery / StockLevel 4% each) with per-type CPU, page
and lock demands expressed *relative* to a workload-level scale.  The
paper's observation that only relative demands matter (§4.1) lets us
calibrate the scales to the saturation throughputs of Figures 2–5:

* ``W_CPU-inventory``: ~15 ms CPU/transaction so one 2006-era CPU
  saturates near 65 tx/s (Figure 2a).
* ``W_IO-inventory``: ~31 page touches against a tiny cache, i.e.
  ≈ 27 physical reads ≈ 220 ms of disk time, saturating one disk near
  4.5 tx/s (Figure 3a).

Per-type demands are exponential; combined with the mix weights this
gives an aggregate demand C² of ≈ 1.3, inside the 1.0–1.5 band the
paper measures for TPC-C (§3.2).

Lock geometry: updates take exclusive locks on the warehouse/district
hot rows (10 per warehouse), which is where TPC-C's lock contention
lives; reads take shared locks that Uncommitted Read elides.
"""

from __future__ import annotations

from repro.sim.distributions import Exponential
from repro.workloads.spec import TransactionType, WorkloadSpec

# Relative per-type scales (CPU seconds and page touches), normalized
# below so the aggregate means hit the requested workload-level values.
_TPCC_PROFILE = (
    # name, weight, cpu_rel, pages_rel, update, hot_x, shared, excl
    ("NewOrder", 0.45, 1.2, 1.3, True, 2, 5, 3),
    ("Payment", 0.43, 0.7, 0.5, True, 2, 1, 1),
    ("OrderStatus", 0.04, 0.8, 0.8, False, 0, 4, 0),
    ("Delivery", 0.04, 2.5, 2.5, True, 1, 2, 6),
    ("StockLevel", 0.04, 2.0, 2.8, False, 0, 10, 0),
)

#: Hot (contended) rows per TPC-C warehouse: the warehouse row plus ten
#: district rows, the classic TPC-C contention points.
HOT_ROWS_PER_WAREHOUSE = 10


def tpcc_workload(
    name: str,
    db_mb: int,
    cpu_mean_ms: float,
    pages_mean: float,
    warehouses: int,
    configuration: str = "",
) -> WorkloadSpec:
    """Build a TPC-C-like workload.

    Parameters
    ----------
    name:
        Workload name (Table 1 row, e.g. ``"W_CPU-inventory"``).
    db_mb:
        Database size; with the machine's cache this fixes the I/O
        intensity (10 warehouses ≈ 1 GB, 60 ≈ 6 GB, per Table 1).
    cpu_mean_ms:
        Aggregate mean CPU demand per transaction, milliseconds.
    pages_mean:
        Aggregate mean logical page touches per transaction.
    warehouses:
        TPC-C scale factor; sets the hot-row count and hence lock
        contention (more warehouses = contention spread thinner).
    """
    if warehouses < 1:
        raise ValueError(f"warehouses must be >= 1, got {warehouses!r}")
    cpu_aggregate = sum(w * c for _n, w, c, _p, _u, _h, _s, _x in _TPCC_PROFILE)
    pages_aggregate = sum(w * p for _n, w, _c, p, _u, _h, _s, _x in _TPCC_PROFILE)
    cpu_unit = (cpu_mean_ms / 1000.0) / cpu_aggregate
    pages_unit = pages_mean / pages_aggregate

    types = tuple(
        TransactionType(
            name=type_name,
            weight=weight,
            cpu_demand=Exponential(cpu_rel * cpu_unit),
            page_accesses=Exponential(pages_rel * pages_unit),
            is_update=update,
            hot_locks=hot_x,
            shared_locks=shared,
            exclusive_locks=excl,
        )
        for type_name, weight, cpu_rel, pages_rel, update, hot_x, shared, excl in _TPCC_PROFILE
    )
    return WorkloadSpec(
        name=name,
        types=types,
        db_mb=db_mb,
        hot_set_size=warehouses * HOT_ROWS_PER_WAREHOUSE,
        item_space=max(100_000, warehouses * 30_000),
        benchmark="TPC-C",
        configuration=configuration or f"{warehouses} warehouses, {db_mb} MB",
    )
