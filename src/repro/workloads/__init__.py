"""Workload generators and the paper's experimental catalog.

* :mod:`repro.workloads.spec` — transaction-type and workload
  specifications (the schema every generator fills in).
* :mod:`repro.workloads.tpcc` / :mod:`repro.workloads.tpcw` — the
  TPC-C-like and TPC-W-like mixes of Table 1, calibrated to the
  saturation throughputs of Figures 2–5 and the paper's measured
  demand variability (C² ≈ 1–1.5 for TPC-C, ≈ 15 for TPC-W).
* :mod:`repro.workloads.synthetic` — H2 workloads with arbitrary C².
* :mod:`repro.workloads.traces` — synthetic stand-ins for the paper's
  proprietary online-retailer and auction-site traces (C² ≈ 2).
* :mod:`repro.workloads.setups` — Table 1's six workloads and
  Table 2's seventeen setups as data.
"""

from repro.workloads.spec import TransactionType, WorkloadSpec
from repro.workloads.setups import (
    SETUPS,
    WORKLOADS,
    Setup,
    get_setup,
    get_workload,
)
from repro.workloads.synthetic import synthetic_workload
from repro.workloads.tpcc import tpcc_workload
from repro.workloads.tpcw import tpcw_workload
from repro.workloads.traces import (
    auction_site_trace,
    load_trace_file,
    online_retailer_trace,
    trace_workload,
)

__all__ = [
    "SETUPS",
    "Setup",
    "TransactionType",
    "WORKLOADS",
    "WorkloadSpec",
    "auction_site_trace",
    "get_setup",
    "get_workload",
    "load_trace_file",
    "online_retailer_trace",
    "synthetic_workload",
    "tpcc_workload",
    "tpcw_workload",
    "trace_workload",
]
