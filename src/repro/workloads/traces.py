"""Synthetic stand-ins for the paper's proprietary production traces.

§3.2 compares the benchmarks' demand variability against traces from
"one of the top-10 online retailers" and "one of the top-10 auctioning
sites in the US", reporting C² ≈ 2 for both.  Those traces are
proprietary and unavailable, so — per the substitution rule in
DESIGN.md — we generate synthetic traces with the same published
statistic: lognormal per-transaction service demands with C² ≈ 2
(retailer) and C² ≈ 2.2 (auction), plus diurnal-free Poisson arrival
gaps.  Only the C² figure is used anywhere in the paper, so the
substitution is behaviour-preserving.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import random
import struct
from typing import Callable, Dict, List, Optional, Sequence

from repro.sim.distributions import Deterministic, Empirical, LogNormal
from repro.workloads.spec import TransactionType, WorkloadSpec


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One trace line: arrival offset and service demand (seconds)."""

    arrival_time: float
    service_demand: float


@dataclasses.dataclass(frozen=True)
class Trace:
    """A service-demand trace with summary statistics."""

    name: str
    records: Sequence[TraceRecord]

    @property
    def demands(self) -> List[float]:
        """All service demands in trace order."""
        return [r.service_demand for r in self.records]

    @property
    def demand_scv(self) -> float:
        """Sample C² of the service demands."""
        demands = self.demands
        n = len(demands)
        if n < 2:
            return 0.0
        mean = sum(demands) / n
        var = sum((d - mean) ** 2 for d in demands) / (n - 1)
        return var / mean**2 if mean else 0.0

    @property
    def digest(self) -> str:
        """sha256 over the exact (arrival, demand) float stream.

        The content identity of the trace: two traces share a digest
        iff they replay bit-identically, which is what lets
        :class:`~repro.core.arrivals.TraceArrivals` use it as the
        cache-key contribution of a trace-driven scenario.
        """
        hasher = hashlib.sha256()
        for record in self.records:
            hasher.update(
                struct.pack("<dd", record.arrival_time, record.service_demand)
            )
        return hasher.hexdigest()


def _generate_trace(
    name: str,
    transactions: int,
    mean_demand_s: float,
    scv: float,
    arrival_rate: float,
    seed: int,
) -> Trace:
    rng = random.Random(seed)
    demand_dist = LogNormal(mean_demand_s, scv)
    records = []
    now = 0.0
    for _ in range(transactions):
        now += rng.expovariate(arrival_rate)
        records.append(TraceRecord(now, demand_dist.sample(rng)))
    return Trace(name, tuple(records))


def online_retailer_trace(transactions: int = 10_000, seed: int = 2006) -> Trace:
    """Synthetic stand-in for the top-10 online-retailer trace (C² ≈ 2)."""
    return _generate_trace(
        "online-retailer", transactions, mean_demand_s=0.020, scv=2.0,
        arrival_rate=30.0, seed=seed,
    )


def auction_site_trace(transactions: int = 10_000, seed: int = 2007) -> Trace:
    """Synthetic stand-in for the top-10 auction-site trace (C² ≈ 2.2)."""
    return _generate_trace(
        "auction-site", transactions, mean_demand_s=0.035, scv=2.2,
        arrival_rate=20.0, seed=seed,
    )


#: Named trace factories: the machine-readable registry behind
#: :func:`get_trace` and :class:`~repro.core.arrivals.TraceArrivals`.
TRACE_FACTORIES: Dict[str, Callable[..., Trace]] = {
    "online-retailer": online_retailer_trace,
    "auction-site": auction_site_trace,
}


@functools.lru_cache(maxsize=32)
def get_trace(
    name: str,
    transactions: Optional[int] = None,
    seed: Optional[int] = None,
) -> Trace:
    """Materialize a named trace (None keeps a factory default).

    Memoized: traces are immutable (frozen records), and one
    trace-driven scenario otherwise regenerates the same stream
    several times over — at spec construction (the content digest), at
    workload resolution, at arrival build, and on every fingerprint
    call.
    """
    factory = TRACE_FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown trace {name!r}; available: "
            + ", ".join(sorted(TRACE_FACTORIES))
        )
    kwargs = {}
    if transactions is not None:
        kwargs["transactions"] = transactions
    if seed is not None:
        kwargs["seed"] = seed
    return factory(**kwargs)


def trace_workload(trace: Trace, db_mb: int = 512) -> WorkloadSpec:
    """Wrap a trace as a replayable (resampled) CPU-bound workload.

    Demands are resampled with replacement from the trace's empirical
    demand distribution, preserving its mean and C² exactly.
    """
    tx_type = TransactionType(
        name=trace.name,
        weight=1.0,
        cpu_demand=Empirical(trace.demands),
        page_accesses=Deterministic(0),
        is_update=False,
    )
    return WorkloadSpec(
        name=f"W_trace-{trace.name}",
        types=(tx_type,),
        db_mb=db_mb,
        benchmark="trace",
        configuration=f"{len(trace.records)} transactions",
    )
