"""Synthetic stand-ins for the paper's proprietary production traces.

§3.2 compares the benchmarks' demand variability against traces from
"one of the top-10 online retailers" and "one of the top-10 auctioning
sites in the US", reporting C² ≈ 2 for both.  Those traces are
proprietary and unavailable, so — per the substitution rule in
DESIGN.md — we generate synthetic traces with the same published
statistic: lognormal per-transaction service demands with C² ≈ 2
(retailer) and C² ≈ 2.2 (auction), plus diurnal-free Poisson arrival
gaps.  Only the C² figure is used anywhere in the paper, so the
substitution is behaviour-preserving.
"""

from __future__ import annotations

import csv
import dataclasses
import functools
import hashlib
import io
import json
import os
import random
import struct
from typing import Callable, Dict, List, Optional, Sequence

from repro.sim.distributions import Deterministic, Empirical, LogNormal
from repro.workloads.spec import TransactionType, WorkloadSpec


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One trace line: arrival offset and service demand (seconds)."""

    arrival_time: float
    service_demand: float


@dataclasses.dataclass(frozen=True)
class Trace:
    """A service-demand trace with summary statistics."""

    name: str
    records: Sequence[TraceRecord]
    #: Pre-computed content identity (file-backed traces use the file's
    #: sha256); None lets :attr:`digest` derive it from the records.
    content_digest: Optional[str] = None

    @property
    def demands(self) -> List[float]:
        """All service demands in trace order."""
        return [r.service_demand for r in self.records]

    @property
    def demand_scv(self) -> float:
        """Sample C² of the service demands."""
        demands = self.demands
        n = len(demands)
        if n < 2:
            return 0.0
        mean = sum(demands) / n
        var = sum((d - mean) ** 2 for d in demands) / (n - 1)
        return var / mean**2 if mean else 0.0

    @property
    def digest(self) -> str:
        """sha256 over the exact (arrival, demand) float stream.

        The content identity of the trace: two traces share a digest
        iff they replay bit-identically, which is what lets
        :class:`~repro.core.arrivals.TraceArrivals` use it as the
        cache-key contribution of a trace-driven scenario.  File-backed
        traces carry the sha256 of the file bytes instead (any textual
        change to the file — even one that parses to the same floats —
        deliberately invalidates cached results).
        """
        if self.content_digest is not None:
            return self.content_digest
        hasher = hashlib.sha256()
        for record in self.records:
            hasher.update(
                struct.pack("<dd", record.arrival_time, record.service_demand)
            )
        return hasher.hexdigest()


def _generate_trace(
    name: str,
    transactions: int,
    mean_demand_s: float,
    scv: float,
    arrival_rate: float,
    seed: int,
) -> Trace:
    rng = random.Random(seed)
    demand_dist = LogNormal(mean_demand_s, scv)
    records = []
    now = 0.0
    for _ in range(transactions):
        now += rng.expovariate(arrival_rate)
        records.append(TraceRecord(now, demand_dist.sample(rng)))
    return Trace(name, tuple(records))


def online_retailer_trace(transactions: int = 10_000, seed: int = 2006) -> Trace:
    """Synthetic stand-in for the top-10 online-retailer trace (C² ≈ 2)."""
    return _generate_trace(
        "online-retailer", transactions, mean_demand_s=0.020, scv=2.0,
        arrival_rate=30.0, seed=seed,
    )


def auction_site_trace(transactions: int = 10_000, seed: int = 2007) -> Trace:
    """Synthetic stand-in for the top-10 auction-site trace (C² ≈ 2.2)."""
    return _generate_trace(
        "auction-site", transactions, mean_demand_s=0.035, scv=2.2,
        arrival_rate=20.0, seed=seed,
    )


#: Named trace factories: the machine-readable registry behind
#: :func:`get_trace` and :class:`~repro.core.arrivals.TraceArrivals`.
TRACE_FACTORIES: Dict[str, Callable[..., Trace]] = {
    "online-retailer": online_retailer_trace,
    "auction-site": auction_site_trace,
}

#: Trace-name prefix that routes :func:`get_trace` to a file on disk.
FILE_TRACE_PREFIX = "file:"


def _parse_trace_row(timestamp: str, demand: str, where: str) -> TraceRecord:
    try:
        arrival = float(timestamp)
        service = float(demand)
    except (TypeError, ValueError):
        raise ValueError(f"{where}: non-numeric trace row ({timestamp!r}, {demand!r})")
    if service < 0:
        raise ValueError(f"{where}: negative service demand {service!r}")
    return TraceRecord(arrival, service)


def _parse_trace_csv(text: str, path: str) -> List[TraceRecord]:
    records: List[TraceRecord] = []
    saw_data_row = False
    for lineno, row in enumerate(csv.reader(io.StringIO(text)), start=1):
        if not row or (len(row) == 1 and not row[0].strip()):
            continue  # blank line
        first = row[0].strip()
        if first.startswith("#"):
            continue  # comment
        if len(row) < 2:
            raise ValueError(f"{path}:{lineno}: expected 'timestamp,demand', got {row!r}")
        if not saw_data_row:
            saw_data_row = True
            try:
                float(first)
            except ValueError:
                continue  # header row
        records.append(_parse_trace_row(first, row[1].strip(), f"{path}:{lineno}"))
    return records


def _parse_trace_jsonl(text: str, path: str) -> List[TraceRecord]:
    records: List[TraceRecord] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        where = f"{path}:{lineno}"
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{where}: invalid JSON ({exc})")
        if isinstance(payload, dict):
            if "timestamp" not in payload or "demand" not in payload:
                raise ValueError(
                    f"{where}: JSONL rows need 'timestamp' and 'demand' keys, "
                    f"got {sorted(payload)!r}"
                )
            records.append(
                _parse_trace_row(payload["timestamp"], payload["demand"], where)
            )
        elif isinstance(payload, (list, tuple)) and len(payload) == 2:
            records.append(_parse_trace_row(payload[0], payload[1], where))
        else:
            raise ValueError(
                f"{where}: expected an object or a [timestamp, demand] pair, "
                f"got {payload!r}"
            )
    return records


def load_trace_file(path: str) -> Trace:
    """Load a timestamp+demand trace from a CSV or JSONL file.

    CSV rows are ``timestamp,demand`` (an optional header row and
    ``#`` comments are skipped); ``.jsonl`` / ``.ndjson`` files carry
    one ``{"timestamp": ..., "demand": ...}`` object (or a two-element
    ``[timestamp, demand]`` array) per line.  Timestamps are arrival
    offsets in seconds and must be non-decreasing; demands are CPU
    seconds.  The trace's :attr:`Trace.digest` is the sha256 of the
    raw file bytes (ROADMAP corpus item (a)): the file *is* the
    experiment input, so its exact bytes are the cache identity.
    """
    with open(path, "rb") as fh:
        raw = fh.read()
    text = raw.decode("utf-8")
    if path.endswith((".jsonl", ".ndjson")):
        records = _parse_trace_jsonl(text, path)
    else:
        records = _parse_trace_csv(text, path)
    if not records:
        raise ValueError(f"{path}: trace file contains no records")
    if records[0].arrival_time < 0:
        raise ValueError(
            f"{path}: arrival timestamps must be >= 0 "
            f"(record 1: {records[0].arrival_time!r})"
        )
    for i, (a, b) in enumerate(zip(records, records[1:]), start=1):
        if b.arrival_time < a.arrival_time:
            raise ValueError(
                f"{path}: arrival timestamps must be non-decreasing "
                f"(record {i + 1}: {b.arrival_time!r} < {a.arrival_time!r})"
            )
    return Trace(
        name=os.path.basename(path),
        records=tuple(records),
        content_digest=hashlib.sha256(raw).hexdigest(),
    )


@functools.lru_cache(maxsize=32)
def _file_trace(path: str, mtime_ns: int, size: int) -> Trace:
    """File-trace memo keyed by (path, mtime, size), not path alone.

    Keying by name only returned the *stale* trace (old records, old
    digest) when the file's bytes changed within one process — e.g. a
    driver regenerating a trace between runs.  The stat fields make
    the cache key track the content.
    """
    del mtime_ns, size  # cache-key components only
    return load_trace_file(path)


@functools.lru_cache(maxsize=32)
def _generated_trace(
    name: str, transactions: Optional[int], seed: Optional[int]
) -> Trace:
    factory = TRACE_FACTORIES[name]
    kwargs = {}
    if transactions is not None:
        kwargs["transactions"] = transactions
    if seed is not None:
        kwargs["seed"] = seed
    return factory(**kwargs)


def get_trace(
    name: str,
    transactions: Optional[int] = None,
    seed: Optional[int] = None,
) -> Trace:
    """Materialize a named trace (None keeps a factory default).

    Memoized: traces are immutable (frozen records), and one
    trace-driven scenario otherwise regenerates the same stream
    several times over — at spec construction (the content digest), at
    workload resolution, at arrival build, and on every fingerprint
    call.  Names of the form ``file:PATH`` load ``PATH`` via
    :func:`load_trace_file` (cached by ``(path, mtime, size)`` so an
    in-process rewrite of the file is picked up; the sha256 of the
    bytes becomes the trace digest), and take no generation
    parameters.
    """
    if name.startswith(FILE_TRACE_PREFIX):
        if transactions is not None or seed is not None:
            raise ValueError(
                "file-backed traces take no generation parameters "
                f"(got transactions={transactions!r}, seed={seed!r} for {name!r})"
            )
        path = name[len(FILE_TRACE_PREFIX):]
        try:
            stat = os.stat(path)
        except OSError:
            # let load_trace_file raise its usual, clearer error
            return load_trace_file(path)
        return _file_trace(path, stat.st_mtime_ns, stat.st_size)
    factory = TRACE_FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown trace {name!r}; available: "
            + ", ".join(sorted(TRACE_FACTORIES))
            + f", or '{FILE_TRACE_PREFIX}PATH' for a CSV/JSONL file"
        )
    return _generated_trace(name, transactions, seed)


def trace_workload(trace: Trace, db_mb: int = 512) -> WorkloadSpec:
    """Wrap a trace as a replayable (resampled) CPU-bound workload.

    Demands are resampled with replacement from the trace's empirical
    demand distribution, preserving its mean and C² exactly.
    """
    tx_type = TransactionType(
        name=trace.name,
        weight=1.0,
        cpu_demand=Empirical(trace.demands),
        page_accesses=Deterministic(0),
        is_update=False,
    )
    return WorkloadSpec(
        name=f"W_trace-{trace.name}",
        types=(tx_type,),
        db_mb=db_mb,
        benchmark="trace",
        configuration=f"{len(trace.records)} transactions",
    )
