"""Synthetic single-type workloads with a dialled-in C².

§4.2 of the paper analyzes response time for job-size C² ∈ {1, 2, 5,
10, 15}; this builder produces matching simulation workloads (a single
transaction type whose demand is a fitted H2/Erlang/exponential), used
to cross-validate the Markov-chain model against the simulator.
"""

from __future__ import annotations

from repro.sim.distributions import Deterministic, fit_hyperexponential
from repro.workloads.spec import TransactionType, WorkloadSpec


def synthetic_workload(
    name: str,
    demand_mean_ms: float,
    scv: float,
    io_fraction: float = 0.0,
    db_mb: int = 512,
    disk_service_mean_ms: float = 8.0,
    update_fraction_is_zero: bool = True,
) -> WorkloadSpec:
    """A one-type workload with total demand of the given mean and C².

    Parameters
    ----------
    demand_mean_ms:
        Mean total service demand per transaction (milliseconds).
    scv:
        Target squared coefficient of variation of the demand.
    io_fraction:
        Fraction of the mean demand delivered as disk reads rather
        than CPU (0.0 = pure CPU).  The variability is carried by the
        CPU part; the I/O part is a deterministic page count, so the
        *total* demand keeps C² ≈ ``scv`` when ``io_fraction`` is
        small.
    """
    if not 0.0 <= io_fraction < 1.0:
        raise ValueError(f"io_fraction must be in [0, 1), got {io_fraction!r}")
    if demand_mean_ms <= 0:
        raise ValueError(f"demand_mean_ms must be positive, got {demand_mean_ms!r}")
    cpu_mean_s = (demand_mean_ms / 1000.0) * (1.0 - io_fraction)
    io_mean_s = (demand_mean_ms / 1000.0) * io_fraction
    # Page touches that become this much disk time if every touch
    # misses; the caller should pair this workload with a machine whose
    # cache is smaller than the database.
    pages = io_mean_s / (disk_service_mean_ms / 1000.0)
    # Inflate the CPU C² so the total (CPU + deterministic I/O) hits scv.
    total_mean = cpu_mean_s + io_mean_s
    cpu_scv = scv * (total_mean / cpu_mean_s) ** 2 if cpu_mean_s > 0 else 0.0
    tx_type = TransactionType(
        name="synthetic",
        weight=1.0,
        cpu_demand=fit_hyperexponential(cpu_mean_s, cpu_scv),
        page_accesses=Deterministic(pages),
        is_update=False,
    )
    return WorkloadSpec(
        name=name,
        types=(tx_type,),
        db_mb=db_mb,
        benchmark="synthetic",
        configuration=f"mean={demand_mean_ms}ms C2={scv}",
    )
