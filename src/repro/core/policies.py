"""External-queue scheduling policies.

The whole point of external scheduling is that the application can
order this queue however it likes (§1).  The paper's prioritization
experiments use :class:`PriorityPolicy` (high-priority transactions
dispatch first, FIFO within a class); :class:`FifoPolicy` is the
neutral baseline used for the throughput studies, and
:class:`SjfPolicy` is the classic size-based alternative the paper
mentions as a possible extension (scheduling by estimated demand).
"""

from __future__ import annotations

import collections
import heapq
import itertools
from typing import Callable, Deque, List, Optional, Tuple

from repro.dbms.transaction import Transaction


class QueuePolicy:
    """Interface: an ordered external queue of transactions."""

    def push(self, tx: Transaction) -> None:
        """Add an arriving transaction."""
        raise NotImplementedError

    def pop(self) -> Transaction:
        """Remove and return the next transaction to dispatch."""
        raise NotImplementedError

    def remove(self, tx: Transaction) -> bool:
        """Remove one specific queued transaction; False if absent.

        The resilience layer's hook: deadline expiry and load shedding
        pull a victim out of the middle of the queue.  O(n), but sheds
        and queued timeouts are rare relative to dispatches.
        """
        raise NotImplementedError

    def __iter__(self):
        """Iterate the queued transactions (shed-victim selection)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0


class FifoPolicy(QueuePolicy):
    """First-in first-out (the unprioritized baseline)."""

    def __init__(self):
        self._queue: Deque[Transaction] = collections.deque()

    def push(self, tx: Transaction) -> None:
        self._queue.append(tx)

    def pop(self) -> Transaction:
        return self._queue.popleft()

    def remove(self, tx: Transaction) -> bool:
        try:
            self._queue.remove(tx)
        except ValueError:
            return False
        return True

    def __iter__(self):
        return iter(self._queue)

    def __len__(self) -> int:
        return len(self._queue)


def _heap_remove(heap: List[tuple], tx: Transaction) -> bool:
    """Remove the entry holding ``tx`` from a (key, seq, tx) heap."""
    for index, entry in enumerate(heap):
        if entry[2] is tx:
            last = heap.pop()
            if index < len(heap):
                heap[index] = last
                heapq.heapify(heap)
            return True
    return False


class PriorityPolicy(QueuePolicy):
    """Strict priority: highest class first, FIFO within a class.

    This is exactly the paper's §5.1 algorithm: "high-priority
    transactions are given first priority, and low-priority
    transactions are only chosen if there are no more high-priority
    transactions".
    """

    def __init__(self):
        self._heap: List[Tuple[int, int, Transaction]] = []
        self._counter = itertools.count()

    def push(self, tx: Transaction) -> None:
        heapq.heappush(self._heap, (-tx.priority, next(self._counter), tx))

    def pop(self) -> Transaction:
        return heapq.heappop(self._heap)[2]

    def remove(self, tx: Transaction) -> bool:
        return _heap_remove(self._heap, tx)

    def __iter__(self):
        return (entry[2] for entry in self._heap)

    def __len__(self) -> int:
        return len(self._heap)


class SjfPolicy(QueuePolicy):
    """Shortest (estimated) job first.

    ``estimator`` maps a transaction to its expected total demand; the
    default uses the CPU demand alone, which is what an external
    scheduler could estimate from transaction type statistics.
    """

    def __init__(self, estimator: Optional[Callable[[Transaction], float]] = None):
        self._heap: List[Tuple[float, int, Transaction]] = []
        self._counter = itertools.count()
        self._estimator = estimator or (lambda tx: tx.cpu_demand)

    def push(self, tx: Transaction) -> None:
        heapq.heappush(self._heap, (self._estimator(tx), next(self._counter), tx))

    def pop(self) -> Transaction:
        return heapq.heappop(self._heap)[2]

    def remove(self, tx: Transaction) -> bool:
        return _heap_remove(self._heap, tx)

    def __iter__(self):
        return (entry[2] for entry in self._heap)

    def __len__(self) -> int:
        return len(self._heap)


_POLICIES = {
    "fifo": FifoPolicy,
    "priority": PriorityPolicy,
    "sjf": SjfPolicy,
}


def make_policy(name: str) -> QueuePolicy:
    """Instantiate a policy by name (``fifo``, ``priority``, ``sjf``)."""
    try:
        factory = _POLICIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; known: {sorted(_POLICIES)}"
        ) from None
    return factory()
