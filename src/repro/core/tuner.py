"""The MPL-tuning tool: queueing models + feedback controller.

This is "the tool" of the paper's conclusion: the DBA supplies the
maximum acceptable throughput loss and response-time increase; the
tuner

1. measures the unlimited (no-MPL) baseline — throughput, mean
   response time, per-resource utilizations, and demand variability;
2. asks the queueing models for a close-to-optimal starting MPL
   (throughput model of §4.1; response-time model of §4.2 when the
   workload is variable);
3. hands that starting value to the feedback controller of §4.3,
   which converges to the lowest feasible MPL in a few iterations.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.core.controller import (
    Baseline,
    ControllerReport,
    MplController,
    Thresholds,
)
from repro.core.system import RunResult, SimulatedSystem, SystemConfig
from repro.queueing.mpl_ps_queue import MplPsQueue
from repro.queueing.throughput_model import ThroughputModel


@dataclasses.dataclass(frozen=True)
class TuningResult:
    """Everything the tuner learned."""

    baseline: RunResult
    model_mpl_throughput: int
    model_mpl_response_time: int
    initial_mpl: int
    report: ControllerReport

    @property
    def final_mpl(self) -> int:
        """The tuned multi-programming limit."""
        return self.report.final_mpl


def model_initial_mpl_throughput(
    utilizations: Dict[str, float],
    counts: Dict[str, int],
    max_throughput_loss: float,
) -> int:
    """§4.1: minimum MPL keeping modelled throughput loss within bounds."""
    model = ThroughputModel.from_utilizations(utilizations, counts)
    return model.min_mpl_for_fraction(1.0 - max_throughput_loss)


def miss_probability(config: SystemConfig) -> float:
    """The analytic buffer-pool miss probability of a config."""
    from repro.dbms.bufferpool import AnalyticBufferPool

    pool = AnalyticBufferPool(
        config.workload.db_pages,
        config.hardware.cache_pages,
        hot_access_fraction=config.workload.hot_access_fraction,
        hot_page_fraction=config.workload.hot_page_fraction,
    )
    return 1.0 - pool.hit_probability


def model_jump_start(
    config: SystemConfig,
    baseline: RunResult,
    thresholds: Thresholds,
    is_open: Optional[bool] = None,
) -> Dict[str, int]:
    """The queueing models' starting MPLs for a measured baseline.

    The §4.1 throughput model always applies; the §4.2 response-time
    model only for open systems (in a closed system the mean response
    time follows throughput by Little's law, §3.2).  ``is_open``
    identifies the arrival regime; the default (None) falls back to
    the legacy ``config.arrival_rate`` test, while the scenario layer
    passes its own regime notion so open arrival *specs*
    (``OpenArrivals``, modulated, trace replay) jump-start identically
    to the equivalent ``arrival_rate`` spelling.  Shared by
    :class:`MplTuner` and the scenario layer's ``FeedbackMpl`` control
    spec, so "jump-start from the models" means the same thing on both
    paths.
    """
    hardware = config.hardware
    counts = {
        "cpu": hardware.num_cpus,
        "disk": hardware.num_disks,
        "log": 1,
    }
    mpl_throughput = model_initial_mpl_throughput(
        baseline.utilizations, counts, thresholds.max_throughput_loss
    )
    if is_open is None:
        is_open = config.arrival_rate is not None
    mpl_response = 1
    if is_open:
        _demand_mean, demand_scv = config.workload.demand_moments(
            hardware.disk_service_mean_ms / 1000.0,
            miss_probability=miss_probability(config),
        )
        load = min(0.9, max(baseline.utilizations.values()))
        mpl_response = model_initial_mpl_response_time(
            load, demand_scv, thresholds.max_response_time_increase
        )
    return {"throughput": mpl_throughput, "response_time": mpl_response}


def model_initial_mpl_response_time(
    load: float,
    demand_scv: float,
    max_response_time_increase: float,
    max_mpl: int = 60,
) -> int:
    """§4.2: minimum MPL keeping modelled E[T] near the PS value.

    Evaluates the FIFO→PS(MPL) chain at the measured load and demand
    C², returning the smallest MPL whose mean response time is within
    the tolerance of the (insensitive) PS reference.
    """
    load = min(max(load, 0.05), 0.95)
    scv = max(1.0, demand_scv)
    queue = MplPsQueue(arrival_rate=load, mpl=1, service_mean=1.0, service_scv=scv)
    ps_reference = queue.ps_reference()
    target = (1.0 + max_response_time_increase) * ps_reference
    for mpl in range(1, max_mpl + 1):
        model = MplPsQueue(
            arrival_rate=load, mpl=mpl, service_mean=1.0, service_scv=scv
        )
        if model.mean_response_time() <= target:
            return mpl
    return max_mpl


class MplTuner:
    """End-to-end MPL tuning for a system configuration.

    Parameters
    ----------
    config:
        The system to tune (its ``mpl`` field is ignored).
    thresholds:
        The DBA's tolerances.
    baseline_transactions / window:
        Measurement sizes for the baseline run and the controller's
        observation windows.
    """

    def __init__(
        self,
        config: SystemConfig,
        thresholds: Optional[Thresholds] = None,
        baseline_transactions: int = 1500,
        window: int = 100,
    ):
        self.config = config
        self.thresholds = thresholds or Thresholds()
        self.baseline_transactions = baseline_transactions
        self.window = window

    def measure_baseline(self) -> RunResult:
        """Run the system with no MPL limit and measure it.

        Heavy-tailed workloads need proportionally longer measurements
        for a stable mean (the window-sizing argument of §4.3 applied
        to the baseline itself), so the run length scales with the
        workload's demand C².
        """
        _mean, demand_scv = self.config.workload.demand_moments(
            self.config.hardware.disk_service_mean_ms / 1000.0,
            miss_probability=miss_probability(self.config),
        )
        multiplier = min(8.0, max(1.0, demand_scv))
        transactions = int(self.baseline_transactions * multiplier)
        config = dataclasses.replace(self.config, mpl=None)
        system = SimulatedSystem(config)
        return system.run(transactions=transactions)

    def tune(self) -> TuningResult:
        """Measure the baseline, jump-start from the models, run the loop."""
        baseline = self.measure_baseline()
        jump_start = model_jump_start(self.config, baseline, self.thresholds)
        # An MPL above the client population is meaningless in a closed
        # system, so both the start and the search space are capped.
        max_mpl = max(1, self.config.num_clients)
        initial = min(
            max(jump_start["throughput"], jump_start["response_time"]), max_mpl
        )
        config = dataclasses.replace(self.config, mpl=initial)
        system = SimulatedSystem(config)
        controller = MplController(
            system,
            baseline=Baseline(
                throughput=baseline.throughput,
                mean_response_time=baseline.mean_response_time,
            ),
            thresholds=self.thresholds,
            initial_mpl=initial,
            window=self.window,
            max_mpl=max_mpl,
            # closed systems: RT follows throughput (Little's law)
            check_response_time=self.config.arrival_rate is not None,
        )
        report = controller.tune()
        return TuningResult(
            baseline=baseline,
            model_mpl_throughput=jump_start["throughput"],
            model_mpl_response_time=jump_start["response_time"],
            initial_mpl=initial,
            report=report,
        )
