"""Fault injection: a scheduled timeline of cluster failures.

A :class:`FaultSpec` is the fourth scenario axis — *what goes wrong and
when*.  It is a frozen, fingerprintable value like the other spec axes:
a tuple of events (:class:`KillShard`, :class:`RestoreShard`,
:class:`DegradeShard`), each pinned to a simulated-clock instant, with
a strict JSON codec that rejects unknown keys.

The :class:`FaultInjector` turns the spec into behaviour: it arms one
simulator timeout per event, and each callback drives the matching
:class:`~repro.core.cluster.ClusteredSystem` transition
(``kill_shard`` / ``restore_shard`` / ``degrade_shard``).  Every
applied event is logged with its fire time so a run's fault history
lands in the :class:`~repro.core.scenario.ScenarioOutcome`.

Fault semantics are fail-stop at the admission boundary: a killed node
stops accepting new work, in-flight transactions drain to completion,
and queued-but-undispatched transactions are re-homed (replica-group
election buffer or router re-route) — so the cluster-wide conservation
law ``routed = completed + in-service + queued + buffered`` holds
through any kill/restore sequence.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Dict, List, Optional, Tuple

from repro.core.system import canonical_jsonable, content_digest


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: something happens to ``shard`` at ``at``."""

    at: float
    shard: int

    #: Codec tag; subclasses override.
    kind = "fault"

    def __post_init__(self):
        if not isinstance(self.at, (int, float)) or isinstance(self.at, bool):
            raise ValueError(f"fault time must be a number, got {self.at!r}")
        # `nan < 0` is False, so a plain lower-bound check accepts NaN
        # and arms a timeout the sim clock can never reach.
        if not math.isfinite(self.at):
            raise ValueError(f"fault time must be finite, got {self.at!r}")
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at!r}")
        if not isinstance(self.shard, int) or isinstance(self.shard, bool):
            raise ValueError(f"fault shard must be an int, got {self.shard!r}")
        if self.shard < 0:
            raise ValueError(f"fault shard must be >= 0, got {self.shard!r}")

    def fingerprint(self) -> str:
        """Content digest of this single event (class name included)."""
        return content_digest(canonical_jsonable(self), {})

    def describe(self) -> str:
        return f"t={self.at:g}s {self.kind} shard {self.shard}"


@dataclasses.dataclass(frozen=True)
class KillShard(FaultEvent):
    """Fail-stop the shard's acting primary (or the whole shard).

    With replicas the group elects a new primary after its election
    timeout; without replicas the router takes the shard out of
    rotation and re-homes its queued work.
    """

    kind = "kill"


@dataclasses.dataclass(frozen=True)
class RestoreShard(FaultEvent):
    """Bring a shard's dead members back (and undo any degrade).

    Revived members rejoin as replicas; a fully-dead shard comes back
    with its lowest-index member as primary and re-enters the routing
    rotation.
    """

    kind = "restore"


@dataclasses.dataclass(frozen=True)
class DegradeShard(FaultEvent):
    """Scale the shard's MPL by ``factor`` (partial brown-out).

    A no-op for unlimited-MPL shards: there is no admission limit to
    shrink.  ``RestoreShard`` undoes the degradation.
    """

    kind = "degrade"
    factor: float = 0.5

    def __post_init__(self):
        super().__post_init__()
        if not isinstance(self.factor, (int, float)) or isinstance(self.factor, bool):
            raise ValueError(f"degrade factor must be a number, got {self.factor!r}")
        if not 0.0 < self.factor <= 1.0:
            raise ValueError(
                f"degrade factor must be in (0, 1], got {self.factor!r}"
            )

    def describe(self) -> str:
        return f"t={self.at:g}s degrade shard {self.shard} to {self.factor:g}x"


#: Event-type registry for the JSON codec (mirrors the control/arrival
#: registries in :mod:`repro.core.scenario`).
FAULT_EVENT_TYPES: Dict[str, type] = {
    "kill": KillShard,
    "restore": RestoreShard,
    "degrade": DegradeShard,
}


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """The fault axis of a scenario: an ordered tuple of events."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "events", tuple(self.events))
        if not self.events:
            raise ValueError("a FaultSpec needs at least one event")
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise ValueError(
                    f"fault events must be FaultEvent instances, got {event!r}"
                )

    def max_shard(self) -> int:
        """Highest shard index any event touches."""
        return max(event.shard for event in self.events)

    def fingerprint(self) -> str:
        """Content digest of the whole timeline."""
        return content_digest(canonical_jsonable(self), {})

    def event_fingerprints(self) -> Tuple[str, ...]:
        """Per-event digests (each event is individually addressable)."""
        return tuple(event.fingerprint() for event in self.events)


# -- JSON codec ---------------------------------------------------------------


def encode_fault_event(event: FaultEvent) -> Dict[str, Any]:
    payload: Dict[str, Any] = {"type": event.kind}
    for field in dataclasses.fields(event):
        payload[field.name] = getattr(event, field.name)
    return payload


def decode_fault_event(payload: Any) -> FaultEvent:
    if not isinstance(payload, dict):
        raise ValueError(f"fault event must be an object, got {payload!r}")
    data = dict(payload)
    kind = data.pop("type", None)
    cls = FAULT_EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown fault event type {kind!r}; "
            f"available: {', '.join(sorted(FAULT_EVENT_TYPES))}"
        )
    known = {field.name for field in dataclasses.fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(
            f"unknown keys for fault event {kind!r}: {sorted(unknown)!r}"
        )
    return cls(**data)


def encode_fault_spec(spec: Optional[FaultSpec]) -> Optional[Dict[str, Any]]:
    if spec is None:
        return None
    return {"events": [encode_fault_event(event) for event in spec.events]}


def decode_fault_spec(payload: Any) -> Optional[FaultSpec]:
    if payload is None:
        return None
    if not isinstance(payload, dict):
        raise ValueError(f"faults must be an object, got {payload!r}")
    unknown = set(payload) - {"events"}
    if unknown:
        raise ValueError(f"unknown keys for faults: {sorted(unknown)!r}")
    events = payload.get("events")
    if not isinstance(events, list):
        raise ValueError(f"faults.events must be a list, got {events!r}")
    return FaultSpec(events=tuple(decode_fault_event(event) for event in events))


# -- execution ----------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class AppliedFault:
    """One fault event as it actually fired during a run."""

    at: float
    kind: str
    shard: int
    detail: str = ""

    def jsonable(self) -> Dict[str, Any]:
        return {
            "at": self.at,
            "kind": self.kind,
            "shard": self.shard,
            "detail": self.detail,
        }


class FaultInjector:
    """Arms a :class:`FaultSpec` timeline on a clustered system's clock.

    Each event becomes one simulator timeout whose callback drives the
    matching cluster transition.  The injector is passive after
    :meth:`arm` — the kernel fires the events as simulated time
    advances, interleaved deterministically with the workload.
    """

    def __init__(self, system, spec: FaultSpec):
        self.system = system
        self.spec = spec
        self.applied: List[AppliedFault] = []
        self._armed = False

    def arm(self) -> None:
        """Schedule every event; call once, before the run starts."""
        if self._armed:
            raise ValueError("fault injector is already armed")
        self._armed = True
        sim = self.system.sim
        for event in self.spec.events:
            delay = event.at - sim.now
            if delay < 0:
                raise ValueError(
                    f"fault at t={event.at:g}s is in the past (now={sim.now:g}s)"
                )
            timeout = sim.timeout(delay)
            timeout.add_callback(lambda _ev, e=event: self._apply(e))

    def _apply(self, event: FaultEvent) -> None:
        system = self.system
        if isinstance(event, KillShard):
            detail = system.kill_shard(event.shard)
        elif isinstance(event, RestoreShard):
            detail = system.restore_shard(event.shard)
        elif isinstance(event, DegradeShard):
            detail = system.degrade_shard(event.shard, event.factor)
        else:  # pragma: no cover - registry keeps this unreachable
            raise ValueError(f"unknown fault event {event!r}")
        self.applied.append(
            AppliedFault(
                at=system.sim.now, kind=event.kind, shard=event.shard,
                detail=detail or "",
            )
        )

    def applied_jsonable(self) -> List[Dict[str, Any]]:
        """The fault history in JSON-friendly form."""
        return [fault.jsonable() for fault in self.applied]
