"""Scenario API v2: workload × arrivals × topology × control × faults.

The paper's core move is *external* control — the MPL loop wraps an
unmodified DBMS, so the whole experiment is configuration, not engine
code.  This module makes that literal: a :class:`ScenarioSpec` composes
orthogonal, individually-fingerprinted sub-specs

* :class:`WorkloadRef` — *what runs*: a Table 2 setup id, or a named
  service-demand trace (:mod:`repro.workloads.traces`);
* :class:`~repro.core.arrivals.ArrivalSpec` — *how work arrives*
  (closed / open / partly-open / modulated / trace replay), the seam
  PR 2 introduced, reused unchanged;
* :class:`TopologySpec` — *where it runs*: shard count, routing
  policy, routing weights (the cluster layer of PR 3), and — new in
  v2 — ``replicas_per_shard`` / ``read_fanout`` /
  ``election_timeout_s`` describing one
  :class:`~repro.core.cluster.ReplicaGroup` per shard;
* :class:`ControlSpec` — *who turns the knob*: a static MPL
  (:class:`StaticMpl`), the paper's §4 feedback loop
  (:class:`FeedbackMpl`), a per-class SLO loop
  (:class:`PerClassSlo`) holding HIGH's p95 under a target while
  maximizing LOW throughput, or — new in v2 — elastic capacity
  (:class:`ElasticMpl`) re-splitting the global MPL toward hot shards
  and parking/activating shards on watermarks;
* :class:`~repro.core.faults.FaultSpec` — *what goes wrong*: an
  optional kill/restore/degrade timeline a
  :class:`~repro.core.faults.FaultInjector` drives on the simulated
  clock (new in v2);
* :class:`~repro.core.resilience.ResilienceSpec` — *what the front end
  does about it*: per-class deadlines, retry with exponential backoff
  and seeded jitter, bounded admission queues with load shedding, and
  health-aware per-shard circuit breaking (PR 9);

plus a :class:`MeasurementSpec` (transactions, warmup, metric set —
including the v2 ``timeline`` family that buckets throughput/p95 over
simulated time for failover plots).
Scenarios are pure data: frozen dataclasses that JSON round-trip
(:meth:`ScenarioSpec.to_json_dict` / :meth:`ScenarioSpec.from_json_dict`),
pickle into worker processes, and content-hash into the parallel
runner's cache key.

Compatibility is structural: :meth:`ScenarioSpec.build_config`
constructs exactly the :class:`~repro.core.system.SystemConfig` /
:class:`~repro.core.cluster.ClusterConfig` the legacy
:class:`~repro.experiments.parallel.RunSpec` produced, and
:meth:`ScenarioSpec.fingerprint` only appends ``extra`` entries for
features the legacy path could not express — so every legacy spec
keeps its exact cache key (pinned by
``tests/data/scenario_golden_fingerprints.json``) and an all-default
scenario runs bit-identically to the legacy path.
"""

from __future__ import annotations

import dataclasses
import json
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.arrivals import (
    ArrivalSpec,
    ClosedArrivals,
    ModulatedArrivals,
    OpenArrivals,
    PartlyOpenArrivals,
    PiecewiseRate,
    RateFunction,
    SinusoidRate,
    TraceArrivals,
)
from repro.core.cluster import (
    READ_FANOUT_POLICIES,
    AnyConfig,
    ClusterConfig,
    ClusteredSystem,
    build_system,
)
from repro.core.controller import (
    Baseline,
    ClusterSloController,
    ClusterSloReport,
    ControllerReport,
    ElasticCapacityController,
    ElasticReport,
    MplController,
    PerClassSloController,
    SloReport,
    Thresholds,
)
from repro.core.distributed import (
    DistributedSpec,
    TwoPhaseCoordinator,
    decode_distributed_spec,
    distributed_field_errors,
    encode_distributed_spec,
)
from repro.core.faults import (
    FaultInjector,
    FaultSpec,
    KillShard,
    RestoreShard,
    decode_fault_event,
    decode_fault_spec,
    encode_fault_spec,
)
from repro.core.resilience import (
    ResilienceRuntime,
    ResilienceSpec,
    decode_resilience_spec,
    encode_resilience_spec,
    resilience_field_errors,
)
from repro.core.system import (
    MeasuredSystem,
    RunResult,
    SystemConfig,
    canonical_jsonable,
    content_digest,
)
from repro.core.tuner import model_jump_start
from repro.dbms.config import (
    HardwareConfig,
    InternalPolicy,
    IsolationLevel,
    LockSchedulingPolicy,
)
from repro.metrics import stats
from repro.sim.station import ROUTING_POLICIES

#: Seed shared by every figure unless the paper's text says otherwise
#: (the historical home of this constant is
#: :mod:`repro.experiments.parallel`, which re-exports it).
DEFAULT_SEED = 11

#: Metric families a :class:`MeasurementSpec` may request.
METRIC_SETS = ("standard", "percentiles", "timeline")

#: Response-time percentiles reported by the ``percentiles`` metric set.
REPORTED_PERCENTILES = (50.0, 95.0, 99.0)


def component_fingerprint(spec: Any) -> str:
    """Content hash of one sub-spec (workload / arrival / ...).

    Orthogonality made checkable: two scenarios share a component
    fingerprint iff that axis is identical, regardless of every other
    axis.
    """
    return content_digest(canonical_jsonable(spec), {})


class ScenarioValidationError(ValueError):
    """Every problem found in a scenario payload, reported at once.

    ``errors`` is a list of ``(path, message)`` pairs with
    JSON-pointer-style paths (``/topology``, ``/faults/events/2``) so
    callers — the CLI in particular — can print one line per problem
    instead of failing on the first bad key.  Produced by
    :meth:`ScenarioSpec.validate`.
    """

    def __init__(self, errors: Sequence[Tuple[str, str]]):
        self.errors: List[Tuple[str, str]] = [
            (str(path), str(message)) for path, message in errors
        ]
        lines = "\n".join(
            f"  {path or '/'}: {message}" for path, message in self.errors
        )
        super().__init__(
            f"{len(self.errors)} scenario problem(s):\n{lines}"
        )


# -- the axes ------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class WorkloadRef:
    """What runs: a Table 2 setup id, or a named demand trace.

    Exactly one of ``setup_id`` / ``trace`` is set.  A setup carries
    its own hardware and isolation level (Table 2); a trace runs as a
    resampled CPU-bound workload
    (:func:`~repro.workloads.traces.trace_workload`) on the default
    one-CPU machine.
    """

    setup_id: Optional[int] = 1
    trace: Optional[str] = None
    trace_transactions: Optional[int] = None
    trace_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.setup_id is None) == (self.trace is None):
            raise ValueError(
                "specify exactly one of setup_id / trace, got "
                f"setup_id={self.setup_id!r} trace={self.trace!r}"
            )

    def resolve(self) -> "Tuple[Any, HardwareConfig, IsolationLevel]":
        """The (workload, hardware, isolation) triple this ref names."""
        if self.setup_id is not None:
            from repro.workloads.setups import get_setup

            setup = get_setup(self.setup_id)
            return setup.workload, setup.hardware, setup.isolation
        from repro.workloads.traces import get_trace, trace_workload

        trace = get_trace(self.trace, self.trace_transactions, self.trace_seed)
        return trace_workload(trace), HardwareConfig(), IsolationLevel.RR


@dataclasses.dataclass(frozen=True)
class TopologySpec:
    """Where it runs: N engines behind a router (1 = the plain engine).

    ``replicas_per_shard`` puts a
    :class:`~repro.core.cluster.ReplicaGroup` behind each router slot:
    one primary + R replicas, writes pinned to the primary, reads
    fanned out by ``read_fanout`` (``primary`` / ``round_robin`` /
    ``least_in_flight``), with a deterministic lowest-index election
    ``election_timeout_s`` of simulated time after a primary dies.
    """

    shards: int = 1
    routing: str = "round_robin"
    routing_weights: Optional[Tuple[float, ...]] = None
    replicas_per_shard: int = 0
    read_fanout: str = "round_robin"
    election_timeout_s: float = 0.5

    #: v2 fields omitted from the canonical encoding at their defaults,
    #: so every v1 topology keeps its exact component digest.
    FINGERPRINT_OMIT_DEFAULTS = frozenset(
        {"replicas_per_shard", "read_fanout", "election_timeout_s"}
    )

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards!r}")
        if self.routing not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {self.routing!r}; "
                f"available: {', '.join(ROUTING_POLICIES)}"
            )
        if self.routing_weights is not None:
            if len(self.routing_weights) != self.shards:
                raise ValueError(
                    f"need {self.shards} routing weights, "
                    f"got {len(self.routing_weights)}"
                )
            if any(not math.isfinite(w) for w in self.routing_weights):
                raise ValueError(
                    f"routing weights must be finite, got {self.routing_weights!r}"
                )
            if any(w <= 0 for w in self.routing_weights):
                raise ValueError(
                    f"routing weights must be positive, got {self.routing_weights!r}"
                )
        if self.replicas_per_shard < 0:
            raise ValueError(
                f"replicas_per_shard must be >= 0, got {self.replicas_per_shard!r}"
            )
        if self.read_fanout not in READ_FANOUT_POLICIES:
            raise ValueError(
                f"unknown read fan-out {self.read_fanout!r}; "
                f"available: {', '.join(READ_FANOUT_POLICIES)}"
            )
        if self.election_timeout_s < 0:
            raise ValueError(
                f"election_timeout_s must be >= 0, got {self.election_timeout_s!r}"
            )


@dataclasses.dataclass(frozen=True)
class MeasurementSpec:
    """How the run is measured: sample size, warmup, metric families."""

    transactions: int = 1500
    warmup_fraction: float = 0.2
    metrics: Tuple[str, ...] = ("standard",)
    #: Bucket width (simulated seconds) for the ``timeline`` metric set.
    timeline_bucket_s: float = 1.0

    #: v2 field omitted from the canonical encoding at its default.
    FINGERPRINT_OMIT_DEFAULTS = frozenset({"timeline_bucket_s"})

    def __post_init__(self) -> None:
        if self.transactions < 1:
            raise ValueError(
                f"transactions must be >= 1, got {self.transactions!r}"
            )
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction!r}"
            )
        if not self.metrics or "standard" not in self.metrics:
            raise ValueError("the metric set must include 'standard'")
        unknown = set(self.metrics) - set(METRIC_SETS)
        if unknown:
            raise ValueError(
                f"unknown metric sets {sorted(unknown)!r}; "
                f"available: {', '.join(METRIC_SETS)}"
            )
        if self.timeline_bucket_s <= 0:
            raise ValueError(
                f"timeline_bucket_s must be positive, got {self.timeline_bucket_s!r}"
            )


class ControlSpec:
    """Marker base: who sets the MPL, and how, during a run.

    A control spec is pure data; the *system* instantiates the matching
    controller (``apply``) — figure code never constructs controllers
    directly anymore.
    """

    def config_mpl(self) -> Optional[int]:
        """The MPL the system is built with (before any control loop)."""
        raise NotImplementedError

    def apply(
        self, system: MeasuredSystem, scenario: "ScenarioSpec"
    ) -> "Optional[ControlReport]":
        """Run the control phase against a live system; report or None."""
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class StaticMpl(ControlSpec):
    """A fixed MPL (None = unlimited, the paper's baseline system)."""

    mpl: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mpl is not None and self.mpl < 1:
            raise ValueError(f"mpl must be >= 1 or None, got {self.mpl!r}")

    def config_mpl(self) -> Optional[int]:
        return self.mpl

    def apply(self, system, scenario):
        return None


@dataclasses.dataclass(frozen=True)
class FeedbackMpl(ControlSpec):
    """The paper's §4 loop: queueing-model jump-start + feedback control.

    ``initial_mpl=None`` jump-starts from the queueing models (§4.1 /
    §4.2) using the measured baseline, exactly like
    :class:`~repro.core.tuner.MplTuner` (single-engine topologies
    only — a sharded scenario must pin ``initial_mpl`` explicitly).
    The no-MPL baseline the penalties are measured against is taken
    from an unlimited twin of the same scenario (same workload,
    arrivals, topology, seed), run for ``baseline_transactions`` — or
    supplied directly via ``baseline_throughput`` /
    ``baseline_response_time`` when the caller already measured it
    (e.g. through the result cache), which skips the twin run.

    On a sharded topology the loop runs per shard
    (:meth:`~repro.core.cluster.ClusteredSystem.tune_shards`), each
    shard held to its fair share of the cluster baseline.
    """

    max_throughput_loss: float = 0.05
    max_response_time_increase: float = 0.30
    initial_mpl: Optional[int] = None
    window: int = 100
    step: int = 1
    adaptive: bool = True
    baseline_transactions: int = 1000
    #: Pre-measured no-MPL reference (both set, or both None).
    baseline_throughput: Optional[float] = None
    baseline_response_time: Optional[float] = None

    def __post_init__(self) -> None:
        # delegate range validation to the shared Thresholds rules
        self.thresholds()
        if self.initial_mpl is not None and self.initial_mpl < 1:
            raise ValueError(
                f"initial_mpl must be >= 1 or None, got {self.initial_mpl!r}"
            )
        if self.baseline_transactions < 2:
            raise ValueError(
                "baseline_transactions must be >= 2, got "
                f"{self.baseline_transactions!r}"
            )
        if (self.baseline_throughput is None) != (
            self.baseline_response_time is None
        ):
            raise ValueError(
                "baseline_throughput and baseline_response_time go together"
            )
        if self.baseline_throughput is not None:
            # validate the pair eagerly (Baseline rejects tput <= 0)
            self.explicit_baseline()
            if self.initial_mpl is None:
                raise ValueError(
                    "an explicit baseline carries no utilizations for the "
                    "model jump-start; pin initial_mpl as well"
                )

    def explicit_baseline(self) -> Optional[Baseline]:
        """The pre-measured reference, if one was supplied."""
        if self.baseline_throughput is None:
            return None
        return Baseline(
            throughput=self.baseline_throughput,
            mean_response_time=self.baseline_response_time,
        )

    def thresholds(self) -> Thresholds:
        """The DBA tolerances as the controller's Thresholds object."""
        return Thresholds(
            max_throughput_loss=self.max_throughput_loss,
            max_response_time_increase=self.max_response_time_increase,
        )

    def config_mpl(self) -> Optional[int]:
        return self.initial_mpl

    def _measure_baseline(self, scenario: "ScenarioSpec") -> RunResult:
        """Run the unlimited twin of ``scenario`` (the no-MPL reference)."""
        twin = dataclasses.replace(scenario, control=StaticMpl(None))
        return build_system(twin.build_config()).run(
            transactions=self.baseline_transactions,
            warmup_fraction=scenario.measurement.warmup_fraction,
        )

    def apply(self, system, scenario):
        baseline = self.explicit_baseline()
        reference = None
        if baseline is None:
            reference = self._measure_baseline(scenario)
            baseline = Baseline(
                throughput=reference.throughput,
                mean_response_time=reference.mean_response_time,
            )
        if isinstance(system, ClusteredSystem):
            # initial_mpl is validated non-None for sharded scenarios
            reports = system.tune_shards(
                baseline,
                self.thresholds(),
                initial_mpl=self.initial_mpl,
                window=self.window,
                step=self.step,
                adaptive=self.adaptive,
                check_response_time=scenario.is_open,
            )
            return ShardReports(tuple(reports))
        initial = self.initial_mpl
        if initial is None:
            jump = model_jump_start(
                system.config, reference, self.thresholds(),
                is_open=scenario.is_open,
            )
            cap = max(1, system.config.num_clients)
            initial = min(max(jump["throughput"], jump["response_time"]), cap)
        controller = MplController(
            system,
            baseline,
            self.thresholds(),
            initial_mpl=initial,
            window=self.window,
            step=self.step,
            adaptive=self.adaptive,
            check_response_time=scenario.is_open,
        )
        return controller.tune()


@dataclasses.dataclass(frozen=True)
class PerClassSlo(ControlSpec):
    """Hold HIGH's p95 under ``high_p95_target_s``, maximize LOW work.

    Runs :class:`~repro.core.controller.PerClassSloController` against
    the live system; requires HIGH-priority traffic
    (``high_priority_fraction > 0``) and a single-engine topology.
    """

    high_p95_target_s: float = 0.5
    initial_mpl: int = 8
    window: int = 150
    step: int = 1
    max_mpl: int = 128
    max_iterations: int = 30

    def __post_init__(self) -> None:
        if self.high_p95_target_s <= 0:
            raise ValueError(
                f"high_p95_target_s must be positive, got {self.high_p95_target_s!r}"
            )
        if self.initial_mpl < 1:
            raise ValueError(f"initial_mpl must be >= 1, got {self.initial_mpl!r}")
        if self.max_mpl < self.initial_mpl:
            raise ValueError(
                f"max_mpl {self.max_mpl!r} must be >= initial_mpl "
                f"{self.initial_mpl!r}"
            )

    def config_mpl(self) -> Optional[int]:
        return self.initial_mpl

    def apply(self, system, scenario):
        controller = PerClassSloController(
            system,
            target_p95_s=self.high_p95_target_s,
            initial_mpl=self.initial_mpl,
            window=self.window,
            step=self.step,
            max_mpl=self.max_mpl,
            max_iterations=self.max_iterations,
        )
        return controller.tune()


@dataclasses.dataclass(frozen=True)
class ElasticMpl(ControlSpec):
    """Elastic capacity: periodic global-MPL re-split + shard rotation.

    Installs an
    :class:`~repro.core.controller.ElasticCapacityController` on the
    cluster's simulated clock: every ``interval_s`` the global ``mpl``
    budget is re-split toward loaded shards (via
    :meth:`~repro.core.cluster.ShardedExternalScheduler.set_global_mpl`
    with load-proportional weights), shards are parked out of the
    routing rotation when the admitted fraction drops below
    ``low_watermark`` and re-activated above ``high_watermark``.  This
    is how a scenario absorbs ``hash``-routing skew, ``tv`` load
    swings, or a fault timeline — clustered topologies only.
    """

    mpl: int = 16
    interval_s: float = 2.0
    high_watermark: float = 0.85
    low_watermark: float = 0.25
    min_shards: int = 1
    max_ticks: int = 1000

    def __post_init__(self) -> None:
        if self.mpl < 1:
            raise ValueError(f"mpl must be >= 1, got {self.mpl!r}")
        if self.interval_s <= 0:
            raise ValueError(
                f"interval_s must be positive, got {self.interval_s!r}"
            )
        if not 0.0 <= self.low_watermark < self.high_watermark <= 1.0:
            raise ValueError(
                "need 0 <= low_watermark < high_watermark <= 1, got "
                f"{self.low_watermark!r} / {self.high_watermark!r}"
            )
        if self.min_shards < 1:
            raise ValueError(
                f"min_shards must be >= 1, got {self.min_shards!r}"
            )
        if self.max_ticks < 1:
            raise ValueError(f"max_ticks must be >= 1, got {self.max_ticks!r}")

    def config_mpl(self) -> Optional[int]:
        return self.mpl

    def apply(self, system, scenario):
        if not isinstance(system, ClusteredSystem):
            raise ValueError(
                "ElasticMpl needs a clustered topology (shards > 1 or "
                "replicas_per_shard > 0)"
            )
        controller = ElasticCapacityController(
            system,
            global_mpl=self.mpl,
            interval_s=self.interval_s,
            high_watermark=self.high_watermark,
            low_watermark=self.low_watermark,
            min_shards=self.min_shards,
            max_ticks=self.max_ticks,
        )
        return controller.install().report


@dataclasses.dataclass(frozen=True)
class ClusterSlo(ControlSpec):
    """Hold the *cluster-wide* HIGH p95 under a target, maximize LOW work.

    :class:`PerClassSlo` lifted to cluster scope: one
    :class:`~repro.core.controller.ClusterSloController` feedback loop
    observes the cluster collector and drives the *global* MPL split
    (health-aware weights over
    :meth:`~repro.core.cluster.ShardedExternalScheduler.set_global_mpl`)
    — the lever a sharded deployment actually has, and the one that
    must react to cross-shard 2PC contention, ``shard_health()``, and
    breaker state.  Requires a sharded topology (``shards >= 2``,
    no replicas) and HIGH-priority traffic.
    """

    high_p95_target_s: float = 0.5
    initial_mpl: int = 16
    window: int = 150
    step: int = 2
    max_mpl: int = 256
    max_iterations: int = 30

    def __post_init__(self) -> None:
        if self.high_p95_target_s <= 0:
            raise ValueError(
                f"high_p95_target_s must be positive, got {self.high_p95_target_s!r}"
            )
        if self.initial_mpl < 1:
            raise ValueError(f"initial_mpl must be >= 1, got {self.initial_mpl!r}")
        if self.max_mpl < self.initial_mpl:
            raise ValueError(
                f"max_mpl {self.max_mpl!r} must be >= initial_mpl "
                f"{self.initial_mpl!r}"
            )
        if self.window < 2:
            raise ValueError(f"window must be >= 2, got {self.window!r}")
        if self.step < 1:
            raise ValueError(f"step must be >= 1, got {self.step!r}")

    def config_mpl(self) -> Optional[int]:
        return self.initial_mpl

    def apply(self, system, scenario):
        if not isinstance(system, ClusteredSystem):
            raise ValueError(
                "ClusterSlo control needs a sharded topology (shards > 1)"
            )
        controller = ClusterSloController(
            system,
            target_p95_s=self.high_p95_target_s,
            initial_mpl=self.initial_mpl,
            window=self.window,
            step=self.step,
            max_mpl=self.max_mpl,
            max_iterations=self.max_iterations,
        )
        return controller.tune()


@dataclasses.dataclass(frozen=True)
class ShardReports:
    """Per-shard controller reports from a sharded feedback run."""

    shards: Tuple[ControllerReport, ...]


ControlReport = Union[
    ControllerReport, SloReport, ShardReports, ElasticReport, ClusterSloReport
]


# -- the composed scenario -----------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """One experiment, composed from orthogonal axes.

    The all-default scenario is the legacy default run: Table 2
    setup 1, closed arrivals (100 clients), one shard, a static
    unlimited MPL, 1500 measured transactions — and it fingerprints
    and runs byte-identically to the legacy
    :class:`~repro.experiments.parallel.RunSpec` path.

    ``arrival=None`` keeps the legacy closed default (100 clients, no
    think time); ``arrival_rate`` is the legacy open-Poisson knob kept
    for fingerprint compatibility — new scenarios should say
    :class:`~repro.core.arrivals.OpenArrivals` instead.
    """

    workload: WorkloadRef = WorkloadRef()
    arrival: Optional[ArrivalSpec] = None
    topology: TopologySpec = TopologySpec()
    control: ControlSpec = StaticMpl()
    measurement: MeasurementSpec = MeasurementSpec()
    policy: str = "fifo"
    internal: Optional[InternalPolicy] = None
    high_priority_fraction: float = 0.0
    arrival_rate: Optional[float] = None
    seed: int = DEFAULT_SEED
    #: Free-form label carried into artifacts (never hashed).
    tag: str = ""
    #: Optional fault timeline (v2): hashed only when present.
    faults: Optional[FaultSpec] = None
    #: Optional resilience axis (PR 9: deadlines, retry/backoff,
    #: shedding, circuit breaking): hashed only when present.
    resilience: Optional[ResilienceSpec] = None
    #: Optional distributed-transaction axis (cross-shard 2PC):
    #: hashed only when present.
    distributed: Optional[DistributedSpec] = None

    def __post_init__(self) -> None:
        if not isinstance(self.workload, WorkloadRef):
            raise ValueError(f"workload must be a WorkloadRef, got {self.workload!r}")
        if not isinstance(self.topology, TopologySpec):
            raise ValueError(f"topology must be a TopologySpec, got {self.topology!r}")
        if not isinstance(self.control, ControlSpec):
            raise ValueError(f"control must be a ControlSpec, got {self.control!r}")
        if not isinstance(self.measurement, MeasurementSpec):
            raise ValueError(
                f"measurement must be a MeasurementSpec, got {self.measurement!r}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultSpec):
            raise ValueError(f"faults must be a FaultSpec, got {self.faults!r}")
        if self.resilience is not None and not isinstance(
            self.resilience, ResilienceSpec
        ):
            raise ValueError(
                f"resilience must be a ResilienceSpec, got {self.resilience!r}"
            )
        if self.arrival is not None and self.arrival_rate is not None:
            raise ValueError(
                "specify either an arrival spec or the legacy arrival_rate, not both"
            )
        if not 0.0 <= self.high_priority_fraction <= 1.0:
            raise ValueError(
                "high_priority_fraction must be in [0, 1], got "
                f"{self.high_priority_fraction!r}"
            )
        if (
            isinstance(self.control, FeedbackMpl)
            and self.topology.shards > 1
            and self.control.initial_mpl is None
        ):
            raise ValueError(
                "FeedbackMpl on a sharded topology needs an explicit "
                "initial_mpl (the queueing-model jump-start is single-engine)"
            )
        if self.distributed is not None:
            if not isinstance(self.distributed, DistributedSpec):
                raise ValueError(
                    f"distributed must be a DistributedSpec, got {self.distributed!r}"
                )
            if self.topology.shards < 2:
                raise ValueError(
                    "distributed transactions need a sharded topology "
                    f"(shards >= 2, got {self.topology.shards})"
                )
            if self.topology.replicas_per_shard > 0:
                raise ValueError(
                    "the distributed axis needs replicas_per_shard == 0 "
                    "(2PC branch completion events bypass replica groups)"
                )
            if self.distributed.fanout_k > self.topology.shards:
                raise ValueError(
                    f"fanout_k {self.distributed.fanout_k} cannot exceed "
                    f"the topology's {self.topology.shards} shard(s)"
                )
        if isinstance(self.control, ClusterSlo):
            if self.topology.shards < 2 or self.topology.replicas_per_shard > 0:
                raise ValueError(
                    "ClusterSlo control runs on a sharded topology "
                    f"(shards >= 2, no replicas; got {self.topology.shards} "
                    f"shard(s), {self.topology.replicas_per_shard} replica(s))"
                )
            if self.high_priority_fraction <= 0:
                raise ValueError(
                    "ClusterSlo control needs HIGH-priority traffic "
                    "(high_priority_fraction > 0)"
                )
            if self.control.initial_mpl < self.topology.shards:
                raise ValueError(
                    f"ClusterSlo initial_mpl {self.control.initial_mpl} "
                    f"cannot cover {self.topology.shards} shards "
                    "(need >= 1 each)"
                )
        if isinstance(self.control, PerClassSlo):
            if self.topology.shards != 1 or self.topology.replicas_per_shard > 0:
                raise ValueError(
                    "PerClassSlo control runs on a single engine "
                    f"(got {self.topology.shards} shard(s), "
                    f"{self.topology.replicas_per_shard} replica(s))"
                )
            if self.high_priority_fraction <= 0:
                raise ValueError(
                    "PerClassSlo control needs HIGH-priority traffic "
                    "(high_priority_fraction > 0)"
                )
        if isinstance(self.control, ElasticMpl):
            if not self.is_clustered:
                raise ValueError(
                    "ElasticMpl control needs a clustered topology "
                    "(shards > 1 or replicas_per_shard > 0)"
                )
            if self.control.mpl < self.topology.shards:
                raise ValueError(
                    f"ElasticMpl mpl {self.control.mpl} cannot cover "
                    f"{self.topology.shards} shards (need >= 1 each)"
                )
        if self.faults is not None:
            if not self.is_clustered:
                raise ValueError(
                    "a fault timeline needs a clustered topology "
                    "(shards > 1 or replicas_per_shard > 0)"
                )
            if self.faults.max_shard() >= self.topology.shards:
                raise ValueError(
                    f"fault event targets shard {self.faults.max_shard()} "
                    f"but the topology has {self.topology.shards} shard(s)"
                )
        if self.resilience is not None:
            if self.topology.replicas_per_shard > 0:
                raise ValueError(
                    "the resilience axis needs replicas_per_shard == 0 "
                    "(replica groups own their own admission accounting "
                    "and completion events)"
                )
            if self.resilience.breaker_enabled and self.topology.shards < 2:
                raise ValueError(
                    "circuit breaking needs a sharded topology "
                    "(shards > 1) — there is no alternative shard to "
                    "steer work toward"
                )
            if self.resilience.queue_cap is not None and not self.is_open:
                raise ValueError(
                    "load shedding (queue_cap) needs externally driven "
                    "arrivals — a closed client resubmits the instant a "
                    "shed releases it, livelocking the simulation at one "
                    "timestamp"
                )

    # -- derived views -------------------------------------------------------

    @property
    def is_open(self) -> bool:
        """Whether arrivals are externally driven (vs a closed loop)."""
        if self.arrival_rate is not None:
            return True
        return self.arrival is not None and not isinstance(
            self.arrival, ClosedArrivals
        )

    @property
    def is_clustered(self) -> bool:
        """Whether this scenario builds a router-fronted cluster."""
        return self.topology.shards > 1 or self.topology.replicas_per_shard > 0

    # legacy-facing accessors (bench artifacts, grid assertions)

    @property
    def setup_id(self) -> Optional[int]:
        return self.workload.setup_id

    @property
    def mpl(self) -> Optional[int]:
        return self.control.config_mpl()

    @property
    def transactions(self) -> int:
        return self.measurement.transactions

    @property
    def warmup_fraction(self) -> float:
        return self.measurement.warmup_fraction

    @property
    def shards(self) -> int:
        return self.topology.shards

    @property
    def routing(self) -> str:
        return self.topology.routing

    # -- construction --------------------------------------------------------

    def build_config(self) -> AnyConfig:
        """The system/cluster config this scenario describes.

        Field-for-field the construction the legacy ``RunSpec.config``
        performed — which is what keeps every legacy fingerprint and
        result byte-identical.
        """
        workload, hardware, isolation = self.workload.resolve()
        base = SystemConfig(
            workload=workload,
            hardware=hardware,
            isolation=isolation,
            internal=self.internal,
            mpl=self.control.config_mpl(),
            policy=self.policy,
            high_priority_fraction=self.high_priority_fraction,
            arrival_rate=self.arrival_rate,
            seed=self.seed,
            arrival=self.arrival,
        )
        if not self.is_clustered:
            return base
        return ClusterConfig.scale_out(
            base,
            self.topology.shards,
            routing=self.topology.routing,
            routing_weights=self.topology.routing_weights,
            replicas_per_shard=self.topology.replicas_per_shard,
            read_fanout=self.topology.read_fanout,
            election_timeout_s=self.topology.election_timeout_s,
        )

    # -- fingerprinting ------------------------------------------------------

    def fingerprint(self) -> str:
        """The canonical content hash (the runner's cache key).

        Built on the underlying config's digest; axes the legacy path
        could not express (non-static control, extra metric sets) are
        appended to the ``extra`` payload *only when non-default*, so
        every legacy-expressible scenario keeps its historical digest.
        """
        extra: Dict[str, Any] = {
            "transactions": self.measurement.transactions,
            "warmup_fraction": self.measurement.warmup_fraction,
        }
        if not isinstance(self.control, StaticMpl):
            extra["control"] = canonical_jsonable(self.control)
        if self.measurement.metrics != ("standard",):
            extra["metrics"] = list(self.measurement.metrics)
        if self.measurement.timeline_bucket_s != 1.0:
            extra["timeline_bucket_s"] = self.measurement.timeline_bucket_s
        if self.faults is not None:
            extra["faults"] = canonical_jsonable(self.faults)
        if self.resilience is not None:
            extra["resilience"] = canonical_jsonable(self.resilience)
        if self.distributed is not None:
            extra["distributed"] = canonical_jsonable(self.distributed)
        return self.build_config().fingerprint(**extra)

    def component_fingerprints(self) -> Dict[str, str]:
        """One digest per axis (orthogonality, surfaced)."""
        return {
            "workload": component_fingerprint(self.workload),
            "arrival": component_fingerprint(self.arrival),
            "topology": component_fingerprint(self.topology),
            "control": component_fingerprint(self.control),
            "measurement": component_fingerprint(self.measurement),
            "faults": component_fingerprint(self.faults),
            "resilience": component_fingerprint(self.resilience),
            "distributed": component_fingerprint(self.distributed),
        }

    # -- JSON round-trip -----------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        """A JSON round-trip encoding (see :meth:`from_json_dict`)."""
        return {
            "workload": _encode_flat(self.workload),
            "arrival": _encode_arrival(self.arrival),
            "topology": _encode_flat(self.topology),
            "control": _encode_control(self.control),
            "measurement": _encode_flat(self.measurement),
            "policy": self.policy,
            "internal": _encode_internal(self.internal),
            "high_priority_fraction": self.high_priority_fraction,
            "arrival_rate": self.arrival_rate,
            "seed": self.seed,
            "tag": self.tag,
            "faults": encode_fault_spec(self.faults),
            "resilience": encode_resilience_spec(self.resilience),
            "distributed": encode_distributed_spec(self.distributed),
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "ScenarioSpec":
        """Rebuild a scenario from :meth:`to_json_dict` output.

        Strict: unknown keys raise, so a typo'd field fails loudly
        instead of silently running the default scenario.
        """
        if not isinstance(payload, dict):
            raise ValueError(f"scenario payload must be an object, got {payload!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown scenario fields: {sorted(unknown)}")
        data: Dict[str, Any] = {}
        if "workload" in payload:
            data["workload"] = _decode_flat(payload["workload"], WorkloadRef)
        if "arrival" in payload:
            data["arrival"] = _decode_arrival(payload["arrival"])
        if "topology" in payload:
            data["topology"] = _decode_flat(
                payload["topology"], TopologySpec, tuples={"routing_weights"}
            )
        if "control" in payload:
            data["control"] = _decode_control(payload["control"])
        if "measurement" in payload:
            data["measurement"] = _decode_flat(
                payload["measurement"], MeasurementSpec, tuples={"metrics"}
            )
        if "internal" in payload:
            data["internal"] = _decode_internal(payload["internal"])
        if "faults" in payload:
            data["faults"] = decode_fault_spec(payload["faults"])
        if "resilience" in payload:
            data["resilience"] = decode_resilience_spec(payload["resilience"])
        if "distributed" in payload:
            data["distributed"] = decode_distributed_spec(payload["distributed"])
        for name in ("policy", "high_priority_fraction", "arrival_rate", "seed", "tag"):
            if name in payload:
                data[name] = payload[name]
        return cls(**data)

    @classmethod
    def validate(cls, payload: Any) -> "ScenarioSpec":
        """Decode ``payload``, collecting *every* problem before raising.

        :meth:`from_json_dict` is strict but fails on the first bad
        key; this walks the whole payload, decoding each axis
        independently, and raises one :class:`ScenarioValidationError`
        carrying ``(json-pointer-path, message)`` pairs for all of
        them.  Returns the decoded spec when the payload is clean.
        """
        if not isinstance(payload, dict):
            raise ScenarioValidationError(
                [("", f"scenario payload must be an object, got {payload!r}")]
            )
        errors: List[Tuple[str, str]] = []
        known = {f.name for f in dataclasses.fields(cls)}
        for key in sorted(set(payload) - known):
            errors.append((f"/{key}", "unknown scenario field"))
        data: Dict[str, Any] = {}
        decoders = (
            ("workload", lambda v: _decode_flat(v, WorkloadRef)),
            ("arrival", _decode_arrival),
            ("topology", lambda v: _decode_flat(
                v, TopologySpec, tuples={"routing_weights"}
            )),
            ("control", _decode_control),
            ("measurement", lambda v: _decode_flat(
                v, MeasurementSpec, tuples={"metrics"}
            )),
            ("internal", _decode_internal),
        )
        for name, decode in decoders:
            if name in payload:
                try:
                    data[name] = decode(payload[name])
                except (ValueError, TypeError) as exc:
                    errors.append((f"/{name}", str(exc)))
        if payload.get("faults") is not None:
            errors_before = len(errors)
            faults_payload = payload["faults"]
            if not isinstance(faults_payload, dict):
                errors.append(
                    ("/faults", f"must be an object, got {faults_payload!r}")
                )
            else:
                for key in sorted(set(faults_payload) - {"events"}):
                    errors.append((f"/faults/{key}", "unknown field"))
                events = faults_payload.get("events")
                if not isinstance(events, list):
                    errors.append(
                        ("/faults/events", f"must be a list, got {events!r}")
                    )
                else:
                    decoded = []
                    for index, event in enumerate(events):
                        try:
                            decoded.append(decode_fault_event(event))
                        except (ValueError, TypeError) as exc:
                            errors.append((f"/faults/events/{index}", str(exc)))
                    if len(errors) == errors_before:
                        try:
                            data["faults"] = FaultSpec(events=tuple(decoded))
                        except ValueError as exc:
                            errors.append(("/faults", str(exc)))
        if payload.get("resilience") is not None:
            resilience_payload = payload["resilience"]
            field_errors = resilience_field_errors(resilience_payload)
            if field_errors:
                errors.extend(
                    (f"/resilience{path}", message)
                    for path, message in field_errors
                )
            else:
                data["resilience"] = ResilienceSpec(**resilience_payload)
        if payload.get("distributed") is not None:
            distributed_payload = payload["distributed"]
            field_errors = distributed_field_errors(distributed_payload)
            if field_errors:
                errors.extend(
                    (f"/distributed{path}", message)
                    for path, message in field_errors
                )
            else:
                data["distributed"] = DistributedSpec(**distributed_payload)
        for name in ("policy", "high_priority_fraction", "arrival_rate", "seed", "tag"):
            if name in payload:
                data[name] = payload[name]
        if not errors:
            try:
                return cls(**data)
            except (ValueError, TypeError) as exc:
                # cross-field rules (axis combinations) surface at the root
                errors.append(("", str(exc)))
        raise ScenarioValidationError(errors)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_json_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_json_dict(json.loads(text))


# -- JSON codec ----------------------------------------------------------------

_ARRIVAL_TYPES: Dict[str, type] = {
    "closed": ClosedArrivals,
    "open": OpenArrivals,
    "partly_open": PartlyOpenArrivals,
    "modulated": ModulatedArrivals,
    "trace": TraceArrivals,
}

_RATE_TYPES: Dict[str, type] = {
    "piecewise": PiecewiseRate,
    "sinusoid": SinusoidRate,
}

_CONTROL_TYPES: Dict[str, type] = {
    "static": StaticMpl,
    "feedback": FeedbackMpl,
    "per_class_slo": PerClassSlo,
    "elastic": ElasticMpl,
    "cluster_slo": ClusterSlo,
}


def _type_name(registry: Dict[str, type], obj: Any) -> str:
    for name, cls in registry.items():
        if type(obj) is cls:
            return name
    raise ValueError(f"cannot encode {type(obj).__name__}: not a registered spec")


def _encode_flat(obj: Any) -> Dict[str, Any]:
    """Flat dataclass → plain dict (tuples become lists via json later)."""
    out = {}
    for field in dataclasses.fields(obj):
        value = getattr(obj, field.name)
        out[field.name] = list(value) if isinstance(value, tuple) else value
    return out


def _decode_flat(
    payload: Any, cls: type, tuples: Sequence[str] = ()
) -> Any:
    if not isinstance(payload, dict):
        raise ValueError(f"{cls.__name__} payload must be an object, got {payload!r}")
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(payload) - known
    if unknown:
        raise ValueError(f"unknown {cls.__name__} fields: {sorted(unknown)}")
    data = dict(payload)
    for name in tuples:
        if data.get(name) is not None:
            data[name] = tuple(data[name])
    return cls(**data)


def _encode_arrival(spec: Optional[ArrivalSpec]) -> Optional[Dict[str, Any]]:
    if spec is None:
        return None
    name = _type_name(_ARRIVAL_TYPES, spec)
    if isinstance(spec, ModulatedArrivals):
        return {"type": name, "rate_function": _encode_rate(spec.rate_function)}
    payload = {"type": name, **_encode_flat(spec)}
    # the trace digest is derived from the named trace, not an input
    payload.pop("digest", None)
    return payload


def _decode_arrival(payload: Optional[Dict[str, Any]]) -> Optional[ArrivalSpec]:
    if payload is None:
        return None
    data = dict(payload) if isinstance(payload, dict) else None
    if not data or "type" not in data:
        raise ValueError(f"arrival payload needs a 'type', got {payload!r}")
    name = data.pop("type")
    cls = _ARRIVAL_TYPES.get(name)
    if cls is None:
        raise ValueError(
            f"unknown arrival type {name!r}; "
            f"available: {', '.join(sorted(_ARRIVAL_TYPES))}"
        )
    if cls is ModulatedArrivals:
        return ModulatedArrivals(_decode_rate(data.pop("rate_function", None)))
    return _decode_flat(data, cls)


def _encode_rate(rate: RateFunction) -> Dict[str, Any]:
    name = _type_name(_RATE_TYPES, rate)
    payload = {"type": name, **_encode_flat(rate)}
    if isinstance(rate, PiecewiseRate):
        payload["points"] = [list(point) for point in rate.points]
    return payload


def _decode_rate(payload: Optional[Dict[str, Any]]) -> RateFunction:
    data = dict(payload) if isinstance(payload, dict) else None
    if not data or "type" not in data:
        raise ValueError(f"rate_function payload needs a 'type', got {payload!r}")
    name = data.pop("type")
    cls = _RATE_TYPES.get(name)
    if cls is None:
        raise ValueError(
            f"unknown rate function {name!r}; "
            f"available: {', '.join(sorted(_RATE_TYPES))}"
        )
    if cls is PiecewiseRate and data.get("points") is not None:
        data["points"] = tuple(tuple(point) for point in data["points"])
    return _decode_flat(data, cls)


def _encode_control(spec: ControlSpec) -> Dict[str, Any]:
    return {"type": _type_name(_CONTROL_TYPES, spec), **_encode_flat(spec)}


def _decode_control(payload: Any) -> ControlSpec:
    data = dict(payload) if isinstance(payload, dict) else None
    if not data or "type" not in data:
        raise ValueError(f"control payload needs a 'type', got {payload!r}")
    name = data.pop("type")
    cls = _CONTROL_TYPES.get(name)
    if cls is None:
        raise ValueError(
            f"unknown control type {name!r}; "
            f"available: {', '.join(sorted(_CONTROL_TYPES))}"
        )
    return _decode_flat(data, cls)


def _encode_internal(policy: Optional[InternalPolicy]) -> Optional[Dict[str, Any]]:
    if policy is None:
        return None
    weights = policy.cpu_weights
    return {
        "lock_scheduling": policy.lock_scheduling.value,
        "cpu_weights": (
            {str(int(k)): v for k, v in weights.items()} if weights else None
        ),
    }


def _decode_internal(payload: Optional[Dict[str, Any]]) -> Optional[InternalPolicy]:
    if payload is None:
        return None
    if not isinstance(payload, dict):
        raise ValueError(f"internal payload must be an object, got {payload!r}")
    unknown = set(payload) - {"lock_scheduling", "cpu_weights"}
    if unknown:
        raise ValueError(f"unknown internal-policy fields: {sorted(unknown)}")
    weights = payload.get("cpu_weights")
    return InternalPolicy(
        lock_scheduling=LockSchedulingPolicy(payload.get("lock_scheduling", "fifo")),
        cpu_weights=(
            {int(k): float(v) for k, v in weights.items()} if weights else None
        ),
    )


def _report_jsonable(report: Optional[ControlReport]) -> Optional[Dict[str, Any]]:
    if report is None:
        return None
    if isinstance(report, ShardReports):
        return {
            "type": "shards",
            "shards": [dataclasses.asdict(r) for r in report.shards],
        }
    payload = dataclasses.asdict(report)
    if isinstance(report, ElasticReport):
        payload["type"] = "elastic"
        payload["final_mpls"] = list(report.final_mpls)
        payload["actions"] = [
            {**action, "mpls": list(action["mpls"])}
            for action in payload["actions"]
        ]
        return payload
    if isinstance(report, ClusterSloReport):
        payload["type"] = "cluster_slo"
        payload["final_split"] = list(report.final_split)
        payload["trajectory"] = [
            {**row, "split": list(row["split"])}
            for row in payload["trajectory"]
        ]
        return payload
    payload["type"] = (
        "per_class_slo" if isinstance(report, SloReport) else "feedback"
    )
    return payload


# -- execution -----------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ScenarioOutcome:
    """Everything one scenario run produced."""

    spec: ScenarioSpec
    fingerprint: str
    result: RunResult
    control: Optional[ControlReport] = None
    percentiles: Optional[Dict[str, Dict[str, float]]] = None
    #: Per-bucket dynamics (the ``timeline`` metric set).
    timeline: Optional[List[Dict[str, float]]] = None
    #: The fault events as they actually fired (faulted runs only).
    faults: Optional[List[Dict[str, Any]]] = None
    #: Goodput-vs-throughput accounting: dispositions, retries,
    #: breaker state (resilient runs only).
    resilience: Optional[Dict[str, Any]] = None
    #: Per-shard health (clustered runs with faults and/or resilience):
    #: liveness, degrade factor, routing counters, breaker transitions.
    shard_health: Optional[List[Dict[str, Any]]] = None
    #: 2PC accounting: cross-shard counts, commits/aborts by cause,
    #: retries, atomicity self-checks (distributed runs only).
    distributed: Optional[Dict[str, Any]] = None

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "spec": self.spec.to_json_dict(),
            "components": self.spec.component_fingerprints(),
            "result": self.result.to_json_dict(),
            "control": _report_jsonable(self.control),
            "percentiles": self.percentiles,
            "timeline": self.timeline,
            "faults": self.faults,
            "resilience": self.resilience,
            "shard_health": self.shard_health,
            "distributed": self.distributed,
        }


def _percentile_snapshot(records) -> Dict[str, Dict[str, float]]:
    """Per-class response-time percentiles over a record window."""
    by_class: Dict[int, List[float]] = {}
    for record in records:
        by_class.setdefault(record.priority, []).append(record.response_time)
    by_class["all"] = [t for times in by_class.values() for t in times]  # type: ignore[index]
    # str(int(k)), not str(k): priorities are IntEnum members and
    # IntEnum.__str__ is Python-version-dependent (3.10: "Priority.LOW")
    return {
        (key if isinstance(key, str) else str(int(key))): {
            f"p{quantile:g}": stats.percentile(times, quantile)
            for quantile in REPORTED_PERCENTILES
        }
        for key, times in by_class.items()
    }


def _timeline_snapshot(
    records, bucket_s: float
) -> List[Dict[str, float]]:
    """Per-bucket completion dynamics over a record window.

    Buckets are anchored at absolute simulated time zero
    (``floor(completion_time / bucket_s)``), so timelines from runs
    sharing one fault schedule line up bucket-for-bucket.
    """
    buckets: Dict[int, List[float]] = {}
    for record in records:
        buckets.setdefault(
            int(record.completion_time // bucket_s), []
        ).append(record.response_time)
    rows: List[Dict[str, float]] = []
    for index in sorted(buckets):
        times = buckets[index]
        rows.append({
            "t": index * bucket_s,
            "completions": float(len(times)),
            "throughput": len(times) / bucket_s,
            "mean_response_time": sum(times) / len(times),
            "p95_response_time": stats.percentile(times, 95.0),
        })
    return rows


def _merge_resilience_timeline(
    rows: List[Dict[str, float]],
    events: Sequence[Tuple[float, str, int]],
    start_time: float,
    bucket_s: float,
) -> List[Dict[str, float]]:
    """Fold the resilience event stream into the timeline buckets.

    Adds the goodput-vs-throughput columns: ``goodput`` (commits per
    second — with a deadline armed every commit landed inside its
    budget, so goodput *is* the committed throughput),
    ``attempt_throughput`` (attempts resolving per second, aborted ones
    included — the retry storm's wasted work), and per-bucket
    ``timeouts`` / ``sheds`` / ``retries`` counts.  Buckets where
    nothing committed but resilience events fired get zero-completion
    rows, so a goodput collapse is visible instead of truncated.
    Events before ``start_time`` (the control phase) are excluded,
    mirroring the record window.
    """
    counts: Dict[int, Dict[str, int]] = {}
    for at, kind, _priority in events:
        if at < start_time:
            continue
        bucket = counts.setdefault(
            int(at // bucket_s),
            {"attempt": 0, "timeout": 0, "shed": 0, "retry": 0},
        )
        bucket[kind] += 1
    merged: Dict[int, Dict[str, float]] = {
        int(round(row["t"] / bucket_s)): dict(row) for row in rows
    }
    for index in counts:
        merged.setdefault(index, {
            "t": index * bucket_s,
            "completions": 0.0,
            "throughput": 0.0,
            "mean_response_time": 0.0,
            "p95_response_time": 0.0,
        })
    empty = {"attempt": 0, "timeout": 0, "shed": 0, "retry": 0}
    for index, row in merged.items():
        bucket = counts.get(index, empty)
        row["goodput"] = row["throughput"]
        row["attempt_throughput"] = bucket["attempt"] / bucket_s
        row["timeouts"] = float(bucket["timeout"])
        row["sheds"] = float(bucket["shed"])
        row["retries"] = float(bucket["retry"])
    return [merged[index] for index in sorted(merged)]


def run_scenario(spec: ScenarioSpec) -> Tuple[MeasuredSystem, ScenarioOutcome]:
    """Run one scenario and return the live system alongside the outcome.

    :func:`execute_scenario` is the plain-outcome face; this variant
    additionally hands back the :class:`MeasuredSystem` so callers
    (the scenario fuzzer's oracles, invariant tests) can inspect
    router counters, per-shard schedulers, and collector state after
    the measurement window.
    """
    measurement = spec.measurement
    system = build_system(spec.build_config())
    injector = None
    if spec.faults is not None:
        # validation guarantees a clustered topology here
        injector = FaultInjector(system, spec.faults)
        injector.arm()
    runtime = None
    if spec.resilience is not None:
        # the gate slots between the arrival source and the
        # router/frontend before anything runs, so the control phase
        # and the measurement window see the same resilient system
        runtime = ResilienceRuntime(spec.resilience, seed=spec.seed)
        runtime.install(system)
    coordinator = None
    if spec.distributed is not None:
        # after the resilience gate: a retried cross-shard transaction
        # re-enters 2PC, and the 2PC outer event is what the gate's
        # attempt accounting watches
        coordinator = TwoPhaseCoordinator(spec.distributed, seed=spec.seed)
        coordinator.install(system)
    report = spec.control.apply(system, spec)
    # the control phase's completions precede the measurement window;
    # both run paths land the window at exactly `transactions` records
    # past `start`, so one warmup index serves the result and the
    # percentile snapshot alike
    start = len(system.collector.records)
    window_start_time = system.sim.now
    if report is None:
        result = system.run(
            transactions=measurement.transactions,
            warmup_fraction=measurement.warmup_fraction,
        )
    else:
        result = system.measure_window(
            measurement.transactions, measurement.warmup_fraction
        )
    warmup = start + int(measurement.transactions * measurement.warmup_fraction)
    percentiles = None
    if "percentiles" in measurement.metrics:
        percentiles = _percentile_snapshot(system.collector.completed(warmup))
    timeline = None
    if "timeline" in measurement.metrics:
        timeline = _timeline_snapshot(
            system.collector.records[start:], measurement.timeline_bucket_s
        )
        if runtime is not None:
            timeline = _merge_resilience_timeline(
                timeline, runtime.events, window_start_time,
                measurement.timeline_bucket_s,
            )
    shard_health = None
    if isinstance(system, ClusteredSystem) and (
        injector is not None or runtime is not None or coordinator is not None
    ):
        shard_health = system.shard_health()
        if runtime is not None and runtime.breakers is not None:
            for entry, breaker in zip(shard_health, runtime.breakers):
                entry["breaker"] = breaker.jsonable()
    outcome = ScenarioOutcome(
        spec=spec,
        fingerprint=spec.fingerprint(),
        result=result,
        control=report,
        percentiles=percentiles,
        timeline=timeline,
        faults=injector.applied_jsonable() if injector is not None else None,
        resilience=runtime.report_jsonable() if runtime is not None else None,
        shard_health=shard_health,
        distributed=(
            coordinator.report_jsonable() if coordinator is not None else None
        ),
    )
    return system, outcome


def execute_scenario(spec: ScenarioSpec) -> ScenarioOutcome:
    """Run one scenario end to end: build, inject, control, measure.

    With static control this is byte-for-byte the legacy execution
    path (build the system, run the measurement window); with feedback
    or SLO control the system first runs the spec-described controller,
    then measures a fresh post-control window.  A fault timeline is
    armed on the simulator clock before anything runs, so its events
    fire at their absolute simulated times.
    """
    return run_scenario(spec)[1]


# -- demo scenarios ------------------------------------------------------------


def demo_scenarios() -> Dict[str, ScenarioSpec]:
    """Named, runnable scenario exemplars (the CLI's ``--demo`` set).

    ``trace-retailer`` / ``trace-auction`` replay the synthetic §3.2
    production traces through the trace arrival seam on their own
    resampled workloads; ``slo-tv`` drives the per-class SLO
    controller under the time-varying (sinusoidal) regime;
    ``failover`` kills a replicated shard's primary mid-run, lets the
    group elect, restores it, and plots the throughput/p95 timeline
    under elastic capacity control.
    """
    trace_demos = {
        f"trace-{short}": ScenarioSpec(
            workload=WorkloadRef(
                setup_id=None, trace=name, trace_transactions=4000
            ),
            arrival=TraceArrivals(name, transactions=4000, loop=True),
            control=StaticMpl(10),
            measurement=MeasurementSpec(transactions=800, metrics=(
                "standard", "percentiles",
            )),
            tag=f"demo-{short}",
        )
        for short, name in (
            ("retailer", "online-retailer"),
            ("auction", "auction-site"),
        )
    }
    return {
        **trace_demos,
        "slo-tv": ScenarioSpec(
            workload=WorkloadRef(setup_id=1),
            arrival=ModulatedArrivals(
                SinusoidRate(base=45.0, amplitude=15.0, period=20.0)
            ),
            policy="priority",
            high_priority_fraction=0.1,
            control=PerClassSlo(
                high_p95_target_s=0.2, initial_mpl=8, window=120,
                max_mpl=64, max_iterations=20,
            ),
            measurement=MeasurementSpec(
                transactions=600, metrics=("standard", "percentiles")
            ),
            tag="demo-slo-tv",
        ),
        "failover": ScenarioSpec(
            workload=WorkloadRef(setup_id=1),
            arrival=OpenArrivals(rate=90.0),
            topology=TopologySpec(
                shards=2,
                routing="least_in_flight",
                replicas_per_shard=1,
                read_fanout="round_robin",
            ),
            control=ElasticMpl(mpl=16, interval_s=1.0),
            faults=FaultSpec(events=(
                KillShard(at=3.0, shard=0),
                RestoreShard(at=8.0, shard=0),
            )),
            measurement=MeasurementSpec(
                transactions=1200,
                metrics=("standard", "percentiles", "timeline"),
            ),
            tag="demo-failover",
        ),
    }
