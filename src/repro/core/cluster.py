"""Sharded multi-engine clusters behind a routing front-end.

The paper controls one MPL in front of one DBMS.  A production
deployment partitions the database over N engines and puts a router in
front: transactions arrive at one stream, the router dispatches each to
a shard by policy, and the external MPL is split across the shards.
This module is that topology, assembled entirely from existing seams —
the :class:`~repro.sim.station.RouterStation` front-end, one
:class:`~repro.core.frontend.ExternalScheduler` +
:class:`~repro.dbms.engine.DatabaseEngine` pair per shard, and the
pluggable arrival layer feeding the router:

* :class:`ClusterConfig` — pure data: a tuple of per-shard
  :class:`~repro.core.system.SystemConfig` values plus the routing
  policy.  It fingerprints like any config (content-addressed caching
  works unchanged), and a **one-shard cluster fingerprints identically
  to its plain single-engine config** because the two runs are
  bit-identical — the regression suite pins both directions.
* :class:`ShardedExternalScheduler` — the global-MPL view over the
  per-shard schedulers: a static split (weighted or even), plus
  dynamic per-shard control (:meth:`ClusteredSystem.tune_shards` runs
  one §4.3 feedback controller per shard).
* :class:`ClusteredSystem` — the runnable topology; shares the
  measurement loop with :class:`~repro.core.system.SimulatedSystem`
  via :class:`~repro.core.system.MeasuredSystem`, so ``run`` /
  ``run_transactions`` / ``result`` behave identically.

Determinism: shard ``i``'s engine draws from
``RandomStreams(shard_config.seed)`` where shard 0 keeps the base seed
and later shards derive theirs via
:func:`~repro.sim.random.derive_seed`; the cluster-wide arrival source
draws from shard 0's seed, exactly as the single-engine system does.
Routing policies are RNG-free.  A clustered run is therefore
bit-identical under any ``--jobs N``, and a one-shard cluster is
bit-identical to the plain engine.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.arrivals import ArrivalProcess, ArrivalSpec
from repro.core.controller import Baseline, ControllerReport, MplController, Thresholds
from repro.core.frontend import ExternalScheduler
from repro.core.system import (
    MeasuredSystem,
    RunResult,
    SimulatedSystem,
    SystemConfig,
    advance_until,
    build_engine_stack,
    canonical_jsonable,
    content_digest,
)
from repro.dbms.engine import DatabaseEngine
from repro.dbms.transaction import Transaction
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams, derive_seed
from repro.sim.station import ROUTING_POLICIES, RouterStation, make_routing


def split_mpl(
    total: Optional[int],
    shards: int,
    weights: Optional[Sequence[float]] = None,
) -> List[Optional[int]]:
    """Split a global MPL into per-shard limits.

    ``None`` (no limit) stays ``None`` everywhere.  With weights the
    split is proportional (largest-remainder rounding); without, it is
    even, with the remainder going to the lowest shard indices.  Every
    shard always receives at least 1 — a zero-MPL shard would strand
    any transaction routed to it.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards!r}")
    if total is None:
        return [None] * shards
    if total < shards:
        raise ValueError(
            f"global MPL {total} cannot cover {shards} shards (need >= 1 each)"
        )
    if weights is None:
        weights = [1.0] * shards
    if len(weights) != shards:
        raise ValueError(f"need {shards} weights, got {len(weights)}")
    if any(w <= 0 for w in weights):
        raise ValueError(f"weights must be positive, got {tuple(weights)!r}")
    scale = total / sum(weights)
    shares = [w * scale for w in weights]
    floors = [max(1, int(s)) for s in shares]
    remainder = total - sum(floors)
    if remainder < 0:
        # the max(1, ...) floor over-allocated: take back from the largest
        order = sorted(range(shards), key=lambda i: (-floors[i], i))
        for index in order:
            while remainder < 0 and floors[index] > 1:
                floors[index] -= 1
                remainder += 1
    else:
        # largest fractional remainder first, lowest index breaking ties
        order = sorted(range(shards), key=lambda i: (floors[i] - shares[i], i))
        for index in order[:remainder]:
            floors[index] += 1
    return floors  # type: ignore[return-value]


@dataclasses.dataclass(frozen=True)
class ClusterConfig:
    """Everything needed to build one sharded cluster.

    ``shards`` holds one full :class:`SystemConfig` per shard (each
    carries its own per-shard MPL and seed).  The cluster-wide arrival
    stream, priority mix, and external-queue policy are taken from
    shard 0's config — the usual way to build one is
    :meth:`scale_out`, which derives all shards from a single base
    config.
    """

    shards: Tuple[SystemConfig, ...]
    routing: str = "round_robin"
    routing_weights: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if not self.shards:
            raise ValueError("a cluster needs at least one shard")
        if self.routing not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {self.routing!r}; "
                f"available: {', '.join(ROUTING_POLICIES)}"
            )
        if self.routing_weights is not None:
            if len(self.routing_weights) != len(self.shards):
                raise ValueError(
                    f"need {len(self.shards)} routing weights, "
                    f"got {len(self.routing_weights)}"
                )
            if any(w <= 0 for w in self.routing_weights):
                raise ValueError(
                    f"routing weights must be positive, got {self.routing_weights!r}"
                )

    @classmethod
    def scale_out(
        cls,
        base: SystemConfig,
        shards: int,
        routing: str = "round_robin",
        routing_weights: Optional[Sequence[float]] = None,
    ) -> "ClusterConfig":
        """N identical shards from one base config.

        ``base.mpl`` is treated as the *global* MPL and split across
        the shards (proportionally to ``routing_weights`` when given).
        Shard 0 keeps the base seed — which is what makes
        ``scale_out(base, 1)`` bit-identical to the plain engine —
        and shard ``i > 0`` derives its seed from
        ``(base.seed, "shard", i)``.
        """
        mpls = split_mpl(base.mpl, shards, routing_weights)
        configs = tuple(
            dataclasses.replace(
                base,
                mpl=mpls[index],
                seed=base.seed if index == 0 else derive_seed(base.seed, "shard", index),
            )
            for index in range(shards)
        )
        weights = tuple(float(w) for w in routing_weights) if routing_weights else None
        return cls(shards=configs, routing=routing, routing_weights=weights)

    # -- derived views -------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def global_mpl(self) -> Optional[int]:
        """Sum of the per-shard MPLs (None if any shard is unlimited)."""
        total = 0
        for shard in self.shards:
            if shard.mpl is None:
                return None
            total += shard.mpl
        return total

    def arrival_spec(self) -> ArrivalSpec:
        """The cluster-wide arrival regime (shard 0's, normalized)."""
        return self.shards[0].arrival_spec()

    # -- fingerprinting ------------------------------------------------------

    def to_jsonable(self) -> Dict[str, Any]:
        """Canonical JSON-encodable view (see :func:`canonical_jsonable`)."""
        return canonical_jsonable(self)

    def fingerprint(self, **extra: Any) -> str:
        """Content hash of this cluster (plus run parameters).

        A one-shard cluster hashes to **exactly** its shard's
        single-engine fingerprint: the two runs are bit-identical, so
        sharing cache entries between the two representations is sound
        (and pinned by the regression suite).
        """
        if len(self.shards) == 1:
            return self.shards[0].fingerprint(**extra)
        return content_digest(self.to_jsonable(), extra)


class ShardedExternalScheduler:
    """The global-MPL view over a cluster's per-shard schedulers.

    Static mode: :meth:`set_global_mpl` splits one limit across the
    shards (respecting the split weights).  Dynamic mode: each shard's
    scheduler remains individually addressable (``shards[i]`` /
    :meth:`set_shard_mpl`), which is what the per-shard feedback
    controllers drive.
    """

    def __init__(
        self,
        frontends: Sequence[ExternalScheduler],
        weights: Optional[Sequence[float]] = None,
    ):
        if not frontends:
            raise ValueError("need at least one shard scheduler")
        self.frontends = list(frontends)
        self.weights = list(weights) if weights is not None else None

    def __len__(self) -> int:
        return len(self.frontends)

    def __getitem__(self, index: int) -> ExternalScheduler:
        return self.frontends[index]

    @property
    def global_mpl(self) -> Optional[int]:
        """Sum of per-shard MPLs (None if any shard is unlimited)."""
        total = 0
        for frontend in self.frontends:
            if frontend.mpl is None:
                return None
            total += frontend.mpl
        return total

    def set_global_mpl(self, mpl: Optional[int]) -> List[Optional[int]]:
        """Re-split a global MPL across the shards; returns the split."""
        mpls = split_mpl(mpl, len(self.frontends), self.weights)
        for frontend, shard_mpl in zip(self.frontends, mpls):
            frontend.set_mpl(shard_mpl)
        return mpls

    def set_shard_mpl(self, index: int, mpl: Optional[int]) -> None:
        """Set one shard's MPL (the per-shard controller hook)."""
        self.frontends[index].set_mpl(mpl)

    # aggregate counters, summed over shards

    @property
    def in_service(self) -> int:
        return sum(f.in_service for f in self.frontends)

    @property
    def queue_length(self) -> int:
        return sum(f.queue_length for f in self.frontends)

    @property
    def dispatched(self) -> int:
        return sum(f.dispatched for f in self.frontends)

    @property
    def completed(self) -> int:
        return sum(f.completed for f in self.frontends)


class _ShardCollector(MetricsCollector):
    """A shard-local collector that tees into the cluster-wide one.

    The cluster collector therefore sees every completion in global
    completion order — with one shard, the exact stream the plain
    engine produces — while each shard keeps its own records for
    per-shard invariants and controllers.
    """

    def __init__(self, cluster_collector: MetricsCollector):
        super().__init__()
        self._cluster = cluster_collector

    def on_arrival(self, tx: Transaction) -> None:
        super().on_arrival(tx)
        self._cluster.on_arrival(tx)

    def on_completion(self, tx: Transaction) -> None:
        super().on_completion(tx)
        self._cluster.on_completion(tx)


@dataclasses.dataclass
class _Shard:
    """One shard's live pieces."""

    config: SystemConfig
    engine: DatabaseEngine
    frontend: ExternalScheduler
    collector: _ShardCollector


class _ShardView:
    """A single shard seen through the :class:`MeasuredSystem` surface.

    Exposes exactly what :class:`~repro.core.controller.MplController`
    touches — ``frontend``, ``collector``, ``run_transactions`` — so
    the paper's controller can tune one shard of a live cluster.
    Advancing a shard view steps the *global* simulation (all shards
    keep serving their own traffic) but counts only this shard's
    completions toward the window.
    """

    def __init__(self, system: "ClusteredSystem", index: int):
        self._system = system
        self.index = index
        shard = system.shards[index]
        self.frontend = shard.frontend
        self.collector = shard.collector

    def run_transactions(self, count: int):
        """Advance the cluster until this shard completes ``count`` more."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count!r}")
        self._system.source.start()
        records = self.collector.records
        start_index = len(records)
        advance_until(
            self._system.sim, self.collector, start_index + count,
            what=f"shard {self.index}'s completion target",
        )
        return records[start_index:start_index + count]


class ClusteredSystem(MeasuredSystem):
    """N engines behind one router: the runnable cluster topology.

    One :class:`~repro.sim.engine.Simulator` hosts every shard; the
    cluster-wide arrival source submits to a
    :class:`~repro.sim.station.RouterStation` which dispatches each
    transaction to a shard's :class:`ExternalScheduler` by the
    configured routing policy.  The measurement loop (``run``,
    ``run_transactions``, ``result``) is inherited unchanged from
    :class:`MeasuredSystem`.
    """

    def __init__(self, config: ClusterConfig):
        self.config = config
        self.sim = Simulator()
        self.collector = MetricsCollector()
        self.shards: List[_Shard] = []
        base_streams: Optional[RandomStreams] = None
        for shard_config in config.shards:
            collector = _ShardCollector(self.collector)
            streams, engine, frontend = build_engine_stack(
                self.sim, shard_config, collector
            )
            if base_streams is None:
                base_streams = streams
            self.shards.append(_Shard(shard_config, engine, frontend, collector))
        frontends = [shard.frontend for shard in self.shards]
        self.scheduler = ShardedExternalScheduler(
            frontends, weights=config.routing_weights
        )
        self.router = RouterStation(
            self.sim,
            frontends,
            make_routing(config.routing, len(frontends), config.routing_weights),
        )
        base = config.shards[0]
        # the cluster-wide source shares shard 0's stream factory, just
        # as the single-engine system shares one factory between its
        # engine and source
        self.source: ArrivalProcess = config.arrival_spec().build(
            self.sim,
            self.router,
            base.workload,
            base_streams,
            priority_assigner=base.priority_assigner(),
        )

    # -- topology hooks ------------------------------------------------------

    def _result_mpl(self) -> Optional[int]:
        return self.scheduler.global_mpl

    def _utilization_snapshot(self, elapsed: float) -> Dict[str, float]:
        if len(self.shards) == 1:
            return self.shards[0].engine.utilization_snapshot(elapsed)
        snapshot: Dict[str, float] = {}
        for index, shard in enumerate(self.shards):
            for name, value in shard.engine.utilization_snapshot(elapsed).items():
                snapshot[f"shard{index}/{name}"] = value
        return snapshot

    # -- per-shard access ----------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_view(self, index: int) -> _ShardView:
        """One shard through the measured-system surface (controllers)."""
        return _ShardView(self, index)

    def class_stats_snapshot(self) -> Dict[str, Dict[int, Dict[str, float]]]:
        """Per-station, per-class counters, shard-prefixed, router included."""
        snapshot: Dict[str, Dict[int, Dict[str, float]]] = {
            "router": {
                priority: stats.as_dict()
                for priority, stats in self.router.class_stats().items()
            }
        }
        for index, shard in enumerate(self.shards):
            for name, per_class in shard.engine.class_stats_snapshot().items():
                snapshot[f"shard{index}/{name}"] = per_class
        return snapshot

    def aggregate_class_requests(self, station: str) -> Dict[int, int]:
        """Per-class request totals for one station name across shards."""
        totals: Dict[int, int] = {}
        for shard in self.shards:
            resolved = shard.engine.stations.get(station)
            if resolved is None:
                continue
            for priority, stats in resolved.class_stats().items():
                totals[priority] = totals.get(priority, 0) + stats.requests
        return totals

    # -- per-shard MPL control ----------------------------------------------

    def tune_shards(
        self,
        baseline: Baseline,
        thresholds: Optional[Thresholds] = None,
        initial_mpl: int = 2,
        window: int = 100,
        **controller_kwargs: Any,
    ) -> List[ControllerReport]:
        """Run one §4.3 feedback controller per shard (dynamic split).

        ``baseline`` is the *cluster-wide* no-MPL reference; each shard
        is held to its fair share (cluster throughput divided by the
        shard count, the cluster's mean response time).  Shards are
        tuned in index order against the live cluster — while one
        shard's controller observes, every other shard keeps serving
        its own traffic under its current MPL.
        """
        thresholds = thresholds or Thresholds()
        share = Baseline(
            throughput=baseline.throughput / len(self.shards),
            mean_response_time=baseline.mean_response_time,
        )
        reports = []
        for index in range(len(self.shards)):
            controller = MplController(
                self.shard_view(index),  # type: ignore[arg-type]
                share,
                thresholds,
                initial_mpl=initial_mpl,
                window=window,
                **controller_kwargs,
            )
            reports.append(controller.tune())
        return reports


AnyConfig = Union[SystemConfig, ClusterConfig]


def build_system(config: AnyConfig) -> MeasuredSystem:
    """The runnable system for a config of either topology.

    Also dispatches on a :class:`~repro.core.scenario.ScenarioSpec`
    (building the config it describes), so every construction path —
    legacy configs, clusters, scenarios — funnels through one door.
    """
    if isinstance(config, ClusterConfig):
        if len(config.shards) == 1:
            # bit-identical to the plain engine, and cheaper to build
            return SimulatedSystem(config.shards[0])
        return ClusteredSystem(config)
    if isinstance(config, SystemConfig):
        return SimulatedSystem(config)
    from repro.core.scenario import ScenarioSpec

    if isinstance(config, ScenarioSpec):
        return build_system(config.build_config())
    raise TypeError(f"cannot build a system from {type(config).__name__}")


def run_cluster(config: ClusterConfig, transactions: int = 2000) -> RunResult:
    """Convenience: build a cluster from ``config`` and run it once."""
    return ClusteredSystem(config).run(transactions=transactions)
