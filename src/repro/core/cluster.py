"""Sharded multi-engine clusters behind a routing front-end.

The paper controls one MPL in front of one DBMS.  A production
deployment partitions the database over N engines and puts a router in
front: transactions arrive at one stream, the router dispatches each to
a shard by policy, and the external MPL is split across the shards.
This module is that topology, assembled entirely from existing seams —
the :class:`~repro.sim.station.RouterStation` front-end, one
:class:`~repro.core.frontend.ExternalScheduler` +
:class:`~repro.dbms.engine.DatabaseEngine` pair per shard, and the
pluggable arrival layer feeding the router:

* :class:`ClusterConfig` — pure data: a tuple of per-shard
  :class:`~repro.core.system.SystemConfig` values plus the routing
  policy.  It fingerprints like any config (content-addressed caching
  works unchanged), and a **one-shard cluster fingerprints identically
  to its plain single-engine config** because the two runs are
  bit-identical — the regression suite pins both directions.
* :class:`ShardedExternalScheduler` — the global-MPL view over the
  per-shard schedulers: a static split (weighted or even), plus
  dynamic per-shard control (:meth:`ClusteredSystem.tune_shards` runs
  one §4.3 feedback controller per shard).
* :class:`ClusteredSystem` — the runnable topology; shares the
  measurement loop with :class:`~repro.core.system.SimulatedSystem`
  via :class:`~repro.core.system.MeasuredSystem`, so ``run`` /
  ``run_transactions`` / ``result`` behave identically.

Replication and failure (Scenario API v2): each shard can carry a
:class:`ReplicaGroup` (one primary + R replicas; writes pinned to the
primary, reads fanned out deterministically, lowest-index election on
primary death), and :class:`ClusteredSystem` exposes the fault
transitions — :meth:`ClusteredSystem.kill_shard` /
:meth:`ClusteredSystem.restore_shard` /
:meth:`ClusteredSystem.degrade_shard` — that a
:class:`~repro.core.faults.FaultInjector` drives on the simulated
clock.  Kills are fail-stop at the admission boundary: in-flight
transactions drain, queued ones are re-homed (election buffer or
router re-route), so conservation holds through any fault timeline.

Determinism: shard ``i``'s engine draws from
``RandomStreams(shard_config.seed)`` where shard 0 keeps the base seed
and later shards derive theirs via
:func:`~repro.sim.random.derive_seed`; the cluster-wide arrival source
draws from shard 0's seed, exactly as the single-engine system does.
Routing policies are RNG-free.  A clustered run is therefore
bit-identical under any ``--jobs N``, and a one-shard cluster is
bit-identical to the plain engine.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.arrivals import ArrivalProcess, ArrivalSpec
from repro.core.controller import Baseline, ControllerReport, MplController, Thresholds
from repro.core.frontend import ExternalScheduler
from repro.core.system import (
    MeasuredSystem,
    RunResult,
    SimulatedSystem,
    SystemConfig,
    advance_until,
    build_engine_stack,
    canonical_jsonable,
    content_digest,
)
from repro.dbms.engine import DatabaseEngine
from repro.dbms.transaction import Transaction, TxStatus
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Event, Simulator
from repro.sim.random import RandomStreams, derive_seed
from repro.sim.station import ROUTING_POLICIES, RouterStation, make_routing

#: Read-fan-out policies a replica group understands: where read-only
#: transactions land.  Writes always go to the primary.
READ_FANOUT_POLICIES = ("primary", "round_robin", "least_in_flight")


def split_mpl(
    total: Optional[int],
    shards: int,
    weights: Optional[Sequence[float]] = None,
) -> List[Optional[int]]:
    """Split a global MPL into per-shard limits.

    ``None`` (no limit) stays ``None`` everywhere.  With weights the
    split is proportional (largest-remainder rounding); without, it is
    even, with the remainder going to the lowest shard indices.  Every
    shard always receives at least 1 — a zero-MPL shard would strand
    any transaction routed to it.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards!r}")
    if total is None:
        return [None] * shards
    if total < shards:
        raise ValueError(
            f"global MPL {total} cannot cover {shards} shards (need >= 1 each)"
        )
    if weights is None:
        weights = [1.0] * shards
    if len(weights) != shards:
        raise ValueError(f"need {shards} weights, got {len(weights)}")
    # NaN slips past a plain `w <= 0` (every comparison is False) and
    # inf poisons the proportional shares, so finiteness is its own check.
    if any(not math.isfinite(w) for w in weights):
        raise ValueError(f"weights must be finite, got {tuple(weights)!r}")
    if any(w <= 0 for w in weights):
        raise ValueError(f"weights must be positive, got {tuple(weights)!r}")
    scale = total / sum(weights)
    shares = [w * scale for w in weights]
    floors = [max(1, int(s)) for s in shares]
    remainder = total - sum(floors)
    if remainder < 0:
        # the max(1, ...) floor over-allocated: take back from the largest
        order = sorted(range(shards), key=lambda i: (-floors[i], i))
        for index in order:
            while remainder < 0 and floors[index] > 1:
                floors[index] -= 1
                remainder += 1
    else:
        # largest fractional remainder first, lowest index breaking ties
        order = sorted(range(shards), key=lambda i: (floors[i] - shares[i], i))
        for index in order[:remainder]:
            floors[index] += 1
    return floors  # type: ignore[return-value]


@dataclasses.dataclass(frozen=True)
class ClusterConfig:
    """Everything needed to build one sharded cluster.

    ``shards`` holds one full :class:`SystemConfig` per shard (each
    carries its own per-shard MPL and seed).  The cluster-wide arrival
    stream, priority mix, and external-queue policy are taken from
    shard 0's config — the usual way to build one is
    :meth:`scale_out`, which derives all shards from a single base
    config.
    """

    shards: Tuple[SystemConfig, ...]
    routing: str = "round_robin"
    routing_weights: Optional[Tuple[float, ...]] = None
    replicas_per_shard: int = 0
    read_fanout: str = "round_robin"
    election_timeout_s: float = 0.5

    #: Post-v1 fields are omitted from the canonical encoding while at
    #: their defaults, so every pre-existing cluster keeps its exact
    #: content hash (and cache entries).
    FINGERPRINT_OMIT_DEFAULTS = frozenset(
        {"replicas_per_shard", "read_fanout", "election_timeout_s"}
    )

    def __post_init__(self) -> None:
        if not self.shards:
            raise ValueError("a cluster needs at least one shard")
        if self.routing not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {self.routing!r}; "
                f"available: {', '.join(ROUTING_POLICIES)}"
            )
        if self.replicas_per_shard < 0:
            raise ValueError(
                f"replicas_per_shard must be >= 0, got {self.replicas_per_shard!r}"
            )
        if self.read_fanout not in READ_FANOUT_POLICIES:
            raise ValueError(
                f"unknown read fan-out {self.read_fanout!r}; "
                f"available: {', '.join(READ_FANOUT_POLICIES)}"
            )
        if self.election_timeout_s < 0:
            raise ValueError(
                f"election_timeout_s must be >= 0, got {self.election_timeout_s!r}"
            )
        if self.routing_weights is not None:
            if len(self.routing_weights) != len(self.shards):
                raise ValueError(
                    f"need {len(self.shards)} routing weights, "
                    f"got {len(self.routing_weights)}"
                )
            if any(not math.isfinite(w) for w in self.routing_weights):
                raise ValueError(
                    f"routing weights must be finite, got {self.routing_weights!r}"
                )
            if any(w <= 0 for w in self.routing_weights):
                raise ValueError(
                    f"routing weights must be positive, got {self.routing_weights!r}"
                )

    @classmethod
    def scale_out(
        cls,
        base: SystemConfig,
        shards: int,
        routing: str = "round_robin",
        routing_weights: Optional[Sequence[float]] = None,
        replicas_per_shard: int = 0,
        read_fanout: str = "round_robin",
        election_timeout_s: float = 0.5,
    ) -> "ClusterConfig":
        """N identical shards from one base config.

        ``base.mpl`` is treated as the *global* MPL and split across
        the shards (proportionally to ``routing_weights`` when given).
        Shard 0 keeps the base seed — which is what makes
        ``scale_out(base, 1)`` bit-identical to the plain engine —
        and shard ``i > 0`` derives its seed from
        ``(base.seed, "shard", i)``.  Replica ``r`` of a shard derives
        its seed from ``(shard_seed, "replica", r)``.
        """
        mpls = split_mpl(base.mpl, shards, routing_weights)
        configs = tuple(
            dataclasses.replace(
                base,
                mpl=mpls[index],
                seed=base.seed if index == 0 else derive_seed(base.seed, "shard", index),
            )
            for index in range(shards)
        )
        weights = tuple(float(w) for w in routing_weights) if routing_weights else None
        return cls(
            shards=configs,
            routing=routing,
            routing_weights=weights,
            replicas_per_shard=replicas_per_shard,
            read_fanout=read_fanout,
            election_timeout_s=election_timeout_s,
        )

    # -- derived views -------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def global_mpl(self) -> Optional[int]:
        """Sum of the per-shard MPLs (None if any shard is unlimited)."""
        total = 0
        for shard in self.shards:
            if shard.mpl is None:
                return None
            total += shard.mpl
        return total

    def arrival_spec(self) -> ArrivalSpec:
        """The cluster-wide arrival regime (shard 0's, normalized)."""
        return self.shards[0].arrival_spec()

    # -- fingerprinting ------------------------------------------------------

    def to_jsonable(self) -> Dict[str, Any]:
        """Canonical JSON-encodable view (see :func:`canonical_jsonable`)."""
        return canonical_jsonable(self)

    def fingerprint(self, **extra: Any) -> str:
        """Content hash of this cluster (plus run parameters).

        A one-shard cluster (with no replicas) hashes to **exactly**
        its shard's single-engine fingerprint: the two runs are
        bit-identical, so sharing cache entries between the two
        representations is sound (and pinned by the regression suite).
        """
        if len(self.shards) == 1 and self.replicas_per_shard == 0:
            return self.shards[0].fingerprint(**extra)
        return content_digest(self.to_jsonable(), extra)


class ShardedExternalScheduler:
    """The global-MPL view over a cluster's per-shard schedulers.

    Static mode: :meth:`set_global_mpl` splits one limit across the
    shards (respecting the split weights).  Dynamic mode: each shard's
    scheduler remains individually addressable (``shards[i]`` /
    :meth:`set_shard_mpl`), which is what the per-shard feedback
    controllers drive.
    """

    def __init__(
        self,
        frontends: Sequence[ExternalScheduler],
        weights: Optional[Sequence[float]] = None,
    ):
        if not frontends:
            raise ValueError("need at least one shard scheduler")
        self.frontends = list(frontends)
        self.weights = list(weights) if weights is not None else None

    def __len__(self) -> int:
        return len(self.frontends)

    def __getitem__(self, index: int) -> ExternalScheduler:
        return self.frontends[index]

    @property
    def global_mpl(self) -> Optional[int]:
        """Sum of per-shard MPLs (None if any shard is unlimited)."""
        total = 0
        for frontend in self.frontends:
            if frontend.mpl is None:
                return None
            total += frontend.mpl
        return total

    def set_global_mpl(
        self,
        mpl: Optional[int],
        weights: Optional[Sequence[float]] = None,
    ) -> List[Optional[int]]:
        """Re-split a global MPL across the shards; returns the split.

        ``weights`` overrides the configured split weights for this
        call — the elastic controller's hook for steering capacity
        toward hot shards without touching the static configuration.
        """
        active = self.weights if weights is None else list(weights)
        mpls = split_mpl(mpl, len(self.frontends), active)
        for frontend, shard_mpl in zip(self.frontends, mpls):
            frontend.set_mpl(shard_mpl)
        return mpls

    def set_shard_mpl(self, index: int, mpl: Optional[int]) -> None:
        """Set one shard's MPL (the per-shard controller hook)."""
        self.frontends[index].set_mpl(mpl)

    # aggregate counters, summed over shards

    @property
    def in_service(self) -> int:
        return sum(f.in_service for f in self.frontends)

    @property
    def queue_length(self) -> int:
        return sum(f.queue_length for f in self.frontends)

    @property
    def dispatched(self) -> int:
        return sum(f.dispatched for f in self.frontends)

    @property
    def completed(self) -> int:
        return sum(f.completed for f in self.frontends)


class _ShardCollector(MetricsCollector):
    """A shard-local collector that tees into the cluster-wide one.

    The cluster collector therefore sees every completion in global
    completion order — with one shard, the exact stream the plain
    engine produces — while each shard keeps its own records for
    per-shard invariants and controllers.
    """

    def __init__(self, cluster_collector: MetricsCollector):
        super().__init__()
        self._cluster = cluster_collector

    def on_arrival(self, tx: Transaction) -> None:
        super().on_arrival(tx)
        self._cluster.on_arrival(tx)

    def on_completion(self, tx: Transaction) -> None:
        super().on_completion(tx)
        self._cluster.on_completion(tx)


class ReplicaGroup:
    """One primary + R replicas serving a single shard.

    The group speaks the :class:`ExternalScheduler` surface (``submit``
    / ``adopt`` / ``set_mpl`` / the aggregate counters), so it slots
    behind the :class:`~repro.sim.station.RouterStation` and the
    :class:`ShardedExternalScheduler` unchanged.  Placement rules:

    * **writes** (``tx.is_update``) are pinned to the acting primary;
    * **reads** fan out across live members by the configured policy —
      ``primary`` (no fan-out), ``round_robin`` (cycle over live
      members), or ``least_in_flight`` (fewest admitted + queued, ties
      to the lowest index).  All three are RNG-free, so replicated runs
      stay bit-identical under any ``--jobs N``.

    Failover is deterministic: killing the acting primary fail-stops it
    at the admission boundary (in-flight work drains, queued work moves
    into the group's election buffer), and after ``election_timeout_s``
    of simulated time the lowest-index live member is promoted and the
    buffer flushes.  While the election runs, replicas keep serving
    reads (unless fan-out is ``primary``).  A group whose last member
    dies reports itself unavailable so the router can take the shard
    out of rotation and re-home the evacuated queue.

    All members share the shard's collector: the shard-level completion
    stream, per-shard invariants, and the cluster tee behave exactly as
    they do for a single-engine shard.
    """

    def __init__(
        self,
        sim: Simulator,
        members: Sequence[ExternalScheduler],
        collector: MetricsCollector,
        read_fanout: str = "round_robin",
        election_timeout_s: float = 0.5,
    ):
        if not members:
            raise ValueError("a replica group needs at least one member")
        if read_fanout not in READ_FANOUT_POLICIES:
            raise ValueError(
                f"unknown read fan-out {read_fanout!r}; "
                f"available: {', '.join(READ_FANOUT_POLICIES)}"
            )
        self.sim = sim
        self.members = list(members)
        self.collector = collector
        self.read_fanout = read_fanout
        self.election_timeout_s = election_timeout_s
        self.alive: List[bool] = [True] * len(self.members)
        self.primary = 0
        self.elections = 0
        self.handovers = 0  # queued transactions moved off a dead member
        self._mpl = self.members[0].mpl
        self._rr_next = 0
        self._pending: List[Transaction] = []
        self._electing = False

    # -- ExternalScheduler surface -----------------------------------------

    @property
    def mpl(self) -> Optional[int]:
        """The per-member admission limit (None = unlimited)."""
        return self._mpl

    def set_mpl(self, mpl: Optional[int]) -> None:
        """Set every member's admission limit to ``mpl``.

        The MPL is a per-engine limit: the primary and each replica
        enforce the same bound on their own engine, mirroring how a
        real fleet configures identical nodes.
        """
        self._mpl = mpl
        for member in self.members:
            member.set_mpl(mpl)

    def submit(self, tx: Transaction) -> Event:
        """Admit a transaction to the group; fires at commit with ``tx``.

        Mirrors :meth:`ExternalScheduler.submit` — the group owns the
        arrival accounting and completion event, then places the
        transaction on a member (or the election buffer).
        """
        tx.arrival_time = self.sim.now
        tx.status = TxStatus.QUEUED
        done = self.sim.event()
        tx._completion_event = done
        self.collector.on_arrival(tx)
        self._place(tx)
        return done

    def adopt(self, tx: Transaction) -> None:
        """Accept a transaction re-homed from another shard (no new
        arrival accounting, original completion event preserved)."""
        self._place(tx)

    @property
    def in_service(self) -> int:
        """Transactions inside any member's engine."""
        return sum(member.in_service for member in self.members)

    @property
    def queue_length(self) -> int:
        """Queued transactions, election buffer included."""
        return (
            sum(member.queue_length for member in self.members)
            + len(self._pending)
        )

    @property
    def dispatched(self) -> int:
        return sum(member.dispatched for member in self.members)

    @property
    def completed(self) -> int:
        return sum(member.completed for member in self.members)

    @property
    def removed(self) -> int:
        """Admissions pulled back out by the resilience layer.

        Always zero today — the resilience axis requires an
        unreplicated topology — but the conservation law reads it off
        every frontend-shaped object uniformly.
        """
        return sum(member.removed for member in self.members)

    # -- membership ---------------------------------------------------------

    @property
    def num_members(self) -> int:
        return len(self.members)

    @property
    def pending_count(self) -> int:
        """Transactions buffered while the group has no acting primary."""
        return len(self._pending)

    @property
    def electing(self) -> bool:
        return self._electing

    def live_members(self) -> List[int]:
        """Indices of members currently accepting work."""
        return [i for i, alive in enumerate(self.alive) if alive]

    @property
    def available(self) -> bool:
        """Whether any member is alive (the router's liveness signal)."""
        return any(self.alive)

    # -- placement ----------------------------------------------------------

    def _place(self, tx: Transaction) -> None:
        if tx.is_update or self.read_fanout == "primary":
            if self._electing or not self.alive[self.primary]:
                self._pending.append(tx)
            else:
                self.members[self.primary].adopt(tx)
            return
        live = self.live_members()
        if not live:
            self._pending.append(tx)
            return
        if self.read_fanout == "round_robin":
            index = live[self._rr_next % len(live)]
            self._rr_next += 1
        else:  # least_in_flight; ties break to the lowest index
            index = min(
                live,
                key=lambda i: (
                    self.members[i].in_service + self.members[i].queue_length,
                    i,
                ),
            )
        self.members[index].adopt(tx)

    # -- failure transitions ------------------------------------------------

    def kill_primary(self) -> Tuple[bool, str]:
        """Fail-stop the acting primary (or the would-be winner during
        an election).  Returns ``(still_serving, detail)``.

        In-flight transactions on the victim drain to completion;
        its queued transactions move into the election buffer.  When
        members survive, a deterministic election promotes the
        lowest-index live member after ``election_timeout_s``.
        """
        live = self.live_members()
        if not live:
            return False, "group already dead"
        victim = self.primary if self.alive[self.primary] else live[0]
        self.alive[victim] = False
        moved = self.members[victim].drain_queue()
        self.handovers += len(moved)
        self._pending.extend(moved)
        if not self.available:
            return False, f"member {victim} killed, no survivors"
        if not self._electing:
            self._start_election()
        return True, (
            f"member {victim} killed, {len(moved)} queued buffered, "
            f"election started"
        )

    def _start_election(self) -> None:
        self._electing = True
        self.elections += 1
        timeout = self.sim.timeout(self.election_timeout_s)
        timeout.add_callback(self._finish_election)

    def _finish_election(self, _event: Event) -> None:
        live = self.live_members()
        self._electing = False
        if not live:  # the remaining members died during the election
            return
        self.primary = live[0]
        self._flush_pending()

    def _flush_pending(self) -> None:
        pending, self._pending = self._pending, []
        for tx in pending:
            self._place(tx)

    def evacuate(self) -> List[Transaction]:
        """Drain every queued transaction out of a fully-dead group so
        the router can re-home it (in-flight work still drains)."""
        moved, self._pending = list(self._pending), []
        for member in self.members:
            moved.extend(member.drain_queue())
        return moved

    def restore(self) -> List[int]:
        """Revive every dead member (as replicas) and flush the buffer.

        A fully-dead group comes back with its lowest-index member as
        the acting primary; a serving group just regains replicas.
        Returns the indices revived.
        """
        had_live = self.available
        revived = [i for i, alive in enumerate(self.alive) if not alive]
        for index in revived:
            self.alive[index] = True
            self.members[index].set_mpl(self._mpl)
        if not self._electing:
            if not had_live or not self.alive[self.primary]:
                self.primary = self.live_members()[0]
            self._flush_pending()
        return revived


@dataclasses.dataclass
class _Shard:
    """One shard's live pieces.

    ``frontend`` is what the router targets — the plain
    :class:`ExternalScheduler` for an unreplicated shard, the
    :class:`ReplicaGroup` otherwise (``group`` aliases it in that
    case).  ``engine``/``engines`` expose the primary's engine and the
    full member list for utilization snapshots.
    """

    config: SystemConfig
    engine: DatabaseEngine
    frontend: Union[ExternalScheduler, ReplicaGroup]
    collector: _ShardCollector
    group: Optional[ReplicaGroup] = None
    engines: Tuple[DatabaseEngine, ...] = ()


class _ShardView:
    """A single shard seen through the :class:`MeasuredSystem` surface.

    Exposes exactly what :class:`~repro.core.controller.MplController`
    touches — ``frontend``, ``collector``, ``run_transactions`` — so
    the paper's controller can tune one shard of a live cluster.
    Advancing a shard view steps the *global* simulation (all shards
    keep serving their own traffic) but counts only this shard's
    completions toward the window.
    """

    def __init__(self, system: "ClusteredSystem", index: int):
        self._system = system
        self.index = index
        shard = system.shards[index]
        self.frontend = shard.frontend
        self.collector = shard.collector

    def run_transactions(self, count: int):
        """Advance the cluster until this shard completes ``count`` more."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count!r}")
        self._system.source.start()
        records = self.collector.records
        start_index = len(records)
        advance_until(
            self._system.sim, self.collector, start_index + count,
            what=f"shard {self.index}'s completion target",
        )
        return records[start_index:start_index + count]


class ClusteredSystem(MeasuredSystem):
    """N engines behind one router: the runnable cluster topology.

    One :class:`~repro.sim.engine.Simulator` hosts every shard; the
    cluster-wide arrival source submits to a
    :class:`~repro.sim.station.RouterStation` which dispatches each
    transaction to a shard's :class:`ExternalScheduler` by the
    configured routing policy.  The measurement loop (``run``,
    ``run_transactions``, ``result``) is inherited unchanged from
    :class:`MeasuredSystem`.
    """

    def __init__(self, config: ClusterConfig):
        self.config = config
        self.sim = Simulator()
        self.collector = MetricsCollector()
        self.shards: List[_Shard] = []
        self._degraded: Dict[int, Optional[int]] = {}
        #: Compound degrade factor per shard (health reporting); cleared
        #: by :meth:`restore_shard` alongside the remembered MPL.
        self._degrade_factors: Dict[int, float] = {}
        #: The installed resilience runtime (scenario-driven; None keeps
        #: the legacy behavior).
        self.resilience = None
        #: The installed 2PC coordinator (scenario-driven; None outside
        #: distributed scenarios).
        self.distributed = None
        base_streams: Optional[RandomStreams] = None
        for shard_config in config.shards:
            collector = _ShardCollector(self.collector)
            streams, engine, frontend = build_engine_stack(
                self.sim, shard_config, collector
            )
            if base_streams is None:
                base_streams = streams
            engines: Tuple[DatabaseEngine, ...] = (engine,)
            group: Optional[ReplicaGroup] = None
            target: Union[ExternalScheduler, ReplicaGroup] = frontend
            if config.replicas_per_shard > 0:
                members = [frontend]
                for replica_index in range(1, config.replicas_per_shard + 1):
                    replica_config = dataclasses.replace(
                        shard_config,
                        seed=derive_seed(
                            shard_config.seed, "replica", replica_index
                        ),
                    )
                    _, replica_engine, replica_frontend = build_engine_stack(
                        self.sim, replica_config, collector
                    )
                    members.append(replica_frontend)
                    engines += (replica_engine,)
                group = ReplicaGroup(
                    self.sim,
                    members,
                    collector,
                    read_fanout=config.read_fanout,
                    election_timeout_s=config.election_timeout_s,
                )
                target = group
            self.shards.append(
                _Shard(shard_config, engine, target, collector,
                       group=group, engines=engines)
            )
        frontends = [shard.frontend for shard in self.shards]
        self.scheduler = ShardedExternalScheduler(
            frontends, weights=config.routing_weights
        )
        self.router = RouterStation(
            self.sim,
            frontends,
            make_routing(config.routing, len(frontends), config.routing_weights),
        )
        base = config.shards[0]
        # the cluster-wide source shares shard 0's stream factory, just
        # as the single-engine system shares one factory between its
        # engine and source
        self.source: ArrivalProcess = config.arrival_spec().build(
            self.sim,
            self.router,
            base.workload,
            base_streams,
            priority_assigner=base.priority_assigner(),
        )

    # -- topology hooks ------------------------------------------------------

    def _result_mpl(self) -> Optional[int]:
        return self.scheduler.global_mpl

    def _utilization_snapshot(self, elapsed: float) -> Dict[str, float]:
        if len(self.shards) == 1 and self.shards[0].group is None:
            return self.shards[0].engine.utilization_snapshot(elapsed)
        snapshot: Dict[str, float] = {}
        for index, shard in enumerate(self.shards):
            for member, engine in enumerate(shard.engines):
                prefix = (
                    f"shard{index}" if member == 0 else f"shard{index}/r{member}"
                )
                for name, value in engine.utilization_snapshot(elapsed).items():
                    snapshot[f"{prefix}/{name}"] = value
        return snapshot

    # -- per-shard access ----------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_view(self, index: int) -> _ShardView:
        """One shard through the measured-system surface (controllers)."""
        return _ShardView(self, index)

    def class_stats_snapshot(self) -> Dict[str, Dict[int, Dict[str, float]]]:
        """Per-station, per-class counters, shard-prefixed, router included."""
        snapshot: Dict[str, Dict[int, Dict[str, float]]] = {
            "router": {
                priority: stats.as_dict()
                for priority, stats in self.router.class_stats().items()
            }
        }
        for index, shard in enumerate(self.shards):
            for name, per_class in shard.engine.class_stats_snapshot().items():
                snapshot[f"shard{index}/{name}"] = per_class
        return snapshot

    def aggregate_class_requests(self, station: str) -> Dict[int, int]:
        """Per-class request totals for one station name across shards."""
        totals: Dict[int, int] = {}
        for shard in self.shards:
            resolved = shard.engine.stations.get(station)
            if resolved is None:
                continue
            for priority, stats in resolved.class_stats().items():
                totals[priority] = totals.get(priority, 0) + stats.requests
        return totals

    # -- fault transitions ---------------------------------------------------

    def _check_shard(self, index: int) -> None:
        if not 0 <= index < len(self.shards):
            raise ValueError(
                f"shard index {index} out of range for {len(self.shards)} shards"
            )

    def kill_shard(self, index: int) -> str:
        """Fail-stop shard ``index``'s acting primary (or the shard).

        With replicas the group buffers and elects (the shard stays in
        the routing rotation); without — or once the last member dies —
        the router takes the shard out of rotation and re-homes its
        queued transactions onto the survivors.  In-flight work always
        drains to completion.  Returns a human-readable detail string
        for the fault log.
        """
        self._check_shard(index)
        if self.distributed is not None:
            # participant death: abort undecided 2PC attempts with a
            # branch queued here *before* the drain re-homes the queue
            self.distributed.on_shard_killed(index)
        shard = self.shards[index]
        if shard.group is not None:
            still_serving, detail = shard.group.kill_primary()
            if not still_serving and self.router.alive[index]:
                evacuated = shard.group.evacuate()
                self.router.set_alive(index, False)
                for tx in evacuated:
                    self.router.reroute(tx, index)
                detail += f"; shard out of rotation, {len(evacuated)} re-routed"
            return detail
        if not self.router.alive[index]:
            return "shard already dead"
        self.router.set_alive(index, False)
        moved = shard.frontend.drain_queue()
        for tx in moved:
            self.router.reroute(tx, index)
        return f"shard out of rotation, {len(moved)} queued re-routed"

    def restore_shard(self, index: int) -> str:
        """Bring shard ``index`` back: revive members, undo any
        degradation, and return the shard to the routing rotation."""
        self._check_shard(index)
        shard = self.shards[index]
        original = self._degraded.pop(index, False)
        self._degrade_factors.pop(index, None)
        if original is not False:
            shard.frontend.set_mpl(original)
        detail = ""
        if shard.group is not None:
            revived = shard.group.restore()
            detail = f"{len(revived)} members revived"
        self.router.set_alive(index, True)
        return detail or "shard back in rotation"

    def degrade_shard(self, index: int, factor: float) -> str:
        """Scale shard ``index``'s MPL by ``factor`` (brown-out).

        The pre-degrade limit is remembered once (repeated degrades
        compound) and restored by :meth:`restore_shard`.  Unlimited
        shards have no admission limit to shrink, so this is a no-op
        for them.
        """
        self._check_shard(index)
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"degrade factor must be in (0, 1], got {factor!r}")
        shard = self.shards[index]
        current = shard.frontend.mpl
        if current is None:
            return "unlimited MPL, degrade is a no-op"
        if index not in self._degraded:
            self._degraded[index] = current
        self._degrade_factors[index] = (
            self._degrade_factors.get(index, 1.0) * factor
        )
        new_mpl = max(1, int(current * factor))
        shard.frontend.set_mpl(new_mpl)
        return f"mpl {current} -> {new_mpl}"

    def shard_health(self) -> List[Dict[str, Any]]:
        """Per-shard health snapshot for the outcome JSON.

        Covers liveness, rotation, the compound degrade factor (None =
        never degraded), the routing counters, and queue/service state;
        the scenario layer merges breaker state in when a resilience
        runtime is installed.  Today ``DegradeShard`` leaves a trace.
        """
        health: List[Dict[str, Any]] = []
        for index, shard in enumerate(self.shards):
            health.append({
                "shard": index,
                "alive": self.router.alive[index],
                "in_rotation": self.router.in_rotation[index],
                "mpl": shard.frontend.mpl,
                "degrade_factor": self._degrade_factors.get(index),
                "routed": self.router.routed_by_shard[index],
                "rerouted_from": self.router.rerouted_from[index],
                "rerouted_to": self.router.rerouted_to[index],
                "in_service": shard.frontend.in_service,
                "queue_length": shard.frontend.queue_length,
                "completed": shard.frontend.completed,
            })
        return health

    # -- per-shard MPL control ----------------------------------------------

    def tune_shards(
        self,
        baseline: Baseline,
        thresholds: Optional[Thresholds] = None,
        initial_mpl: int = 2,
        window: int = 100,
        **controller_kwargs: Any,
    ) -> List[ControllerReport]:
        """Run one §4.3 feedback controller per shard (dynamic split).

        ``baseline`` is the *cluster-wide* no-MPL reference; each shard
        is held to its fair share (cluster throughput divided by the
        shard count, the cluster's mean response time).  Shards are
        tuned in index order against the live cluster — while one
        shard's controller observes, every other shard keeps serving
        its own traffic under its current MPL.
        """
        thresholds = thresholds or Thresholds()
        share = Baseline(
            throughput=baseline.throughput / len(self.shards),
            mean_response_time=baseline.mean_response_time,
        )
        reports = []
        for index in range(len(self.shards)):
            controller = MplController(
                self.shard_view(index),  # type: ignore[arg-type]
                share,
                thresholds,
                initial_mpl=initial_mpl,
                window=window,
                **controller_kwargs,
            )
            reports.append(controller.tune())
        return reports


AnyConfig = Union[SystemConfig, ClusterConfig]


def build_system(config: AnyConfig) -> MeasuredSystem:
    """The runnable system for a config of either topology.

    Also dispatches on a :class:`~repro.core.scenario.ScenarioSpec`
    (building the config it describes), so every construction path —
    legacy configs, clusters, scenarios — funnels through one door.
    """
    if isinstance(config, ClusterConfig):
        if len(config.shards) == 1 and config.replicas_per_shard == 0:
            # bit-identical to the plain engine, and cheaper to build
            return SimulatedSystem(config.shards[0])
        return ClusteredSystem(config)
    if isinstance(config, SystemConfig):
        return SimulatedSystem(config)
    from repro.core.scenario import ScenarioSpec

    if isinstance(config, ScenarioSpec):
        return build_system(config.build_config())
    raise TypeError(f"cannot build a system from {type(config).__name__}")


def run_cluster(config: ClusterConfig, transactions: int = 2000) -> RunResult:
    """Convenience: build a cluster from ``config`` and run it once."""
    return ClusteredSystem(config).run(transactions=transactions)
