"""Backwards-compatible aliases for the arrival layer.

The transaction sources grew into the pluggable arrival layer of
:mod:`repro.core.arrivals` (closed populations, open Poisson,
partly-open sessions, modulated rates).  This module keeps the
original import surface alive; new code should import from
:mod:`repro.core.arrivals` directly.
"""

from repro.core.arrivals import (
    ArrivalProcess,
    ClosedPopulation,
    OpenPoisson,
    OpenSource,
    PriorityAssigner,
    fraction_high_assigner,
)

__all__ = [
    "ArrivalProcess",
    "ClosedPopulation",
    "OpenPoisson",
    "OpenSource",
    "PriorityAssigner",
    "fraction_high_assigner",
]
