"""Deprecated aliases for the arrival layer (import from ``arrivals``).

The transaction sources grew into the pluggable arrival layer of
:mod:`repro.core.arrivals` (closed populations, open Poisson,
partly-open sessions, modulated rates).  This module keeps the
original import surface alive but warns on every attribute access:
each name resolves lazily (PEP 562) to the *same object* exported by
:mod:`repro.core.arrivals` and raises a :class:`DeprecationWarning`
pointing at the new home.  New code should import from
:mod:`repro.core.arrivals` directly.
"""

import warnings

from repro.core import arrivals as _arrivals

__all__ = [
    "ArrivalProcess",
    "ClosedPopulation",
    "OpenPoisson",
    "OpenSource",
    "PriorityAssigner",
    "fraction_high_assigner",
]


def __getattr__(name: str):
    if name in __all__:
        warnings.warn(
            f"repro.core.clients.{name} is deprecated; import it from "
            "repro.core.arrivals instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(_arrivals, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
