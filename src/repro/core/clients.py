"""Transaction sources: closed client populations and open arrivals.

The paper's main experiments are *closed*: 100 clients each submit a
transaction, wait for it to complete, think, and repeat (§2.2).  The
response-time study of §3.2 switches to an *open* system with Poisson
arrivals.  Both sources draw transactions from a
:class:`~repro.workloads.spec.WorkloadSpec` and optionally run them
through a priority assigner (§5's random 10%-high split).
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Optional

from repro.core.frontend import ExternalScheduler
from repro.dbms.transaction import Priority, Transaction
from repro.sim.distributions import Distribution
from repro.sim.engine import Simulator
from repro.workloads.spec import WorkloadSpec

PriorityAssigner = Callable[[random.Random], int]


class ClosedPopulation:
    """``num_clients`` closed-loop clients with a think-time distribution."""

    def __init__(
        self,
        sim: Simulator,
        frontend: ExternalScheduler,
        workload: WorkloadSpec,
        num_clients: int,
        think_time: Optional[Distribution],
        rng: random.Random,
        priority_assigner: Optional[PriorityAssigner] = None,
    ):
        if num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {num_clients!r}")
        self.sim = sim
        self.frontend = frontend
        self.workload = workload
        self.num_clients = num_clients
        self.think_time = think_time
        self._rng = rng
        self._assigner = priority_assigner
        self._tids = itertools.count()
        self._running = False

    def start(self) -> None:
        """Launch all client processes (idempotent)."""
        if self._running:
            return
        self._running = True
        for client_id in range(self.num_clients):
            self.sim.process(self._client(client_id), name=f"client{client_id}")

    def _client(self, client_id: int):
        while True:
            priority = self._assigner(self._rng) if self._assigner else Priority.LOW
            tx = self.workload.sample_transaction(
                self._rng, next(self._tids), priority=priority, client_id=client_id
            )
            yield self.frontend.submit(tx)
            if self.think_time is not None and self.think_time.mean > 0:
                yield self.sim.timeout(self.think_time.sample(self._rng))


class OpenSource:
    """Poisson (or generally renewal) arrivals into the front-end."""

    def __init__(
        self,
        sim: Simulator,
        frontend: ExternalScheduler,
        workload: WorkloadSpec,
        interarrival: Distribution,
        rng: random.Random,
        priority_assigner: Optional[PriorityAssigner] = None,
        max_arrivals: Optional[int] = None,
    ):
        self.sim = sim
        self.frontend = frontend
        self.workload = workload
        self.interarrival = interarrival
        self.max_arrivals = max_arrivals
        self._rng = rng
        self._assigner = priority_assigner
        self._tids = itertools.count()
        self._running = False

    def start(self) -> None:
        """Launch the arrival process (idempotent)."""
        if self._running:
            return
        self._running = True
        self.sim.process(self._arrivals(), name="open-source")

    def _arrivals(self):
        generated = 0
        while self.max_arrivals is None or generated < self.max_arrivals:
            yield self.sim.timeout(self.interarrival.sample(self._rng))
            priority = self._assigner(self._rng) if self._assigner else Priority.LOW
            tx = self.workload.sample_transaction(
                self._rng, next(self._tids), priority=priority
            )
            self.frontend.submit(tx)
            generated += 1


def fraction_high_assigner(fraction: float) -> PriorityAssigner:
    """The paper's §5 assignment: each transaction is HIGH w.p. ``fraction``."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction!r}")

    def assign(rng: random.Random) -> int:
        return Priority.HIGH if rng.random() < fraction else Priority.LOW

    return assign
