"""Pluggable arrival processes: how work reaches the front-end.

The paper exercises two arrival regimes — a *closed* population of 100
think/submit clients (§2.2) and an *open* Poisson stream (§3.2).  Real
traffic sits between and beyond those: users arrive, issue a burst of
transactions, and leave (partly-open), and load varies over the day
(time-varying rates).  This module turns "how transactions arrive"
into a first-class seam with two halves:

* **Specs** — small frozen dataclasses (:class:`ClosedArrivals`,
  :class:`OpenArrivals`, :class:`PartlyOpenArrivals`,
  :class:`ModulatedArrivals`) that live inside a
  :class:`~repro.core.system.SystemConfig`, hash into its content
  fingerprint, and travel through the parallel runner's cache.
* **Processes** — the runtime generators (:class:`ClosedPopulation`,
  :class:`OpenPoisson`, :class:`PartlyOpenSessions`,
  :class:`ModulatedOpenSource`) a spec builds against a live
  simulation.  All of them draw from named
  :class:`~repro.sim.random.RandomStreams` substreams, so every
  scenario is deterministic and bit-identical under any ``--jobs N``.

Adding a scenario means adding one spec dataclass with a ``build``
method — no changes to :class:`~repro.core.system.SimulatedSystem`,
the engine, or the runner.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
import random
from typing import Callable, Optional, Sequence, Tuple

from repro.core.frontend import ExternalScheduler
from repro.dbms.transaction import Priority, Transaction
from repro.sim.distributions import Distribution, Exponential
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.workloads.spec import WorkloadSpec

PriorityAssigner = Callable[[random.Random], int]


def fraction_high_assigner(fraction: float) -> PriorityAssigner:
    """The paper's §5 assignment: each transaction is HIGH w.p. ``fraction``."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction!r}")

    def assign(rng: random.Random) -> int:
        return Priority.HIGH if rng.random() < fraction else Priority.LOW

    return assign


# -- runtime arrival processes ------------------------------------------------


class ArrivalProcess:
    """Base class: feeds sampled transactions into the front-end.

    Subclasses implement :meth:`_launch`; :meth:`start` is idempotent
    so measurement loops can call it freely.
    """

    def __init__(
        self,
        sim: Simulator,
        frontend: ExternalScheduler,
        workload: WorkloadSpec,
        rng: random.Random,
        priority_assigner: Optional[PriorityAssigner] = None,
    ):
        self.sim = sim
        self.frontend = frontend
        self.workload = workload
        self._rng = rng
        self._assigner = priority_assigner
        self._tids = itertools.count()
        self._running = False

    def start(self) -> None:
        """Launch the arrival process (idempotent)."""
        if self._running:
            return
        self._running = True
        self._launch()

    def _launch(self) -> None:
        raise NotImplementedError

    def _sample(self, client_id: Optional[int] = None) -> Transaction:
        """Draw the next transaction (type, demands, priority)."""
        priority = self._assigner(self._rng) if self._assigner else Priority.LOW
        return self.workload.sample_transaction(
            self._rng, next(self._tids), priority=priority, client_id=client_id
        )


class ClosedPopulation(ArrivalProcess):
    """``num_clients`` closed-loop clients with a think-time distribution."""

    def __init__(
        self,
        sim: Simulator,
        frontend: ExternalScheduler,
        workload: WorkloadSpec,
        num_clients: int,
        think_time: Optional[Distribution],
        rng: random.Random,
        priority_assigner: Optional[PriorityAssigner] = None,
    ):
        if num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {num_clients!r}")
        super().__init__(sim, frontend, workload, rng, priority_assigner)
        self.num_clients = num_clients
        self.think_time = think_time

    def _launch(self) -> None:
        for client_id in range(self.num_clients):
            self.sim.process(self._client(client_id), name=f"client{client_id}")

    def _client(self, client_id: int):
        # the closed loop is the hottest arrival path: the per-loop
        # constants are hoisted, but the draw itself stays in _sample
        # so every arrival regime shares one sampling code path
        think = self.think_time
        if think is not None and not think.mean > 0:
            think = None
        rng = self._rng
        sample = self._sample
        submit = self.frontend.submit
        timeout = self.sim.timeout
        while True:
            yield submit(sample(client_id=client_id))
            if think is not None:
                yield timeout(think.sample(rng))


class OpenPoisson(ArrivalProcess):
    """Poisson (or generally renewal) arrivals into the front-end."""

    def __init__(
        self,
        sim: Simulator,
        frontend: ExternalScheduler,
        workload: WorkloadSpec,
        interarrival: Distribution,
        rng: random.Random,
        priority_assigner: Optional[PriorityAssigner] = None,
        max_arrivals: Optional[int] = None,
    ):
        super().__init__(sim, frontend, workload, rng, priority_assigner)
        self.interarrival = interarrival
        self.max_arrivals = max_arrivals

    def _launch(self) -> None:
        self.sim.process(self._arrivals(), name="open-source")

    def _arrivals(self):
        generated = 0
        while self.max_arrivals is None or generated < self.max_arrivals:
            yield self.sim.timeout(self.interarrival.sample(self._rng))
            self.frontend.submit(self._sample())
            generated += 1


class PartlyOpenSessions(ArrivalProcess):
    """Sessions arrive Poisson; each issues a burst, thinks, and leaves.

    The partly-open model of real traffic: a session arrives at rate
    ``session_rate``, issues ``K`` transactions closed-loop (waiting
    for each to complete, thinking in between), then departs, where
    ``K`` is geometric with mean ``mean_session_length``.  With mean 1
    this degenerates to a pure open system; as the mean grows the
    system behaves increasingly like a closed one.
    """

    def __init__(
        self,
        sim: Simulator,
        frontend: ExternalScheduler,
        workload: WorkloadSpec,
        session_rate: float,
        mean_session_length: float,
        think_time: Optional[Distribution],
        rng: random.Random,
        priority_assigner: Optional[PriorityAssigner] = None,
        max_sessions: Optional[int] = None,
    ):
        if session_rate <= 0:
            raise ValueError(f"session_rate must be positive, got {session_rate!r}")
        if mean_session_length < 1.0:
            raise ValueError(
                f"mean_session_length must be >= 1, got {mean_session_length!r}"
            )
        super().__init__(sim, frontend, workload, rng, priority_assigner)
        self.session_rate = session_rate
        self.mean_session_length = mean_session_length
        self.think_time = think_time
        self.max_sessions = max_sessions
        self.sessions_started = 0
        self.sessions_finished = 0

    @property
    def active_sessions(self) -> int:
        """Sessions currently issuing transactions."""
        return self.sessions_started - self.sessions_finished

    def _launch(self) -> None:
        self.sim.process(self._arrivals(), name="session-source")

    def _session_length(self) -> int:
        """Draw K ~ Geometric(1 / mean) on {1, 2, ...} by inversion."""
        mean = self.mean_session_length
        if mean <= 1.0:
            return 1
        u = self._rng.random()
        return 1 + int(math.log(1.0 - u) / math.log(1.0 - 1.0 / mean))

    def _arrivals(self):
        while self.max_sessions is None or self.sessions_started < self.max_sessions:
            yield self.sim.timeout(self._rng.expovariate(self.session_rate))
            self.sessions_started += 1
            self.sim.process(
                self._session(self._session_length()),
                name=f"session{self.sessions_started}",
            )

    def _session(self, length: int):
        for index in range(length):
            yield self.frontend.submit(self._sample())
            if (
                index + 1 < length
                and self.think_time is not None
                and self.think_time.mean > 0
            ):
                yield self.sim.timeout(self.think_time.sample(self._rng))
        self.sessions_finished += 1


class ModulatedOpenSource(ArrivalProcess):
    """Non-homogeneous Poisson arrivals driven by a rate function.

    Implemented by thinning: candidate arrivals are generated at the
    rate function's maximum and accepted with probability
    ``rate(t) / max_rate`` — the standard exact method, and one whose
    random-number consumption depends only on the candidate sequence,
    keeping runs deterministic.
    """

    def __init__(
        self,
        sim: Simulator,
        frontend: ExternalScheduler,
        workload: WorkloadSpec,
        rate_function: "RateFunction",
        rng: random.Random,
        priority_assigner: Optional[PriorityAssigner] = None,
        max_arrivals: Optional[int] = None,
    ):
        max_rate = rate_function.max_rate()
        if max_rate <= 0:
            raise ValueError(f"rate function peak must be positive, got {max_rate!r}")
        super().__init__(sim, frontend, workload, rng, priority_assigner)
        self.rate_function = rate_function
        self.max_arrivals = max_arrivals
        self._max_rate = max_rate

    def _launch(self) -> None:
        self.sim.process(self._arrivals(), name="modulated-source")

    def _arrivals(self):
        generated = 0
        max_rate = self._max_rate
        rate = self.rate_function.rate
        while self.max_arrivals is None or generated < self.max_arrivals:
            yield self.sim.timeout(self._rng.expovariate(max_rate))
            if self._rng.random() * max_rate <= rate(self.sim.now):
                self.frontend.submit(self._sample())
                generated += 1


class TraceReplay(ArrivalProcess):
    """Replays a recorded arrival-timestamp stream into the front-end.

    Arrival *times* come verbatim from the trace; the transaction each
    arrival carries is sampled from the workload (which may itself be a
    :func:`~repro.workloads.traces.trace_workload` wrapping the same
    trace's demand distribution).  With ``loop=True`` the stream wraps
    around, shifted by the trace's span, so long measurements never
    drain the simulation.
    """

    def __init__(
        self,
        sim: Simulator,
        frontend: ExternalScheduler,
        workload: WorkloadSpec,
        arrival_times: Sequence[float],
        rng: random.Random,
        priority_assigner: Optional[PriorityAssigner] = None,
        loop: bool = False,
    ):
        if not arrival_times:
            raise ValueError("trace replay needs at least one arrival time")
        if any(b < a for a, b in zip(arrival_times, arrival_times[1:])):
            raise ValueError("trace arrival times must be non-decreasing")
        if loop and arrival_times[-1] <= 0:
            # the wrap offset is the trace span; a zero span replays the
            # whole stream at the same instant forever (livelock)
            raise ValueError(
                "cannot loop a zero-span trace (last arrival offset "
                f"{arrival_times[-1]!r}): looping would replay the stream "
                "at the same instant forever"
            )
        super().__init__(sim, frontend, workload, rng, priority_assigner)
        self.arrival_times = list(arrival_times)
        self.loop = loop
        self.replayed = 0

    def _launch(self) -> None:
        self.sim.process(self._arrivals(), name="trace-replay")

    def _arrivals(self):
        offset = 0.0
        span = self.arrival_times[-1]
        while True:
            for arrival_time in self.arrival_times:
                delay = offset + arrival_time - self.sim.now
                if delay > 0:
                    yield self.sim.timeout(delay)
                self.frontend.submit(self._sample())
                self.replayed += 1
            if not self.loop:
                return
            offset += span


#: Backwards-compatible name: the seed code called this OpenSource.
OpenSource = OpenPoisson


# -- rate functions for time-varying load -------------------------------------


class RateFunction:
    """A deterministic arrival-rate profile λ(t) ≥ 0."""

    def rate(self, t: float) -> float:
        """The instantaneous arrival rate at simulation time ``t``."""
        raise NotImplementedError

    def max_rate(self) -> float:
        """An upper bound on λ(t) (the thinning envelope)."""
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class PiecewiseRate(RateFunction):
    """Piecewise-constant λ(t): steps at the given breakpoints.

    ``points`` is a tuple of ``(start_time, rate)`` pairs with
    ascending start times, the first at 0; each rate holds until the
    next breakpoint.  With ``period`` set the profile repeats
    cyclically (a synthetic diurnal pattern); otherwise the last rate
    holds forever.
    """

    points: Tuple[Tuple[float, float], ...]
    period: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("PiecewiseRate needs at least one (time, rate) point")
        if self.points[0][0] != 0.0:
            raise ValueError(f"first breakpoint must be at t=0, got {self.points[0]!r}")
        times = [t for t, _rate in self.points]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError(f"breakpoint times must ascend, got {times!r}")
        if any(rate < 0 for _t, rate in self.points):
            raise ValueError("rates must be non-negative")
        if self.period is not None and self.period <= times[-1]:
            raise ValueError(
                f"period {self.period!r} must exceed the last breakpoint {times[-1]!r}"
            )

    def rate(self, t: float) -> float:
        if self.period is not None:
            t = t % self.period
        current = self.points[0][1]
        for start, rate in self.points:
            if start > t:
                break
            current = rate
        return current

    def max_rate(self) -> float:
        return max(rate for _t, rate in self.points)


@dataclasses.dataclass(frozen=True)
class SinusoidRate(RateFunction):
    """Sinusoidal λ(t) = base + amplitude · sin(2πt/period + phase).

    Negative excursions are clipped to 0, so ``amplitude > base`` gives
    quiet periods with no arrivals at all.
    """

    base: float
    amplitude: float
    period: float
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValueError(f"base rate must be positive, got {self.base!r}")
        if self.amplitude < 0:
            raise ValueError(f"amplitude must be non-negative, got {self.amplitude!r}")
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period!r}")

    def rate(self, t: float) -> float:
        value = self.base + self.amplitude * math.sin(
            2.0 * math.pi * t / self.period + self.phase
        )
        return value if value > 0.0 else 0.0

    def max_rate(self) -> float:
        return self.base + self.amplitude


# -- arrival specs (config-side, fingerprinted) -------------------------------


class ArrivalSpec:
    """Marker base for the config-side description of an arrival regime.

    A spec is pure data (frozen dataclass) so it hashes into the
    :class:`~repro.core.system.SystemConfig` fingerprint and pickles
    into the parallel runner's worker processes; ``build`` instantiates
    the matching runtime process against a live simulation.
    """

    def build(
        self,
        sim: Simulator,
        frontend: ExternalScheduler,
        workload: WorkloadSpec,
        streams: RandomStreams,
        priority_assigner: Optional[PriorityAssigner] = None,
    ) -> ArrivalProcess:
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class ClosedArrivals(ArrivalSpec):
    """The paper's closed system: a fixed client population (§2.2)."""

    num_clients: int = 100
    think_time_s: float = 0.0

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {self.num_clients!r}")
        if self.think_time_s < 0:
            raise ValueError(
                f"think_time_s must be non-negative, got {self.think_time_s!r}"
            )

    def build(self, sim, frontend, workload, streams, priority_assigner=None):
        think = Exponential(self.think_time_s) if self.think_time_s > 0 else None
        return ClosedPopulation(
            sim,
            frontend,
            workload,
            num_clients=self.num_clients,
            think_time=think,
            rng=streams.stream("clients"),
            priority_assigner=priority_assigner,
        )


@dataclasses.dataclass(frozen=True)
class OpenArrivals(ArrivalSpec):
    """The paper's open system: Poisson arrivals at ``rate`` tx/s (§3.2)."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {self.rate!r}")

    def build(self, sim, frontend, workload, streams, priority_assigner=None):
        return OpenPoisson(
            sim,
            frontend,
            workload,
            interarrival=Exponential(1.0 / self.rate),
            rng=streams.stream("arrivals"),
            priority_assigner=priority_assigner,
        )


@dataclasses.dataclass(frozen=True)
class PartlyOpenArrivals(ArrivalSpec):
    """Partly-open sessions: Poisson session arrivals, geometric bursts.

    The offered transaction rate is
    ``session_rate * mean_session_length`` (each session contributes a
    geometric number of transactions), which :meth:`for_load` uses to
    hold load constant across session-length mixes.
    """

    session_rate: float
    mean_session_length: float = 5.0
    think_time_s: float = 0.0

    def __post_init__(self) -> None:
        if self.session_rate <= 0:
            raise ValueError(
                f"session_rate must be positive, got {self.session_rate!r}"
            )
        if self.mean_session_length < 1.0:
            raise ValueError(
                "mean_session_length must be >= 1, got "
                f"{self.mean_session_length!r}"
            )
        if self.think_time_s < 0:
            raise ValueError(
                f"think_time_s must be non-negative, got {self.think_time_s!r}"
            )

    @property
    def transaction_rate(self) -> float:
        """The offered transaction arrival rate (tx/s)."""
        return self.session_rate * self.mean_session_length

    @classmethod
    def for_load(
        cls,
        transaction_rate: float,
        mean_session_length: float,
        think_time_s: float = 0.0,
    ) -> "PartlyOpenArrivals":
        """A spec offering ``transaction_rate`` tx/s at the given mix."""
        return cls(
            session_rate=transaction_rate / mean_session_length,
            mean_session_length=mean_session_length,
            think_time_s=think_time_s,
        )

    def build(self, sim, frontend, workload, streams, priority_assigner=None):
        think = Exponential(self.think_time_s) if self.think_time_s > 0 else None
        return PartlyOpenSessions(
            sim,
            frontend,
            workload,
            session_rate=self.session_rate,
            mean_session_length=self.mean_session_length,
            think_time=think,
            rng=streams.stream("sessions"),
            priority_assigner=priority_assigner,
        )


@dataclasses.dataclass(frozen=True)
class ModulatedArrivals(ArrivalSpec):
    """Open arrivals whose Poisson rate follows a deterministic profile."""

    rate_function: RateFunction

    def __post_init__(self) -> None:
        if not isinstance(self.rate_function, RateFunction):
            raise ValueError(
                f"rate_function must be a RateFunction, got {self.rate_function!r}"
            )

    def build(self, sim, frontend, workload, streams, priority_assigner=None):
        return ModulatedOpenSource(
            sim,
            frontend,
            workload,
            rate_function=self.rate_function,
            rng=streams.stream("arrivals"),
            priority_assigner=priority_assigner,
        )


@dataclasses.dataclass(frozen=True)
class TraceArrivals(ArrivalSpec):
    """Replay a named :mod:`repro.workloads.traces` timestamp stream.

    The spec names the trace (plus the generation parameters the
    factory accepts) rather than embedding it; ``digest`` — the
    trace's content hash — is computed at construction and hashes into
    the scenario fingerprint, so a regenerated-but-identical trace
    keeps its cache entries while *any* change to the replayed stream
    invalidates them.  ``time_scale`` stretches (>1) or compresses
    (<1) the replayed inter-arrival times; ``loop`` wraps the stream
    so measurements longer than the trace never drain.
    """

    trace_name: str
    transactions: Optional[int] = None
    seed: Optional[int] = None
    time_scale: float = 1.0
    loop: bool = False
    #: Content hash of the replayed trace — derived, never passed.
    digest: str = ""

    def __post_init__(self) -> None:
        if self.time_scale <= 0:
            raise ValueError(
                f"time_scale must be positive, got {self.time_scale!r}"
            )
        if self.transactions is not None and self.transactions < 1:
            raise ValueError(
                f"transactions must be >= 1, got {self.transactions!r}"
            )
        trace = self._trace()
        if self.loop and trace.records[-1].arrival_time <= 0:
            # reject here (spec validation) rather than livelocking in
            # TraceReplay at run time; time_scale > 0 preserves the sign
            raise ValueError(
                f"cannot loop trace {self.trace_name!r}: its span is zero "
                "(single record or all-equal timestamps), so looping would "
                "replay the stream at the same instant forever"
            )
        object.__setattr__(self, "digest", trace.digest)

    def _trace(self):
        from repro.workloads.traces import get_trace

        return get_trace(self.trace_name, self.transactions, self.seed)

    def build(self, sim, frontend, workload, streams, priority_assigner=None):
        scale = self.time_scale
        times = [r.arrival_time * scale for r in self._trace().records]
        return TraceReplay(
            sim,
            frontend,
            workload,
            arrival_times=times,
            rng=streams.stream("arrivals"),
            priority_assigner=priority_assigner,
            loop=self.loop,
        )
