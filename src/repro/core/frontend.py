"""The external scheduling front-end (Figure 1).

The :class:`ExternalScheduler` sits between clients and the DBMS: at
most ``mpl`` transactions execute inside the engine at once; the rest
wait in an external queue ordered by a pluggable
:class:`~repro.core.policies.QueuePolicy`.  Setting ``mpl=None``
removes the limit entirely — that is the paper's "original system"
baseline against which throughput loss and response-time inflation are
measured.

The MPL can be changed on the fly (:meth:`set_mpl`), which is what the
feedback controller does between observation periods.
"""

from __future__ import annotations

from typing import Optional

from repro.dbms.engine import DatabaseEngine
from repro.dbms.transaction import Transaction, TxStatus
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Event, Simulator
from repro.core.policies import FifoPolicy, QueuePolicy


class ExternalScheduler:
    """MPL-limited dispatcher over a DBMS engine.

    Parameters
    ----------
    mpl:
        Maximum concurrent transactions inside the engine;
        ``None`` = unlimited (the no-external-scheduling baseline).
    policy:
        External queue ordering; defaults to FIFO.
    collector:
        Optional metrics sink notified of arrivals and completions.
    """

    def __init__(
        self,
        sim: Simulator,
        engine: DatabaseEngine,
        mpl: Optional[int] = None,
        policy: Optional[QueuePolicy] = None,
        collector: Optional[MetricsCollector] = None,
    ):
        if mpl is not None and mpl < 1:
            raise ValueError(f"mpl must be >= 1 or None, got {mpl!r}")
        self.sim = sim
        self.engine = engine
        self.policy = policy if policy is not None else FifoPolicy()
        self.collector = collector
        self._mpl = mpl
        self._in_service = 0
        self.dispatched = 0
        self.completed = 0
        #: Queued transactions the resilience layer pulled back out
        #: (deadline expiry in queue, load shedding) — keeps the
        #: routed == completed + in_service + queued + removed
        #: conservation law checkable under retries.
        self.removed = 0
        #: The installed :class:`~repro.core.resilience.ResilienceRuntime`
        #: (None outside resilient scenarios — the default path is
        #: untouched).
        self._resilience = None
        #: The installed :class:`~repro.core.distributed.TwoPhaseCoordinator`
        #: (None outside distributed scenarios).
        self._distributed = None
        self._on_complete_cb = self._on_complete  # one bound method, reused
        self._fire = sim._fire_now  # same-instant completion lane

    # -- configuration -----------------------------------------------------

    @property
    def mpl(self) -> Optional[int]:
        """The current multi-programming limit (None = unlimited)."""
        return self._mpl

    def set_mpl(self, mpl: Optional[int]) -> None:
        """Change the MPL; raising it dispatches queued work at once.

        Lowering it never evicts running transactions — the population
        inside the DBMS simply drains down to the new limit, exactly
        like the paper's controller.
        """
        if mpl is not None and mpl < 1:
            raise ValueError(f"mpl must be >= 1 or None, got {mpl!r}")
        self._mpl = mpl
        self._dispatch()

    # -- operation ------------------------------------------------------------

    def submit(self, tx: Transaction) -> Event:
        """Accept a transaction; the event fires at commit with ``tx``."""
        tx.arrival_time = self.sim.now
        tx.status = TxStatus.QUEUED
        done = self.sim.event()  # pooled
        tx._completion_event = done  # slot stashed for _on_complete
        if self.collector is not None:
            self.collector.on_arrival(tx)
        self.policy.push(tx)
        self._dispatch()
        if self._distributed is not None:
            self._distributed.on_submitted(tx, self)
        if self._resilience is not None:
            self._resilience.on_submitted(tx, self)
        return done

    def adopt(self, tx: Transaction) -> None:
        """Accept a transaction already admitted elsewhere.

        The failover hand-off: a transaction drained from a dead
        shard's queue keeps its original arrival time and completion
        event (its source is still waiting on that event), so adoption
        is queue-entry only — no arrival accounting, no new event.
        """
        self.policy.push(tx)
        self._dispatch()
        if self._distributed is not None:
            self._distributed.on_submitted(tx, self)
        if self._resilience is not None:
            self._resilience.on_submitted(tx, self)

    def drain_queue(self) -> list:
        """Remove and return every queued (undispatched) transaction.

        Transactions already inside the engine are untouched — a
        killed node is fail-stop at the admission boundary, so
        in-flight work drains to completion while queued work is
        re-homed by the caller.
        """
        drained = []
        policy = self.policy
        while len(policy) != 0:
            drained.append(policy.pop())
        return drained

    @property
    def queue_length(self) -> int:
        """Transactions waiting in the external queue."""
        return len(self.policy)

    @property
    def in_service(self) -> int:
        """Transactions currently inside the DBMS."""
        return self._in_service

    # -- internals ---------------------------------------------------------------

    def _dispatch(self) -> None:
        policy = self.policy
        # len() over bool(): QueuePolicy.__bool__ delegates to __len__,
        # so calling len directly saves a frame on this per-arrival,
        # per-completion path
        while len(policy) != 0 and (self._mpl is None or self._in_service < self._mpl):
            tx = policy.pop()
            self._in_service += 1
            self.dispatched += 1
            process = self.engine.execute(tx)
            # the engine process fires with the transaction as its
            # value, so one bound method serves every completion — no
            # per-dispatch closure
            process.add_callback(self._on_complete_cb)

    def _on_complete(self, event: Event) -> None:
        tx: Transaction = event.value
        self._in_service -= 1
        self.completed += 1
        # deadline-aborted attempts are not completions (the resilience
        # layer or 2PC coordinator decides their fate) and 2PC sibling
        # branches (negative tids) are never logical work — the
        # collector only ever sees committed logical transactions
        # (records/throughput stay goodput-clean)
        distributed = self._distributed
        if self.collector is not None and (
            (self._resilience is None and distributed is None)
            or tx.status is TxStatus.COMMITTED
        ) and (distributed is None or tx.tid >= 0):
            self.collector.on_completion(tx)
        done = tx._completion_event
        tx._completion_event = None
        self._dispatch()
        if done is not None:
            # inlined done.succeed(tx): known untriggered
            done._triggered = True
            done._value = tx
            self._fire(done)
