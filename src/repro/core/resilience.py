"""Resilience layer: deadlines, retry/backoff, shedding, circuit breaking.

The paper's external scheduler models an infinitely patient client: no
transaction ever times out, retries, or is refused.  Real front ends do
all three — and retrying on timeout is exactly the mechanism behind
metastable retry storms under overload.  This module makes that closed
loop scenario data:

* :class:`ResilienceSpec` — pure data, the ``resilience`` axis of a
  :class:`~repro.core.scenario.ScenarioSpec`.  Composes four
  deterministic mechanisms: per-class admission-to-completion
  **deadlines**, **retry** with exponential backoff and seeded jitter,
  bounded admission queues with **load shedding**
  (``reject_newest`` / ``reject_oldest`` / ``by_class``), and
  health-aware **circuit breaking** per shard (closed → open →
  half-open with probe admissions).
* :class:`ShardBreaker` — per-shard health: EWMAs of observed response
  time and timeout rate; trips open when unhealthy, recovers through
  half-open probes.  The :class:`~repro.sim.station.RouterStation`
  consults breakers at admission (fail-open: if no breaker admits, the
  originally chosen shard takes the transaction anyway).
* :class:`ResilienceRuntime` — the live gate installed between the
  arrival source and the router/frontend by
  :func:`~repro.core.scenario.run_scenario`.  It owns the *outer*
  completion event (fired at the transaction's final disposition, so
  closed-loop clients never hang on a shed or timed-out transaction)
  and accounts every admitted transaction into exactly one bucket:
  completed, timed out, shed, or still in flight.

Determinism: backoff jitter for transaction ``tid`` is drawn from
``random.Random(derive_seed(seed, "resilience", tid))`` — its own
stream, untouched by engine draws — and shedding victims are chosen by
admission sequence number, so resilient runs stay bit-identical for
any ``--jobs N`` and across kernel lanes.

Goodput vs. throughput: with a deadline armed, every commit happened
within its budget (late attempts are aborted), so *goodput* equals the
committed throughput while the retry storm's wasted work shows up as
the gap between *attempt throughput* (attempts resolving per second,
aborted ones included) and goodput.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Any, Dict, List, Optional, Tuple

from repro.dbms.transaction import Priority, Transaction, TxStatus
from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.random import derive_seed

#: Shedding policies a bounded admission queue understands.
SHED_POLICIES = ("reject_newest", "reject_oldest", "by_class")

#: Consecutive terminal non-commit dispositions (timeouts + sheds with
#: not a single commit in between) after which the runtime refuses to
#: keep simulating: a completion-counted measurement window can never
#: fill once steady-state goodput is zero, so the run would otherwise
#: simply never terminate (open arrivals keep the agenda alive forever).
GOODPUT_STARVATION_LIMIT = 2000


class GoodputStarved(SimulationError):
    """Steady-state goodput hit zero; the completion target is unreachable.

    Raised by :class:`ResilienceRuntime` once
    :data:`GOODPUT_STARVATION_LIMIT` consecutive admissions were
    disposed without a single commit — the signature of a saturated
    retry storm (e.g. zero backoff against a deadline shorter than the
    achievable response time).  Deterministic: the trigger is an event
    count on the simulated timeline, never wall-clock.
    """

#: Circuit-breaker states (the classic three-state machine).
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


def _is_number(value: Any) -> bool:
    # bool is an int subclass; a fault time of True is a bug, not 1.0
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


@dataclasses.dataclass(frozen=True)
class ResilienceSpec:
    """The resilience axis: what the front end does when work goes bad.

    All-default fields are inert mechanisms: no deadline means nothing
    times out, ``max_attempts=0`` means nothing retries, no queue cap
    means nothing is shed, ``breaker_enabled=False`` keeps routing
    health-blind.  A scenario only pays for what it turns on.

    ``deadline_s`` is the admission-to-completion budget per *attempt*;
    ``high_deadline_s`` overrides it for HIGH-priority transactions
    (per-class deadlines).  A timed-out or shed transaction re-enters
    the external queue up to ``max_attempts`` times after
    ``base_backoff_s * backoff_multiplier**attempt`` seconds, inflated
    by up to ``jitter_fraction`` of itself with seeded jitter.
    ``queue_cap`` bounds each shard's external queue; over-cap work is
    shed by ``shed_policy``.  The breaker knobs govern the per-shard
    health machine (see :class:`ShardBreaker`).
    """

    deadline_s: Optional[float] = None
    high_deadline_s: Optional[float] = None
    max_attempts: int = 0
    base_backoff_s: Optional[float] = None
    backoff_multiplier: float = 2.0
    jitter_fraction: float = 0.0
    queue_cap: Optional[int] = None
    shed_policy: str = "reject_newest"
    breaker_enabled: bool = False
    breaker_window: int = 20
    breaker_ewma_alpha: float = 0.2
    breaker_timeout_threshold: float = 0.5
    breaker_response_time_s: Optional[float] = None
    breaker_open_s: float = 1.0
    breaker_probes: int = 3

    def __post_init__(self) -> None:
        errors = resilience_field_errors(
            {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}
        )
        if errors:
            lines = "; ".join(
                f"{path.lstrip('/') or 'resilience'}: {message}"
                for path, message in errors
            )
            raise ValueError(f"bad resilience spec: {lines}")

    def deadline_for(self, priority: int) -> Optional[float]:
        """The admission-to-completion budget for one priority class."""
        if priority == Priority.HIGH and self.high_deadline_s is not None:
            return self.high_deadline_s
        return self.deadline_s


def resilience_field_errors(payload: Any) -> List[Tuple[str, str]]:
    """Every problem in a resilience payload, as ``(path, message)`` pairs.

    Paths are JSON-pointer fragments relative to the resilience object
    (``/max_attempts``); cross-field problems report at the root
    (``""``).  :meth:`ScenarioSpec.validate` prefixes ``/resilience``.
    Fields absent from the payload are checked at their defaults, so
    the same walk serves JSON payloads and constructed specs alike.
    """
    if not isinstance(payload, dict):
        return [("", f"must be an object, got {payload!r}")]
    errors: List[Tuple[str, str]] = []
    known = {f.name for f in dataclasses.fields(ResilienceSpec)}
    for key in sorted(set(payload) - known):
        errors.append((f"/{key}", "unknown field"))
    values = {
        f.name: payload.get(f.name, f.default)
        for f in dataclasses.fields(ResilienceSpec)
    }

    def number(name: str, *, optional: bool = False, minimum: float = 0.0,
               exclusive: bool = False, maximum: Optional[float] = None) -> None:
        value = values[name]
        if value is None:
            if not optional:
                errors.append((f"/{name}", "must be a number, got None"))
            return
        if not _is_number(value) or not math.isfinite(value):
            errors.append(
                (f"/{name}", f"must be a finite number, got {value!r}")
            )
            return
        if exclusive and value <= minimum:
            errors.append((f"/{name}", f"must be > {minimum:g}, got {value!r}"))
        elif not exclusive and value < minimum:
            errors.append((f"/{name}", f"must be >= {minimum:g}, got {value!r}"))
        elif maximum is not None and value > maximum:
            errors.append((f"/{name}", f"must be <= {maximum:g}, got {value!r}"))

    def integer(name: str, *, optional: bool = False, minimum: int = 0) -> None:
        value = values[name]
        if value is None:
            if not optional:
                errors.append((f"/{name}", "must be an integer, got None"))
            return
        if not _is_int(value):
            errors.append((f"/{name}", f"must be an integer, got {value!r}"))
        elif value < minimum:
            errors.append((f"/{name}", f"must be >= {minimum}, got {value!r}"))

    number("deadline_s", optional=True, exclusive=True)
    number("high_deadline_s", optional=True, exclusive=True)
    integer("max_attempts")
    number("base_backoff_s", optional=True)
    number("backoff_multiplier", minimum=1.0)
    number("jitter_fraction", maximum=1.0)
    integer("queue_cap", optional=True, minimum=1)
    if values["shed_policy"] not in SHED_POLICIES:
        errors.append((
            "/shed_policy",
            f"unknown shed policy {values['shed_policy']!r}; "
            f"available: {', '.join(SHED_POLICIES)}",
        ))
    if not isinstance(values["breaker_enabled"], bool):
        errors.append((
            "/breaker_enabled",
            f"must be a boolean, got {values['breaker_enabled']!r}",
        ))
    integer("breaker_window", minimum=1)
    number("breaker_ewma_alpha", exclusive=True, maximum=1.0)
    number("breaker_timeout_threshold", exclusive=True, maximum=1.0)
    number("breaker_response_time_s", optional=True, exclusive=True)
    number("breaker_open_s", exclusive=True)
    integer("breaker_probes", minimum=1)

    # cross-field: retries without an explicit backoff are almost always
    # a mistake (an accidental synchronized retry storm); naming 0.0
    # explicitly is how a scenario *asks* for the storm
    if (
        _is_int(values["max_attempts"])
        and values["max_attempts"] > 0
        and values["base_backoff_s"] is None
    ):
        errors.append((
            "",
            "max_attempts > 0 needs an explicit finite base_backoff_s "
            "(say 0.0 to retry immediately)",
        ))
    return errors


def encode_resilience_spec(
    spec: Optional[ResilienceSpec],
) -> Optional[Dict[str, Any]]:
    """JSON encoding of a resilience spec (None stays None)."""
    if spec is None:
        return None
    return {
        field.name: getattr(spec, field.name)
        for field in dataclasses.fields(spec)
    }


def decode_resilience_spec(payload: Any) -> Optional[ResilienceSpec]:
    """Strict decode: unknown keys and bad values raise ``ValueError``."""
    if payload is None:
        return None
    errors = resilience_field_errors(payload)
    if errors:
        lines = "; ".join(
            f"{path.lstrip('/') or 'resilience'}: {message}"
            for path, message in errors
        )
        raise ValueError(f"bad resilience payload: {lines}")
    return ResilienceSpec(**payload)


class ShardBreaker:
    """Per-shard health: the closed → open → half-open state machine.

    ``observe`` feeds one resolved attempt (its response time and
    whether it timed out) into EWMAs; once at least ``breaker_window``
    samples accumulated and the shard looks unhealthy — timeout rate
    over ``breaker_timeout_threshold``, or mean response time over
    ``breaker_response_time_s`` when set — the breaker trips open for
    ``breaker_open_s`` of simulated time.  An open breaker rejects
    admissions until the window elapses, then admits up to
    ``breaker_probes`` concurrent probes; a successful probe closes the
    breaker (with a fresh sample window), a timed-out one re-opens it.
    """

    def __init__(self, spec: ResilienceSpec):
        self.spec = spec
        self.state = BREAKER_CLOSED
        self.ewma_response_time = 0.0
        self.ewma_timeout_rate = 0.0
        self.samples = 0
        self.transitions: List[Dict[str, Any]] = []
        self._open_until = 0.0
        self._probes_in_flight = 0

    def _transition(self, now: float, state: str) -> None:
        self.transitions.append({"t": now, "from": self.state, "to": state})
        self.state = state

    def admit(self, now: float) -> bool:
        """Whether routing may place a new transaction on this shard."""
        if self.state == BREAKER_OPEN:
            if now < self._open_until:
                return False
            self._transition(now, BREAKER_HALF_OPEN)
            self._probes_in_flight = 0
        if self.state == BREAKER_HALF_OPEN:
            if self._probes_in_flight >= self.spec.breaker_probes:
                return False
            self._probes_in_flight += 1
        return True

    def observe(self, now: float, response_time: float, timed_out: bool) -> None:
        """Feed one resolved attempt on this shard into the health EWMAs."""
        alpha = self.spec.breaker_ewma_alpha
        self.samples += 1
        self.ewma_response_time += alpha * (response_time - self.ewma_response_time)
        self.ewma_timeout_rate += alpha * (
            (1.0 if timed_out else 0.0) - self.ewma_timeout_rate
        )
        if self.state == BREAKER_HALF_OPEN:
            if self._probes_in_flight > 0:
                self._probes_in_flight -= 1
            if timed_out:
                self._trip(now)
            else:
                # recovered: close with a fresh sample window so the
                # stale unhealthy EWMA cannot re-trip instantly
                self._transition(now, BREAKER_CLOSED)
                self.samples = 0
            return
        if (
            self.state == BREAKER_CLOSED
            and self.samples >= self.spec.breaker_window
            and self._unhealthy()
        ):
            self._trip(now)

    def _unhealthy(self) -> bool:
        if self.ewma_timeout_rate > self.spec.breaker_timeout_threshold:
            return True
        limit = self.spec.breaker_response_time_s
        return limit is not None and self.ewma_response_time > limit

    def _trip(self, now: float) -> None:
        self._transition(now, BREAKER_OPEN)
        self._open_until = now + self.spec.breaker_open_s

    def jsonable(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "ewma_response_time": self.ewma_response_time,
            "ewma_timeout_rate": self.ewma_timeout_rate,
            "samples": self.samples,
            "transitions": list(self.transitions),
        }


class _TxState:
    """One admitted transaction's resilience bookkeeping."""

    __slots__ = (
        "tx", "outer", "attempts", "generation", "admitted_at",
        "frontend", "rng", "done", "seq", "disposition",
    )

    def __init__(self, tx: Transaction, outer: Optional[Event]):
        self.tx = tx
        self.outer = outer
        self.attempts = 0
        self.generation = 0
        self.admitted_at = 0.0
        self.frontend = None  # the owning shard's ExternalScheduler
        self.rng: Optional[random.Random] = None
        self.done = False
        self.seq = 0
        self.disposition: Optional[str] = None


class ResilienceRuntime:
    """The live gate: deadlines, retries, shedding, breaker feeding.

    Installed by :func:`~repro.core.scenario.run_scenario` between the
    arrival source and the router (clusters) or the external scheduler
    (single engine).  ``submit`` mirrors the frontend surface the
    arrival layer expects; the returned event fires at the
    transaction's *final* disposition — commit, terminal timeout, or
    terminal shed — never mid-retry.
    """

    def __init__(self, spec: ResilienceSpec, seed: int):
        self.spec = spec
        self.seed = seed
        self.sim: Optional[Simulator] = None
        self.inner = None  # router or single-engine frontend
        self.breakers: Optional[List[ShardBreaker]] = None
        self._is_cluster = False
        self._fire = None
        self._shard_of: Dict[int, int] = {}
        self._state: Dict[int, _TxState] = {}
        self._seq = 0
        # dispositions (exactly-once: every admitted tx lands in one)
        self.admitted = 0
        self.completed = 0
        self.timed_out = 0
        self.shed = 0
        #: Terminal non-commit dispositions since the last commit (the
        #: goodput-starvation trigger; see :class:`GoodputStarved`).
        self.starved_streak = 0
        # attempt-level counters (a tx can time out on every attempt)
        self.attempts_resolved = 0
        self.timeout_events = 0
        self.shed_events = 0
        self.retries = 0
        self.per_class: Dict[str, Dict[int, int]] = {
            "admitted": {}, "completed": {}, "timed_out": {},
            "shed": {}, "retries": {},
        }
        #: (sim_time, kind, priority) stream for the timeline buckets;
        #: kinds: "attempt", "timeout", "shed", "retry".
        self.events: List[Tuple[float, str, int]] = []

    # -- installation --------------------------------------------------------

    def install(self, system) -> "ResilienceRuntime":
        """Wire the gate into a built system (before anything runs)."""
        from repro.core.cluster import ClusteredSystem

        self.sim = system.sim
        self._fire = system.sim._fire_now
        if isinstance(system, ClusteredSystem):
            self._is_cluster = True
            self.inner = system.router
            frontends = [shard.frontend for shard in system.shards]
            if self.spec.breaker_enabled:
                self.breakers = [ShardBreaker(self.spec) for _ in frontends]
                system.router.breakers = self.breakers
        else:
            self.inner = system.frontend
            frontends = [system.frontend]
        for index, frontend in enumerate(frontends):
            frontend._resilience = self
            self._shard_of[id(frontend)] = index
        # the arrival source submits through the gate from now on
        system.source.frontend = self
        system.resilience = self
        return self

    # -- frontend surface (what the arrival layer calls) ---------------------

    def submit(self, tx: Transaction) -> Event:
        """Admit ``tx``; the event fires at its final disposition."""
        st = _TxState(tx, self.sim.event())
        self._state[tx.tid] = st
        self.admitted += 1
        self._bump("admitted", tx.priority)
        self._admit(st)
        return st.outer if st.outer is not None else self._spent_event(tx)

    def _spent_event(self, tx: Transaction) -> Event:
        # the tx was disposed synchronously during admission (e.g. shed
        # with no retries left); hand back an already-fired event so a
        # closed-loop client proceeds without blocking
        done = self.sim.event()
        done._triggered = True
        done._value = tx
        self._fire(done)
        return done

    # -- admission / retry ---------------------------------------------------

    def _admit(self, st: _TxState) -> None:
        st.attempts += 1
        st.generation += 1
        generation = st.generation
        self._seq += 1
        st.seq = self._seq
        st.admitted_at = self.sim.now
        tx = st.tx
        if st.attempts > 1 and self._is_cluster:
            # the router's no-double-routing guard tracks tids; a retry
            # is a deliberate re-route
            self.inner.release(tx.tid)
        attempt = self.inner.submit(tx)
        if st.done or st.generation != generation:
            return  # shed synchronously during admission
        attempt.add_callback(
            lambda event, st=st, generation=generation:
                self._on_attempt_complete(st, generation)
        )
        deadline = self.spec.deadline_for(tx.priority)
        if deadline is not None:
            timer = self.sim.timeout(deadline)
            timer.add_callback(
                lambda _event, st=st, generation=generation:
                    self._on_deadline(st, generation)
            )

    def on_submitted(self, tx: Transaction, frontend) -> None:
        """Frontend hook: ``tx`` just entered ``frontend`` (submit/adopt).

        Notes the owning shard (retries and deadline aborts must reach
        the right queue/engine, and re-homing after a kill moves it)
        and enforces the admission-queue cap.
        """
        st = self._state.get(tx.tid)
        if st is None or st.done:
            return
        st.frontend = frontend
        self._enforce_cap(frontend)

    # -- resolution ----------------------------------------------------------

    def _on_attempt_complete(self, st: _TxState, generation: int) -> None:
        if st.done or st.generation != generation:
            return
        tx = st.tx
        now = self.sim.now
        self.attempts_resolved += 1
        self.events.append((now, "attempt", tx.priority))
        timed_out = tx.status is not TxStatus.COMMITTED
        self._observe(st, now - st.admitted_at, timed_out)
        if timed_out:
            self._register_timeout(st, now)
            self._fail(st)
            return
        st.generation += 1
        st.done = True
        st.disposition = "completed"
        self.completed += 1
        self.starved_streak = 0
        self._bump("completed", tx.priority)
        self._fire_outer(st)

    def _on_deadline(self, st: _TxState, generation: int) -> None:
        if st.done or st.generation != generation:
            return
        tx = st.tx
        frontend = st.frontend
        if frontend is not None and frontend.policy.remove(tx):
            # expired while still queued: never reached the engine
            frontend.removed += 1
            distributed = getattr(frontend, "_distributed", None)
            if distributed is not None:
                distributed.on_external_removed(tx)
            now = self.sim.now
            self._observe(st, now - st.admitted_at, True)
            self._register_timeout(st, now)
            self._fail(st)
            return
        # in flight: abort through the engine; the completion callback
        # resolves the attempt (a process that finished this same
        # instant resolves as a commit instead — the abort is a no-op)
        if frontend is not None:
            frontend.engine.abort(tx)

    def _register_timeout(self, st: _TxState, now: float) -> None:
        self.timeout_events += 1
        self.events.append((now, "timeout", st.tx.priority))

    def _fail(self, st: _TxState) -> None:
        """A failed attempt (timeout or shed): retry or dispose."""
        st.generation += 1  # invalidate this attempt's pending timers
        tx = st.tx
        if st.attempts <= self.spec.max_attempts:
            self.retries += 1
            self._bump("retries", tx.priority)
            self.events.append((self.sim.now, "retry", tx.priority))
            delay = self.spec.base_backoff_s * (
                self.spec.backoff_multiplier ** (st.attempts - 1)
            )
            if self.spec.jitter_fraction > 0.0:
                if st.rng is None:
                    st.rng = random.Random(
                        derive_seed(self.seed, "resilience", tx.tid)
                    )
                delay *= 1.0 + self.spec.jitter_fraction * st.rng.random()
            generation = st.generation
            timer = self.sim.timeout(delay)
            timer.add_callback(
                lambda _event, st=st, generation=generation:
                    self._retry(st, generation)
            )
            return
        st.done = True
        kind = "shed" if st.disposition == "shedding" else "timed_out"
        st.disposition = kind
        if kind == "shed":
            self.shed += 1
            self._bump("shed", tx.priority)
        else:
            self.timed_out += 1
            self._bump("timed_out", tx.priority)
        self._fire_outer(st)
        self.starved_streak += 1
        if self.starved_streak >= GOODPUT_STARVATION_LIMIT:
            raise GoodputStarved(
                f"goodput starved at t={self.sim.now:.3f}: "
                f"{self.starved_streak} consecutive admissions disposed "
                f"without a commit (admitted={self.admitted} "
                f"completed={self.completed} timed_out={self.timed_out} "
                f"shed={self.shed}); a completion-counted measurement "
                "window cannot fill — raise the deadline, add backoff, "
                "or shed earlier"
            )

    def _retry(self, st: _TxState, generation: int) -> None:
        if st.done or st.generation != generation:
            return
        st.disposition = None
        self._admit(st)

    # -- shedding ------------------------------------------------------------

    def _enforce_cap(self, frontend) -> None:
        cap = self.spec.queue_cap
        if cap is None:
            return
        while frontend.queue_length > cap:
            victim = self._pick_victim(frontend)
            if victim is None or not frontend.policy.remove(victim):
                return
            frontend.removed += 1
            distributed = getattr(frontend, "_distributed", None)
            if distributed is not None:
                distributed.on_external_removed(victim)
            st = self._state[victim.tid]
            now = self.sim.now
            self.shed_events += 1
            self.events.append((now, "shed", victim.priority))
            st.disposition = "shedding"  # tells _fail which bucket
            self._fail(st)

    def _pick_victim(self, frontend) -> Optional[Transaction]:
        # 2PC sibling branches are not admissions and carry no _TxState
        # — the shed loop only ever evicts tracked logical work
        queued = [tx for tx in frontend.policy if tx.tid in self._state]
        if not queued:
            return None

        def seq_of(tx: Transaction) -> int:
            return self._state[tx.tid].seq

        if self.spec.shed_policy == "reject_oldest":
            return min(queued, key=seq_of)
        if self.spec.shed_policy == "by_class":
            # lowest class sheds first; the newest of that class goes
            return max(queued, key=lambda tx: (-tx.priority, seq_of(tx)))
        return max(queued, key=seq_of)  # reject_newest

    # -- breaker feeding -----------------------------------------------------

    def _observe(self, st: _TxState, response_time: float, timed_out: bool) -> None:
        if self.breakers is None or st.frontend is None:
            return
        index = self._shard_of.get(id(st.frontend))
        if index is not None:
            self.breakers[index].observe(self.sim.now, response_time, timed_out)

    # -- plumbing ------------------------------------------------------------

    def _bump(self, counter: str, priority: int) -> None:
        per_class = self.per_class[counter]
        per_class[priority] = per_class.get(priority, 0) + 1

    def _fire_outer(self, st: _TxState) -> None:
        outer, st.outer = st.outer, None
        if outer is None:
            return
        # inlined outer.succeed(tx): known untriggered
        outer._triggered = True
        outer._value = st.tx
        self._fire(outer)

    # -- accounting views ----------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Admitted transactions not yet finally disposed."""
        return sum(1 for st in self._state.values() if not st.done)

    def dispositions(self) -> Dict[int, str]:
        """tid → final bucket (``in_flight`` while undecided)."""
        return {
            tid: (st.disposition if st.done else "in_flight")
            for tid, st in self._state.items()
        }

    def report_jsonable(self) -> Dict[str, Any]:
        """The outcome-JSON resilience block (goodput vs. throughput)."""
        def classes(counter: str) -> Dict[str, int]:
            return {
                str(int(priority)): count
                for priority, count in sorted(self.per_class[counter].items())
            }

        return {
            "admitted": self.admitted,
            "completed": self.completed,
            "timed_out": self.timed_out,
            "shed": self.shed,
            "in_flight": self.in_flight,
            "attempts_resolved": self.attempts_resolved,
            "timeout_events": self.timeout_events,
            "shed_events": self.shed_events,
            "retries": self.retries,
            "per_class": {
                name: classes(name) for name in sorted(self.per_class)
            },
            "breakers": (
                [breaker.jsonable() for breaker in self.breakers]
                if self.breakers is not None else None
            ),
        }
