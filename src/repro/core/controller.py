"""The feedback controller that finds the lowest feasible MPL (§4.3).

The controller alternates *observation* and *reaction* phases against a
live system:

* An observation phase collects completed transactions until the
  window both (a) contains enough samples for stable estimates (the
  paper sizes this via confidence intervals, landing at ≈ 100
  transactions) and (b) exhibits representative load — windows with
  unusually few arrivals are extended rather than acted on.
* The reaction phase compares windowed throughput and mean response
  time against the no-MPL baseline: if either penalty exceeds the
  DBA's threshold the MPL steps up; if the MPL is feasible the
  controller probes one step down, and it declares convergence once
  it sits at a feasible MPL whose immediate predecessor is known
  infeasible.

Adjustments are deliberately small and constant (±1): the queueing
models give the loop a close-to-optimal starting value, so it
converges in a handful of iterations anyway — the paper reports < 10,
and ``benchmarks/test_bench_controller.py`` measures ours.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.core.system import SimulatedSystem
from repro.metrics import stats


@dataclasses.dataclass(frozen=True)
class Thresholds:
    """The DBA's tolerances (e.g. "not more than 5% throughput loss")."""

    max_throughput_loss: float = 0.05
    max_response_time_increase: float = 0.30

    def __post_init__(self) -> None:
        if not 0.0 <= self.max_throughput_loss < 1.0:
            raise ValueError(
                f"max_throughput_loss must be in [0, 1), got {self.max_throughput_loss!r}"
            )
        if self.max_response_time_increase < 0.0:
            raise ValueError(
                "max_response_time_increase must be non-negative, got "
                f"{self.max_response_time_increase!r}"
            )


@dataclasses.dataclass(frozen=True)
class Observation:
    """One observation window's measurements."""

    mpl: int
    completed: int
    throughput: float
    mean_response_time: float
    throughput_loss: float
    response_time_increase: float
    feasible: bool


@dataclasses.dataclass(frozen=True)
class ControllerReport:
    """Outcome of a tuning session."""

    final_mpl: int
    iterations: int
    converged: bool
    trajectory: List[Observation]


@dataclasses.dataclass(frozen=True)
class Baseline:
    """No-MPL reference performance the penalties are measured against."""

    throughput: float
    mean_response_time: float

    def __post_init__(self) -> None:
        if self.throughput <= 0:
            raise ValueError(f"baseline throughput must be positive, got {self.throughput!r}")


class MplController:
    """Feedback loop adjusting a live system's MPL.

    Parameters
    ----------
    system:
        The running :class:`~repro.core.system.SimulatedSystem`.
    baseline:
        No-MPL reference throughput / response time.
    thresholds:
        Acceptable penalties.
    initial_mpl:
        Starting MPL — ideally the queueing models' prediction (see
        :class:`~repro.core.tuner.MplTuner`); a poor start still
        converges, just more slowly.
    window:
        Minimum completed transactions per observation (paper: ≈ 100).
    step:
        Constant reaction-step size.
    """

    #: Window relative-CI above which the window keeps being extended.
    MAX_RELATIVE_CI = 0.3
    #: Upper bound on window extensions (heavy-tailed workloads need
    #: several hundred samples for a stable mean; see §4.3's
    #: confidence-interval sizing).
    MAX_EXTENSIONS = 8
    #: Windows whose arrival count falls below this fraction of the
    #: running mean are considered unrepresentative and extended.
    MIN_LOAD_FRACTION = 0.5

    def __init__(
        self,
        system: SimulatedSystem,
        baseline: Baseline,
        thresholds: Thresholds,
        initial_mpl: int,
        window: int = 100,
        step: int = 1,
        max_iterations: int = 40,
        adaptive: bool = True,
        max_mpl: int = 512,
        check_response_time: bool = True,
    ):
        if initial_mpl < 1:
            raise ValueError(f"initial_mpl must be >= 1, got {initial_mpl!r}")
        if max_mpl < initial_mpl:
            raise ValueError(
                f"max_mpl {max_mpl!r} must be >= initial_mpl {initial_mpl!r}"
            )
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window!r}")
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step!r}")
        self.system = system
        self.baseline = baseline
        self.thresholds = thresholds
        self.initial_mpl = initial_mpl
        self.window = window
        self.step = step
        self.max_iterations = max_iterations
        self.adaptive = adaptive
        self.max_mpl = max_mpl
        # In a closed system the mean response time is tied to
        # throughput by Little's law (N = X * R with N fixed), so the
        # throughput check subsumes the RT check; the tuner disables
        # the direct RT comparison there because finite-run RT
        # estimates of the MPL'd and unlimited systems carry different
        # transient biases.
        self.check_response_time = check_response_time
        self._feasibility: Dict[int, bool] = {}
        self._window_arrivals: List[int] = []

    # -- observation -----------------------------------------------------------

    def _observe(self, mpl: int) -> Observation:
        """Collect one representative, statistically stable window."""
        records = self.system.run_transactions(self.window)
        response_times = [r.response_time for r in records]
        # Extend while the estimate is too noisy (the paper's
        # confidence-interval sizing) or the window's load was
        # unrepresentative.
        extensions = 0
        while (
            extensions < self.MAX_EXTENSIONS
            and self._needs_extension(records, response_times)
        ):
            extensions += 1
            records = records + self.system.run_transactions(self.window)
            response_times = [r.response_time for r in records]
        elapsed = records[-1].completion_time - records[0].completion_time
        throughput = (len(records) - 1) / elapsed if elapsed > 0 else 0.0
        mean_rt = stats.mean(response_times)
        loss = max(0.0, 1.0 - throughput / self.baseline.throughput)
        rt_ref = self.baseline.mean_response_time
        increase = max(0.0, mean_rt / rt_ref - 1.0) if rt_ref > 0 else 0.0
        # Feasibility is a statistical comparison: only declare a
        # penalty too large when it exceeds the threshold by more than
        # the window's own estimation uncertainty, otherwise noisy
        # windows on heavy-tailed workloads send the loop on runaway
        # up-walks.
        gaps = [
            b.completion_time - a.completion_time
            for a, b in zip(records, records[1:])
        ]
        throughput_noise = min(0.25, stats.relative_half_width(gaps))
        rt_noise = min(0.5, stats.relative_half_width(response_times))
        feasible = loss <= self.thresholds.max_throughput_loss + throughput_noise
        if self.check_response_time:
            feasible = feasible and (
                increase
                <= self.thresholds.max_response_time_increase + rt_noise
            )
        return Observation(
            mpl=mpl,
            completed=len(records),
            throughput=throughput,
            mean_response_time=mean_rt,
            throughput_loss=loss,
            response_time_increase=increase,
            feasible=feasible,
        )

    #: Relative CI required of the throughput estimate (via the mean
    #: inter-completion gap); throughput is the feasibility-deciding
    #: metric, so it gets the tighter bound.
    MAX_THROUGHPUT_CI = 0.08

    def _needs_extension(self, records, response_times) -> bool:
        if stats.relative_half_width(response_times) > self.MAX_RELATIVE_CI:
            return True
        gaps = [
            b.completion_time - a.completion_time
            for a, b in zip(records, records[1:])
        ]
        if stats.relative_half_width(gaps) > self.MAX_THROUGHPUT_CI:
            return True
        arrivals = self.system.collector.arrivals
        self._window_arrivals.append(arrivals)
        if len(self._window_arrivals) >= 3:
            window_growth = arrivals - self._window_arrivals[-2]
            past = [
                b - a
                for a, b in zip(self._window_arrivals, self._window_arrivals[1:])
            ]
            typical = stats.mean(past)
            if typical > 0 and window_growth < self.MIN_LOAD_FRACTION * typical:
                return True
        return False

    # -- the control loop -------------------------------------------------------

    def tune(self) -> ControllerReport:
        """Run observation/reaction iterations until convergence.

        Convergence: the controller sits at a feasible MPL whose
        immediate predecessor is known infeasible (the lowest feasible
        value), or the iteration budget runs out.

        In ``adaptive`` mode (the default) the downward probe doubles
        its step while observations stay feasible and then refines the
        bracket by bisection — a small extension of the paper's
        constant-step loop that keeps convergence under ~10 iterations
        even when the worst-case queueing model starts far above the
        real optimum.  ``adaptive=False`` reproduces the paper's
        constant ±step loop exactly (the ablation benchmark compares
        the two).
        """
        mpl = self.initial_mpl
        trajectory: List[Observation] = []
        lowest_feasible: Optional[int] = None
        highest_infeasible = 0
        step = self.step
        iteration = 0
        while iteration < self.max_iterations:
            iteration += 1
            self.system.frontend.set_mpl(mpl)
            observation = self._observe(mpl)
            trajectory.append(observation)
            self._feasibility[mpl] = observation.feasible
            if observation.feasible:
                if lowest_feasible is None or mpl < lowest_feasible:
                    lowest_feasible = mpl
                if mpl - 1 <= highest_infeasible:
                    return ControllerReport(
                        final_mpl=mpl, iterations=iteration,
                        converged=True, trajectory=trajectory,
                    )
                if self.adaptive:
                    next_mpl = max(highest_infeasible + 1, mpl - step)
                    step *= 2
                else:
                    next_mpl = mpl - self.step
                mpl = max(1, next_mpl)
            else:
                if mpl > highest_infeasible:
                    highest_infeasible = mpl
                if lowest_feasible is not None and lowest_feasible - 1 <= mpl:
                    self.system.frontend.set_mpl(lowest_feasible)
                    return ControllerReport(
                        final_mpl=lowest_feasible, iterations=iteration,
                        converged=True, trajectory=trajectory,
                    )
                if self.adaptive and lowest_feasible is not None:
                    # bisect the (infeasible, feasible) bracket
                    mpl = (mpl + lowest_feasible) // 2
                    step = self.step
                else:
                    if mpl >= self.max_mpl:
                        # even the cap is infeasible: accept it (the
                        # thresholds are unattainable on this system)
                        self.system.frontend.set_mpl(self.max_mpl)
                        return ControllerReport(
                            final_mpl=self.max_mpl, iterations=iteration,
                            converged=False, trajectory=trajectory,
                        )
                    if self.adaptive:
                        next_mpl = mpl + step
                        step *= 2
                    else:
                        next_mpl = mpl + self.step
                    mpl = min(next_mpl, self.max_mpl)
        final = (
            lowest_feasible
            if lowest_feasible is not None
            else self._lowest_known_feasible(mpl)
        )
        self.system.frontend.set_mpl(final)
        return ControllerReport(
            final_mpl=final,
            iterations=iteration,
            converged=False,
            trajectory=trajectory,
        )

    def _lowest_known_feasible(self, fallback: int) -> int:
        feasible = [m for m, ok in self._feasibility.items() if ok]
        return min(feasible) if feasible else fallback


# -- per-class SLO control -----------------------------------------------------


@dataclasses.dataclass(frozen=True)
class SloObservation:
    """One observation window of the per-class SLO loop."""

    mpl: int
    completed: int
    high_count: int
    high_p95: float
    low_throughput: float
    feasible: bool


@dataclasses.dataclass(frozen=True)
class SloReport:
    """Outcome of a per-class SLO tuning session."""

    final_mpl: int
    iterations: int
    converged: bool
    trajectory: List[SloObservation]


class PerClassSloController:
    """Hold HIGH's p95 under a target while maximizing LOW throughput.

    The dual of :class:`MplController`: there the MPL steps *up* until
    throughput/response penalties vanish (lowest feasible MPL); here
    the DBA's constraint is a latency SLO on the HIGH class, and the
    MPL is the lever — a lower MPL means fewer transactions competing
    inside the DBMS, so prioritized HIGH work finishes faster, at the
    cost of LOW throughput.  The loop therefore searches for the
    *highest* MPL whose windowed HIGH p95 still meets the target:
    feasible windows probe upward (reclaiming LOW throughput),
    infeasible ones step down, and — like the paper's loop — the
    bracket is refined geometrically and declared converged once the
    controller sits at a feasible MPL whose immediate successor is
    known infeasible.

    Requires a running system whose workload carries HIGH-priority
    transactions (e.g. ``high_priority_fraction > 0`` with the
    ``priority`` external queue policy).
    """

    #: Windows are extended until they contain at least this many
    #: HIGH-class completions — a p95 over fewer samples is noise.
    MIN_HIGH_SAMPLES = 20
    #: Upper bound on window extensions per observation.
    MAX_EXTENSIONS = 6

    def __init__(
        self,
        system: SimulatedSystem,
        target_p95_s: float,
        initial_mpl: int,
        window: int = 150,
        step: int = 1,
        max_mpl: int = 128,
        max_iterations: int = 30,
    ):
        if target_p95_s <= 0:
            raise ValueError(f"target_p95_s must be positive, got {target_p95_s!r}")
        if initial_mpl < 1:
            raise ValueError(f"initial_mpl must be >= 1, got {initial_mpl!r}")
        if max_mpl < initial_mpl:
            raise ValueError(
                f"max_mpl {max_mpl!r} must be >= initial_mpl {initial_mpl!r}"
            )
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window!r}")
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step!r}")
        self.system = system
        self.target_p95_s = target_p95_s
        self.initial_mpl = initial_mpl
        self.window = window
        self.step = step
        self.max_mpl = max_mpl
        self.max_iterations = max_iterations

    def _observe(self, mpl: int) -> SloObservation:
        from repro.dbms.transaction import Priority

        records = self.system.run_transactions(self.window)
        extensions = 0
        while (
            extensions < self.MAX_EXTENSIONS
            and sum(1 for r in records if r.priority == Priority.HIGH)
            < self.MIN_HIGH_SAMPLES
        ):
            extensions += 1
            records = records + self.system.run_transactions(self.window)
        high = [r.response_time for r in records if r.priority == Priority.HIGH]
        low_count = len(records) - len(high)
        elapsed = records[-1].completion_time - records[0].completion_time
        low_throughput = low_count / elapsed if elapsed > 0 else 0.0
        p95 = stats.percentile(high, 95.0)
        return SloObservation(
            mpl=mpl,
            completed=len(records),
            high_count=len(high),
            high_p95=p95,
            low_throughput=low_throughput,
            feasible=bool(high) and p95 <= self.target_p95_s,
        )

    def tune(self) -> SloReport:
        """Run observation/reaction iterations until convergence.

        Convergence: the controller sits at a feasible MPL whose
        immediate successor is known infeasible (the highest feasible
        value), or the feasible region reaches ``max_mpl``, or the
        iteration budget runs out.
        """
        mpl = self.initial_mpl
        trajectory: List[SloObservation] = []
        highest_feasible: Optional[int] = None
        lowest_infeasible: Optional[int] = None
        step = self.step
        iteration = 0
        while iteration < self.max_iterations:
            iteration += 1
            self.system.frontend.set_mpl(mpl)
            observation = self._observe(mpl)
            trajectory.append(observation)
            if observation.feasible:
                if highest_feasible is None or mpl > highest_feasible:
                    highest_feasible = mpl
                if mpl >= self.max_mpl or (
                    lowest_infeasible is not None and mpl + 1 >= lowest_infeasible
                ):
                    return SloReport(
                        final_mpl=mpl, iterations=iteration,
                        converged=True, trajectory=trajectory,
                    )
                if lowest_infeasible is None:
                    next_mpl = min(self.max_mpl, mpl + step)
                    step *= 2
                else:
                    next_mpl = (mpl + lowest_infeasible) // 2
                    step = self.step
                mpl = next_mpl
            else:
                if lowest_infeasible is None or mpl < lowest_infeasible:
                    lowest_infeasible = mpl
                if highest_feasible is not None and mpl - 1 <= highest_feasible:
                    self.system.frontend.set_mpl(highest_feasible)
                    return SloReport(
                        final_mpl=highest_feasible, iterations=iteration,
                        converged=True, trajectory=trajectory,
                    )
                if mpl <= 1:
                    # even MPL 1 misses the SLO: the target is
                    # unattainable on this system — hold the floor
                    return SloReport(
                        final_mpl=1, iterations=iteration,
                        converged=False, trajectory=trajectory,
                    )
                if highest_feasible is None:
                    next_mpl = max(1, mpl - step)
                    step *= 2
                else:
                    next_mpl = (mpl + highest_feasible) // 2
                    step = self.step
                mpl = next_mpl
        final = highest_feasible if highest_feasible is not None else 1
        self.system.frontend.set_mpl(final)
        return SloReport(
            final_mpl=final,
            iterations=iteration,
            converged=False,
            trajectory=trajectory,
        )


# -- elastic capacity control (clusters) --------------------------------------


@dataclasses.dataclass(frozen=True)
class ElasticAction:
    """One decision the elastic controller took at a tick."""

    t: float
    kind: str  # "resplit" | "park" | "activate"
    mpls: tuple
    detail: str = ""


@dataclasses.dataclass
class ElasticReport:
    """The elastic controller's decision log for one run.

    Mutable on purpose: the controller appends actions while the
    measurement window runs, and the caller reads the report after.
    """

    interval_s: float
    global_mpl: int
    actions: List[ElasticAction] = dataclasses.field(default_factory=list)
    final_mpls: tuple = ()

    @property
    def resplits(self) -> int:
        return sum(1 for action in self.actions if action.kind == "resplit")


class ElasticCapacityController:
    """Re-splits a cluster's global MPL toward hot shards, on the clock.

    A simulated-time process ticks every ``interval_s``: it measures
    each routable shard's load (admitted + queued), re-splits the
    global MPL proportionally to load via
    :meth:`~repro.core.cluster.ShardedExternalScheduler.set_global_mpl`
    (shards that are dead or parked get the floor of 1), and manages
    the rotation — parking the least-loaded shard when the cluster's
    admitted fraction falls below ``low_watermark`` and re-activating a
    parked shard when it climbs above ``high_watermark``.  Every input
    is deterministic simulation state, so elastic runs stay
    bit-identical for any ``--jobs N``.

    The loop ends after ``max_ticks`` so a run whose workload drains
    early still terminates (the kernel stops on its completion target
    regardless).
    """

    #: Load-proportional weight floor for dead/parked shards: small
    #: enough that the largest-remainder split leaves them the minimum
    #: of 1, without dividing by zero.
    PARKED_WEIGHT = 1e-9

    def __init__(
        self,
        system,
        global_mpl: int,
        interval_s: float = 2.0,
        high_watermark: float = 0.85,
        low_watermark: float = 0.25,
        min_shards: int = 1,
        max_ticks: int = 1000,
    ):
        if global_mpl < len(system.shards):
            raise ValueError(
                f"global MPL {global_mpl} cannot cover "
                f"{len(system.shards)} shards (need >= 1 each)"
            )
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s!r}")
        if not 0.0 <= low_watermark < high_watermark <= 1.0:
            # inverted watermarks would park on one tick and re-activate
            # on the next, forever
            raise ValueError(
                "watermarks must satisfy 0 <= low < high <= 1, got "
                f"low={low_watermark!r} high={high_watermark!r}"
            )
        if min_shards < 1:
            raise ValueError(f"min_shards must be >= 1, got {min_shards!r}")
        if max_ticks < 1:
            raise ValueError(f"max_ticks must be >= 1, got {max_ticks!r}")
        self.system = system
        self.global_mpl = global_mpl
        self.interval_s = interval_s
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.min_shards = min_shards
        self.max_ticks = max_ticks
        self.report = ElasticReport(interval_s=interval_s, global_mpl=global_mpl)
        self._last_mpls: Optional[tuple] = None

    def install(self) -> "ElasticCapacityController":
        """Arm the tick process; the initial even split applies now."""
        mpls = self.system.scheduler.set_global_mpl(self.global_mpl)
        self._last_mpls = tuple(mpls)
        self.report.final_mpls = tuple(mpls)
        self.system.sim.process(self._loop(), name="elastic")
        return self

    def _loop(self):
        sim = self.system.sim
        for _tick in range(self.max_ticks):
            yield sim.timeout(self.interval_s)
            self._rebalance()

    # -- one tick ----------------------------------------------------------

    def _active_indices(self) -> List[int]:
        router = self.system.router
        return [i for i in range(len(self.system.shards)) if router.routable(i)]

    def _rebalance(self) -> None:
        system = self.system
        active = self._active_indices()
        if not active:
            return
        loads = [
            shard.frontend.in_service + shard.frontend.queue_length
            for shard in system.shards
        ]
        admitted = sum(system.shards[i].frontend.in_service for i in active)
        utilization = admitted / max(1, self.global_mpl)
        self._manage_rotation(active, loads, utilization)
        active = self._active_indices()
        weights = [
            (1.0 + loads[i]) if i in set(active) else self.PARKED_WEIGHT
            for i in range(len(system.shards))
        ]
        mpls = tuple(
            system.scheduler.set_global_mpl(self.global_mpl, weights=weights)
        )
        self.report.final_mpls = mpls
        if mpls != self._last_mpls:
            self._last_mpls = mpls
            self.report.actions.append(
                ElasticAction(
                    t=system.sim.now,
                    kind="resplit",
                    mpls=mpls,
                    detail=f"loads={tuple(loads)}",
                )
            )

    def _manage_rotation(
        self, active: List[int], loads: List[int], utilization: float
    ) -> None:
        system = self.system
        router = system.router
        if utilization > self.high_watermark:
            # scale out: bring the lowest-index parked shard back
            for index in range(len(system.shards)):
                if router.alive[index] and not router.in_rotation[index]:
                    router.set_rotation(index, True)
                    self.report.actions.append(
                        ElasticAction(
                            t=system.sim.now, kind="activate", mpls=(),
                            detail=f"shard {index} back in rotation "
                                   f"(utilization {utilization:.2f})",
                        )
                    )
                    return
            return
        if utilization < self.low_watermark and len(active) > self.min_shards:
            # scale in: park the least-loaded active shard (ties to the
            # highest index, so shard 0 parks last) and let it drain
            index = min(reversed(active), key=lambda i: loads[i])
            router.set_rotation(index, False)
            self.report.actions.append(
                ElasticAction(
                    t=system.sim.now, kind="park", mpls=(),
                    detail=f"shard {index} parked "
                           f"(utilization {utilization:.2f})",
                )
            )

# -- cluster-wide SLO control (clusters) ---------------------------------------


@dataclasses.dataclass(frozen=True)
class ClusterSloObservation:
    """One observation window of the cluster-wide SLO loop."""

    mpl: int
    completed: int
    high_count: int
    high_p95: float
    low_throughput: float
    split: tuple
    feasible: bool


@dataclasses.dataclass(frozen=True)
class ClusterSloReport:
    """Outcome of a cluster-wide SLO tuning session."""

    final_mpl: int
    final_split: tuple
    iterations: int
    converged: bool
    trajectory: List[ClusterSloObservation]


class ClusterSloController:
    """Hold the *cluster-wide* HIGH p95 under a target while maximizing
    LOW throughput, driving the global MPL split as one lever.

    :class:`PerClassSloController` lifted from single-engine to cluster
    scope: the observation window is the cluster collector (every
    shard's completions), and the reaction re-splits the *global* MPL
    across shards via
    :meth:`~repro.core.cluster.ShardedExternalScheduler.set_global_mpl`
    with health-aware weights — each routable shard weighted by its
    current load (in-service + queued, so hot shards and cross-shard
    fan-in pull capacity), dead/parked shards floored at the parked
    weight, and shards whose circuit breaker is not closed discounted.
    The search itself is the same highest-feasible bracket walk, except
    the floor is one MPL slot per shard (``split_mpl`` needs that) —
    a 2PC branch parked at its prepare gate occupies a slot, so a
    cluster starved below one-per-shard would distributed-deadlock.
    """

    MIN_HIGH_SAMPLES = 20
    MAX_EXTENSIONS = 6
    #: Weight multiplier for shards whose breaker is open/half-open.
    UNHEALTHY_DISCOUNT = 0.25
    #: Weight floor for dead/parked shards (the elastic idiom).
    PARKED_WEIGHT = 1e-9

    def __init__(
        self,
        system,
        target_p95_s: float,
        initial_mpl: int,
        window: int = 150,
        step: int = 2,
        max_mpl: int = 256,
        max_iterations: int = 30,
    ):
        num_shards = len(system.shards)
        if target_p95_s <= 0:
            raise ValueError(f"target_p95_s must be positive, got {target_p95_s!r}")
        if initial_mpl < num_shards:
            raise ValueError(
                f"initial_mpl {initial_mpl!r} cannot cover {num_shards} "
                "shards (need >= 1 each)"
            )
        if max_mpl < initial_mpl:
            raise ValueError(
                f"max_mpl {max_mpl!r} must be >= initial_mpl {initial_mpl!r}"
            )
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window!r}")
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step!r}")
        self.system = system
        self.target_p95_s = target_p95_s
        self.initial_mpl = initial_mpl
        self.window = window
        self.step = step
        self.max_mpl = max_mpl
        self.max_iterations = max_iterations
        self.floor = num_shards
        self._last_split: tuple = ()

    def _split_weights(self) -> List[float]:
        """Health-aware weights for the global-MPL split."""
        system = self.system
        router = system.router
        breakers = (
            system.resilience.breakers
            if getattr(system, "resilience", None) is not None
            else None
        )
        weights: List[float] = []
        for index, shard in enumerate(system.shards):
            if not router.routable(index):
                weights.append(self.PARKED_WEIGHT)
                continue
            weight = 1.0 + shard.frontend.in_service + shard.frontend.queue_length
            if breakers is not None and breakers[index].state != "closed":
                weight *= self.UNHEALTHY_DISCOUNT
            weights.append(weight)
        return weights

    def _apply(self, mpl: int) -> tuple:
        split = tuple(
            self.system.scheduler.set_global_mpl(
                mpl, weights=self._split_weights()
            )
        )
        self._last_split = split
        return split

    def _observe(self, mpl: int, split: tuple) -> ClusterSloObservation:
        from repro.dbms.transaction import Priority

        records = self.system.run_transactions(self.window)
        extensions = 0
        while (
            extensions < self.MAX_EXTENSIONS
            and sum(1 for r in records if r.priority == Priority.HIGH)
            < self.MIN_HIGH_SAMPLES
        ):
            extensions += 1
            records = records + self.system.run_transactions(self.window)
        high = [r.response_time for r in records if r.priority == Priority.HIGH]
        low_count = len(records) - len(high)
        elapsed = records[-1].completion_time - records[0].completion_time
        low_throughput = low_count / elapsed if elapsed > 0 else 0.0
        p95 = stats.percentile(high, 95.0)
        return ClusterSloObservation(
            mpl=mpl,
            completed=len(records),
            high_count=len(high),
            high_p95=p95,
            low_throughput=low_throughput,
            split=split,
            feasible=bool(high) and p95 <= self.target_p95_s,
        )

    def tune(self) -> ClusterSloReport:
        """Run observation/reaction iterations until convergence.

        Convergence mirrors :meth:`PerClassSloController.tune`: the
        loop sits at a feasible global MPL whose immediate successor is
        known infeasible, or the feasible region reaches ``max_mpl``,
        or the iteration budget runs out.  The split is re-derived from
        live health at every reaction, so the same global MPL can land
        differently as shards heat up or trip their breakers.
        """
        mpl = self.initial_mpl
        trajectory: List[ClusterSloObservation] = []
        highest_feasible: Optional[int] = None
        lowest_infeasible: Optional[int] = None
        step = self.step
        iteration = 0
        while iteration < self.max_iterations:
            iteration += 1
            split = self._apply(mpl)
            observation = self._observe(mpl, split)
            trajectory.append(observation)
            if observation.feasible:
                if highest_feasible is None or mpl > highest_feasible:
                    highest_feasible = mpl
                if mpl >= self.max_mpl or (
                    lowest_infeasible is not None and mpl + 1 >= lowest_infeasible
                ):
                    return ClusterSloReport(
                        final_mpl=mpl, final_split=self._last_split,
                        iterations=iteration, converged=True,
                        trajectory=trajectory,
                    )
                if lowest_infeasible is None:
                    next_mpl = min(self.max_mpl, mpl + step)
                    step *= 2
                else:
                    next_mpl = (mpl + lowest_infeasible) // 2
                    step = self.step
                mpl = next_mpl
            else:
                if lowest_infeasible is None or mpl < lowest_infeasible:
                    lowest_infeasible = mpl
                if highest_feasible is not None and mpl - 1 <= highest_feasible:
                    self._apply(highest_feasible)
                    return ClusterSloReport(
                        final_mpl=highest_feasible,
                        final_split=self._last_split,
                        iterations=iteration, converged=True,
                        trajectory=trajectory,
                    )
                if mpl <= self.floor:
                    # even one-slot-per-shard misses the SLO: the
                    # target is unattainable on this cluster — hold
                    # the floor
                    self._apply(self.floor)
                    return ClusterSloReport(
                        final_mpl=self.floor, final_split=self._last_split,
                        iterations=iteration, converged=False,
                        trajectory=trajectory,
                    )
                if highest_feasible is None:
                    next_mpl = max(self.floor, mpl - step)
                    step *= 2
                else:
                    next_mpl = (mpl + highest_feasible) // 2
                    step = self.step
                mpl = next_mpl
        final = highest_feasible if highest_feasible is not None else self.floor
        self._apply(final)
        return ClusterSloReport(
            final_mpl=final,
            final_split=self._last_split,
            iterations=iteration,
            converged=False,
            trajectory=trajectory,
        )
