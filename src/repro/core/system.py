"""System assembly and run harness.

:class:`SimulatedSystem` wires a workload source, the external
scheduling front-end, and the DBMS engine into one simulation, and
provides the measurement loop every experiment uses: run until N
transactions complete, discard a warmup prefix, report throughput /
response times / utilizations as a :class:`RunResult`.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, Dict, List, Optional

from repro.core.arrivals import (
    ArrivalProcess,
    ArrivalSpec,
    ClosedArrivals,
    OpenArrivals,
    fraction_high_assigner,
)
from repro.core.frontend import ExternalScheduler
from repro.core.policies import make_policy
from repro.dbms.config import HardwareConfig, InternalPolicy, IsolationLevel
from repro.dbms.engine import DatabaseEngine
from repro.dbms.transaction import Priority
from repro.metrics import stats
from repro.metrics.collector import MetricsCollector, TransactionRecord
from repro.sim.engine import SimulationError, Simulator
from repro.sim.random import RandomStreams
from repro.workloads.spec import WorkloadSpec


def canonical_jsonable(value: Any) -> Any:
    """A deterministic, JSON-encodable view of a config object graph.

    Dataclasses and plain objects become ``{"__class__": name, ...}``
    maps, enums their values, dicts get string keys (sorted by
    :func:`json.dumps` at hash time).  The encoding is *canonical* —
    two structurally equal configs encode identically regardless of
    construction order — which is what makes content-addressed result
    caching sound.  It is not meant to round-trip back into objects.

    A dataclass may declare ``FINGERPRINT_OMIT_DEFAULTS`` (a set of
    field names): those fields are left out of the encoding while they
    hold their declared default.  Config fields added after a release
    go there, so every pre-existing config keeps its exact content hash
    — and hence its cache entries — while non-default values of the
    new field still change the hash as they must.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        omit = getattr(type(value), "FINGERPRINT_OMIT_DEFAULTS", ())
        fields = {}
        for f in dataclasses.fields(value):
            field_value = getattr(value, f.name)
            if f.name in omit and field_value == f.default:
                continue
            fields[f.name] = canonical_jsonable(field_value)
        return {"__class__": type(value).__name__, **fields}
    if isinstance(value, dict):
        # enum keys encode by value so the encoding is stable across
        # Python versions (IntEnum.__str__ changed in 3.11)
        return {
            str(k.value if isinstance(k, enum.Enum) else k): canonical_jsonable(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [canonical_jsonable(v) for v in value]
    # Distributions and other plain parameter objects: class name plus
    # their instance attributes (floats/ints/lists, possibly nested).
    state = getattr(value, "__dict__", None)
    if state is not None:
        return {
            "__class__": type(value).__name__,
            **{k: canonical_jsonable(v) for k, v in sorted(state.items())},
        }
    raise TypeError(f"cannot canonically encode {type(value).__name__}: {value!r}")


def content_digest(config_payload: Any, extra: Dict[str, Any]) -> str:
    """The canonical sha256 over a config payload + run parameters.

    The single hashing recipe behind every content-addressed cache key
    (:meth:`SystemConfig.fingerprint`,
    :meth:`~repro.core.cluster.ClusterConfig.fingerprint`).
    """
    payload = {"config": config_payload, "extra": canonical_jsonable(extra)}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclasses.dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build one simulated system.

    The arrival regime comes from ``arrival`` — any
    :class:`~repro.core.arrivals.ArrivalSpec` (closed, open Poisson,
    partly-open sessions, modulated rates).  The legacy knobs remain:
    with ``arrival=None`` (the default), ``num_clients`` /
    ``think_time_s`` describe a closed system and setting
    ``arrival_rate`` switches to open Poisson at that rate — and those
    legacy configs keep the exact content fingerprints they had before
    ``arrival`` existed (the field is omitted from the canonical
    encoding at its default), so cached results stay valid.
    """

    workload: WorkloadSpec
    hardware: HardwareConfig
    isolation: IsolationLevel = IsolationLevel.RR
    internal: Optional[InternalPolicy] = None
    mpl: Optional[int] = None
    policy: str = "fifo"
    num_clients: int = 100
    think_time_s: float = 0.0
    arrival_rate: Optional[float] = None
    high_priority_fraction: float = 0.0
    seed: int = 1
    arrival: Optional[ArrivalSpec] = None

    FINGERPRINT_OMIT_DEFAULTS = frozenset({"arrival"})

    def __post_init__(self) -> None:
        if self.arrival is not None and self.arrival_rate is not None:
            raise ValueError(
                "specify either an arrival spec or the legacy arrival_rate, not both"
            )

    def arrival_spec(self) -> ArrivalSpec:
        """The effective arrival regime (legacy knobs normalized)."""
        if self.arrival is not None:
            return self.arrival
        if self.arrival_rate is not None:
            if self.arrival_rate <= 0:
                raise ValueError(
                    f"arrival_rate must be positive, got {self.arrival_rate!r}"
                )
            return OpenArrivals(rate=self.arrival_rate)
        return ClosedArrivals(
            num_clients=self.num_clients, think_time_s=self.think_time_s
        )

    def priority_assigner(self):
        """The per-transaction priority assigner (None = all LOW)."""
        if self.high_priority_fraction > 0:
            return fraction_high_assigner(self.high_priority_fraction)
        return None

    def to_jsonable(self) -> Dict[str, Any]:
        """Canonical JSON-encodable view (see :func:`canonical_jsonable`)."""
        return canonical_jsonable(self)

    def fingerprint(self, **extra: Any) -> str:
        """Content hash of this config (plus run parameters in ``extra``).

        Two configs share a fingerprint iff they describe the same
        simulation — the cache key of the parallel experiment runner.
        """
        return content_digest(self.to_jsonable(), extra)


@dataclasses.dataclass(frozen=True)
class RunResult:
    """Post-warmup measurements of one run."""

    mpl: Optional[int]
    completed: int
    sim_time: float
    throughput: float
    mean_response_time: float
    response_time_by_class: Dict[int, float]
    count_by_class: Dict[int, int]
    response_time_scv: float
    utilizations: Dict[str, float]
    restart_rate: float
    mean_external_wait: float
    mean_lock_wait: float

    @property
    def high_response_time(self) -> float:
        """Mean response time of the HIGH class (0.0 if absent)."""
        return self.response_time_by_class.get(int(Priority.HIGH), 0.0)

    @property
    def low_response_time(self) -> float:
        """Mean response time of the LOW class (0.0 if absent)."""
        return self.response_time_by_class.get(int(Priority.LOW), 0.0)

    @property
    def differentiation(self) -> float:
        """Low-to-high response time ratio (the paper's "factor")."""
        high = self.high_response_time
        if high <= 0:
            return 0.0
        return self.low_response_time / high

    def to_json_dict(self) -> Dict[str, Any]:
        """A JSON-encodable dict that round-trips via :meth:`from_json_dict`."""
        payload = dataclasses.asdict(self)
        # str(int(k)), not str(k): keys are Priority IntEnum members and
        # IntEnum.__str__ is version-dependent (3.10: "Priority.LOW")
        payload["response_time_by_class"] = {
            str(int(k)): v for k, v in self.response_time_by_class.items()
        }
        payload["count_by_class"] = {
            str(int(k)): v for k, v in self.count_by_class.items()
        }
        return payload

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "RunResult":
        """Rebuild a result previously produced by :meth:`to_json_dict`."""
        data = dict(payload)
        data["response_time_by_class"] = {
            int(k): float(v) for k, v in data.get("response_time_by_class", {}).items()
        }
        data["count_by_class"] = {
            int(k): int(v) for k, v in data.get("count_by_class", {}).items()
        }
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


def build_engine_stack(
    sim: Simulator, config: SystemConfig, collector: MetricsCollector
) -> "tuple[RandomStreams, DatabaseEngine, ExternalScheduler]":
    """Wire one engine + MPL front-end from ``config``.

    The single construction path shared by :class:`SimulatedSystem`
    and every shard of :class:`~repro.core.cluster.ClusteredSystem` —
    which is what keeps the 1-shard cluster bit-identical to the plain
    engine when :class:`SystemConfig` grows new fields.
    """
    streams = RandomStreams(config.seed)
    engine = DatabaseEngine(
        sim,
        config.hardware,
        db_pages=config.workload.db_pages,
        streams=streams,
        isolation=config.isolation,
        internal=config.internal,
        hot_access_fraction=config.workload.hot_access_fraction,
        hot_page_fraction=config.workload.hot_page_fraction,
    )
    frontend = ExternalScheduler(
        sim,
        engine,
        mpl=config.mpl,
        policy=make_policy(config.policy),
        collector=collector,
    )
    return streams, engine, frontend


def advance_until(
    sim: Simulator, collector: MetricsCollector, target: int,
    what: str = "the completion target",
) -> None:
    """Run ``sim`` until ``collector`` holds ``target`` completion records.

    The shared measurement window of every topology (system-wide and
    per-shard).  The count condition is handed to the kernel as a
    :class:`~repro.sim.engine.KernelHooks` (built by the collector), so
    the drain loop checks it inline instead of an outer Python loop
    stepping one event at a time.  Raises :class:`SimulationError` if
    the agenda drains first, so callers can treat a drained simulation
    uniformly.
    """
    sim.run(hooks=collector.completion_hooks(target))
    if len(collector.records) < target:
        raise SimulationError(f"simulation drained before reaching {what}")


class MeasuredSystem:
    """The measurement loop shared by every runnable system topology.

    Subclasses (:class:`SimulatedSystem`, the sharded
    :class:`~repro.core.cluster.ClusteredSystem`) wire their own
    sources and engines but expose the same surface: ``sim`` (the
    kernel), ``collector`` (the system-wide completion stream, in
    completion order), ``source`` (the arrival process), plus the two
    topology hooks ``_result_mpl`` and ``_utilization_snapshot``.
    Everything the experiments call — ``run_transactions`` /
    ``run`` / ``result`` — lives here once.
    """

    sim: Simulator
    collector: MetricsCollector
    source: ArrivalProcess

    # -- measurement loop ----------------------------------------------------

    def run_transactions(self, count: int) -> List[TransactionRecord]:
        """Advance the simulation until ``count`` more completions.

        Returns the records of exactly that window (in completion
        order).  Used directly by the feedback controller's
        observation periods.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count!r}")
        self.source.start()
        records = self.collector.records  # appended-to in place, identity stable
        start_index = len(records)
        target = start_index + count
        advance_until(self.sim, self.collector, target)
        return records[start_index:target]

    def run(self, transactions: int = 2000, warmup_fraction: float = 0.2) -> RunResult:
        """Run until ``transactions`` complete; report post-warmup stats."""
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {warmup_fraction!r}"
            )
        self.run_transactions(transactions)
        warmup = int(len(self.collector.records) * warmup_fraction)
        return self.result(warmup=warmup)

    def measure_window(
        self, transactions: int, warmup_fraction: float = 0.2
    ) -> RunResult:
        """Run ``transactions`` more completions; report only that window.

        The measurement phase of a scenario whose control phase already
        consumed completions (feedback tuning): everything recorded
        before the call — plus the window's own warmup prefix — is
        excluded from the reported statistics.
        """
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {warmup_fraction!r}"
            )
        start = len(self.collector.records)
        self.run_transactions(transactions)
        return self.result(warmup=start + int(transactions * warmup_fraction))

    def result(self, warmup: int = 0) -> RunResult:
        """Build a :class:`RunResult` from everything measured so far."""
        records = self.collector.completed(warmup)
        by_class: Dict[int, List[float]] = {}
        for record in records:
            by_class.setdefault(record.priority, []).append(record.response_time)
        elapsed = self.sim.now if self.sim.now > 0 else 1.0
        return RunResult(
            mpl=self._result_mpl(),
            completed=len(records),
            sim_time=self.sim.now,
            throughput=self.collector.throughput(warmup),
            mean_response_time=self.collector.mean_response_time(warmup),
            response_time_by_class={
                prio: stats.mean(times) for prio, times in by_class.items()
            },
            count_by_class={prio: len(times) for prio, times in by_class.items()},
            response_time_scv=self.collector.response_time_scv(warmup),
            utilizations=self._utilization_snapshot(elapsed),
            restart_rate=self.collector.restart_rate(warmup),
            mean_external_wait=stats.mean([r.external_wait for r in records]),
            mean_lock_wait=stats.mean([r.lock_wait_time for r in records]),
        )

    # -- topology hooks ------------------------------------------------------

    def _result_mpl(self) -> Optional[int]:
        """The MPL reported in results (a cluster reports its global MPL)."""
        raise NotImplementedError

    def _utilization_snapshot(self, elapsed: float) -> Dict[str, float]:
        """Per-station utilizations over ``elapsed`` seconds."""
        raise NotImplementedError


class SimulatedSystem(MeasuredSystem):
    """A fully wired simulation: source → external queue → DBMS."""

    def __init__(self, config: SystemConfig):
        self.config = config
        self.sim = Simulator()
        self.collector = MetricsCollector()
        #: The installed resilience runtime (scenario-driven; None keeps
        #: the legacy behavior).
        self.resilience = None
        self.streams, self.engine, self.frontend = build_engine_stack(
            self.sim, config, self.collector
        )
        self.source: ArrivalProcess = config.arrival_spec().build(
            self.sim,
            self.frontend,
            config.workload,
            self.streams,
            priority_assigner=config.priority_assigner(),
        )

    # -- topology hooks ------------------------------------------------------

    def _result_mpl(self) -> Optional[int]:
        return self.frontend.mpl

    def _utilization_snapshot(self, elapsed: float) -> Dict[str, float]:
        return self.engine.utilization_snapshot(elapsed)


def run_system(config: SystemConfig, transactions: int = 2000) -> RunResult:
    """Convenience: build a system from ``config`` and run it once."""
    return SimulatedSystem(config).run(transactions=transactions)
