"""Distributed transactions: simulated two-phase commit across shards.

The paper schedules one MPL in front of one database; our cluster
(PRs 3/6/9) still treats shards as fully independent, which real
sharded OLTP is not.  This module makes the dependence scenario data:

* :class:`DistributedSpec` — pure data, the ``distributed`` axis of a
  :class:`~repro.core.scenario.ScenarioSpec`.  A deterministic
  ``cross_shard_fraction`` of transactions fan their CPU / page / lock
  demand across ``fanout_k`` shards and commit atomically through a
  simulated two-phase commit.
* :class:`TwoPhaseCoordinator` — the live runtime installed between
  the arrival source (or the resilience gate) and the router.  A
  cross-shard transaction becomes K *branches*: the original
  transaction runs its share on its home shard, sibling branches (with
  negative tids, invisible to the collector) run theirs on the other
  participants.  Each branch executes normally under strict 2PL, then
  *prepares* — the WAL force at commit doubles as the prepare log
  force — and parks on a commit gate **still holding its locks**.
  When the last participant prepares, the coordinator decides commit
  and releases every gate; on a prepare timeout, a participant abort,
  or a participant death the attempt aborts through the existing
  :meth:`~repro.dbms.engine.DatabaseEngine.abort` path (locks
  released), and the transaction retries — via PR 9's resilience
  backoff when that axis is present, else via the coordinator's own
  deterministic exponential backoff.

Determinism: the cross-shard pick and the participant window are pure
functions of the transaction id (SplitMix64, no RNG draws), sibling
tids come from a decrementing counter in submission order, and retry
jitter for transaction ``tid`` is drawn from
``random.Random(derive_seed(seed, "2pc", tid))`` — distributed runs
are bit-identical for any ``--jobs N`` and across kernel lanes, and a
``cross_shard_fraction=0`` run is bit-identical to the same scenario
without the axis.

Atomicity is self-checked: a branch that commits under a non-commit
decision (or aborts under a commit decision) is recorded in
``atomicity_violations``, which the fuzzer's 2PC oracle asserts empty.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Any, Dict, List, Optional, Tuple

from repro.core.resilience import GOODPUT_STARVATION_LIMIT, GoodputStarved
from repro.dbms.transaction import Transaction, TxStatus
from repro.sim.engine import Event, Simulator
from repro.sim.random import derive_seed
from repro.sim.station import HashRouting

#: Coordinator-placement policies: which participant runs the home
#: branch.  ``hash`` pins it to the hash-picked window start; ``lowest``
#: to the lowest shard index in the window.
COORDINATOR_POLICIES = ("hash", "lowest")

#: Salt mixed into the cross-shard draw so it is independent of the
#: participant-window pick (both hash the same tid).
_FRACTION_SALT = 0xD1B54A32D192ED03

#: Internal-retry backoff (no resilience axis): base delay, geometric
#: multiplier, exponent cap, and jitter fraction of itself.
RETRY_BASE_BACKOFF_S = 0.01
RETRY_BACKOFF_MULTIPLIER = 2.0
RETRY_MAX_EXPONENT = 10
RETRY_JITTER_FRACTION = 0.5


def _is_number(value: Any) -> bool:
    # bool is an int subclass; a fraction of True is a bug, not 1.0
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


@dataclasses.dataclass(frozen=True)
class DistributedSpec:
    """The distributed axis: cross-shard transactions over simulated 2PC.

    ``cross_shard_fraction`` of transactions (picked by a deterministic
    hash of the tid) fan out across ``fanout_k`` participant shards.
    An attempt that has not fully prepared within ``prepare_timeout_s``
    of simulated time aborts (when ``abort_on_prepare_timeout`` — else
    it waits, which can deadlock at the MPL level and is only safe
    under the resilience axis' deadlines).  ``coordinator`` picks which
    participant runs the home branch.
    """

    cross_shard_fraction: float = 0.1
    fanout_k: int = 2
    prepare_timeout_s: float = 0.5
    coordinator: str = "hash"
    abort_on_prepare_timeout: bool = True

    def __post_init__(self) -> None:
        errors = distributed_field_errors(
            {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}
        )
        if errors:
            lines = "; ".join(
                f"{path.lstrip('/') or 'distributed'}: {message}"
                for path, message in errors
            )
            raise ValueError(f"bad distributed spec: {lines}")


def distributed_field_errors(payload: Any) -> List[Tuple[str, str]]:
    """Every problem in a distributed payload, as ``(path, message)`` pairs.

    Paths are JSON-pointer fragments relative to the distributed object
    (``/fanout_k``); :meth:`ScenarioSpec.validate` prefixes
    ``/distributed``.  Fields absent from the payload are checked at
    their defaults, so the same walk serves JSON payloads and
    constructed specs alike.
    """
    if not isinstance(payload, dict):
        return [("", f"must be an object, got {payload!r}")]
    errors: List[Tuple[str, str]] = []
    known = {f.name for f in dataclasses.fields(DistributedSpec)}
    for key in sorted(set(payload) - known):
        errors.append((f"/{key}", "unknown field"))
    values = {
        f.name: payload.get(f.name, f.default)
        for f in dataclasses.fields(DistributedSpec)
    }

    fraction = values["cross_shard_fraction"]
    if not _is_number(fraction) or not math.isfinite(fraction):
        errors.append((
            "/cross_shard_fraction",
            f"must be a finite number, got {fraction!r}",
        ))
    elif not 0.0 <= fraction <= 1.0:
        errors.append((
            "/cross_shard_fraction",
            f"must be in [0, 1], got {fraction!r}",
        ))
    fanout = values["fanout_k"]
    if not _is_int(fanout):
        errors.append(("/fanout_k", f"must be an integer, got {fanout!r}"))
    elif fanout < 2:
        errors.append(("/fanout_k", f"must be >= 2, got {fanout!r}"))
    timeout = values["prepare_timeout_s"]
    if not _is_number(timeout) or not math.isfinite(timeout):
        errors.append((
            "/prepare_timeout_s",
            f"must be a finite number, got {timeout!r}",
        ))
    elif timeout <= 0:
        errors.append((
            "/prepare_timeout_s", f"must be > 0, got {timeout!r}"
        ))
    if values["coordinator"] not in COORDINATOR_POLICIES:
        errors.append((
            "/coordinator",
            f"unknown coordinator policy {values['coordinator']!r}; "
            f"available: {', '.join(COORDINATOR_POLICIES)}",
        ))
    if not isinstance(values["abort_on_prepare_timeout"], bool):
        errors.append((
            "/abort_on_prepare_timeout",
            f"must be a boolean, got {values['abort_on_prepare_timeout']!r}",
        ))
    return errors


def encode_distributed_spec(
    spec: Optional[DistributedSpec],
) -> Optional[Dict[str, Any]]:
    """JSON encoding of a distributed spec (None stays None)."""
    if spec is None:
        return None
    return {
        field.name: getattr(spec, field.name)
        for field in dataclasses.fields(spec)
    }


def decode_distributed_spec(payload: Any) -> Optional[DistributedSpec]:
    """Strict decode: unknown keys and bad values raise ``ValueError``."""
    if payload is None:
        return None
    errors = distributed_field_errors(payload)
    if errors:
        lines = "; ".join(
            f"{path.lstrip('/') or 'distributed'}: {message}"
            for path, message in errors
        )
        raise ValueError(f"bad distributed payload: {lines}")
    return DistributedSpec(**payload)


class _DistributedTx:
    """One logical cross-shard transaction's 2PC bookkeeping."""

    __slots__ = (
        "tx", "branches", "shards", "home_pos", "frontends", "outer",
        "decided", "generation", "attempts", "prepared", "resolved",
        "resolved_count", "relaunch_pending", "external_disposed",
        "gates", "rng",
    )

    def __init__(
        self,
        tx: Transaction,
        branches: Tuple[Transaction, ...],
        shards: Tuple[int, ...],
        home_pos: int,
    ):
        self.tx = tx
        self.branches = branches
        self.shards = shards
        self.home_pos = home_pos
        self.frontends: List[Any] = [None] * len(branches)
        self.outer: Optional[Event] = None
        #: None while undecided; "commit" / "abort" once decided.
        self.decided: Optional[str] = None
        self.generation = 0
        self.attempts = 0
        self.prepared: set = set()
        self.resolved: List[bool] = [False] * len(branches)
        self.resolved_count = 0
        #: A resubmission arrived while the prior attempt's branches
        #: were still resolving; launch fires at the last resolution.
        self.relaunch_pending = False
        #: The resilience layer removed the home branch from a queue
        #: itself and owns the disposition — don't fire the outer.
        self.external_disposed = False
        self.gates: Dict[int, Event] = {}
        self.rng: Optional[random.Random] = None


class TwoPhaseCoordinator:
    """The live 2PC runtime between the arrival layer and the router.

    Speaks the frontend surface the arrival source and the resilience
    runtime expect (``submit`` / ``release``): single-shard
    transactions pass straight through to the router (zero extra event
    operations — a ``cross_shard_fraction=0`` run is bit-identical to
    the same scenario without the axis), cross-shard ones are split
    into branches and driven through prepare → commit.  Installed by
    :func:`~repro.core.scenario.run_scenario` *after* the resilience
    runtime, splicing in as its ``inner`` when present.
    """

    def __init__(self, spec: DistributedSpec, seed: int):
        self.spec = spec
        self.seed = seed
        self.sim: Optional[Simulator] = None
        self.router = None
        self.num_shards = 0
        self._frontends: List[Any] = []
        self._fire = None
        self._external_retries = False
        #: branch tid → (logical tx, branch position); covers the home
        #: tid and every (negative) sibling tid.
        self._branch_of: Dict[int, Tuple[_DistributedTx, int]] = {}
        #: home tid → logical tx, while not fully committed.
        self._live: Dict[int, _DistributedTx] = {}
        self._next_sibling_tid = -1
        # counters (the outcome-JSON distributed block)
        self.single_shard = 0
        self.cross_shard = 0
        self.attempts = 0
        self.commits = 0
        self.aborts = 0
        self.aborts_by_cause: Dict[str, int] = {}
        self.prepare_timeouts = 0
        self.retries = 0
        #: Consecutive abort decisions with no commit in between (the
        #: goodput-starvation trigger, mirroring the resilience layer).
        self.starved_streak = 0
        #: 2PC safety self-checks; the fuzzer's atomicity oracle
        #: asserts this stays empty.
        self.atomicity_violations: List[Dict[str, Any]] = []

    # -- installation --------------------------------------------------------

    def install(self, system) -> "TwoPhaseCoordinator":
        """Wire the coordinator into a built cluster (before anything runs)."""
        from repro.core.cluster import ClusteredSystem

        if not isinstance(system, ClusteredSystem):
            raise ValueError(
                "distributed transactions need a sharded topology (shards > 1)"
            )
        self.sim = system.sim
        self._fire = system.sim._fire_now
        self.router = system.router
        self.num_shards = len(system.shards)
        self._frontends = [shard.frontend for shard in system.shards]
        for shard in system.shards:
            shard.frontend._distributed = self
            shard.engine.two_phase = self
        if system.resilience is not None:
            # splice under the resilience gate: its retries re-enter 2PC
            self._external_retries = True
            system.resilience.inner = self
        else:
            system.source.frontend = self
        system.distributed = self
        return self

    # -- frontend surface (arrival layer / resilience runtime) ---------------

    def submit(self, tx: Transaction) -> Event:
        """Admit ``tx``; cross-shard work returns the *logical* event."""
        entry = self._branch_of.get(tx.tid)
        if entry is not None and entry[0].tx is tx:
            # resilience resubmission of a known cross-shard transaction
            ltx = entry[0]
            ltx.outer = self.sim.event()
            if ltx.resolved_count < len(ltx.branches):
                ltx.relaunch_pending = True
            else:
                self._launch(ltx)
            return ltx.outer
        if not self._is_cross_shard(tx):
            self.single_shard += 1
            return self.router.submit(tx)
        self.cross_shard += 1
        ltx = self._split(tx)
        ltx.outer = self.sim.event()
        self._launch(ltx)
        return ltx.outer

    def release(self, tid: int) -> None:
        """Forget a routed tid (resilience retry hook); branch releases
        happen per-branch inside :meth:`_launch`."""
        if tid not in self._branch_of:
            self.router.release(tid)

    # -- the deterministic split ---------------------------------------------

    def _is_cross_shard(self, tx: Transaction) -> bool:
        fraction = self.spec.cross_shard_fraction
        if fraction <= 0.0 or self.num_shards < 2 or tx.tid < 0:
            return False
        if fraction >= 1.0:
            return True
        draw = HashRouting.mix(tx.tid ^ _FRACTION_SALT) * 2.0 ** -64
        return draw < fraction

    def _split(self, tx: Transaction) -> _DistributedTx:
        """Fan ``tx``'s demand across K participant branches.

        Participants are a contiguous window of shards starting at the
        tid's hash pick (the same pick ``hash`` routing would make), so
        a cross-shard transaction touches its own partition plus its
        K-1 neighbours.  The home branch *is* the original transaction
        (demand shrunk in place, once); siblings are fresh transactions
        with negative tids so the collector and the resilience layer
        never mistake them for logical work.
        """
        k = min(self.spec.fanout_k, self.num_shards)
        start = HashRouting.mix(tx.tid) % self.num_shards
        shards = tuple((start + j) % self.num_shards for j in range(k))
        home_shard = shards[0] if self.spec.coordinator == "hash" else min(shards)
        home_pos = shards.index(home_shard)

        cpu_share = tx.cpu_demand / k
        pages, extra = divmod(tx.page_accesses, k)
        locks = list(tx.lock_requests)
        branches: List[Transaction] = []
        for pos in range(k):
            branch_pages = pages + (1 if pos < extra else 0)
            branch_locks = locks[pos::k]
            if pos == home_pos:
                tx.cpu_demand = cpu_share
                tx.page_accesses = branch_pages
                tx.lock_requests = branch_locks
                branches.append(tx)
                continue
            sibling = Transaction(
                tid=self._next_sibling_tid,
                type_name=tx.type_name,
                cpu_demand=cpu_share,
                page_accesses=branch_pages,
                lock_requests=branch_locks,
                is_update=tx.is_update,
                priority=tx.priority,
            )
            self._next_sibling_tid -= 1
            branches.append(sibling)
        ltx = _DistributedTx(tx, tuple(branches), shards, home_pos)
        for pos, branch in enumerate(branches):
            self._branch_of[branch.tid] = (ltx, pos)
        self._live[tx.tid] = ltx
        return ltx

    # -- attempt lifecycle ----------------------------------------------------

    def _launch(self, ltx: _DistributedTx) -> None:
        """Start one attempt: submit every branch to its participant."""
        ltx.generation += 1
        ltx.attempts += 1
        self.attempts += 1
        ltx.decided = None
        ltx.external_disposed = False
        ltx.relaunch_pending = False
        ltx.prepared.clear()
        ltx.gates.clear()
        ltx.resolved = [False] * len(ltx.branches)
        ltx.resolved_count = 0
        generation = ltx.generation
        router = self.router
        for pos, branch in enumerate(ltx.branches):
            if ltx.decided == "abort":
                # a synchronous shed aborted the attempt mid-launch;
                # branches never submitted resolve in place
                self._mark_resolved(ltx, pos)
                continue
            router.release(branch.tid)
            done = router.submit_to(branch, ltx.shards[pos])
            done.add_callback(
                lambda event, ltx=ltx, pos=pos, generation=generation:
                    self._on_branch_done(ltx, pos, generation, event)
            )
        if ltx.decided == "abort":
            self._maybe_finish_abort(ltx)
            return
        timer = self.sim.timeout(self.spec.prepare_timeout_s)
        timer.add_callback(
            lambda _event, ltx=ltx, generation=generation:
                self._on_prepare_timeout(ltx, generation)
        )

    # -- engine hooks ---------------------------------------------------------

    def prepared(self, tx: Transaction) -> Optional[Event]:
        """Engine hook at the commit point: the branch's prepare vote.

        Non-branch transactions return None immediately (no gate, no
        event operations).  A preparing branch parks on the returned
        commit gate *holding its locks*; the last participant to
        prepare decides commit, fires every parked gate, and proceeds
        synchronously (None).
        """
        entry = self._branch_of.get(tx.tid)
        if entry is None:
            return None
        ltx, pos = entry
        if ltx.decided == "commit":
            return None
        if ltx.decided == "abort":
            # the abort interrupt is already in flight; park so it
            # lands at this yield instead of committing a doomed branch
            return self.sim.event()
        if self._abort_pending(ltx, pos):
            # this branch's own tear-down (a resilience deadline, a POW
            # preemption) was thrown this instant but has not landed:
            # park without voting, so the interrupt arrives at this
            # yield instead of after a commit decision
            return self.sim.event()
        ltx.prepared.add(pos)
        if len(ltx.prepared) == len(ltx.branches):
            if self._parked_abort_pending(ltx):
                # a parked participant's abort is in flight — its
                # interrupt detached it from its commit gate, so a
                # commit decision now would lose that branch and
                # half-abort the atom; withhold the decision and let
                # the landing interrupt abort the attempt atomically
                gate = self.sim.event()
                ltx.gates[pos] = gate
                return gate
            self._decide_commit(ltx)
            return None
        gate = self.sim.event()
        ltx.gates[pos] = gate
        return gate

    def _abort_pending(self, ltx: _DistributedTx, pos: int) -> bool:
        frontend = ltx.frontends[pos]
        return frontend is not None and frontend.engine.abort_pending(
            ltx.branches[pos]
        )

    def _parked_abort_pending(self, ltx: _DistributedTx) -> bool:
        return any(self._abort_pending(ltx, pos) for pos in ltx.gates)

    def commit_pinned(self, tx: Transaction) -> bool:
        """Whether ``tx`` is a branch of a decided-commit 2PC attempt.

        The engine refuses external aborts for pinned branches — once
        every participant prepared and the decision is commit, no
        deadline may half-abort the atom.
        """
        entry = self._branch_of.get(tx.tid)
        return entry is not None and entry[0].decided == "commit"

    # -- decisions ------------------------------------------------------------

    def _decide_commit(self, ltx: _DistributedTx) -> None:
        ltx.decided = "commit"
        self.commits += 1
        self.starved_streak = 0
        gates, ltx.gates = ltx.gates, {}
        for gate in gates.values():
            # inlined gate.succeed(): known untriggered
            gate._triggered = True
            gate._value = None
            self._fire(gate)

    def _abort_attempt(
        self, ltx: _DistributedTx, cause: str,
        resolved_pos: Optional[int] = None,
    ) -> None:
        """Decide abort: every unresolved branch is removed or interrupted."""
        ltx.decided = "abort"
        ltx.prepared.clear()
        ltx.gates.clear()  # parked branches resolve via their interrupts
        self.aborts += 1
        self.aborts_by_cause[cause] = self.aborts_by_cause.get(cause, 0) + 1
        self.starved_streak += 1
        if resolved_pos is not None:
            self._mark_resolved(ltx, resolved_pos)
        for pos, branch in enumerate(ltx.branches):
            if ltx.resolved[pos]:
                continue
            frontend = ltx.frontends[pos]
            if frontend is None:
                continue  # not yet submitted; _launch resolves it
            if frontend.policy.remove(branch):
                # still queued: never reached the engine
                frontend.removed += 1
                self._mark_resolved(ltx, pos)
                continue
            # in flight (or parked at its gate): abort through the
            # engine; the branch-done callback resolves it.  A branch
            # that finished this same instant resolves via its pending
            # callback instead — abort() returns False then.
            frontend.engine.abort(branch)
        if self.starved_streak >= GOODPUT_STARVATION_LIMIT:
            raise GoodputStarved(
                f"2PC goodput starved at t={self.sim.now:.3f}: "
                f"{self.starved_streak} consecutive cross-shard aborts "
                f"without a commit (cross_shard={self.cross_shard} "
                f"commits={self.commits} aborts={self.aborts}); raise "
                "prepare_timeout_s, lower cross_shard_fraction, or give "
                "the cluster more MPL headroom"
            )
        self._maybe_finish_abort(ltx)

    def _on_prepare_timeout(self, ltx: _DistributedTx, generation: int) -> None:
        if ltx.generation != generation or ltx.decided is not None:
            return
        self.prepare_timeouts += 1
        if self.spec.abort_on_prepare_timeout:
            self._abort_attempt(ltx, "prepare_timeout")

    # -- resolution -----------------------------------------------------------

    def _mark_resolved(self, ltx: _DistributedTx, pos: int) -> None:
        if not ltx.resolved[pos]:
            ltx.resolved[pos] = True
            ltx.resolved_count += 1

    def _on_branch_done(
        self, ltx: _DistributedTx, pos: int, generation: int, event: Event
    ) -> None:
        if ltx.generation != generation:
            return  # stale attempt
        branch: Transaction = event.value
        committed = branch.status is TxStatus.COMMITTED
        if ltx.decided is None:
            if not committed:
                # external abort (a resilience deadline) reached a
                # branch before any 2PC decision: abort the attempt —
                # and rescind its prepare vote, or a later sibling
                # prepare would decide commit over a dead participant
                self._abort_attempt(ltx, "branch_abort", resolved_pos=pos)
                return
            # a branch must park at the prepare gate until a decision
            # exists; a commit before one is a coordinator bug
            self.atomicity_violations.append({
                "t": self.sim.now,
                "tid": ltx.tx.tid,
                "branch_tid": branch.tid,
                "decided": None,
                "status": branch.status.name,
            })
        elif committed != (ltx.decided == "commit"):
            self.atomicity_violations.append({
                "t": self.sim.now,
                "tid": ltx.tx.tid,
                "branch_tid": branch.tid,
                "decided": ltx.decided,
                "status": branch.status.name,
            })
        self._mark_resolved(ltx, pos)
        if ltx.decided == "commit":
            if pos == ltx.home_pos:
                self._fire_outer(ltx)
            if ltx.resolved_count == len(ltx.branches):
                self._finish_commit(ltx)
            return
        self._maybe_finish_abort(ltx)

    def _finish_commit(self, ltx: _DistributedTx) -> None:
        for branch in ltx.branches:
            if branch.status is not TxStatus.COMMITTED:
                self.atomicity_violations.append({
                    "t": self.sim.now,
                    "tid": ltx.tx.tid,
                    "branch_tid": branch.tid,
                    "decided": "commit",
                    "status": branch.status.name,
                })
        self._live.pop(ltx.tx.tid, None)

    def _maybe_finish_abort(self, ltx: _DistributedTx) -> None:
        if ltx.decided != "abort" or ltx.resolved_count < len(ltx.branches):
            return
        if ltx.relaunch_pending:
            self._launch(ltx)
            return
        if self._external_retries:
            # the resilience layer owns retry/dispose; the home
            # transaction leaves ABORTED, which its attempt callback
            # reads as a timeout — unless resilience itself removed the
            # home branch from a queue and already disposed the attempt
            if not ltx.external_disposed:
                self._fire_outer(ltx)
            return
        # internal retries: deterministic exponential backoff + jitter
        self.retries += 1
        exponent = min(ltx.attempts - 1, RETRY_MAX_EXPONENT)
        delay = RETRY_BASE_BACKOFF_S * RETRY_BACKOFF_MULTIPLIER ** exponent
        if ltx.rng is None:
            ltx.rng = random.Random(derive_seed(self.seed, "2pc", ltx.tx.tid))
        delay *= 1.0 + RETRY_JITTER_FRACTION * ltx.rng.random()
        generation = ltx.generation
        timer = self.sim.timeout(delay)
        timer.add_callback(
            lambda _event, ltx=ltx, generation=generation:
                self._relaunch(ltx, generation)
        )

    def _relaunch(self, ltx: _DistributedTx, generation: int) -> None:
        if ltx.generation != generation or ltx.decided != "abort":
            return
        self._launch(ltx)

    def _fire_outer(self, ltx: _DistributedTx) -> None:
        outer, ltx.outer = ltx.outer, None
        if outer is None:
            return
        # inlined outer.succeed(tx): known untriggered
        outer._triggered = True
        outer._value = ltx.tx
        self._fire(outer)

    # -- external notifications ----------------------------------------------

    def on_submitted(self, tx: Transaction, frontend) -> None:
        """Frontend hook: a branch just entered ``frontend`` (submit/adopt).

        Tracks the branch's *actual* frontend — router fallback during
        a fault timeline can land a branch off its planned participant.
        """
        entry = self._branch_of.get(tx.tid)
        if entry is None:
            return
        ltx, pos = entry
        ltx.frontends[pos] = frontend

    def on_external_removed(self, tx: Transaction) -> None:
        """Resilience hook: ``tx`` was pulled out of an external queue
        (deadline expiry in queue, load shedding).

        No completion callback will ever fire for it, so the branch
        resolves here; an undecided attempt aborts.  When the removed
        branch is the home, the resilience layer already owns the
        disposition — the coordinator must not fire the outer too.
        """
        entry = self._branch_of.get(tx.tid)
        if entry is None:
            return
        ltx, pos = entry
        if pos == ltx.home_pos:
            ltx.external_disposed = True
        if ltx.decided is None:
            self._abort_attempt(ltx, "external_removed", resolved_pos=pos)
            return
        self._mark_resolved(ltx, pos)
        self._maybe_finish_abort(ltx)

    def on_shard_killed(self, index: int) -> None:
        """Cluster hook, *before* the kill drains/re-routes the queue.

        Participant death: undecided attempts with a branch queued on
        the dying shard abort now, so their branches are pulled out of
        the queue here rather than re-homed onto a wrong participant.
        In-flight branches drain to completion (fail-stop at the
        admission boundary), exactly like every other transaction.
        """
        frontend = self._frontends[index]
        for ltx in list(self._live.values()):
            if ltx.decided is not None:
                continue
            for pos, branch in enumerate(ltx.branches):
                if (
                    not ltx.resolved[pos]
                    and ltx.frontends[pos] is frontend
                    and branch.status is TxStatus.QUEUED
                ):
                    self._abort_attempt(ltx, "participant_death")
                    break

    # -- accounting -----------------------------------------------------------

    def report_jsonable(self) -> Dict[str, Any]:
        """The outcome-JSON distributed block."""
        return {
            "single_shard": self.single_shard,
            "cross_shard": self.cross_shard,
            "attempts": self.attempts,
            "commits": self.commits,
            "aborts": self.aborts,
            "aborts_by_cause": {
                cause: count
                for cause, count in sorted(self.aborts_by_cause.items())
            },
            "prepare_timeouts": self.prepare_timeouts,
            "retries": self.retries,
            "in_flight": sum(
                1 for ltx in self._live.values() if ltx.decided != "commit"
            ),
            "atomicity_violations": list(self.atomicity_violations),
        }
