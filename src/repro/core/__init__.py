"""The paper's primary contribution: external scheduling with a tuned MPL.

* :mod:`repro.core.frontend` — the MPL-limited dispatcher of Figure 1.
* :mod:`repro.core.policies` — external-queue orderings (FIFO,
  priority, SJF).
* :mod:`repro.core.arrivals` — pluggable arrival layer: closed client
  populations, open Poisson sources, partly-open sessions, and
  time-varying (modulated) rates.
* :mod:`repro.core.system` — wiring + run harness.
* :mod:`repro.core.cluster` — N engines behind a routing front-end,
  with the global MPL split per shard.
* :mod:`repro.core.controller` — the feedback controller of §4.3.
* :mod:`repro.core.tuner` — queueing-model jump-start + controller
  ("the tool" of the paper's conclusion).
"""

from repro.core.arrivals import (
    ArrivalProcess,
    ArrivalSpec,
    ClosedArrivals,
    ClosedPopulation,
    ModulatedArrivals,
    OpenArrivals,
    OpenPoisson,
    OpenSource,
    PartlyOpenArrivals,
    PartlyOpenSessions,
    PiecewiseRate,
    SinusoidRate,
)
from repro.core.cluster import (
    ClusterConfig,
    ClusteredSystem,
    ShardedExternalScheduler,
    build_system,
    run_cluster,
    split_mpl,
)
from repro.core.controller import ControllerReport, MplController, Thresholds
from repro.core.frontend import ExternalScheduler
from repro.core.policies import (
    FifoPolicy,
    PriorityPolicy,
    QueuePolicy,
    SjfPolicy,
    make_policy,
)
from repro.core.system import RunResult, SimulatedSystem, SystemConfig
from repro.core.tuner import MplTuner, TuningResult

__all__ = [
    "ArrivalProcess",
    "ArrivalSpec",
    "ClosedArrivals",
    "ClosedPopulation",
    "ClusterConfig",
    "ClusteredSystem",
    "ControllerReport",
    "ExternalScheduler",
    "FifoPolicy",
    "ModulatedArrivals",
    "MplController",
    "MplTuner",
    "OpenArrivals",
    "OpenPoisson",
    "OpenSource",
    "PartlyOpenArrivals",
    "PartlyOpenSessions",
    "PiecewiseRate",
    "PriorityPolicy",
    "QueuePolicy",
    "RunResult",
    "ShardedExternalScheduler",
    "SimulatedSystem",
    "SinusoidRate",
    "SjfPolicy",
    "SystemConfig",
    "Thresholds",
    "TuningResult",
    "build_system",
    "make_policy",
    "run_cluster",
    "split_mpl",
]
