"""repro — reproduction of Schroeder et al., ICDE 2006.

*How to determine a good multi-programming level for external
scheduling.*

The package implements external scheduling of database transactions
with an automatically tuned multi-programming limit (MPL):

* a discrete-event simulated DBMS (:mod:`repro.dbms`) standing in for
  the paper's DB2/Shore installations,
* the paper's TPC-C/TPC-W-style workloads and its 17 experimental
  setups (:mod:`repro.workloads`),
* the external scheduling front-end, feedback controller, and tuner
  (:mod:`repro.core`),
* the queueing models behind the tuner (:mod:`repro.queueing`),
* the prioritization application (:mod:`repro.priority`), and
* a harness regenerating every table/figure of the paper's evaluation
  (:mod:`repro.experiments`, also ``python -m repro.experiments``).

Quickstart::

    from repro import SystemConfig, SimulatedSystem, get_setup

    setup = get_setup(1)                     # Table 2, setup 1
    config = SystemConfig(workload=setup.workload,
                          hardware=setup.hardware, mpl=5)
    result = SimulatedSystem(config).run(transactions=2000)
    print(result.throughput, result.mean_response_time)
"""

from repro.core.controller import MplController, PerClassSloController, Thresholds
from repro.core.frontend import ExternalScheduler
from repro.core.scenario import (
    FeedbackMpl,
    MeasurementSpec,
    PerClassSlo,
    ScenarioOutcome,
    ScenarioSpec,
    StaticMpl,
    TopologySpec,
    WorkloadRef,
    execute_scenario,
)
from repro.core.system import RunResult, SimulatedSystem, SystemConfig
from repro.core.tuner import MplTuner, TuningResult
from repro.dbms.config import HardwareConfig, InternalPolicy, IsolationLevel
from repro.dbms.engine import DatabaseEngine
from repro.dbms.transaction import Priority, Transaction
from repro.queueing.mpl_ps_queue import MplPsQueue
from repro.queueing.throughput_model import ThroughputModel
from repro.workloads.setups import SETUPS, WORKLOADS, Setup, get_setup, get_workload
from repro.workloads.spec import TransactionType, WorkloadSpec

__version__ = "1.0.0"

__all__ = [
    "DatabaseEngine",
    "ExternalScheduler",
    "FeedbackMpl",
    "HardwareConfig",
    "InternalPolicy",
    "IsolationLevel",
    "MeasurementSpec",
    "MplController",
    "MplPsQueue",
    "MplTuner",
    "PerClassSlo",
    "PerClassSloController",
    "Priority",
    "RunResult",
    "SETUPS",
    "ScenarioOutcome",
    "ScenarioSpec",
    "StaticMpl",
    "Setup",
    "SimulatedSystem",
    "SystemConfig",
    "Thresholds",
    "TopologySpec",
    "ThroughputModel",
    "Transaction",
    "TransactionType",
    "TuningResult",
    "WORKLOADS",
    "WorkloadRef",
    "WorkloadSpec",
    "__version__",
    "execute_scenario",
    "get_setup",
    "get_workload",
]
