"""Measurement machinery: per-transaction records and statistics."""

from repro.metrics.collector import MetricsCollector, TransactionRecord
from repro.metrics.stats import (
    confidence_interval,
    mean,
    relative_half_width,
    scv,
    variance,
)

__all__ = [
    "MetricsCollector",
    "TransactionRecord",
    "confidence_interval",
    "mean",
    "relative_half_width",
    "scv",
    "variance",
]
