"""Per-transaction measurement records.

Every transaction that completes in a :class:`~repro.core.system.
SimulatedSystem` leaves a :class:`TransactionRecord` here.  The
experiment runners use the collector to compute throughput, per-class
mean response times, and the C² statistics of §3.2 — always after
discarding a warmup prefix, the same methodology as the paper's
measurement intervals.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from repro.dbms.transaction import Transaction
from repro.metrics import stats
from repro.sim.engine import KernelHooks


class TransactionRecord(NamedTuple):
    """Immutable snapshot of one completed transaction.

    A named tuple rather than a frozen dataclass: records are minted
    once per completion on the kernel's measurement path, and tuple
    construction skips the per-field ``object.__setattr__`` a frozen
    dataclass pays.
    """

    tid: int
    type_name: str
    priority: int
    arrival_time: float
    dispatch_time: float
    completion_time: float
    restarts: int
    lock_wait_time: float

    @property
    def response_time(self) -> float:
        """Arrival to completion, including external queueing."""
        return self.completion_time - self.arrival_time

    @property
    def execution_time(self) -> float:
        """Dispatch to completion (inside the DBMS)."""
        return self.completion_time - self.dispatch_time

    @property
    def external_wait(self) -> float:
        """Time spent in the external queue."""
        return self.dispatch_time - self.arrival_time


class MetricsCollector:
    """Accumulates completed-transaction records during a run."""

    def __init__(self):
        self.records: List[TransactionRecord] = []
        self.arrivals = 0

    def on_arrival(self, tx: Transaction) -> None:
        """Count an arrival (used for load-representativeness checks)."""
        self.arrivals += 1

    def on_completion(self, tx: Transaction) -> None:
        """Record a completed transaction."""
        if tx.completion_time is None or tx.dispatch_time is None:
            raise ValueError(f"transaction {tx.tid} has not completed")
        self.records.append(
            TransactionRecord(
                tid=tx.tid,
                type_name=tx.type_name,
                priority=tx.priority,
                arrival_time=tx.arrival_time,
                dispatch_time=tx.dispatch_time,
                completion_time=tx.completion_time,
                restarts=tx.restarts,
                lock_wait_time=tx.lock_wait_time,
            )
        )

    def completion_hooks(self, target: int) -> KernelHooks:
        """Kernel stop condition: run until ``target`` total completions.

        Handing this to :meth:`~repro.sim.engine.Simulator.run` makes
        the kernel poll the record count inline after each event — the
        completion-counting half of the measurement loop lives in the
        kernel, not in a per-event Python loop out here.
        """
        return KernelHooks(self.records, target)

    # -- selection -----------------------------------------------------------

    def completed(self, warmup: int = 0) -> List[TransactionRecord]:
        """Records after dropping the first ``warmup`` completions."""
        if warmup < 0:
            raise ValueError(f"warmup must be non-negative, got {warmup!r}")
        return self.records[warmup:]

    def completed_after(self, time: float) -> List[TransactionRecord]:
        """Records of transactions completing strictly after ``time``."""
        return [r for r in self.records if r.completion_time > time]

    def by_priority(
        self, priority: int, warmup: int = 0
    ) -> List[TransactionRecord]:
        """Post-warmup records of one priority class."""
        return [r for r in self.completed(warmup) if r.priority == priority]

    # -- aggregate statistics ---------------------------------------------------

    def throughput(self, warmup: int = 0) -> float:
        """Completions per unit time over the post-warmup interval."""
        records = self.completed(warmup)
        if len(records) < 2:
            return 0.0
        start = records[0].completion_time
        end = records[-1].completion_time
        if end <= start:
            return 0.0
        return (len(records) - 1) / (end - start)

    def mean_response_time(
        self, warmup: int = 0, priority: Optional[int] = None
    ) -> float:
        """Mean response time, optionally restricted to one class."""
        records = self.completed(warmup)
        if priority is not None:
            records = [r for r in records if r.priority == priority]
        return stats.mean([r.response_time for r in records])

    def response_time_scv(self, warmup: int = 0) -> float:
        """C² of post-warmup response times."""
        return stats.scv([r.response_time for r in self.completed(warmup)])

    def per_class_response_times(self, warmup: int = 0) -> Dict[int, float]:
        """Mean response time keyed by priority class."""
        grouped: Dict[int, List[float]] = {}
        for record in self.completed(warmup):
            grouped.setdefault(record.priority, []).append(record.response_time)
        return {prio: stats.mean(times) for prio, times in grouped.items()}

    def restart_rate(self, warmup: int = 0) -> float:
        """Mean restarts (deadlock/preemption retries) per transaction."""
        records = self.completed(warmup)
        if not records:
            return 0.0
        return sum(r.restarts for r in records) / len(records)

    def reset(self) -> None:
        """Drop all records (used between controller observation windows)."""
        self.records.clear()
        self.arrivals = 0
