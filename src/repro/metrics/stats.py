"""Small statistics helpers (no heavyweight dependencies).

The controller (§4.3) sizes its observation periods with confidence
intervals, and the variability study (§3.2) reports the squared
coefficient of variation C²; both live here.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

# Two-sided 95% Student-t critical values by degrees of freedom; falls
# back to the normal quantile above the table.
_T_TABLE_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    12: 2.179, 15: 2.131, 20: 2.086, 25: 2.060, 30: 2.042,
    40: 2.021, 60: 2.000, 120: 1.980,
}
_Z_95 = 1.960


def _t_critical(dof: int) -> float:
    if dof <= 0:
        return float("inf")
    if dof in _T_TABLE_95:
        return _T_TABLE_95[dof]
    keys = sorted(_T_TABLE_95)
    if dof > keys[-1]:
        return _Z_95
    for lower, upper in zip(keys, keys[1:]):
        if lower < dof < upper:
            weight = (dof - lower) / (upper - lower)
            return _T_TABLE_95[lower] * (1 - weight) + _T_TABLE_95[upper] * weight
    return _Z_95


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def variance(values: Sequence[float]) -> float:
    """Unbiased sample variance; 0.0 for fewer than two samples."""
    n = len(values)
    if n < 2:
        return 0.0
    m = mean(values)
    return sum((v - m) ** 2 for v in values) / (n - 1)


def scv(values: Sequence[float]) -> float:
    """Squared coefficient of variation C² = Var / Mean²."""
    m = mean(values)
    if m == 0:
        return 0.0
    return variance(values) / m**2


def confidence_interval(values: Sequence[float]) -> Tuple[float, float]:
    """95% Student-t confidence interval for the mean: (mean, half-width)."""
    n = len(values)
    m = mean(values)
    if n < 2:
        return m, float("inf")
    half = _t_critical(n - 1) * math.sqrt(variance(values) / n)
    return m, half


def relative_half_width(values: Sequence[float]) -> float:
    """CI half-width divided by the mean (the controller's stability test)."""
    m, half = confidence_interval(values)
    if m == 0:
        return float("inf")
    return half / abs(m)


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) by linear interpolation."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q!r}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac
