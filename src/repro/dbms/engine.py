"""The simulated DBMS: executes transactions against the hardware model.

A transaction's life inside the engine mirrors the paper's systems:

1. Its logical page touches are filtered through the buffer pool; the
   misses become physical reads striped across the data disks.
2. Its CPU demand is spread across segments interleaved with those
   reads (compute a little, fault a page, compute more, ...), all
   served by the weighted processor-sharing CPU pool.
3. Its lock requests are acquired incrementally (strict 2PL) at the
   segment boundaries where the data is first touched; under
   Uncommitted Read isolation shared locks are skipped entirely.
4. At commit an update transaction forces the WAL and all locks are
   released.

Deadlock victims and POW-preempted transactions are rolled back,
backed off, and restarted — the engine owns that loop, the caller just
sees a longer execution.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.dbms.bufferpool import AnalyticBufferPool
from repro.dbms.config import HardwareConfig, InternalPolicy, IsolationLevel
from repro.dbms.cpu import make_ps_pool
from repro.dbms.disk import DiskArray
from repro.dbms.lockmgr import DeadlockError, LockManager, PreemptionError
from repro.dbms.transaction import Transaction, TxStatus
from repro.dbms.wal import LogManager
from repro.sim.distributions import Exponential, LogNormal
from repro.sim.engine import Interrupt, Process, Simulator
from repro.sim.random import RandomStreams
from repro.sim.station import DelayStation, Station


class DeadlineExceeded(Exception):
    """Interrupt cause: the external deadline expired mid-execution.

    Unlike a deadlock or a POW preemption — which the engine retries
    internally — a deadline abort is terminal: locks are released, the
    transaction leaves the engine ABORTED, and the resilience layer
    above decides whether it re-enters the external queue.
    """


class DatabaseEngine:
    """The DBMS back end the external scheduler dispatches into.

    Parameters
    ----------
    sim:
        The shared simulation kernel.
    hardware:
        CPU / disk / memory configuration.
    db_pages:
        Database size in pages (with ``hardware.cache_pages`` this
        determines the buffer-pool hit probability).
    streams:
        Seeded random streams.
    isolation:
        Repeatable Read (readers lock) or Uncommitted Read.
    internal:
        Internal-scheduling policy (lock queues, CPU weights).
    restart_backoff:
        Mean of the exponential backoff before a deadlock/preemption
        victim restarts.
    """

    def __init__(
        self,
        sim: Simulator,
        hardware: HardwareConfig,
        db_pages: int,
        streams: RandomStreams,
        isolation: IsolationLevel = IsolationLevel.RR,
        internal: Optional[InternalPolicy] = None,
        hot_access_fraction: float = 0.8,
        hot_page_fraction: float = 0.2,
        restart_backoff: float = 0.010,
    ):
        self.sim = sim
        self.hardware = hardware
        self.isolation = isolation
        self.internal = internal or InternalPolicy.stock()
        self.restart_backoff = restart_backoff

        second = 1.0 / 1000.0  # configs speak milliseconds; the clock runs seconds
        disk_service = LogNormal(
            hardware.disk_service_mean_ms * second,
            hardware.disk_service_scv,
        )
        log_write = Exponential(hardware.log_write_mean_ms * second)

        self.cpu = make_ps_pool(sim, hardware.num_cpus, hardware.cpu_speed)
        self.disks = DiskArray(
            sim, hardware.num_disks, disk_service, streams.stream("disk")
        )
        self.log = LogManager(
            sim, log_write, streams.stream("log"), group_commit=hardware.group_commit
        )
        self.bufferpool = AnalyticBufferPool(
            db_pages,
            hardware.cache_pages,
            hot_access_fraction=hot_access_fraction,
            hot_page_fraction=hot_page_fraction,
        )
        self.lockmgr = LockManager(
            sim, self.internal.lock_scheduling, preempt=self._preempt
        )
        #: Every resource the engine composes, by station name.  New
        #: stations (a network hop, a replication log, ...) drop in via
        #: :meth:`add_station` without touching the engine internals.
        self.stations: Dict[str, Station] = {}
        for station in (self.cpu, self.disks, self.log, self.lockmgr):
            self.add_station(station)
        self.network: Optional[DelayStation] = None
        network_ms = getattr(hardware, "network_delay_ms", 0.0)
        if network_ms > 0:
            self.network = DelayStation(
                sim,
                "network",
                delay=Exponential(network_ms / 1000.0),
                rng=streams.stream("network"),
            )
            self.add_station(self.network)
        self._rng: random.Random = streams.stream("engine")
        self._active: Dict[int, Process] = {}
        self.committed = 0
        self.restarts = 0
        #: The installed 2PC coordinator (None outside distributed
        #: scenarios — the default commit path is untouched).
        self.two_phase = None

    # -- public API --------------------------------------------------------

    def add_station(self, station: Station) -> Station:
        """Register a station under its name (it joins the snapshots)."""
        if station.name in self.stations:
            raise ValueError(f"duplicate station name {station.name!r}")
        self.stations[station.name] = station
        return station

    def execute(self, tx: Transaction) -> Process:
        """Run ``tx`` to commit; the returned process fires with ``tx``.

        Deadlocks and POW preemptions are retried internally, so the
        process only ever completes successfully.
        """
        process = self.sim.process(self._run(tx), name=f"tx{tx.tid}")
        self._active[tx.tid] = process
        return process

    @property
    def in_flight(self) -> int:
        """Transactions currently executing inside the engine."""
        return len(self._active)

    def abort(self, tx: Transaction) -> bool:
        """Abort a running transaction (external deadline expiry).

        Returns False when the transaction is not executing here —
        already committed, or its process finished this same instant
        (the completion callback then resolves it as a commit).
        """
        process = self._active.get(tx.tid)
        if process is None or not process.is_alive:
            return False
        if process.interrupt_pending:
            # a racing tear-down (2PC prepare timeout vs resilience
            # deadline at one instant) already threw; a second throw
            # would land after the generator finished
            return False
        if self.two_phase is not None and self.two_phase.commit_pinned(tx):
            # every participant prepared and the decision is commit:
            # no external deadline may half-abort the atom
            return False
        process.interrupt(DeadlineExceeded(f"tx {tx.tid} deadline expired"))
        return True

    def abort_pending(self, tx: Transaction) -> bool:
        """Whether ``tx`` has an interrupt thrown but not yet landed.

        The 2PC coordinator consults this at the prepare point: a
        branch whose tear-down is already in flight must not vote (the
        interrupt would land *after* a commit decision and half-abort
        the atom).
        """
        process = self._active.get(tx.tid)
        return process is not None and process.interrupt_pending

    @property
    def disk_service_mean(self) -> float:
        """Mean physical-read time in seconds (for demand estimates)."""
        return self.hardware.disk_service_mean_ms / 1000.0

    @property
    def miss_probability(self) -> float:
        """Probability a page touch becomes a physical read."""
        return 1.0 - self.bufferpool.hit_probability

    def estimated_demand(self, tx: Transaction) -> float:
        """Expected total service demand of ``tx`` (CPU + I/O seconds)."""
        return tx.demand_total(self.disk_service_mean, self.miss_probability)

    def utilization_snapshot(self, elapsed: float) -> Dict[str, float]:
        """Per-server-station utilizations over ``elapsed`` seconds."""
        return {
            name: station.utilization(elapsed)
            for name, station in self.stations.items()
            if station.is_server
        }

    def class_stats_snapshot(self) -> Dict[str, Dict[int, Dict[str, float]]]:
        """Per-station, per-priority-class counters (station protocol)."""
        return {
            name: {
                priority: stats.as_dict()
                for priority, stats in station.class_stats().items()
            }
            for name, station in self.stations.items()
        }

    # -- transaction body ----------------------------------------------------

    def _run(self, tx: Transaction):
        tx.dispatch_time = self.sim.now
        tx.status = TxStatus.RUNNING
        while True:
            try:
                yield from self._attempt(tx)
            except (DeadlockError, Interrupt) as exc:
                cause = exc.cause if isinstance(exc, Interrupt) else None
                if isinstance(cause, DeadlineExceeded):
                    # terminal: release everything and leave ABORTED —
                    # the resilience layer owns any retry
                    self.lockmgr.abort(tx)
                    tx.status = TxStatus.ABORTED
                    tx.completion_time = self.sim.now
                    self._active.pop(tx.tid, None)
                    return tx
                self.lockmgr.abort(tx)
                tx.restarts += 1
                self.restarts += 1
                backoff = self._rng.expovariate(1.0 / self.restart_backoff)
                try:
                    yield self.sim.timeout(backoff)
                except Interrupt as late:
                    # a deadline can also expire during the restart
                    # backoff sleep, where no locks are held
                    if isinstance(late.cause, DeadlineExceeded):
                        tx.status = TxStatus.ABORTED
                        tx.completion_time = self.sim.now
                        self._active.pop(tx.tid, None)
                        return tx
                    raise
                continue
            tx.status = TxStatus.COMMITTED
            tx.completion_time = self.sim.now
            self.committed += 1
            self._active.pop(tx.tid, None)
            return tx

    def _attempt(self, tx: Transaction):
        locks = self._effective_locks(tx)
        misses = self.bufferpool.sample_misses(self._rng, tx.page_accesses)
        home = self.disks.assign_home()
        weight = self.internal.cpu_weight(tx.priority)
        # Interleave locks with computation: a lock is taken when the
        # statement touching it runs, not all up-front, so locks are
        # held across the remaining CPU/I/O work exactly as in a real
        # 2PL execution.
        segments = max(misses + 1, min(len(locks), 8))
        cpu_slice = tx.cpu_demand / segments
        lock_schedule = self._lock_schedule(len(locks), segments)

        if self.network is not None:
            yield self.network.serve(priority=tx.priority)
        # hot-loop locals: one lookup per attempt instead of per yield
        acquire = self.lockmgr.acquire
        execute = self.cpu.execute
        submit = self.disks.submit
        priority = tx.priority
        num_locks = len(locks)
        lock_index = 0
        for segment in range(segments):
            while lock_index < num_locks and lock_schedule[lock_index] <= segment:
                item, exclusive = locks[lock_index]
                lock_index += 1
                yield acquire(tx, item, exclusive)
            if cpu_slice > 0:
                yield execute(cpu_slice, weight, priority)
            if segment < misses:
                yield submit(home, segment, priority)
        if tx.is_update:
            yield self.log.commit(priority)
        if self.two_phase is not None:
            # 2PC prepare point: the WAL force above doubles as the
            # prepare log force; a branch parks here — locks held —
            # until the coordinator decides commit
            gate = self.two_phase.prepared(tx)
            if gate is not None:
                yield gate
        self.lockmgr.release_all(tx)

    def _effective_locks(self, tx: Transaction):
        if self.isolation is IsolationLevel.UR:
            return [(item, True) for item, exclusive in tx.lock_requests if exclusive]
        return tx.lock_requests

    #: Memoized lock schedules — the (num_locks, segments) space the
    #: workloads generate is tiny, so every transaction after the first
    #: of its shape reuses one immutable tuple.
    _LOCK_SCHEDULES: Dict[tuple, tuple] = {}

    @staticmethod
    def _lock_schedule(num_locks: int, segments: int):
        """Segment index before which each lock is acquired (spread evenly)."""
        if num_locks == 0:
            return ()
        key = (num_locks, segments)
        cached = DatabaseEngine._LOCK_SCHEDULES.get(key)
        if cached is None:
            cached = DatabaseEngine._LOCK_SCHEDULES[key] = tuple(
                (i * segments) // num_locks for i in range(num_locks)
            )
        return cached

    # -- POW preemption --------------------------------------------------------

    def _preempt(self, victim: Transaction) -> None:
        process = self._active.get(victim.tid)
        if process is None or not process.is_alive:
            return
        process.interrupt(PreemptionError(f"tx {victim.tid} preempted (POW)"))
