"""FCFS disk devices and striped disk arrays.

Each :class:`Disk` is a single FCFS server with stochastic per-request
service times (seek + rotation + transfer folded into one
distribution).  :class:`DiskArray` stripes a transaction's page reads
round-robin across the data disks, matching the paper's evenly striped
data layout (§4.1: "the data is evenly striped over the disks").
"""

from __future__ import annotations

import collections
import random
from typing import Deque, List, Tuple

from repro.sim.distributions import Distribution
from repro.sim.engine import Event, Simulator


class Disk:
    """A single FCFS disk.

    Requests are served one at a time in arrival order; an optional
    priority mode serves pending high-priority requests first (used
    only by internal-scheduling ablations, never by the stock DBMS).
    """

    def __init__(
        self,
        sim: Simulator,
        service_time: Distribution,
        rng: random.Random,
        name: str = "disk",
        priority_order: bool = False,
    ):
        self.sim = sim
        self.name = name
        self.service_time = service_time
        self.priority_order = priority_order
        self._rng = rng
        self._queue: Deque[Tuple[int, Event]] = collections.deque()
        self._busy = False
        self._busy_time = 0.0
        self._requests_served = 0

    def submit(self, priority: int = 0) -> Event:
        """Enqueue one page request; the event fires when it completes."""
        done = Event(self.sim)
        if self._busy:
            self._queue.append((priority, done))
        else:
            self._start(done)
        return done

    @property
    def queue_length(self) -> int:
        """Requests waiting (not counting the one in service)."""
        return len(self._queue)

    @property
    def busy_time(self) -> float:
        """Cumulative time the disk arm was busy."""
        return self._busy_time

    @property
    def requests_served(self) -> int:
        """Number of completed requests."""
        return self._requests_served

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the disk was busy."""
        if elapsed <= 0:
            return 0.0
        return self._busy_time / elapsed

    def _start(self, done: Event) -> None:
        self._busy = True
        duration = self.service_time.sample(self._rng)
        timer = self.sim.timeout(duration)
        timer.add_callback(lambda _event: self._finish(done, duration))

    def _finish(self, done: Event, duration: float) -> None:
        self._busy_time += duration
        self._requests_served += 1
        done.succeed()
        if self._queue:
            next_done = self._pop_next()
            self._start(next_done)
        else:
            self._busy = False

    def _pop_next(self) -> Event:
        if not self.priority_order:
            return self._queue.popleft()[1]
        best_index = 0
        best_priority = self._queue[0][0]
        for index, (priority, _event) in enumerate(self._queue):
            if priority > best_priority:
                best_priority = priority
                best_index = index
        _priority, event = self._queue[best_index]
        del self._queue[best_index]
        return event


class DiskArray:
    """``n`` data disks with round-robin page striping.

    A transaction's i-th physical read goes to disk
    ``(home + i) mod n`` where ``home`` is a per-transaction offset, so
    concurrent transactions spread across the whole array exactly as an
    even stripe would.
    """

    def __init__(
        self,
        sim: Simulator,
        num_disks: int,
        service_time: Distribution,
        rng: random.Random,
        priority_order: bool = False,
    ):
        if num_disks < 1:
            raise ValueError(f"num_disks must be >= 1, got {num_disks!r}")
        self.sim = sim
        self.disks: List[Disk] = [
            Disk(sim, service_time, rng, name=f"disk{i}", priority_order=priority_order)
            for i in range(num_disks)
        ]
        self._next_home = 0

    def __len__(self) -> int:
        return len(self.disks)

    def assign_home(self) -> int:
        """A starting disk for a new transaction (round-robin)."""
        home = self._next_home
        self._next_home = (self._next_home + 1) % len(self.disks)
        return home

    def submit(self, home: int, sequence: int, priority: int = 0) -> Event:
        """Submit a transaction's ``sequence``-th page read."""
        disk = self.disks[(home + sequence) % len(self.disks)]
        return disk.submit(priority)

    @property
    def busy_time(self) -> float:
        """Total busy time summed across disks."""
        return sum(disk.busy_time for disk in self.disks)

    @property
    def requests_served(self) -> int:
        """Completed requests summed across disks."""
        return sum(disk.requests_served for disk in self.disks)

    def utilization(self, elapsed: float) -> float:
        """Mean per-disk utilization over ``elapsed``."""
        if elapsed <= 0 or not self.disks:
            return 0.0
        return self.busy_time / (len(self.disks) * elapsed)
