"""FCFS disk devices and striped disk arrays.

Each :class:`Disk` is a single FCFS server with stochastic per-request
service times (seek + rotation + transfer folded into one
distribution).  :class:`DiskArray` stripes a transaction's page reads
round-robin across the data disks, matching the paper's evenly striped
data layout (§4.1: "the data is evenly striped over the disks").

Both speak the :class:`~repro.sim.station.Station` protocol, so the
engine (and any new scenario) can treat them interchangeably with the
CPU pool and the WAL disk.
"""

from __future__ import annotations

import collections
import random
from typing import Deque, List, Optional, Tuple

from repro.sim.distributions import BlockSampler, Distribution
from repro.sim.engine import Event, Simulator
from repro.sim.station import ClassStats, Station


class Disk(Station):
    """A single FCFS disk.

    Requests are served one at a time in arrival order; an optional
    priority mode serves pending high-priority requests first (used
    only by internal-scheduling ablations, never by the stock DBMS).

    Service times come through a :class:`BlockSampler` (pre-drawn in
    blocks, served in draw order).  Disks that share one rng — the
    members of a :class:`DiskArray` — must share one sampler so the
    stream's interleaving across disks is exactly what per-request
    sampling would have produced.
    """

    def __init__(
        self,
        sim: Simulator,
        service_time: Distribution,
        rng: random.Random,
        name: str = "disk",
        priority_order: bool = False,
        sampler: Optional[BlockSampler] = None,
    ):
        super().__init__(sim, name)
        self.service_time = service_time
        self.priority_order = priority_order
        # NB: the rng is deliberately NOT stashed on the disk — every
        # draw must go through the (possibly shared) block sampler, or
        # the pre-drawn stream interleaving would silently diverge
        self._sample = sampler if sampler is not None else BlockSampler(
            service_time, rng
        )
        self._queue: Deque[Tuple[int, Event, float]] = collections.deque()
        self._busy = False
        self._busy_time = 0.0
        self._requests_served = 0
        # The in-service request; a single slot suffices for FCFS, and
        # the shared bound callback keeps completion allocation-free.
        self._current_done: Event | None = None
        self._current_duration = 0.0
        self._current_priority = 0
        self._current_enqueued = 0.0
        self._finish_callback = self._finish
        self._fire = sim._fire_now  # same-instant completion lane

    def submit(self, priority: int = 0) -> Event:
        """Enqueue one page request; the event fires when it completes."""
        done = self.sim.event()  # pooled
        if self._busy:
            self._queue.append((priority, done, self.sim.now))
        else:
            self._start(done, priority, self.sim.now)
        return done

    def serve(self, demand: float = 0.0, priority: int = 0, weight: float = 1.0) -> Event:
        """Station face of :meth:`submit` (service time is sampled)."""
        if demand != 0.0:
            raise ValueError(
                f"disk {self.name!r} samples its own service time; demand must be 0"
            )
        return self.submit(priority)

    @property
    def queue_length(self) -> int:
        """Requests waiting (not counting the one in service)."""
        return len(self._queue)

    @property
    def busy_time(self) -> float:
        """Cumulative time the disk arm was busy."""
        return self._busy_time

    @property
    def requests_served(self) -> int:
        """Number of completed requests."""
        return self._requests_served

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the disk was busy."""
        if elapsed <= 0:
            return 0.0
        return self._busy_time / elapsed

    def _start(self, done: Event, priority: int, enqueued: float) -> None:
        self._busy = True
        duration = self._sample()
        self._current_done = done
        self._current_duration = duration
        self._current_priority = priority
        self._current_enqueued = enqueued
        timer = self.sim.timeout(duration)
        timer._cb = self._finish_callback

    def _finish(self, _event: Event) -> None:
        done = self._current_done
        duration = self._current_duration
        self._current_done = None
        self._busy_time += duration
        self._requests_served += 1
        self._record(
            self._current_priority,
            service_time=duration,
            wait_time=max(0.0, self.sim.now - duration - self._current_enqueued),
        )
        # inlined done.succeed(): known untriggered, no value
        done._triggered = True
        self._fire(done)
        if self._queue:
            priority, next_done, enqueued = self._pop_next()
            self._start(next_done, priority, enqueued)
        else:
            self._busy = False

    def _pop_next(self) -> Tuple[int, Event, float]:
        if not self.priority_order:
            return self._queue.popleft()
        best_index = 0
        best_priority = self._queue[0][0]
        for index, (priority, _event, _enqueued) in enumerate(self._queue):
            if priority > best_priority:
                best_priority = priority
                best_index = index
        entry = self._queue[best_index]
        del self._queue[best_index]
        return entry


class DiskArray(Station):
    """``n`` data disks with round-robin page striping.

    A transaction's i-th physical read goes to disk
    ``(home + i) mod n`` where ``home`` is a per-transaction offset, so
    concurrent transactions spread across the whole array exactly as an
    even stripe would.
    """

    def __init__(
        self,
        sim: Simulator,
        num_disks: int,
        service_time: Distribution,
        rng: random.Random,
        priority_order: bool = False,
    ):
        if num_disks < 1:
            raise ValueError(f"num_disks must be >= 1, got {num_disks!r}")
        super().__init__(sim, "disk")
        # one sampler for the whole array: the member disks draw from a
        # single shared stream, so buffering must also be shared to keep
        # the cross-disk interleaving identical to per-request sampling
        sampler = BlockSampler(service_time, rng)
        self.disks: List[Disk] = [
            Disk(
                sim, service_time, rng,
                name=f"disk{i}", priority_order=priority_order, sampler=sampler,
            )
            for i in range(num_disks)
        ]
        self._next_home = 0
        self._round_robin = 0

    def __len__(self) -> int:
        return len(self.disks)

    def assign_home(self) -> int:
        """A starting disk for a new transaction (round-robin)."""
        home = self._next_home
        self._next_home = (self._next_home + 1) % len(self.disks)
        return home

    def submit(self, home: int, sequence: int, priority: int = 0) -> Event:
        """Submit a transaction's ``sequence``-th page read."""
        disk = self.disks[(home + sequence) % len(self.disks)]
        return disk.submit(priority)

    def serve(self, demand: float = 0.0, priority: int = 0, weight: float = 1.0) -> Event:
        """Station face: one page read, striped round-robin.

        Uses its own rotor so protocol users don't perturb the
        per-transaction ``assign_home`` sequence.
        """
        if demand != 0.0:
            raise ValueError(
                f"disk array {self.name!r} samples its own service time; "
                "demand must be 0"
            )
        disk = self.disks[self._round_robin % len(self.disks)]
        self._round_robin += 1
        return disk.submit(priority)

    def class_stats(self):
        """Merged per-class stats across the member disks.

        The merge is a fresh snapshot; the live counters stay on the
        member disks (the array itself never records).
        """
        merged = {}
        for disk in self.disks:
            for priority, stats in disk.per_class.items():
                into = merged.get(priority)
                if into is None:
                    into = merged[priority] = ClassStats()
                into.requests += stats.requests
                into.service_time += stats.service_time
                into.wait_time += stats.wait_time
        return merged

    @property
    def busy_time(self) -> float:
        """Total busy time summed across disks."""
        return sum(disk.busy_time for disk in self.disks)

    @property
    def requests_served(self) -> int:
        """Completed requests summed across disks."""
        return sum(disk.requests_served for disk in self.disks)

    def utilization(self, elapsed: float) -> float:
        """Mean per-disk utilization over ``elapsed``."""
        if elapsed <= 0 or not self.disks:
            return 0.0
        return self.busy_time / (len(self.disks) * elapsed)
