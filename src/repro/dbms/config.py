"""Hardware and policy configuration for the simulated DBMS.

The paper varies the number of CPUs (1–2), the number of data disks
(1–6, one further disk always holds the log), main memory / buffer pool
sizes, and the isolation level (Repeatable Read vs Uncommitted Read) —
see Tables 1 and 2.  :class:`HardwareConfig` captures the hardware
knobs and :class:`InternalPolicy` the internal-scheduling knobs used in
§5.2 (lock-queue prioritization and CPU prioritization).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Optional


class IsolationLevel(enum.Enum):
    """The two isolation levels exercised in the paper.

    * ``RR`` (Repeatable Read, DB2 isolation level 3): readers take
      shared locks held until commit — the high-contention default.
    * ``UR`` (Uncommitted Read): readers take no locks; only writers
      lock.
    """

    RR = "RR"
    UR = "UR"


class LockSchedulingPolicy(enum.Enum):
    """How the lock manager orders conflicting waiters.

    * ``FIFO`` — strict arrival order (the stock DBMS behaviour).
    * ``PRIORITY`` — high-priority waiters move ahead of low-priority
      waiters.
    * ``POW`` — Preempt-on-Wait [McWherter et al., ICDE'05]: priority
      ordering plus preemption (abort + restart) of a low-priority lock
      holder that is itself blocked at another lock queue.
    """

    FIFO = "fifo"
    PRIORITY = "priority"
    POW = "pow"


@dataclasses.dataclass(frozen=True)
class HardwareConfig:
    """The simulated machine.

    Parameters
    ----------
    num_cpus:
        CPU count (the paper uses 1 or 2).
    num_disks:
        Data-disk count (the paper uses 1–4 for data; the log always
        lives on its own disk, mirroring the paper's setup).
    memory_mb / bufferpool_mb:
        Sizes controlling the page-cache hit probability.  The buffer
        pool plus OS file cache act as one cache of
        ``memory_mb`` (the paper sizes both; what matters for the
        simulation is the total cached fraction of the database).
    cpu_speed:
        Relative CPU speed multiplier (1.0 = the paper's 2.4 GHz P4).
    disk_service_mean_ms / disk_service_scv:
        Per-page physical read time moments.  8 ms mean approximates a
        2006-era IDE drive doing small random reads.
    log_write_mean_ms:
        Sequential log force time.
    page_kb:
        Page size used to convert megabytes to page counts.
    network_delay_ms:
        Mean of an exponential per-transaction network/front-end delay
        served by a drop-in :class:`~repro.sim.station.DelayStation`;
        0 (the default) omits the station entirely.
    """

    num_cpus: int = 1
    num_disks: int = 1
    memory_mb: int = 1024
    bufferpool_mb: int = 1024
    cpu_speed: float = 1.0
    disk_service_mean_ms: float = 8.0
    disk_service_scv: float = 0.35
    log_write_mean_ms: float = 8.0
    group_commit: bool = True
    page_kb: int = 4
    network_delay_ms: float = 0.0

    #: Fields left out of the canonical fingerprint encoding while they
    #: hold their default — fields added after the first release go
    #: here so historical configs keep byte-identical content hashes
    #: (see :func:`repro.core.system.canonical_jsonable`).
    FINGERPRINT_OMIT_DEFAULTS = frozenset({"network_delay_ms"})

    def __post_init__(self) -> None:
        if self.num_cpus < 1:
            raise ValueError(f"num_cpus must be >= 1, got {self.num_cpus!r}")
        if self.num_disks < 1:
            raise ValueError(f"num_disks must be >= 1, got {self.num_disks!r}")
        if self.memory_mb <= 0 or self.bufferpool_mb <= 0:
            raise ValueError("memory and buffer pool sizes must be positive")
        if self.cpu_speed <= 0:
            raise ValueError(f"cpu_speed must be positive, got {self.cpu_speed!r}")
        if self.disk_service_mean_ms <= 0 or self.log_write_mean_ms <= 0:
            raise ValueError("disk service times must be positive")
        if self.network_delay_ms < 0:
            raise ValueError(
                f"network_delay_ms must be non-negative, got {self.network_delay_ms!r}"
            )

    #: Main memory the OS and DBMS binaries consume before any page caching.
    OS_OVERHEAD_MB = 256
    #: Fraction of the remaining memory that effectively caches database pages.
    CACHE_EFFICIENCY = 0.75

    @property
    def cache_pages(self) -> int:
        """Pages of database data the machine can effectively cache.

        Database pages live both in the buffer pool and in the OS file
        cache, so the effective cache is the larger of the two, scaled
        by an efficiency factor and net of a fixed OS overhead.  This
        reproduces Table 1's intent: e.g. the 3 GB-memory
        configurations cache their whole database while the 512 MB
        ones cache only a sliver of a 6 GB database.
        """
        file_cache_mb = max(0, self.memory_mb - self.OS_OVERHEAD_MB)
        effective_mb = self.CACHE_EFFICIENCY * max(self.bufferpool_mb, file_cache_mb)
        return max(1, int(effective_mb * 1024) // self.page_kb)

    def with_hardware(
        self,
        num_cpus: Optional[int] = None,
        num_disks: Optional[int] = None,
    ) -> "HardwareConfig":
        """A copy with a different CPU and/or disk count."""
        return dataclasses.replace(
            self,
            num_cpus=self.num_cpus if num_cpus is None else num_cpus,
            num_disks=self.num_disks if num_disks is None else num_disks,
        )


@dataclasses.dataclass(frozen=True)
class InternalPolicy:
    """Internal (inside-the-DBMS) scheduling configuration (§5.2).

    ``lock_scheduling`` selects the lock-queue policy; ``cpu_weights``
    maps a priority class to its weighted-processor-sharing weight.
    The default is the stock DBMS: FIFO locks and equal CPU shares.
    """

    lock_scheduling: LockSchedulingPolicy = LockSchedulingPolicy.FIFO
    cpu_weights: Optional[Dict[int, float]] = None

    def cpu_weight(self, priority: int) -> float:
        """The CPU weight for a transaction of the given priority."""
        if not self.cpu_weights:
            return 1.0
        return self.cpu_weights.get(priority, 1.0)

    @staticmethod
    def stock() -> "InternalPolicy":
        """The unmodified DBMS: no internal prioritization."""
        return InternalPolicy()

    @staticmethod
    def pow_locks() -> "InternalPolicy":
        """Preempt-on-Wait lock prioritization (the paper's setup-1 run)."""
        return InternalPolicy(lock_scheduling=LockSchedulingPolicy.POW)

    @staticmethod
    def cpu_priorities(high_weight: float = 20.0, low_weight: float = 1.0) -> "InternalPolicy":
        """Weighted-CPU internal prioritization (the paper's renice run).

        The default 20:1 share ratio models ``renice -20`` vs
        ``renice 20`` of the DB2 processes.
        """
        from repro.dbms.transaction import Priority

        return InternalPolicy(
            cpu_weights={Priority.HIGH: high_weight, Priority.LOW: low_weight}
        )
