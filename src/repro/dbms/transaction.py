"""Transaction descriptors.

A :class:`Transaction` is the unit the external scheduler admits and
the DBMS engine executes.  Its resource demands (CPU seconds, logical
page touches, lock set) are sampled by the workload generator when the
transaction is created; the engine then realizes them against the
simulated hardware.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple


class Priority(enum.IntEnum):
    """Priority classes used by the §5 prioritization experiments.

    Higher numeric value = more important.  The paper uses exactly two
    classes with 10% of transactions assigned HIGH.
    """

    LOW = 0
    HIGH = 1


class TxStatus(enum.Enum):
    """Lifecycle states of a transaction."""

    QUEUED = "queued"
    RUNNING = "running"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One transaction instance with sampled resource demands.

    A hand-rolled ``__slots__`` class rather than a dataclass: the
    workload sources mint one per arrival on the simulator's hot path,
    and slot stores are both faster to construct and faster for the
    engine's lifecycle bookkeeping to update.

    Attributes
    ----------
    tid:
        Unique transaction id (assigned by the workload source).
    type_name:
        Workload transaction type (e.g. ``"NewOrder"``).
    cpu_demand:
        Total CPU seconds required.
    page_accesses:
        Logical page touches; the buffer pool decides how many become
        physical reads.
    lock_requests:
        ``(item, exclusive)`` pairs acquired under strict 2PL.  Under
        Uncommitted Read isolation the engine skips the shared ones.
    is_update:
        Whether commit forces a log write.
    priority:
        Priority class (see :class:`Priority`).
    client_id:
        Issuing closed-loop client, if any.

    The remaining attributes are lifecycle fields (timestamps, status,
    restart/lock-wait accounting) filled in as the transaction
    progresses; ``_completion_event`` is the external scheduler's
    stashed completion event.
    """

    __slots__ = (
        "tid", "type_name", "cpu_demand", "page_accesses", "lock_requests",
        "is_update", "priority", "client_id", "arrival_time", "dispatch_time",
        "completion_time", "status", "restarts", "lock_wait_time",
        "_completion_event",
    )

    def __init__(
        self,
        tid: int,
        type_name: str,
        cpu_demand: float,
        page_accesses: int,
        lock_requests: Optional[Sequence[Tuple[int, bool]]] = None,
        is_update: bool = False,
        priority: int = Priority.LOW,
        client_id: Optional[int] = None,
        arrival_time: float = 0.0,
        dispatch_time: Optional[float] = None,
        completion_time: Optional[float] = None,
        status: TxStatus = TxStatus.QUEUED,
        restarts: int = 0,
        lock_wait_time: float = 0.0,
    ):
        if cpu_demand < 0:
            raise ValueError(f"cpu_demand must be non-negative, got {cpu_demand!r}")
        if page_accesses < 0:
            raise ValueError(
                f"page_accesses must be non-negative, got {page_accesses!r}"
            )
        self.tid = tid
        self.type_name = type_name
        self.cpu_demand = cpu_demand
        self.page_accesses = page_accesses
        self.lock_requests = lock_requests if lock_requests is not None else []
        self.is_update = is_update
        self.priority = priority
        self.client_id = client_id
        self.arrival_time = arrival_time
        self.dispatch_time = dispatch_time
        self.completion_time = completion_time
        self.status = status
        self.restarts = restarts
        self.lock_wait_time = lock_wait_time
        self._completion_event = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Transaction(tid={self.tid}, type_name={self.type_name!r}, "
            f"priority={int(self.priority)}, status={self.status})"
        )

    @property
    def response_time(self) -> Optional[float]:
        """Arrival-to-completion time (includes external queueing)."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival_time

    @property
    def execution_time(self) -> Optional[float]:
        """Dispatch-to-completion time (inside the DBMS only)."""
        if self.completion_time is None or self.dispatch_time is None:
            return None
        return self.completion_time - self.dispatch_time

    @property
    def external_wait(self) -> Optional[float]:
        """Time spent queued outside the DBMS."""
        if self.dispatch_time is None:
            return None
        return self.dispatch_time - self.arrival_time

    def demand_total(self, disk_service_mean: float, miss_probability: float) -> float:
        """Rough total service demand (CPU + expected physical I/O).

        Used for the C² variability statistics of §3.2 and by
        size-aware external policies.
        """
        return self.cpu_demand + self.page_accesses * miss_probability * disk_service_mean
