"""Transaction descriptors.

A :class:`Transaction` is the unit the external scheduler admits and
the DBMS engine executes.  Its resource demands (CPU seconds, logical
page touches, lock set) are sampled by the workload generator when the
transaction is created; the engine then realizes them against the
simulated hardware.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional, Tuple


class Priority(enum.IntEnum):
    """Priority classes used by the §5 prioritization experiments.

    Higher numeric value = more important.  The paper uses exactly two
    classes with 10% of transactions assigned HIGH.
    """

    LOW = 0
    HIGH = 1


class TxStatus(enum.Enum):
    """Lifecycle states of a transaction."""

    QUEUED = "queued"
    RUNNING = "running"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclasses.dataclass
class Transaction:
    """One transaction instance with sampled resource demands.

    Attributes
    ----------
    tid:
        Unique transaction id (assigned by the workload source).
    type_name:
        Workload transaction type (e.g. ``"NewOrder"``).
    cpu_demand:
        Total CPU seconds required.
    page_accesses:
        Logical page touches; the buffer pool decides how many become
        physical reads.
    lock_requests:
        ``(item, exclusive)`` pairs acquired under strict 2PL.  Under
        Uncommitted Read isolation the engine skips the shared ones.
    is_update:
        Whether commit forces a log write.
    priority:
        Priority class (see :class:`Priority`).
    client_id:
        Issuing closed-loop client, if any.
    """

    tid: int
    type_name: str
    cpu_demand: float
    page_accesses: int
    lock_requests: List[Tuple[int, bool]] = dataclasses.field(default_factory=list)
    is_update: bool = False
    priority: int = Priority.LOW
    client_id: Optional[int] = None

    # lifecycle timestamps, filled in as the transaction progresses
    arrival_time: float = 0.0
    dispatch_time: Optional[float] = None
    completion_time: Optional[float] = None
    status: TxStatus = TxStatus.QUEUED
    restarts: int = 0
    lock_wait_time: float = 0.0

    def __post_init__(self) -> None:
        if self.cpu_demand < 0:
            raise ValueError(f"cpu_demand must be non-negative, got {self.cpu_demand!r}")
        if self.page_accesses < 0:
            raise ValueError(
                f"page_accesses must be non-negative, got {self.page_accesses!r}"
            )

    @property
    def response_time(self) -> Optional[float]:
        """Arrival-to-completion time (includes external queueing)."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival_time

    @property
    def execution_time(self) -> Optional[float]:
        """Dispatch-to-completion time (inside the DBMS only)."""
        if self.completion_time is None or self.dispatch_time is None:
            return None
        return self.completion_time - self.dispatch_time

    @property
    def external_wait(self) -> Optional[float]:
        """Time spent queued outside the DBMS."""
        if self.dispatch_time is None:
            return None
        return self.dispatch_time - self.arrival_time

    def demand_total(self, disk_service_mean: float, miss_probability: float) -> float:
        """Rough total service demand (CPU + expected physical I/O).

        Used for the C² variability statistics of §3.2 and by
        size-aware external policies.
        """
        return self.cpu_demand + self.page_accesses * miss_probability * disk_service_mean
