"""An event-driven DBMS simulator.

This package is the substrate standing in for the paper's IBM DB2 /
Shore installations (see DESIGN.md §2).  A :class:`DatabaseEngine`
executes :class:`Transaction` objects against simulated hardware:

* :class:`ProcessorSharingPool` — k CPUs shared processor-sharing
  style, with per-class weights to model internal CPU prioritization
  (the paper's ``renice`` experiment).
* :class:`Disk` / :class:`DiskArray` — FCFS disks with data striped
  across the array.
* :class:`LogManager` — the dedicated WAL disk with group commit.
* :class:`AnalyticBufferPool` / :class:`LRUBufferPool` — page-cache
  models deciding which logical page touches become physical reads.
* :class:`LockManager` — strict two-phase locking with S/X modes,
  Repeatable Read or Uncommitted Read isolation, wait-for-graph
  deadlock detection, and the paper's internal lock-scheduling policies
  (priority queues and Preempt-on-Wait).
"""

from repro.dbms.bufferpool import AnalyticBufferPool, LRUBufferPool
from repro.dbms.config import (
    HardwareConfig,
    InternalPolicy,
    IsolationLevel,
    LockSchedulingPolicy,
)
from repro.dbms.cpu import CProcessorSharingPool, ProcessorSharingPool, make_ps_pool
from repro.dbms.disk import Disk, DiskArray
from repro.dbms.engine import DatabaseEngine
from repro.dbms.lockmgr import (
    DeadlockError,
    LockManager,
    LockMode,
    PreemptionError,
)
from repro.dbms.transaction import Priority, Transaction
from repro.dbms.wal import LogManager

__all__ = [
    "AnalyticBufferPool",
    "DatabaseEngine",
    "DeadlockError",
    "Disk",
    "DiskArray",
    "HardwareConfig",
    "InternalPolicy",
    "IsolationLevel",
    "LRUBufferPool",
    "LockManager",
    "LockMode",
    "LockSchedulingPolicy",
    "LogManager",
    "PreemptionError",
    "Priority",
    "CProcessorSharingPool",
    "ProcessorSharingPool",
    "make_ps_pool",
    "Transaction",
]
