"""Buffer-pool models deciding which page touches hit the cache.

Two implementations with the same interface:

* :class:`LRUBufferPool` — an exact LRU page cache.  Faithful but too
  slow to drive millions of page references through in pure Python.
* :class:`AnalyticBufferPool` — the steady-state hit probability of an
  LRU cache under the independent-reference model with a hot/cold
  access skew (the classic "80/20" approximation: the cache retains
  the hottest pages).  This is the default used by the DBMS engine.

The paper's workload table (Table 1) is entirely about this knob: the
same TPC-C/TPC-W mixes become CPU bound when the database fits in the
cache and I/O bound when it does not.
"""

from __future__ import annotations

import collections
import random
from typing import Optional


class AnalyticBufferPool:
    """Closed-form LRU hit probability under hot/cold page skew.

    Parameters
    ----------
    db_pages:
        Total database size in pages.
    pool_pages:
        Cache capacity in pages.
    hot_access_fraction / hot_page_fraction:
        Fraction of references that target the hot set and the fraction
        of the database that the hot set occupies (defaults: the 80/20
        rule).  Under LRU the cache preferentially retains hot pages,
        so the model fills the cache hot-first.
    """

    def __init__(
        self,
        db_pages: int,
        pool_pages: int,
        hot_access_fraction: float = 0.8,
        hot_page_fraction: float = 0.2,
    ):
        if db_pages < 1 or pool_pages < 1:
            raise ValueError("db_pages and pool_pages must be positive")
        if not 0.0 <= hot_access_fraction <= 1.0:
            raise ValueError(f"bad hot_access_fraction {hot_access_fraction!r}")
        if not 0.0 < hot_page_fraction <= 1.0:
            raise ValueError(f"bad hot_page_fraction {hot_page_fraction!r}")
        self.db_pages = int(db_pages)
        self.pool_pages = int(pool_pages)
        self.hot_access_fraction = hot_access_fraction
        self.hot_page_fraction = hot_page_fraction
        self._hit_probability = self._compute_hit_probability()
        self._hits = 0
        self._misses = 0

    def _compute_hit_probability(self) -> float:
        if self.pool_pages >= self.db_pages:
            return 1.0
        hot_pages = max(1.0, self.hot_page_fraction * self.db_pages)
        cold_pages = max(1.0, self.db_pages - hot_pages)
        cold_access = 1.0 - self.hot_access_fraction
        if self.pool_pages >= hot_pages:
            cold_cached = (self.pool_pages - hot_pages) / cold_pages
            return self.hot_access_fraction + cold_access * cold_cached
        return self.hot_access_fraction * (self.pool_pages / hot_pages)

    @property
    def hit_probability(self) -> float:
        """Steady-state probability that a page touch hits the cache."""
        return self._hit_probability

    def access(self, rng: random.Random, page: Optional[int] = None) -> bool:
        """Touch a page; returns True on a cache hit."""
        hit = rng.random() < self._hit_probability
        if hit:
            self._hits += 1
        else:
            self._misses += 1
        return hit

    def sample_misses(self, rng: random.Random, accesses: int) -> int:
        """Number of physical reads among ``accesses`` page touches.

        Draws Binomial(accesses, miss probability); exact summation is
        used for small counts and a clamped normal approximation for
        large ones (the engine only needs the count, not the pattern).
        """
        if accesses <= 0:
            return 0
        miss_p = 1.0 - self._hit_probability
        if miss_p <= 0.0:
            return 0
        if miss_p >= 1.0:
            return accesses
        if accesses <= 64:
            random = rng.random  # bound once; same draws, same order
            misses = 0
            for _ in range(accesses):
                if random() < miss_p:
                    misses += 1
            return misses
        mean = accesses * miss_p
        std = (accesses * miss_p * (1.0 - miss_p)) ** 0.5
        draw = round(rng.gauss(mean, std))
        return max(0, min(accesses, draw))

    @property
    def observed_hit_rate(self) -> float:
        """Empirical hit rate over all :meth:`access` calls so far."""
        total = self._hits + self._misses
        if total == 0:
            return 0.0
        return self._hits / total


class LRUBufferPool:
    """An exact least-recently-used page cache.

    Suitable for unit tests and small workloads; the engine can be
    configured to use it instead of the analytic model for
    cross-validation (see ``tests/test_bufferpool.py``).
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = int(capacity)
        self._pages: "collections.OrderedDict[int, None]" = collections.OrderedDict()
        self._hits = 0
        self._misses = 0

    def access(self, rng: random.Random, page: Optional[int] = None) -> bool:
        """Touch ``page``; returns True on a hit, evicting LRU on miss."""
        if page is None:
            raise ValueError("LRUBufferPool.access requires an explicit page id")
        if page in self._pages:
            self._pages.move_to_end(page)
            self._hits += 1
            return True
        self._misses += 1
        self._pages[page] = None
        if len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
        return False

    def __contains__(self, page: int) -> bool:
        return page in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def observed_hit_rate(self) -> float:
        """Empirical hit rate over all accesses so far."""
        total = self._hits + self._misses
        if total == 0:
            return 0.0
        return self._hits / total
