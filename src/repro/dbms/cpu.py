"""A weighted processor-sharing CPU pool.

The paper models (and measures) the DBMS CPU as processor sharing:
every runnable transaction gets an equal share of the k CPUs, with no
job using more than one CPU at a time.  Internal CPU prioritization
(the ``renice`` experiment of §5.2) skews the shares by a per-class
weight, which is exactly weighted processor sharing.

The implementation is event driven: whenever the active-job set (or a
weight) changes, remaining service is settled at the old rates, new
rates are computed by max-min water-filling (each job's rate is capped
at one core), and a single completion timer is scheduled for the next
finishing job.  This is exact, not time-sliced.
"""

from __future__ import annotations

import itertools
from typing import Dict

from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.station import Station

_EPSILON = 1e-9


class _Job:
    __slots__ = ("handle", "demand", "remaining", "weight", "event", "rate", "priority")

    def __init__(
        self, handle: int, demand: float, weight: float, event: Event, priority: int = 0
    ):
        self.handle = handle
        self.demand = demand
        self.remaining = demand
        self.weight = weight
        self.event = event
        self.rate = 0.0
        self.priority = priority


class ProcessorSharingPool(Station):
    """``cores`` CPUs of speed ``speed`` shared by weighted PS.

    A job of demand ``d`` submitted via :meth:`execute` finishes after
    ``d`` units of CPU *work* have been served to it; with ``n`` equal
    weight jobs and ``k`` cores each job is served at rate
    ``min(speed, k * speed / n)``.
    """

    def __init__(self, sim: Simulator, cores: int, speed: float = 1.0):
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores!r}")
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed!r}")
        super().__init__(sim, "cpu")
        self.cores = cores
        self.speed = speed
        self._jobs: Dict[int, _Job] = {}
        self._handles = itertools.count(1)
        self._last_settle = sim.now
        self._timer_generation = 0
        self._timer_callback = self._on_timer_event  # no per-arm closure
        self._weighted_jobs = 0  # active jobs with weight != 1.0
        self._busy_core_time = 0.0  # integral of (total service rate / speed) dt
        self._work_completed = 0.0

    # -- public API ------------------------------------------------------

    def execute(self, demand: float, weight: float = 1.0, priority: int = 0) -> Event:
        """Submit a job of CPU demand ``demand``; fires when served.

        ``weight`` is the weighted-PS share weight (used by internal
        CPU prioritization); it must be positive.
        """
        if demand < 0:
            raise ValueError(f"demand must be non-negative, got {demand!r}")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight!r}")
        event = Event(self.sim)
        if demand <= _EPSILON:
            self._record(priority)
            event.succeed()
            return event
        self._settle()
        job = _Job(next(self._handles), float(demand), weight, event, priority)
        self._jobs[job.handle] = job
        if weight != 1.0:
            self._weighted_jobs += 1
        self._reallocate_and_arm()
        return event

    def serve(self, demand: float, priority: int = 0, weight: float = 1.0) -> Event:
        """The :class:`~repro.sim.station.Station` face of :meth:`execute`."""
        return self.execute(demand, weight=weight, priority=priority)

    def set_weight(self, handle: int, weight: float) -> None:
        """Change a running job's weight (rarely needed; for tooling)."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight!r}")
        job = self._jobs.get(handle)
        if job is None:
            raise SimulationError(f"no active job with handle {handle!r}")
        self._settle()
        if (job.weight != 1.0) != (weight != 1.0):
            self._weighted_jobs += 1 if weight != 1.0 else -1
        job.weight = weight
        self._reallocate_and_arm()

    @property
    def active_jobs(self) -> int:
        """Number of jobs currently in service."""
        return len(self._jobs)

    @property
    def busy_core_time(self) -> float:
        """Cumulative busy time summed over cores (for utilization)."""
        self._settle()
        return self._busy_core_time

    @property
    def busy_time(self) -> float:
        """Station-protocol alias for :attr:`busy_core_time`."""
        return self.busy_core_time

    @property
    def work_completed(self) -> float:
        """Total CPU demand served to completed jobs."""
        return self._work_completed

    def utilization(self, elapsed: float) -> float:
        """Mean per-core utilization over ``elapsed`` time units."""
        if elapsed <= 0:
            return 0.0
        return self.busy_core_time / (self.cores * elapsed)

    # -- internals --------------------------------------------------------

    def _settle(self) -> None:
        """Account for work served since the last settle point."""
        now = self.sim.now
        dt = now - self._last_settle
        if dt <= 0:
            self._last_settle = now
            return
        total_rate = 0.0
        for job in self._jobs.values():
            served = job.rate * dt
            job.remaining -= served
            if job.remaining < 0:
                job.remaining = 0.0
            total_rate += job.rate
        self._busy_core_time += (total_rate / self.speed) * dt
        self._last_settle = now

    def _water_fill(self) -> None:
        """Weighted max-min allocation with a per-job cap of one core."""
        if self._weighted_jobs == 0:
            # Uniform weights — the overwhelmingly common case.  Every
            # job gets min(speed, capacity / n), exactly what the
            # general loop below computes for equal weights.
            n = len(self._jobs)
            if n == 0:
                return
            speed = self.speed
            capacity = self.cores * speed
            if capacity <= _EPSILON:
                for job in self._jobs.values():
                    job.rate = 0.0
                return
            share = capacity / n
            rate = speed if share >= speed - _EPSILON else share
            for job in self._jobs.values():
                job.rate = rate
            return
        active = list(self._jobs.values())
        for job in active:
            job.rate = 0.0
        capacity = self.cores * self.speed
        while active and capacity > _EPSILON:
            total_weight = sum(job.weight for job in active)
            share_per_weight = capacity / total_weight
            capped = [
                job for job in active if job.weight * share_per_weight >= self.speed - _EPSILON
            ]
            if not capped:
                for job in active:
                    job.rate = job.weight * share_per_weight
                return
            for job in capped:
                job.rate = self.speed
                capacity -= self.speed
            active = [job for job in active if job.rate == 0.0]

    def _reallocate_and_arm(self) -> None:
        self._water_fill()
        self._complete_finished()
        self._arm_timer()

    def _complete_finished(self) -> None:
        finished = [job for job in self._jobs.values() if job.remaining <= _EPSILON]
        for job in finished:
            del self._jobs[job.handle]
            if job.weight != 1.0:
                self._weighted_jobs -= 1
            self._work_completed += job.demand
            self._record(job.priority, service_time=job.demand)
            job.event.succeed()
        if finished:
            self._water_fill()

    def _arm_timer(self) -> None:
        self._timer_generation = generation = self._timer_generation + 1
        next_finish = None
        for job in self._jobs.values():
            if job.rate > _EPSILON:
                eta = job.remaining / job.rate
                if next_finish is None or eta < next_finish:
                    next_finish = eta
        if next_finish is None:
            return
        # The generation travels as the timer's value so arming needs no
        # closure; a stale timer (superseded by a reallocation) is
        # recognized and ignored in the shared callback.
        timer = self.sim.timeout(max(0.0, next_finish), value=generation)
        timer._cb = self._timer_callback

    def _on_timer_event(self, event) -> None:
        self._on_timer(event.value)

    def _on_timer(self, generation: int) -> None:
        if generation != self._timer_generation:
            return  # superseded by a later reallocation
        self._settle()
        self._complete_finished()
        self._arm_timer()
