"""A weighted processor-sharing CPU pool.

The paper models (and measures) the DBMS CPU as processor sharing:
every runnable transaction gets an equal share of the k CPUs, with no
job using more than one CPU at a time.  Internal CPU prioritization
(the ``renice`` experiment of §5.2) skews the shares by a per-class
weight, which is exactly weighted processor sharing.

The implementation is event driven: whenever the active-job set (or a
weight) changes, remaining service is settled at the old rates, new
rates are computed by max-min water-filling (each job's rate is capped
at one core), and a single completion timer is scheduled for the next
finishing job.  This is exact, not time-sliced.

The pool is the simulator's single hottest component (roughly one in
three kernel events is a CPU timer), so the uniform-weight case — the
stock DBMS, where every job runs at the *same* rate — is specialized
end to end:

* the shared rate lives in one pool-level field (``_uniform_rate``)
  instead of per-job attributes, making water-filling O(1);
* settling, completion detection and next-finish selection fuse into a
  single pass over the jobs (:meth:`_settle_scan`), tracking the
  minimum surviving remaining work, so arming the completion timer
  needs one division and no extra scan (dividing by the one positive
  shared rate is monotone, hence ``min(remaining)/rate`` is bitwise the
  minimum of the per-job quotients the general path computes).

The weighted path keeps the general per-job-rate algorithm.  Both
paths perform the exact same floating-point operations in the same
order as the straightforward implementation, so simulated timestamps
are bit-identical.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.station import ClassStats, Station

_EPSILON = 1e-9


class _Job:
    __slots__ = ("handle", "demand", "remaining", "weight", "event", "rate", "priority")

    def __init__(
        self, handle: int, demand: float, weight: float, event: Event, priority: int = 0
    ):
        self.handle = handle
        self.demand = demand
        self.remaining = demand
        self.weight = weight
        self.event = event
        self.rate = 0.0
        self.priority = priority


class ProcessorSharingPool(Station):
    """``cores`` CPUs of speed ``speed`` shared by weighted PS.

    A job of demand ``d`` submitted via :meth:`execute` finishes after
    ``d`` units of CPU *work* have been served to it; with ``n`` equal
    weight jobs and ``k`` cores each job is served at rate
    ``min(speed, k * speed / n)``.
    """

    def __init__(self, sim: Simulator, cores: int, speed: float = 1.0):
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores!r}")
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed!r}")
        super().__init__(sim, "cpu")
        self.cores = cores
        self.speed = speed
        self._capacity = cores * speed  # total service rate on offer
        self._speed_eps = speed - _EPSILON  # per-job cap, tolerance folded in
        self._jobs: Dict[int, _Job] = {}
        self._handles = itertools.count(1)
        self._last_settle = sim.now
        self._timer_generation = 0
        self._timer_callback = self._on_timer  # no per-arm closure
        self._fire = sim._fire_now  # same-instant completion lane
        self._weighted_jobs = 0  # active jobs with weight != 1.0
        #: The shared service rate while all weights are 1.0 (None when
        #: the weighted general path owns the per-job ``rate`` fields).
        self._uniform_rate: Optional[float] = 0.0
        # cached min remaining among surviving jobs, maintained by the
        # uniform-mode scans so same-instant re-settles can skip the
        # O(jobs) pass entirely; _least_valid guards staleness and
        # _needs_scan flags completions a metrics settle left pending
        self._least_remaining: Optional[float] = None
        self._least_valid = True
        self._needs_scan = False
        self._busy_core_time = 0.0  # integral of (total service rate / speed) dt
        self._work_completed = 0.0

    # -- public API ------------------------------------------------------

    def execute(self, demand: float, weight: float = 1.0, priority: int = 0) -> Event:
        """Submit a job of CPU demand ``demand``; fires when served.

        ``weight`` is the weighted-PS share weight (used by internal
        CPU prioritization); it must be positive.
        """
        if demand < 0:
            raise ValueError(f"demand must be non-negative, got {demand!r}")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight!r}")
        if demand <= _EPSILON:
            self._record(priority)
            return self.sim.fired()
        event = self.sim.event()  # pooled
        uniform_scan = self._uniform_rate is not None
        finished, least = self._settle_scan()
        # inlined _Job construction (one fewer frame on the admission path)
        job = _Job.__new__(_Job)
        job.handle = handle = next(self._handles)
        job.demand = job.remaining = float(demand)
        job.weight = weight
        job.event = event
        job.rate = 0.0
        job.priority = priority
        self._jobs[handle] = job
        if weight != 1.0:
            self._weighted_jobs += 1
        if self._weighted_jobs == 0:
            # inlined uniform water-fill (n >= 1: the job just joined)
            capacity = self._capacity
            if capacity <= _EPSILON:
                self._uniform_rate = 0.0
            else:
                share = capacity / len(self._jobs)
                self._uniform_rate = self.speed if share >= self._speed_eps else share
        else:
            self._water_fill()
        if finished is not None:
            self._finish_jobs(finished)
        # arm: in steady uniform mode the next finisher is simply
        # min(surviving remainings, the new job's demand); any mode
        # transition falls back to the full scan
        rate = self._uniform_rate
        if rate is not None and uniform_scan:
            self._timer_generation = generation = self._timer_generation + 1
            remaining = job.remaining
            if least is None or remaining < least:
                least = remaining
            self._least_remaining = least  # cache covers the new job now
            if rate > _EPSILON:
                timer = self.sim.timeout(max(0.0, least / rate), value=generation)
                timer._cb = self._timer_callback
        else:
            self._arm_timer()
        return event

    def serve(self, demand: float, priority: int = 0, weight: float = 1.0) -> Event:
        """The :class:`~repro.sim.station.Station` face of :meth:`execute`."""
        return self.execute(demand, weight=weight, priority=priority)

    def set_weight(self, handle: int, weight: float) -> None:
        """Change a running job's weight (rarely needed; for tooling)."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight!r}")
        job = self._jobs.get(handle)
        if job is None:
            raise SimulationError(f"no active job with handle {handle!r}")
        self._settle()
        if (job.weight != 1.0) != (weight != 1.0):
            self._weighted_jobs += 1 if weight != 1.0 else -1
        job.weight = weight
        self._reallocate_and_arm()

    @property
    def active_jobs(self) -> int:
        """Number of jobs currently in service."""
        return len(self._jobs)

    @property
    def busy_core_time(self) -> float:
        """Cumulative busy time summed over cores (for utilization)."""
        self._settle()
        return self._busy_core_time

    @property
    def busy_time(self) -> float:
        """Station-protocol alias for :attr:`busy_core_time`."""
        return self.busy_core_time

    @property
    def work_completed(self) -> float:
        """Total CPU demand served to completed jobs."""
        return self._work_completed

    def utilization(self, elapsed: float) -> float:
        """Mean per-core utilization over ``elapsed`` time units."""
        if elapsed <= 0:
            return 0.0
        return self.busy_core_time / (self.cores * elapsed)

    # -- internals --------------------------------------------------------

    def _settle_scan(self):
        """Settle served work and scan the jobs in one pass.

        Performs exactly :meth:`_settle`'s arithmetic (same operations,
        same order) while collecting the jobs it pushed to completion
        and — in uniform mode — the minimum remaining work among the
        survivors (the input to the next completion timer).  Returns
        ``(finished, least)``; ``least`` is None in weighted mode or
        when no job survives.
        """
        now = self.sim.now
        dt = now - self._last_settle
        finished = None
        least = None
        total_rate = 0.0
        rate = self._uniform_rate
        if rate is not None:
            if dt == 0.0 and self._least_valid and not self._needs_scan:
                # same-instant re-settle: zero work was served, nothing
                # can have finished since the scan that filled the
                # cache, so the pass would be the identity
                return None, self._least_remaining
            self._last_settle = now
            for job in self._jobs.values():
                remaining = job.remaining - rate * dt
                if remaining < 0:
                    remaining = 0.0
                job.remaining = remaining
                total_rate += rate
                if remaining <= _EPSILON:
                    if finished is None:
                        finished = [job]
                    else:
                        finished.append(job)
                elif least is None or remaining < least:
                    least = remaining
            self._least_remaining = least
            self._least_valid = True
            self._needs_scan = False
        else:
            self._last_settle = now
            self._least_valid = False
            for job in self._jobs.values():
                rate = job.rate
                remaining = job.remaining - rate * dt
                if remaining < 0:
                    remaining = 0.0
                job.remaining = remaining
                total_rate += rate
                if remaining <= _EPSILON:
                    if finished is None:
                        finished = [job]
                    else:
                        finished.append(job)
        self._busy_core_time += (total_rate / self.speed) * dt
        return finished, least

    def _settle(self) -> None:
        """Account for work served since the last settle point.

        The metrics face of :meth:`_settle_scan`: any completions the
        pass surfaces stay pending (exactly as before the fusion — the
        next pool event's scan picks them up), so the fast path is
        disabled until that scan happens.
        """
        finished, _ = self._settle_scan()
        if finished is not None:
            self._needs_scan = True

    def _finish_jobs(self, finished: List[_Job]) -> None:
        """Complete ``finished`` jobs and re-fill the freed capacity."""
        jobs = self._jobs
        per_class = self.per_class
        fire = self._fire
        for job in finished:
            del jobs[job.handle]
            if job.weight != 1.0:
                self._weighted_jobs -= 1
            demand = job.demand
            self._work_completed += demand
            priority = job.priority
            stats = per_class.get(priority)  # inlined Station._record
            if stats is None:
                stats = per_class[priority] = ClassStats()
            stats.requests += 1
            stats.service_time += demand
            # inlined job.event.succeed(): known untriggered, no value
            event = job.event
            event._triggered = True
            fire(event)
        if self._weighted_jobs == 0:
            # inlined uniform water-fill over the survivors
            n = len(jobs)
            capacity = self._capacity
            if n == 0 or capacity <= _EPSILON:
                self._uniform_rate = 0.0
            else:
                share = capacity / n
                self._uniform_rate = self.speed if share >= self._speed_eps else share
        else:
            self._water_fill()

    def _water_fill(self) -> None:
        """Weighted max-min allocation with a per-job cap of one core."""
        if self._weighted_jobs == 0:
            # Uniform weights — the overwhelmingly common case.  Every
            # job gets min(speed, capacity / n); the shared rate lives
            # in one pool-level field, so no per-job stores are needed.
            n = len(self._jobs)
            capacity = self._capacity
            if n == 0 or capacity <= _EPSILON:
                self._uniform_rate = 0.0
                return
            share = capacity / n
            self._uniform_rate = self.speed if share >= self._speed_eps else share
            return
        self._uniform_rate = None  # per-job rates own the allocation now
        active = list(self._jobs.values())
        for job in active:
            job.rate = 0.0
        capacity = self.cores * self.speed
        while active and capacity > _EPSILON:
            total_weight = sum(job.weight for job in active)
            share_per_weight = capacity / total_weight
            capped = [
                job for job in active if job.weight * share_per_weight >= self.speed - _EPSILON
            ]
            if not capped:
                for job in active:
                    job.rate = job.weight * share_per_weight
                return
            for job in capped:
                job.rate = self.speed
                capacity -= self.speed
            active = [job for job in active if job.rate == 0.0]

    def _reallocate_and_arm(self) -> None:
        self._water_fill()
        self._complete_finished()
        self._arm_timer()

    def _complete_finished(self) -> None:
        # collect lazily: most calls find nothing finished, so the
        # common case allocates no list
        finished = None
        for job in self._jobs.values():
            if job.remaining <= _EPSILON:
                if finished is None:
                    finished = [job]
                else:
                    finished.append(job)
        if finished is not None:
            self._finish_jobs(finished)

    def _arm_timer(self) -> None:
        self._timer_generation = generation = self._timer_generation + 1
        next_finish = None
        rate = self._uniform_rate
        if rate is not None:
            # uniform: the next finisher is simply the min remaining —
            # one division instead of one per job (exact: dividing by
            # one positive rate is monotone)
            least = None
            for job in self._jobs.values():
                remaining = job.remaining
                if least is None or remaining < least:
                    least = remaining
            self._least_remaining = least  # full scan: refresh the cache
            self._least_valid = True
            if least is not None and rate > _EPSILON:
                next_finish = least / rate
        else:
            self._least_valid = False  # weighted arm: cache unmaintained
            for job in self._jobs.values():
                if job.rate > _EPSILON:
                    eta = job.remaining / job.rate
                    if next_finish is None or eta < next_finish:
                        next_finish = eta
        if next_finish is None:
            return
        # The generation travels as the timer's value so arming needs no
        # closure; a stale timer (superseded by a reallocation) is
        # recognized and ignored in the shared callback.
        timer = self.sim.timeout(max(0.0, next_finish), value=generation)
        timer._cb = self._timer_callback

    def _on_timer(self, event) -> None:
        if event._value != self._timer_generation:
            return  # superseded by a later reallocation
        uniform_scan = self._uniform_rate is not None
        finished, least = self._settle_scan()
        if finished is not None:
            self._finish_jobs(finished)
        rate = self._uniform_rate
        if rate is not None and uniform_scan:
            # arm from the minimum the settle pass already found — the
            # survivors' remainings are untouched by completion, so no
            # second scan is needed
            self._timer_generation = generation = self._timer_generation + 1
            if least is not None and rate > _EPSILON:
                timer = self.sim.timeout(max(0.0, least / rate), value=generation)
                timer._cb = self._timer_callback
        else:
            self._arm_timer()


class CProcessorSharingPool(ProcessorSharingPool):
    """:class:`ProcessorSharingPool` backed by the compiled kernel.

    The settle / water-fill / completion-timer machinery runs inside
    ``sim/_ckernel/kernel.c`` (a mirror of this module's arithmetic,
    operation for operation); completion timers never materialize as
    Python :class:`~repro.sim.engine.Timeout` events — they live in
    the kernel heap as negative handles and are consumed entirely
    in-kernel by the drain loop, which only surfaces the pool when
    jobs actually finished.  This class keeps the Python half: job
    metadata (event, demand, priority) in admission order — mirroring
    the kernel's dense job arrays index for index — plus per-class
    stats and event firing.

    Results are bit-identical to the pure-Python pool; only
    wall-clock differs.  Use :func:`make_ps_pool` to construct the
    right pool for a simulator's lane.
    """

    def __init__(self, sim: Simulator, cores: int, speed: float = 1.0):
        super().__init__(sim, cores, speed)
        agenda = sim._agenda
        ffi, lib = agenda._ffi, agenda._lib
        cp = lib.ck_pool_new(agenda._c, cores, speed)
        if cp == ffi.NULL:
            raise SimulationError("compiled kernel pool table is full")
        self._lib = lib
        self._cp = ffi.gc(cp, lib.ck_pool_free)
        #: admission-order mirror of the kernel's job arrays
        self._meta: List[_Job] = []
        pool_id = lib.ck_pool_id(self._cp)
        assert pool_id == len(sim._c_pools)
        sim._c_pools.append(self)

    def execute(self, demand: float, weight: float = 1.0, priority: int = 0) -> Event:
        """Submit a job of CPU demand ``demand``; fires when served."""
        if demand < 0:
            raise ValueError(f"demand must be non-negative, got {demand!r}")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight!r}")
        if demand <= _EPSILON:
            self._record(priority)
            return self.sim.fired()
        event = self.sim.event()  # pooled
        job = _Job.__new__(_Job)
        job.handle = next(self._handles)
        job.demand = demand = float(demand)
        job.weight = weight
        job.event = event
        job.priority = priority
        self._meta.append(job)
        if self._lib.ck_pool_execute(self._cp, self.sim.now, demand, weight):
            self._finish_from_c()
        return event

    def set_weight(self, handle: int, weight: float) -> None:
        """Change a running job's weight (rarely needed; for tooling)."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight!r}")
        meta = self._meta
        index = -1
        for i, job in enumerate(meta):
            if job.handle == handle:
                index = i
                break
        if index < 0:
            raise SimulationError(f"no active job with handle {handle!r}")
        meta[index].weight = weight
        if self._lib.ck_pool_set_weight(self._cp, self.sim.now, index, weight):
            self._finish_from_c()

    @property
    def active_jobs(self) -> int:
        """Number of jobs currently in service."""
        return len(self._meta)

    def _settle(self) -> None:
        # metrics face: the kernel settles (leaving completions
        # pending, exactly like the Python pool) and this mirror pulls
        # the busy-time integral so the base-class properties read it
        self._lib.ck_pool_settle_metrics(self._cp, self.sim.now)
        self._busy_core_time = self._lib.ck_pool_raw_busy_core_time(self._cp)

    def _finish_from_c(self) -> None:
        """Fire the completions the last kernel call surfaced.

        The kernel reports the finished jobs' pre-compaction dense
        indices (ascending — admission order, the order the Python
        pool completes them in); the metadata mirror pops the same
        indices and fires the events through the same-instant lane.
        """
        lib = self._lib
        cp = self._cp
        count = lib.ck_pool_finished_count(cp)
        meta = self._meta
        if count == 1:  # the overwhelmingly common case
            finished = (meta.pop(lib.ck_pool_finished_at(cp, 0)),)
        else:
            at = lib.ck_pool_finished_at
            indices = [at(cp, i) for i in range(count)]
            finished = [meta[i] for i in indices]
            for i in reversed(indices):
                del meta[i]
        per_class = self.per_class
        fire = self._fire
        for job in finished:
            demand = job.demand
            self._work_completed += demand
            priority = job.priority
            stats = per_class.get(priority)  # inlined Station._record
            if stats is None:
                stats = per_class[priority] = ClassStats()
            stats.requests += 1
            stats.service_time += demand
            # inlined job.event.succeed(): known untriggered, no value
            event = job.event
            event._triggered = True
            fire(event)


def make_ps_pool(sim: Simulator, cores: int, speed: float = 1.0) -> ProcessorSharingPool:
    """Build the PS pool matching ``sim``'s kernel lane.

    On the compiled lane this returns a :class:`CProcessorSharingPool`
    unless the kernel's pool table is full (256 pools per simulator),
    in which case the pure-Python pool — which runs fine on either
    lane — takes over.  Results are identical either way.
    """
    if getattr(sim, "kernel_lane", "py") == "c":
        try:
            return CProcessorSharingPool(sim, cores, speed)
        except SimulationError:
            pass
    return ProcessorSharingPool(sim, cores, speed)
