"""Strict two-phase locking with internal scheduling policies.

The lock manager implements:

* **S/X item locks** held until commit (strict 2PL), with re-entrant
  grants and shared→exclusive upgrades.
* **Isolation levels** are realized above this layer: under
  Uncommitted Read the engine simply never requests shared locks,
  exactly like DB2's UR (§2.2).
* **Queue ordering policies** — FIFO (stock), PRIORITY (high-priority
  waiters overtake low-priority ones), and POW (Preempt-on-Wait
  [McWherter et al., ICDE'05]): priority ordering plus abort-and-
  restart of a low-priority lock *holder* that is itself blocked at
  another lock queue (§5.2).
* **Deadlock handling** via wait-for-graph cycle detection at block
  time; the requester is the victim and receives
  :class:`DeadlockError` (the engine restarts it after a backoff).
  Edges conservatively include both the holders of the awaited lock
  and incompatible waiters queued ahead, so queue-order deadlocks are
  caught too; the cost is an occasional false positive, which is
  merely a spurious restart.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Set

from repro.dbms.config import LockSchedulingPolicy
from repro.dbms.transaction import Priority, Transaction
from repro.sim.engine import Event, Simulator
from repro.sim.station import ClassStats, Station


class DeadlockError(Exception):
    """The lock request would close a cycle; the requester must restart."""


class PreemptionError(Exception):
    """The transaction was preempted by POW and must restart."""


class LockMode:
    """Symbolic names for the two lock modes."""

    SHARED = False
    EXCLUSIVE = True


class _Request:
    __slots__ = ("tx", "exclusive", "event", "seq", "upgrade", "enqueue_time")

    def __init__(
        self,
        tx: Transaction,
        exclusive: bool,
        event: Event,
        seq: int,
        upgrade: bool,
        enqueue_time: float,
    ):
        self.tx = tx
        self.exclusive = exclusive
        self.event = event
        self.seq = seq
        self.upgrade = upgrade
        self.enqueue_time = enqueue_time


class _Lock:
    __slots__ = ("holders", "queue")

    def __init__(self):
        self.holders: Dict[int, bool] = {}  # tid -> exclusive?
        self.queue: List[_Request] = []


class LockManager(Station):
    """Item-granularity lock table with pluggable queue scheduling.

    As a :class:`~repro.sim.station.Station` the lock table is a pure
    *admission* station: :meth:`acquire` and :meth:`release` do the
    work, there is no timed service, and ``is_server`` is False so the
    lock table never appears in utilization snapshots.  Per-class wait
    times flow through the shared station metrics hooks.

    Parameters
    ----------
    policy:
        Queue ordering / preemption policy (see
        :class:`~repro.dbms.config.LockSchedulingPolicy`).
    preempt:
        Callback ``preempt(tx)`` invoked when POW decides to evict a
        low-priority holder; the engine aborts and restarts that
        transaction.  Required when ``policy`` is POW.
    """

    is_server = False

    def __init__(
        self,
        sim: Simulator,
        policy: LockSchedulingPolicy = LockSchedulingPolicy.FIFO,
        preempt: Optional[Callable[[Transaction], None]] = None,
    ):
        if policy is LockSchedulingPolicy.POW and preempt is None:
            raise ValueError("POW policy requires a preempt callback")
        super().__init__(sim, "locks")
        self.policy = policy
        self._preempt = preempt
        # the tid → transaction map only feeds POW's blocked-holder
        # eviction, so the other policies skip maintaining it
        self._track_tx = policy is LockSchedulingPolicy.POW
        self._locks: Dict[int, _Lock] = {}
        self._tx_by_id: Dict[int, Transaction] = {}
        self._waiting: Dict[int, int] = {}  # tid -> item it is blocked on
        # tid -> items held.  Deliberately a *set*: release_all walks it
        # in set-iteration order, and that order decides which waiter of
        # a multi-item release is granted first at the same instant —
        # changing the container would silently reorder contended runs.
        self._held: Dict[int, Set[int]] = {}
        self._seq = itertools.count()
        # statistics
        self.deadlocks = 0
        self.preemptions = 0
        self.lock_waits = 0
        self.total_wait_time = 0.0

    # -- public API -------------------------------------------------------

    def acquire(self, tx: Transaction, item: int, exclusive: bool) -> Event:
        """Request ``item`` in the given mode; fires when granted.

        The event fails with :class:`DeadlockError` when granting would
        deadlock.  Grants are strict two-phase: locks stay held until
        :meth:`release_all`.
        """
        if self._track_tx:
            self._tx_by_id[tx.tid] = tx
        lock = self._locks.get(item)
        if lock is None:
            # Fast path: a brand-new lock is granted immediately — no
            # request object, no queue, exactly what the general path
            # below would conclude.  _record is inlined (zero-wait
            # grants are the most frequent station operation of all).
            lock = _Lock()
            self._locks[item] = lock
            lock.holders[tx.tid] = exclusive
            held = self._held.get(tx.tid)
            if held is None:
                held = self._held[tx.tid] = set()
            held.add(item)
            priority = tx.priority
            stats = self.per_class.get(priority)
            if stats is None:
                stats = self.per_class[priority] = ClassStats()
            stats.requests += 1
            return self.sim.fired()

        held_mode = lock.holders.get(tx.tid)
        if held_mode is not None:
            if held_mode or not exclusive:
                self._record(tx.priority)
                return self.sim.fired()  # re-entrant: strong-enough mode held
            upgrade = True
        else:
            upgrade = False
        event = self.sim.event()  # pooled

        request = _Request(tx, exclusive, event, next(self._seq), upgrade, self.sim.now)
        self._insert(lock, request)
        self._dispatch(item, lock)
        if not event.triggered:
            self._on_block(item, lock, request)
        return event

    def release(self, tx: Transaction) -> None:
        """Station face of :meth:`release_all`."""
        self.release_all(tx)

    def release_all(self, tx: Transaction) -> None:
        """Release every lock ``tx`` holds (commit or abort)."""
        items = self._held.pop(tx.tid, None)
        if items:
            tid = tx.tid
            locks = self._locks
            for item in items:
                lock = locks.get(item)
                if lock is None:
                    continue
                lock.holders.pop(tid, None)
                # inlined _dispatch/_gc fast paths: most released items
                # have no waiters, and most become garbage right away
                if lock.queue:
                    self._dispatch(item, lock)
                if not lock.holders and not lock.queue:
                    del locks[item]
        if self._track_tx:
            self._tx_by_id.pop(tx.tid, None)

    def abort(self, tx: Transaction) -> None:
        """Abort cleanup: drop queued requests, then release held locks."""
        self.cancel_waits(tx)
        self.release_all(tx)

    def cancel_waits(self, tx: Transaction) -> None:
        """Remove any queued (ungranted) request of ``tx``."""
        item = self._waiting.pop(tx.tid, None)
        if item is None:
            return
        lock = self._locks.get(item)
        if lock is None:
            return
        lock.queue = [r for r in lock.queue if r.tx.tid != tx.tid]
        self._dispatch(item, lock)
        self._gc(item, lock)

    def is_waiting(self, tx: Transaction) -> bool:
        """Whether ``tx`` is currently blocked at some lock queue."""
        return tx.tid in self._waiting

    def holders_of(self, item: int) -> Dict[int, bool]:
        """Snapshot of ``item``'s holders (tid → exclusive?)."""
        lock = self._locks.get(item)
        return dict(lock.holders) if lock else {}

    def held_by(self, tid: int) -> Set[int]:
        """Snapshot of the items ``tid`` currently holds locks on.

        Introspection for the 2PC invariant tests: a prepared branch
        parked at its commit gate must still hold every lock it
        acquired (prepare does not release under strict 2PL).
        """
        held = self._held.get(tid)
        return set(held) if held else set()

    def queue_length(self, item: int) -> int:
        """Number of waiters queued on ``item``."""
        lock = self._locks.get(item)
        return len(lock.queue) if lock else 0

    @property
    def total_waiting(self) -> int:
        """Transactions currently blocked across all lock queues."""
        return len(self._waiting)

    # -- queue ordering -----------------------------------------------------

    def _insert(self, lock: _Lock, request: _Request) -> None:
        if request.upgrade:
            # upgrades go first (within their priority band) to reduce
            # upgrade deadlocks
            index = 0
            if self.policy is not LockSchedulingPolicy.FIFO:
                while (
                    index < len(lock.queue)
                    and lock.queue[index].tx.priority > request.tx.priority
                ):
                    index += 1
            lock.queue.insert(index, request)
            return
        if self.policy is LockSchedulingPolicy.FIFO:
            lock.queue.append(request)
            return
        # PRIORITY / POW: stable order by descending priority
        index = len(lock.queue)
        while index > 0 and lock.queue[index - 1].tx.priority < request.tx.priority:
            index -= 1
        lock.queue.insert(index, request)

    # -- granting -----------------------------------------------------------

    def _compatible(self, lock: _Lock, request: _Request) -> bool:
        if request.upgrade:
            return set(lock.holders) <= {request.tx.tid}
        if request.exclusive:
            return not lock.holders
        return not any(lock.holders.values())  # no exclusive holder

    def _dispatch(self, item: int, lock: _Lock) -> None:
        while lock.queue:
            head = lock.queue[0]
            if not self._compatible(lock, head):
                return
            lock.queue.pop(0)
            self._grant(item, lock, head)

    def _grant(self, item: int, lock: _Lock, request: _Request) -> None:
        lock.holders[request.tx.tid] = request.exclusive or request.upgrade
        self._held.setdefault(request.tx.tid, set()).add(item)
        waited = self.sim.now - request.enqueue_time
        if self._waiting.pop(request.tx.tid, None) is not None:
            request.tx.lock_wait_time += waited
            self.total_wait_time += waited
            self._record(request.tx.priority, wait_time=waited)
        else:
            self._record(request.tx.priority)
        request.event.succeed()

    # -- blocking: deadlock detection and POW ---------------------------------

    def _on_block(self, item: int, lock: _Lock, request: _Request) -> None:
        self.lock_waits += 1
        self._waiting[request.tx.tid] = item
        victim = self._detect_deadlock(request.tx.tid)
        if victim:
            self.deadlocks += 1
            self._waiting.pop(request.tx.tid, None)
            lock.queue = [r for r in lock.queue if r is not request]
            request.event.fail(
                DeadlockError(f"tx {request.tx.tid} deadlocked on item {item}")
            )
            return
        if (
            self.policy is LockSchedulingPolicy.POW
            and request.tx.priority > Priority.LOW
        ):
            self._preempt_blocked_holders(item, lock, request)

    def _blockers(self, tid: int) -> Set[int]:
        """Transactions ``tid`` directly waits for."""
        item = self._waiting.get(tid)
        if item is None:
            return set()
        lock = self._locks.get(item)
        if lock is None:
            return set()
        blockers = {holder for holder in lock.holders if holder != tid}
        for queued in lock.queue:
            if queued.tx.tid == tid:
                break
            blockers.add(queued.tx.tid)
        return blockers

    def _detect_deadlock(self, start: int) -> bool:
        """Depth-first search for a cycle through ``start``."""
        stack = list(self._blockers(start))
        visited: Set[int] = set()
        while stack:
            tid = stack.pop()
            if tid == start:
                return True
            if tid in visited:
                continue
            visited.add(tid)
            stack.extend(self._blockers(tid))
        return False

    def _preempt_blocked_holders(
        self, item: int, lock: _Lock, request: _Request
    ) -> None:
        """POW: evict low-priority holders that are blocked elsewhere."""
        for tid in list(lock.holders):
            holder = self._tx_by_id.get(tid)
            if holder is None or holder.priority >= request.tx.priority:
                continue
            if tid in self._waiting:  # holder is itself stuck at another queue
                self.preemptions += 1
                assert self._preempt is not None
                self._preempt(holder)

    # -- housekeeping ---------------------------------------------------------

    def _gc(self, item: int, lock: _Lock) -> None:
        if not lock.holders and not lock.queue:
            self._locks.pop(item, None)
