"""Write-ahead-log manager with group commit.

The paper's machines dedicate one IDE drive to the database log; update
transactions force a log write at commit.  This is the I/O component
that makes even the "CPU bound" TPC-C workload need a slightly higher
MPL (§3.1: "some transactions are blocked on I/O to the database
log").

Group commit batches the log forces of transactions that ask to commit
while a write is in flight — all of them are made durable by the next
sequential write, which is how DB2/Shore behave.
"""

from __future__ import annotations

import random
from typing import List

from repro.sim.distributions import Distribution
from repro.sim.engine import Event, Simulator


class LogManager:
    """A dedicated sequential log disk.

    Parameters
    ----------
    write_time:
        Distribution of one sequential log force (milliseconds scale is
        up to the caller; the simulator is unit-agnostic).
    group_commit:
        When true, commits arriving during an in-flight write share the
        next write; when false every commit performs its own write.
    """

    def __init__(
        self,
        sim: Simulator,
        write_time: Distribution,
        rng: random.Random,
        group_commit: bool = True,
    ):
        self.sim = sim
        self.write_time = write_time
        self.group_commit = group_commit
        self._rng = rng
        self._writing = False
        self._pending: List[Event] = []
        self._busy_time = 0.0
        self._writes = 0
        self._commits = 0

    def commit(self) -> Event:
        """Force the log for one committing transaction."""
        self._commits += 1
        done = Event(self.sim)
        self._pending.append(done)
        if not self._writing:
            self._start_write()
        return done

    @property
    def busy_time(self) -> float:
        """Cumulative time the log disk was writing."""
        return self._busy_time

    @property
    def writes(self) -> int:
        """Physical writes performed (≤ commits under group commit)."""
        return self._writes

    @property
    def commits(self) -> int:
        """Commit forces requested."""
        return self._commits

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the log disk was busy."""
        if elapsed <= 0:
            return 0.0
        return self._busy_time / elapsed

    def _start_write(self) -> None:
        if self.group_commit:
            batch = self._pending
            self._pending = []
        else:
            batch = [self._pending.pop(0)]
        self._writing = True
        duration = self.write_time.sample(self._rng)
        timer = self.sim.timeout(duration)
        timer.add_callback(lambda _event: self._finish_write(batch, duration))

    def _finish_write(self, batch: List[Event], duration: float) -> None:
        self._busy_time += duration
        self._writes += 1
        for event in batch:
            event.succeed()
        if self._pending:
            self._start_write()
        else:
            self._writing = False
