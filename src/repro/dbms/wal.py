"""Write-ahead-log manager with group commit.

The paper's machines dedicate one IDE drive to the database log; update
transactions force a log write at commit.  This is the I/O component
that makes even the "CPU bound" TPC-C workload need a slightly higher
MPL (§3.1: "some transactions are blocked on I/O to the database
log").

Group commit batches the log forces of transactions that ask to commit
while a write is in flight — all of them are made durable by the next
sequential write, which is how DB2/Shore behave.
"""

from __future__ import annotations

import random
from typing import List

from repro.sim.distributions import BlockSampler, Distribution
from repro.sim.engine import Event, Simulator
from repro.sim.station import Station


class LogManager(Station):
    """A dedicated sequential log disk.

    Parameters
    ----------
    write_time:
        Distribution of one sequential log force (milliseconds scale is
        up to the caller; the simulator is unit-agnostic).
    group_commit:
        When true, commits arriving during an in-flight write share the
        next write; when false every commit performs its own write.
    """

    def __init__(
        self,
        sim: Simulator,
        write_time: Distribution,
        rng: random.Random,
        group_commit: bool = True,
    ):
        super().__init__(sim, "log")
        self.write_time = write_time
        self.group_commit = group_commit
        # The rng is deliberately NOT stashed: every write-time draw
        # must go through the block sampler, or the pre-drawn stream
        # would silently reorder.  The log disk owns its stream.
        self._sample = BlockSampler(write_time, rng)
        self._writing = False
        # pending commits: (event, priority, enqueue time)
        self._pending: List[tuple] = []
        self._busy_time = 0.0
        self._writes = 0
        self._commits = 0
        self._batch: List[tuple] = []
        self._batch_duration = 0.0
        self._finish_callback = self._finish_write
        self._fire = sim._fire_now  # same-instant completion lane

    def commit(self, priority: int = 0) -> Event:
        """Force the log for one committing transaction."""
        self._commits += 1
        done = self.sim.event()  # pooled
        self._pending.append((done, priority, self.sim.now))
        if not self._writing:
            self._start_write()
        return done

    def serve(self, demand: float = 0.0, priority: int = 0, weight: float = 1.0) -> Event:
        """Station face of :meth:`commit` (write time is sampled)."""
        if demand != 0.0:
            raise ValueError(
                f"log {self.name!r} samples its own write time; demand must be 0"
            )
        return self.commit(priority)

    @property
    def busy_time(self) -> float:
        """Cumulative time the log disk was writing."""
        return self._busy_time

    @property
    def writes(self) -> int:
        """Physical writes performed (≤ commits under group commit)."""
        return self._writes

    @property
    def commits(self) -> int:
        """Commit forces requested."""
        return self._commits

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the log disk was busy."""
        if elapsed <= 0:
            return 0.0
        return self._busy_time / elapsed

    def _start_write(self) -> None:
        if self.group_commit:
            batch = self._pending
            self._pending = []
        else:
            batch = [self._pending.pop(0)]
        self._writing = True
        duration = self._sample()
        self._batch = batch
        self._batch_duration = duration
        timer = self.sim.timeout(duration)
        timer._cb = self._finish_callback

    def _finish_write(self, _event: Event) -> None:
        batch = self._batch
        self._batch = []
        duration = self._batch_duration
        self._busy_time += duration
        self._writes += 1
        started = self.sim.now - duration
        fire = self._fire
        for event, priority, enqueued in batch:
            # every commit in the batch was forced by this one write;
            # its wait is the time spent behind the previous in-flight
            # write (0 for the commit that started this one)
            self._record(
                priority,
                service_time=duration,
                wait_time=max(0.0, started - enqueued),
            )
            # inlined event.succeed(): known untriggered, no value
            event._triggered = True
            fire(event)
        if self._pending:
            self._start_write()
        else:
            self._writing = False
