"""Command-line entry point: regenerate any table or figure.

Examples::

    python -m repro.experiments --list
    python -m repro.experiments --figure 2
    python -m repro.experiments --figure 10 --table 1
    python -m repro.experiments --all --fast
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List

from repro.experiments import figures, tables

_FIGURES: Dict[str, Callable] = {
    "2": figures.figure2,
    "3": figures.figure3,
    "4": figures.figure4,
    "5": figures.figure5,
    "7": figures.figure7,
    "10": figures.figure10,
    "11": figures.figure11,
    "12": figures.figure12,
    "13": figures.figure13,
    "s3.2": figures.section32_response_time,
    "s4.3": figures.controller_convergence,
}

_TABLES: Dict[str, Callable[[], str]] = {
    "1": tables.table1,
    "2": tables.table2,
    "c2": tables.variability_table,
}

#: Figures that take no ``fast`` argument (purely analytic).
_ANALYTIC = {"7", "10"}


def _run_figure(key: str, fast: bool) -> None:
    function = _FIGURES[key]
    start = time.time()
    if key in _ANALYTIC:
        result = function()
    else:
        result = function(fast=fast)
    if not isinstance(result, list):
        result = [result]
    for panel in result:
        print(panel.render())
        print()
    print(f"[figure {key} regenerated in {time.time() - start:.1f}s]")


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "--figure",
        action="append",
        default=[],
        metavar="ID",
        help=f"figure to regenerate (one of {sorted(_FIGURES)})",
    )
    parser.add_argument(
        "--table",
        action="append",
        default=[],
        metavar="ID",
        help=f"table to regenerate (one of {sorted(_TABLES)})",
    )
    parser.add_argument("--all", action="store_true", help="regenerate everything")
    parser.add_argument(
        "--full",
        action="store_true",
        help="full-size runs (default is fast, reduced sample sizes)",
    )
    parser.add_argument("--list", action="store_true", help="list available ids")
    args = parser.parse_args(argv)

    if args.list:
        print("figures:", ", ".join(sorted(_FIGURES)))
        print("tables :", ", ".join(sorted(_TABLES)))
        return 0

    figure_ids = list(args.figure)
    table_ids = list(args.table)
    if args.all:
        figure_ids = sorted(_FIGURES)
        table_ids = sorted(_TABLES)
    if not figure_ids and not table_ids:
        parser.print_help()
        return 2

    for table_id in table_ids:
        if table_id not in _TABLES:
            print(f"unknown table {table_id!r}", file=sys.stderr)
            return 2
        print(_TABLES[table_id]())
        print()
    for figure_id in figure_ids:
        key = figure_id.lower()
        if key not in _FIGURES:
            print(f"unknown figure {figure_id!r}", file=sys.stderr)
            return 2
        _run_figure(key, fast=not args.full)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
