"""Command-line entry point: regenerate any table or figure.

Examples::

    python -m repro.experiments --list
    python -m repro.experiments --figure 2
    python -m repro.experiments 2 3 --jobs 8 --cache-dir .repro-cache
    python -m repro.experiments all --jobs 8
    python -m repro.experiments bench --jobs 2 --output BENCH_smoke.json
    python -m repro.experiments scenario show --grid 2
    python -m repro.experiments scenario run my_scenario.json

Figures and tables can be named positionally (``all`` expands to
everything) or through the original ``--figure`` / ``--table`` flags.
``--jobs N`` fans each figure's run grid out over N worker processes
and ``--cache-dir`` memoizes completed runs on disk (see
:mod:`repro.experiments.parallel`).  The ``bench`` subcommand runs one
figure's grid twice — cold then warm — and writes a ``BENCH_*.json``
trajectory artifact that CI uploads and diffs.

The ``scenario`` subcommand is the JSON face of the Scenario API
(:mod:`repro.core.scenario`): ``show`` prints the canonical JSON of a
spec file, a figure grid, or a named demo; ``fingerprint`` prints
content digests (the runner's cache keys); ``run`` executes scenarios
end to end — controller included — and emits outcome JSON.  ``show``
output feeds back into ``fingerprint``/``run`` unchanged, which is the
round-trip CI pins.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from typing import Callable, Dict, List, Optional

from repro.core import scenario as scenario_module
from repro.core.scenario import ScenarioSpec
from repro.experiments import figures, parallel, tables
from repro.sim.engine import SimulationError, resolve_kernel_lane
from repro.sim.random import replicate_seeds

_FIGURES: Dict[str, Callable] = {
    "2": figures.figure2,
    "3": figures.figure3,
    "4": figures.figure4,
    "5": figures.figure5,
    "7": figures.figure7,
    "10": figures.figure10,
    "11": figures.figure11,
    "12": figures.figure12,
    "13": figures.figure13,
    "s3.2": figures.section32_response_time,
    "s4.3": figures.controller_convergence,
    "po": figures.partly_open,
    "tv": figures.time_varying_controller,
    "sh": figures.sharded_cluster,
    "ft": figures.fault_tolerance,
    "rf": figures.replica_fanout,
    "rs": figures.resilience,
    "xs": figures.cross_shard,
    "es": figures.elastic_capacity,
}

_TABLES: Dict[str, Callable[[], str]] = {
    "1": tables.table1,
    "2": tables.table2,
    "c2": tables.variability_table,
}

#: Figures that take no ``fast`` argument (purely analytic).
_ANALYTIC = {"7", "10"}


def _unknown(kind: str, name: str, known: Dict[str, Callable]) -> int:
    print(
        f"error: unknown {kind} {name!r}; available {kind}s: "
        + ", ".join(sorted(known)),
        file=sys.stderr,
    )
    return 2


def _run_figure(key: str, fast: bool) -> None:
    function = _FIGURES[key]
    runner = parallel.get_runner()
    before = dataclasses.replace(runner.totals)
    start = time.time()
    if key in _ANALYTIC:
        result = function()
    else:
        result = function(fast=fast)
    if not isinstance(result, list):
        result = [result]
    for panel in result:
        print(panel.render())
        print()
    # totals delta = every grid this figure submitted (a figure may
    # submit several), and nothing from previous figures
    stats = runner.totals.since(before)
    cache_note = (
        f", {stats.cache_hits} cached / {stats.executed} simulated"
        if stats.cache_hits
        else ""
    )
    print(f"[figure {key} regenerated in {time.time() - start:.1f}s{cache_note}]")


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for simulation grids (default 1: in-process)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed result cache; re-runs of unchanged "
        "figures become near-instant",
    )
    parser.add_argument(
        "--kernel-lane",
        default=None,
        choices=("py", "c", "auto"),
        help="simulation kernel lane (default: the REPRO_KERNEL "
        "environment variable, else 'py'); both lanes produce "
        "bit-identical results",
    )


def _apply_kernel_lane(lane: Optional[str]) -> Optional[int]:
    """Validate + export a ``--kernel-lane`` choice; non-None = exit code.

    The lane is exported through ``REPRO_KERNEL`` rather than threaded
    through call signatures so that parallel-runner *worker processes*
    (which rebuild their own simulators) inherit it too.
    """
    if lane is None:
        return None
    try:
        resolve_kernel_lane(lane)
    except SimulationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    os.environ["REPRO_KERNEL"] = lane
    return None


def bench_main(argv: List[str]) -> int:
    """``bench``: run one figure grid cold then warm; emit a JSON artifact."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments bench",
        description="Benchmark the parallel runner + cache on one figure grid.",
    )
    parser.add_argument(
        "--figure",
        default="smoke",
        metavar="ID",
        help=f"grid to benchmark (one of {sorted(figures.FIGURE_GRIDS)})",
    )
    parser.add_argument(
        "--full", action="store_true", help="full-size grid (default: fast)"
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="artifact path (default BENCH_<figure>.json)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        metavar="K",
        help="replicate every grid point K times under derived seeds "
        "(variance estimation)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="a previous BENCH_*.json to compare the cold pass against; "
        "exits non-zero when the cold wall-clock regresses beyond "
        "--max-regression (the CI kernel micro-benchmark gate)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        metavar="X",
        help="with --baseline: fail when cold time exceeds X times the "
        "baseline's cold time (default 2.0, lenient to absorb runner "
        "hardware variance)",
    )
    _add_runner_arguments(parser)
    args = parser.parse_args(argv)

    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    exit_code = _apply_kernel_lane(args.kernel_lane)
    if exit_code is not None:
        return exit_code
    if args.repeats < 1:
        print(f"error: --repeats must be >= 1, got {args.repeats}", file=sys.stderr)
        return 2
    key = args.figure.lower()
    grid_builder = figures.FIGURE_GRIDS.get(key)
    if grid_builder is None:
        return _unknown("figure grid", args.figure, figures.FIGURE_GRIDS)
    grid = grid_builder(fast=not args.full)
    if args.repeats > 1:
        grid = [
            dataclasses.replace(spec, seed=seed, tag=f"replicate-{index}")
            for spec in grid
            for index, seed in enumerate(replicate_seeds(spec.seed, args.repeats))
        ]
    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="repro-bench-cache-")

    passes = []
    results = []
    try:
        for label in ("cold", "warm"):
            runner = parallel.ParallelRunner(jobs=args.jobs, cache_dir=cache_dir)
            results = runner.run(grid)
            passes.append({"pass": label, **runner.stats.as_dict()})
            print(
                f"[bench {key}] {label}: {runner.stats.elapsed_s:.2f}s "
                f"({runner.stats.executed} simulated, "
                f"{runner.stats.cache_hits} cache hits)"
            )
    finally:
        if args.cache_dir is None:
            shutil.rmtree(cache_dir, ignore_errors=True)
    cold_s, warm_s = passes[0]["elapsed_s"], passes[1]["elapsed_s"]
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")

    artifact = {
        "benchmark": "parallel-runner",
        "figure": key,
        "grid_size": len(grid),
        "kernel_lane": resolve_kernel_lane(),
        "jobs": args.jobs,
        "repeats": args.repeats,
        "cache_dir": args.cache_dir,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "passes": passes,
        "warm_speedup": speedup,
        "runs": [
            {
                "fingerprint": spec.fingerprint(),
                "setup_id": spec.setup_id,
                "mpl": spec.mpl,
                "seed": spec.seed,
                "transactions": spec.transactions,
                "throughput": result.throughput,
                "mean_response_time": result.mean_response_time,
                "completed": result.completed,
            }
            for spec, result in zip(grid, results)
        ],
    }
    output = args.output or f"BENCH_{key}.json"
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
    print(f"[bench {key}] warm speedup {speedup:.1f}x; artifact: {output}")

    if args.baseline:
        try:
            with open(args.baseline, encoding="utf-8") as handle:
                baseline = json.load(handle)
            baseline_cold = float(baseline["passes"][0]["elapsed_s"])
        except (OSError, ValueError, KeyError, IndexError, TypeError) as exc:
            print(f"error: unreadable baseline {args.baseline!r}: {exc}", file=sys.stderr)
            return 2
        if baseline.get("figure") != key:
            print(
                f"error: baseline benchmarked figure {baseline.get('figure')!r}, "
                f"not {key!r}; wall-clocks are not comparable",
                file=sys.stderr,
            )
            return 2
        ratio = cold_s / baseline_cold if baseline_cold > 0 else float("inf")
        print(
            f"[bench {key}] cold {cold_s:.2f}s vs baseline {baseline_cold:.2f}s "
            f"({ratio:.2f}x, limit {args.max_regression:g}x)"
        )
        if ratio > args.max_regression:
            print(
                f"error: cold pass regressed {ratio:.2f}x over the baseline "
                f"(limit {args.max_regression:g}x)",
                file=sys.stderr,
            )
            return 1
    return 0


def _load_scenarios(args: argparse.Namespace) -> "tuple[List[ScenarioSpec], bool]":
    """Resolve the scenario input source; returns (specs, was_single).

    ``was_single`` keeps single-spec inputs emitting a single JSON
    object (not a one-element list), so piping a spec through ``show``
    never changes its shape.
    """
    sources = [args.file is not None, args.grid is not None, args.demo is not None]
    if sum(sources) != 1:
        raise ValueError("specify exactly one of FILE, --grid, or --demo")
    if args.grid is not None:
        key = args.grid.lower()
        builder = figures.FIGURE_GRIDS.get(key)
        if builder is None:
            raise ValueError(
                f"unknown figure grid {args.grid!r}; available: "
                + ", ".join(sorted(figures.FIGURE_GRIDS))
            )
        specs = [parallel.as_scenario(spec) for spec in builder(fast=not args.full)]
        return specs, False
    if args.demo is not None:
        demos = scenario_module.demo_scenarios()
        spec = demos.get(args.demo)
        if spec is None:
            raise ValueError(
                f"unknown demo scenario {args.demo!r}; available: "
                + ", ".join(sorted(demos))
            )
        return [spec], True
    if args.file == "-":
        payload = json.load(sys.stdin)
    else:
        with open(args.file, encoding="utf-8") as handle:
            payload = json.load(handle)
    # file payloads are untrusted: validate() collects *every* problem
    # (with JSON-pointer paths) instead of failing on the first bad key
    if isinstance(payload, list):
        return [ScenarioSpec.validate(entry) for entry in payload], False
    return [ScenarioSpec.validate(payload)], True


def scenario_main(argv: List[str]) -> int:
    """``scenario``: show / fingerprint / run specs, JSON in and out."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments scenario",
        description="Show, fingerprint, or run Scenario API specs (JSON).",
    )
    parser.add_argument(
        "action",
        nargs="?",
        choices=("show", "fingerprint", "run"),
        help="show: canonical JSON; fingerprint: content digests; "
        "run: execute end to end and emit outcome JSON",
    )
    parser.add_argument(
        "file",
        nargs="?",
        default=None,
        metavar="FILE",
        help="JSON spec file (an object or a list; '-' reads stdin)",
    )
    parser.add_argument(
        "--grid",
        default=None,
        metavar="ID",
        help=f"use a figure grid as the spec list (one of "
        f"{sorted(figures.FIGURE_GRIDS)})",
    )
    parser.add_argument(
        "--full", action="store_true", help="with --grid: full-size grid"
    )
    parser.add_argument(
        "--demo",
        default=None,
        metavar="NAME",
        help="use a named demo scenario (see --list-demos)",
    )
    parser.add_argument(
        "--list-demos", action="store_true", help="list demo scenario names"
    )
    parser.add_argument(
        "--components",
        action="store_true",
        help="with fingerprint: include the per-axis component digests",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the JSON here instead of stdout",
    )
    parser.add_argument(
        "--kernel-lane",
        default=None,
        choices=("py", "c", "auto"),
        help="with run: simulation kernel lane (results are "
        "bit-identical across lanes)",
    )
    args = parser.parse_args(argv)

    exit_code = _apply_kernel_lane(args.kernel_lane)
    if exit_code is not None:
        return exit_code
    if args.list_demos:
        for name in sorted(scenario_module.demo_scenarios()):
            print(name)
        return 0
    if args.action is None:
        parser.error("an action (show / fingerprint / run) is required")
    try:
        specs, single = _load_scenarios(args)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.action == "show":
        payloads: List[dict] = [spec.to_json_dict() for spec in specs]
    elif args.action == "fingerprint":
        payloads = []
        for spec in specs:
            entry = {"fingerprint": spec.fingerprint()}
            if args.components:
                entry["components"] = spec.component_fingerprints()
            payloads.append(entry)
    else:  # run
        payloads = []
        for spec in specs:
            outcome = scenario_module.execute_scenario(spec)
            payloads.append(outcome.to_json_dict())
            print(
                f"[scenario] {spec.tag or spec.fingerprint()[:12]}: "
                f"{outcome.result.throughput:.1f} tx/s, "
                f"{outcome.result.mean_response_time:.3f}s mean RT",
                file=sys.stderr,
            )
    body = payloads[0] if single else payloads
    text = json.dumps(body, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    return 0


def fuzz_main(argv: List[str]) -> int:
    """``fuzz``: random-walk ScenarioSpec space under the oracle library.

    Exit status: 0 when every sampled scenario (or replayed corpus
    entry) passes every oracle, 1 on failures (minimized reproducers
    are written to ``--corpus-dir`` for triage / check-in), 2 on usage
    errors.
    """
    from repro.experiments import fuzz as fuzz_module

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments fuzz",
        description="Fuzz the Scenario API: a seeded spec-space random "
        "walk checked against conservation / replay / codec / MPL "
        "oracles, with automatic shrinking of failures.",
    )
    parser.add_argument("--seed", type=int, default=0, help="walk seed")
    parser.add_argument(
        "--iterations", type=int, default=50, metavar="N",
        help="scenarios to sample (default 50)",
    )
    parser.add_argument(
        "--check-jobs-every", type=int, default=10, metavar="N",
        help="run the ParallelRunner --jobs 2 invariance oracle on every "
        "Nth scenario (0 disables; default 10 — it re-runs the scenario "
        "through a worker pool, the most expensive oracle)",
    )
    parser.add_argument(
        "--corpus-dir", default="tests/data/fuzz_corpus", metavar="DIR",
        help="where minimized reproducers are written on failure, and "
        "what --replay replays (default tests/data/fuzz_corpus)",
    )
    parser.add_argument(
        "--replay", action="store_true",
        help="replay the reproducer corpus instead of fuzzing",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="keep failing scenarios unminimized (faster triage loop)",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the JSON campaign report here",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache shared with the jobs-invariance oracle's runner",
    )
    parser.add_argument(
        "--kernel-lane", default=None, choices=("py", "c", "auto"),
        help="simulation kernel lane (both lanes must satisfy the oracles)",
    )
    args = parser.parse_args(argv)

    exit_code = _apply_kernel_lane(args.kernel_lane)
    if exit_code is not None:
        return exit_code
    if args.iterations < 1:
        print(f"error: --iterations must be >= 1, got {args.iterations}",
              file=sys.stderr)
        return 2
    if args.check_jobs_every < 0:
        print(f"error: --check-jobs-every must be >= 0, "
              f"got {args.check_jobs_every}", file=sys.stderr)
        return 2

    if args.replay:
        failures = fuzz_module.replay_corpus(
            args.corpus_dir, check_jobs=args.check_jobs_every > 0, log=print
        )
        for failure in failures:
            print(f"error: {failure}", file=sys.stderr)
        print(f"[fuzz] corpus replay: {len(failures)} failure(s)")
        return 1 if failures else 0

    start = time.time()
    report = fuzz_module.run_fuzz(
        seed=args.seed,
        iterations=args.iterations,
        check_jobs_every=args.check_jobs_every,
        shrink=not args.no_shrink,
        corpus_dir=args.corpus_dir,
        cache_dir=args.cache_dir,
        log=print,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(
        f"[fuzz] seed {report.seed}: {report.iterations} scenarios, "
        f"{len(report.failures)} failure(s), {report.jobs_checked} "
        f"jobs-invariance checks, {time.time() - start:.1f}s"
    )
    for failure in report.failures:
        where = failure.reproducer_path or "(no reproducer written)"
        print(
            f"error: iteration {failure.iteration}: {failure.oracle}: "
            f"{failure.error} -> {where}",
            file=sys.stderr,
        )
    return 0 if report.ok else 1


def main(argv: List[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "bench":
        return bench_main(argv[1:])
    if argv and argv[0] == "scenario":
        return scenario_main(argv[1:])
    if argv and argv[0] == "fuzz":
        return fuzz_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        metavar="TARGET",
        help="figure/table ids to regenerate, or 'all' (same as --all); "
        "'bench' starts the runner benchmark subcommand, 'scenario' "
        "the Scenario API subcommand (show / fingerprint / run), and "
        "'fuzz' the scenario fuzzer",
    )
    parser.add_argument(
        "--figure",
        action="append",
        default=[],
        metavar="ID",
        help=f"figure to regenerate (one of {sorted(_FIGURES)})",
    )
    parser.add_argument(
        "--table",
        action="append",
        default=[],
        metavar="ID",
        help=f"table to regenerate (one of {sorted(_TABLES)})",
    )
    parser.add_argument("--all", action="store_true", help="regenerate everything")
    parser.add_argument(
        "--full",
        action="store_true",
        help="full-size runs (default is fast, reduced sample sizes)",
    )
    parser.add_argument("--list", action="store_true", help="list available ids")
    _add_runner_arguments(parser)
    args = parser.parse_args(argv)

    if args.list:
        print("figures:", ", ".join(sorted(_FIGURES)))
        print("tables :", ", ".join(sorted(_TABLES)))
        print("grids  :", ", ".join(sorted(figures.FIGURE_GRIDS)),
              "(for bench + scenario)")
        print("demos  :", ", ".join(sorted(scenario_module.demo_scenarios())),
              "(for scenario run --demo)")
        return 0

    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    exit_code = _apply_kernel_lane(args.kernel_lane)
    if exit_code is not None:
        return exit_code

    figure_ids = list(args.figure)
    table_ids = list(args.table)
    run_all = args.all
    for target in args.targets:
        key = target.lower()
        if key == "all":
            run_all = True
        elif key in _FIGURES:
            figure_ids.append(key)
        elif key in _TABLES:
            table_ids.append(key)
        else:
            print(
                f"error: unknown target {target!r}; figures: "
                + ", ".join(sorted(_FIGURES))
                + "; tables: "
                + ", ".join(sorted(_TABLES))
                + "; or 'all' / 'bench' / 'scenario' / 'fuzz'",
                file=sys.stderr,
            )
            return 2
    if run_all:
        figure_ids = sorted(_FIGURES)
        table_ids = sorted(_TABLES)
    if not figure_ids and not table_ids:
        parser.print_help()
        return 2

    parallel.configure(jobs=args.jobs, cache_dir=args.cache_dir)
    try:
        for table_id in table_ids:
            key = table_id.lower()
            if key not in _TABLES:
                return _unknown("table", table_id, _TABLES)
            print(_TABLES[key]())
            print()
        for figure_id in figure_ids:
            key = figure_id.lower()
            if key not in _FIGURES:
                return _unknown("figure", figure_id, _FIGURES)
            _run_figure(key, fast=not args.full)
    finally:
        parallel.configure(jobs=1, cache_dir=None)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
