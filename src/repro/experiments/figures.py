"""Reproductions of every figure in the paper's evaluation.

Each ``figureN`` function regenerates the corresponding figure's data
(simulated where the paper measured hardware, analytic where the paper
analyzed) and returns :class:`FigureResult` objects that render as
tables + ASCII charts.  The ``fast`` flag trades sample size for run
time; EXPERIMENTS.md records a full-size run.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.arrivals import (
    ModulatedArrivals,
    OpenArrivals,
    PartlyOpenArrivals,
    SinusoidRate,
)
from repro.core.faults import DegradeShard, FaultSpec, KillShard, RestoreShard
from repro.core.cluster import READ_FANOUT_POLICIES
from repro.core.distributed import DistributedSpec
from repro.core.resilience import ResilienceSpec
from repro.core.scenario import (
    ClusterSlo,
    ElasticMpl,
    FeedbackMpl,
    MeasurementSpec,
    ScenarioSpec,
    StaticMpl,
    TopologySpec,
    WorkloadRef,
    execute_scenario,
)
from repro.dbms.config import InternalPolicy
from repro.dbms.transaction import Priority
from repro.experiments import report
from repro.experiments.parallel import DEFAULT_SEED, run_grid
from repro.experiments.runner import scenario_for, spec_for, tune_setup
from repro.priority.evaluation import (
    HIGH_PRIORITY_FRACTION,
    PrioritizationOutcome,
    outcome_from_runs,
)
from repro.queueing.mpl_ps_queue import MplPsQueue
from repro.queueing.throughput_model import ThroughputModel, balanced_min_mpl
from repro.sim.station import ROUTING_POLICIES
from repro.workloads.setups import SETUPS, get_setup


@dataclasses.dataclass(frozen=True)
class Series:
    """One plotted line: a label and y-values over the figure's x-axis."""

    label: str
    ys: Tuple[float, ...]


@dataclasses.dataclass(frozen=True)
class FigureResult:
    """One figure panel: x-axis, series, and free-form notes."""

    figure: str
    title: str
    xlabel: str
    xs: Tuple[float, ...]
    series: Tuple[Series, ...]
    notes: Tuple[str, ...] = ()

    def render(self) -> str:
        """Numeric table + ASCII chart + notes."""
        headers = [self.xlabel] + [s.label for s in self.series]
        rows = []
        for index, x in enumerate(self.xs):
            row = [f"{x:g}"]
            for s in self.series:
                value = s.ys[index]
                row.append("-" if value != value else f"{value:.3g}")
            rows.append(row)
        parts = [
            report.ascii_table(headers, rows, title=f"Figure {self.figure}: {self.title}"),
            report.ascii_chart(
                list(self.xs),
                [(s.label, list(s.ys)) for s in self.series],
            ),
        ]
        parts.extend(self.notes)
        return "\n\n".join(parts)


_NAN = float("nan")


def throughput_grid(
    setup_ids: Sequence[int],
    mpls: Sequence[int],
    transactions: int,
    seed: int = DEFAULT_SEED,
) -> List[ScenarioSpec]:
    """The scenario grid behind one throughput-vs-MPL panel, as data."""
    return [
        scenario_for(
            get_setup(setup_id), mpl=mpl, transactions=transactions, seed=seed
        )
        for setup_id in setup_ids
        for mpl in mpls
    ]


def _throughput_series(
    setup_ids: Sequence[int],
    mpls: Sequence[int],
    results: Sequence[object],
    labels: Optional[Dict[int, str]] = None,
) -> List[Series]:
    """Regroup a grid's flat results into one Series per setup."""
    series = []
    for index, setup_id in enumerate(setup_ids):
        chunk = results[index * len(mpls):(index + 1) * len(mpls)]
        label = (labels or {}).get(setup_id) or get_setup(setup_id).describe()
        series.append(Series(label=label, ys=tuple(r.throughput for r in chunk)))
    return series


_DEFAULT_MPLS = (1, 2, 3, 5, 7, 10, 15, 20, 30)


def figure2(fast: bool = True, mpls: Sequence[int] = _DEFAULT_MPLS) -> List[FigureResult]:
    """Throughput vs MPL for the CPU-bound workloads (setups 1–4)."""
    results = run_grid(figure2_grid(fast, mpls))
    split = 2 * len(mpls)
    panel_a = FigureResult(
        figure="2a",
        title="W_CPU-inventory throughput vs MPL (1 vs 2 CPUs)",
        xlabel="MPL",
        xs=tuple(float(m) for m in mpls),
        series=tuple(
            _throughput_series(
                [1, 2], mpls, results[:split],
                labels={1: "One CPU", 2: "Two CPUs"},
            )
        ),
    )
    panel_b = FigureResult(
        figure="2b",
        title="W_CPU-browsing throughput vs MPL (1 vs 2 CPUs)",
        xlabel="MPL",
        xs=tuple(float(m) for m in mpls),
        series=tuple(
            _throughput_series(
                [3, 4], mpls, results[split:],
                labels={3: "One CPU", 4: "Two CPUs"},
            )
        ),
    )
    return [panel_a, panel_b]


def figure3(fast: bool = True, mpls: Sequence[int] = _DEFAULT_MPLS) -> List[FigureResult]:
    """Throughput vs MPL for the I/O-bound workloads (setups 5–10)."""
    results = run_grid(figure3_grid(fast, mpls))
    split = 4 * len(mpls)
    panel_a = FigureResult(
        figure="3a",
        title="W_IO-inventory throughput vs MPL (1-4 disks)",
        xlabel="MPL",
        xs=tuple(float(m) for m in mpls),
        series=tuple(
            _throughput_series(
                [5, 6, 7, 8], mpls, results[:split],
                labels={5: "1 disk", 6: "2 disks", 7: "3 disks", 8: "4 disks"},
            )
        ),
    )
    panel_b = FigureResult(
        figure="3b",
        title="W_IO-browsing throughput vs MPL (1 vs 4 disks)",
        xlabel="MPL",
        xs=tuple(float(m) for m in mpls),
        series=tuple(
            _throughput_series(
                [9, 10], mpls, results[split:],
                labels={9: "1 disk", 10: "4 disks"},
            )
        ),
    )
    return [panel_a, panel_b]


def figure4(fast: bool = True, mpls: Sequence[int] = _DEFAULT_MPLS + (35,)) -> List[FigureResult]:
    """Throughput vs MPL for the balanced CPU+I/O workload (setups 11, 12)."""
    results = run_grid(figure4_grid(fast, mpls))
    return [
        FigureResult(
            figure="4",
            title="W_CPU+IO-inventory throughput vs MPL",
            xlabel="MPL",
            xs=tuple(float(m) for m in mpls),
            series=tuple(
                _throughput_series(
                    [11, 12], mpls, results,
                    labels={11: "1 disk, 1 CPU", 12: "4 disks, 2 CPUs"},
                )
            ),
        )
    ]


def figure5(fast: bool = True, mpls: Sequence[int] = (1, 2, 3, 5, 7, 10, 15, 20, 30, 40)) -> List[FigureResult]:
    """Throughput vs MPL under heavy locking: RR vs UR isolation."""
    results = run_grid(figure5_grid(fast, mpls))
    split = 2 * len(mpls)
    panel_a = FigureResult(
        figure="5a",
        title="W_CPU-inventory: isolation RR vs UR (setups 1, 17)",
        xlabel="MPL",
        xs=tuple(float(m) for m in mpls),
        series=tuple(
            _throughput_series(
                [17, 1], mpls, results[:split],
                labels={17: "Isolation UR", 1: "Isolation RR"},
            )
        ),
    )
    panel_b = FigureResult(
        figure="5b",
        title="W_CPU-ordering: isolation RR vs UR (setups 15, 16)",
        xlabel="MPL",
        xs=tuple(float(m) for m in mpls),
        series=tuple(
            _throughput_series(
                [16, 15], mpls, results[split:],
                labels={16: "UR isolation", 15: "RR isolation"},
            )
        ),
    )
    return [panel_a, panel_b]


def section32_response_time(
    fast: bool = True,
    mpls: Sequence[int] = (1, 2, 4, 6, 8, 10, 15, 20, 30),
) -> List[FigureResult]:
    """§3.2: open-system mean response time vs MPL.

    The paper reports TPC-C response times insensitive to the MPL once
    it is ≥ 4, while TPC-W (C² ≈ 15) needs ≥ 8 at 70% utilization and
    ≥ 15 at 90%.
    """
    transactions = 600 if fast else 2000
    loads = (0.7, 0.9)
    subjects = ((1, "TPC-C (W_CPU-inventory)"), (3, "TPC-W (W_CPU-browsing)"))
    # phase 1: closed-system capacity probes, one grid
    capacity_runs = run_grid([
        spec_for(get_setup(sid), mpl=None, transactions=max(400, transactions // 2))
        for sid, _name in subjects
    ])
    capacities = {sid: run.throughput
                  for (sid, _name), run in zip(subjects, capacity_runs)}
    # phase 2: the full (setup, load, mpl) open-system grid
    grid = [
        spec_for(
            get_setup(sid), mpl=mpl, transactions=transactions,
            arrival_rate=load * capacities[sid],
        )
        for sid, _name in subjects
        for load in loads
        for mpl in mpls
    ]
    runs = iter(run_grid(grid))
    results: List[FigureResult] = []
    for setup_id, name in subjects:
        series = []
        for load in loads:
            ys = [next(runs).mean_response_time for _ in mpls]
            series.append(Series(label=f"load {load:.0%}", ys=tuple(ys)))
        results.append(
            FigureResult(
                figure=f"S3.2-{name.split()[0]}",
                title=f"Open-system mean response time vs MPL, {name}",
                xlabel="MPL",
                xs=tuple(float(m) for m in mpls),
                series=tuple(series),
            )
        )
    return results


def figure7(
    disk_counts: Sequence[int] = (1, 2, 3, 4, 8, 16),
    max_mpl: int = 100,
) -> List[FigureResult]:
    """Analytic throughput vs MPL for 1–16 disks (pure queueing model).

    Also reports the minimum MPL reaching 80% (circles) and 95%
    (squares) of maximum throughput — both exactly linear in the disk
    count, matching the paper's straight-line observation.
    """
    xs = tuple(float(m) for m in range(1, max_mpl + 1))
    series = []
    marks80: List[str] = []
    marks95: List[str] = []
    for disks in disk_counts:
        # Data is striped, so each of the M disks carries 1/M of a
        # transaction's unit I/O demand; the asymptote is then M
        # transactions/sec, matching the paper's y-axis.
        model = ThroughputModel([1.0 / disks] * disks)
        curve = model.throughput_curve(max_mpl)
        series.append(Series(label=f"{disks} disks", ys=tuple(curve)))
        marks80.append(f"{disks} disks: MPL>={balanced_min_mpl(disks, 0.80)}")
        marks95.append(f"{disks} disks: MPL>={balanced_min_mpl(disks, 0.95)}")
    notes = (
        "80% of max (circles): " + "; ".join(marks80),
        "95% of max (squares): " + "; ".join(marks95),
        "Both mark sets are linear in the number of disks: "
        "min MPL = f (M - 1) / (1 - f).",
    )
    return [
        FigureResult(
            figure="7",
            title="Analytic throughput vs MPL as a function of resource count",
            xlabel="MPL",
            xs=xs,
            series=tuple(series),
            notes=notes,
        )
    ]


def figure10(
    scvs: Sequence[float] = (2.0, 5.0, 10.0, 15.0),
    loads: Sequence[float] = (0.7, 0.9),
    mpls: Sequence[int] = (1, 2, 3, 5, 7, 10, 15, 20, 25, 30, 35),
    service_mean: float = 0.050,
) -> List[FigureResult]:
    """Evaluate the Figure 9 CTMC: mean response time vs MPL per C².

    Matches Figure 10: with C² ≤ 2 the response time is flat in the
    MPL; with C² = 15 the MPL must reach ≈ 10 (load 0.7) or ≈ 30
    (load 0.9) before the PS level is attained.
    """
    results = []
    for load in loads:
        arrival_rate = load / service_mean
        series = []
        for scv in scvs:
            ys = []
            for mpl in mpls:
                model = MplPsQueue(
                    arrival_rate=arrival_rate,
                    mpl=mpl,
                    service_mean=service_mean,
                    service_scv=scv,
                )
                ys.append(model.mean_response_time() * 1000.0)  # msec
            series.append(Series(label=f"C2={scv:g}", ys=tuple(ys)))
        ps = MplPsQueue(
            arrival_rate=arrival_rate, mpl=1, service_mean=service_mean, service_scv=1.0
        ).ps_reference() * 1000.0
        series.append(Series(label="PS", ys=tuple(ps for _ in mpls)))
        results.append(
            FigureResult(
                figure=f"10 (load {load:g})",
                title=f"CTMC mean response time vs MPL, system load {load:g}",
                xlabel="MPL",
                xs=tuple(float(m) for m in mpls),
                series=tuple(series),
                notes=(f"PS reference: {ps:.1f} msec",),
            )
        )
    return results


def controller_convergence(
    fast: bool = True,
    setup_ids: Optional[Sequence[int]] = None,
    max_throughput_loss: float = 0.05,
) -> FigureResult:
    """§4.3: controller iterations to convergence, per setup.

    The paper reports convergence in fewer than 10 iterations for all
    setups when jump-started from the queueing models.
    """
    if setup_ids is None:
        setup_ids = (1, 3, 5, 8, 11, 13) if fast else tuple(s.setup_id for s in SETUPS)
    transactions = 600 if fast else 1500
    iterations: List[float] = []
    finals: List[float] = []
    starts: List[float] = []
    notes: List[str] = []
    for setup_id in setup_ids:
        tuning = tune_setup(
            get_setup(setup_id),
            max_throughput_loss=max_throughput_loss,
            transactions=transactions,
        )
        iterations.append(float(tuning.report.iterations))
        finals.append(float(tuning.final_mpl))
        starts.append(float(tuning.initial_mpl))
        notes.append(
            f"setup {setup_id}: model start {tuning.initial_mpl}, "
            f"final {tuning.final_mpl}, {tuning.report.iterations} iterations, "
            f"converged={tuning.report.converged}"
        )
    return FigureResult(
        figure="S4.3",
        title="Controller convergence (iterations to lowest feasible MPL)",
        xlabel="setup",
        xs=tuple(float(s) for s in setup_ids),
        series=(
            Series(label="iterations", ys=tuple(iterations)),
            Series(label="model start MPL", ys=tuple(starts)),
            Series(label="final MPL", ys=tuple(finals)),
        ),
        notes=tuple(notes),
    )


def _figure11_threshold(
    max_throughput_loss: float,
    fast: bool,
    seed: int,
) -> Tuple[FigureResult, List[PrioritizationOutcome]]:
    transactions = 700 if fast else 2000
    setup_ids = tuple(s.setup_id for s in SETUPS)
    # phase 1: the "No Prio" references for all 17 setups, one grid
    references = run_grid([
        spec_for(get_setup(sid), mpl=None, transactions=transactions, seed=seed)
        for sid in setup_ids
    ])
    # phase 2: tune each setup's MPL (inherently sequential feedback loops)
    # — the paper's budgets are symmetric: "sacrifice a maximum of
    # 5% (20%) throughput" and the same bound on mean RT
    tuned_mpls = [
        tune_setup(
            get_setup(sid),
            max_throughput_loss=max_throughput_loss,
            max_response_time_increase=max_throughput_loss,
            transactions=max(400, transactions // 2),
            window=100,
        ).final_mpl
        for sid in setup_ids
    ]
    # phase 3: the prioritized runs at the tuned MPLs, one grid
    prio_runs = run_grid([
        spec_for(
            get_setup(sid), mpl=mpl, transactions=transactions, seed=seed,
            policy="priority", high_priority_fraction=HIGH_PRIORITY_FRACTION,
        )
        for sid, mpl in zip(setup_ids, tuned_mpls)
    ])
    outcomes: List[PrioritizationOutcome] = [
        outcome_from_runs(f"setup {sid} mpl={mpl}", mpl, run, reference)
        for sid, mpl, run, reference in zip(
            setup_ids, tuned_mpls, prio_runs, references
        )
    ]
    highs = [o.high for o in outcomes]
    lows = [o.low for o in outcomes]
    noprios = [o.no_prio for o in outcomes]
    diffs = [o.differentiation for o in outcomes if o.differentiation > 0]
    pens = [o.low_penalty for o in outcomes if o.low_penalty > 0]
    overall = [o.overall_penalty for o in outcomes if o.overall_penalty > 0]
    notes = (
        f"differentiation (low/high): min {min(diffs):.1f}x, "
        f"max {max(diffs):.1f}x, mean {sum(diffs)/len(diffs):.1f}x",
        f"low-priority penalty vs no-prio: mean {sum(pens)/len(pens):.2f}x",
        f"overall mean RT vs no-prio: worst {max(overall):.2f}x",
    )
    figure = FigureResult(
        figure=f"11 ({max_throughput_loss:.0%} loss)",
        title=(
            "External prioritization across all 17 setups, MPL tuned for "
            f"<= {max_throughput_loss:.0%} throughput loss"
        ),
        xlabel="setup",
        xs=tuple(float(s) for s in setup_ids),
        series=(
            Series(label="High Prio (s)", ys=tuple(highs)),
            Series(label="Low Prio (s)", ys=tuple(lows)),
            Series(label="No Prio (s)", ys=tuple(noprios)),
        ),
        notes=notes,
    )
    return figure, outcomes


def figure11(fast: bool = True, seed: int = 11) -> List[FigureResult]:
    """External prioritization, all 17 setups, 5% and 20% loss budgets."""
    top, _ = _figure11_threshold(0.05, fast, seed)
    bottom, _ = _figure11_threshold(0.20, fast, seed)
    return [top, bottom]


def _internal_vs_external(
    setup_id: int,
    internal: InternalPolicy,
    fast: bool,
    seed: int = 11,
) -> FigureResult:
    transactions = 800 if fast else 2000
    setup = get_setup(setup_id)
    budgets = (("ext95", 0.05), ("ext80", 0.20), ("ext100", 0.005))
    # phase 1: the shared reference + the internal-prioritization run
    no_prio, internal_run = run_grid([
        spec_for(setup, mpl=None, transactions=transactions, seed=seed),
        spec_for(
            setup, mpl=None, transactions=transactions, seed=seed,
            internal=internal, high_priority_fraction=HIGH_PRIORITY_FRACTION,
        ),
    ])
    # phase 2: tune one MPL per throughput-loss budget (sequential)
    tuned_mpls = [
        tune_setup(
            setup,
            max_throughput_loss=loss,
            max_response_time_increase=max(loss, 0.02),
            transactions=max(400, transactions // 2),
        ).final_mpl
        for _label, loss in budgets
    ]
    # phase 3: the external-prioritization runs, one grid
    ext_runs = run_grid([
        spec_for(
            setup, mpl=mpl, transactions=transactions, seed=seed,
            policy="priority", high_priority_fraction=HIGH_PRIORITY_FRACTION,
        )
        for mpl in tuned_mpls
    ])
    columns: List[Tuple[str, PrioritizationOutcome]] = [
        ("internal", outcome_from_runs("internal", None, internal_run, no_prio))
    ]
    columns.extend(
        (label, outcome_from_runs(label, mpl, run, no_prio))
        for (label, _loss), mpl, run in zip(budgets, tuned_mpls, ext_runs)
    )
    xs = tuple(float(i) for i in range(len(columns)))
    notes = tuple(
        f"{label}: high={o.high:.2f}s low={o.low:.2f}s mean={o.overall:.2f}s "
        f"(diff {o.differentiation:.1f}x, mpl={o.mpl})"
        for label, o in columns
    )
    return FigureResult(
        figure="12" if setup_id == 1 else "13",
        title=(
            f"Internal vs external prioritization, setup {setup_id} "
            f"({setup.workload_name})"
        ),
        xlabel="scheme (0=internal, 1=ext95, 2=ext80, 3=ext100)",
        xs=xs,
        series=(
            Series(label="High Prio (s)", ys=tuple(o.high for _l, o in columns)),
            Series(label="Low Prio (s)", ys=tuple(o.low for _l, o in columns)),
            Series(label="Mean (s)", ys=tuple(o.overall for _l, o in columns)),
        ),
        notes=notes,
    )


def figure12(fast: bool = True, seed: int = 11) -> List[FigureResult]:
    """Internal (POW lock scheduling) vs external prioritization, setup 1."""
    return [_internal_vs_external(1, InternalPolicy.pow_locks(), fast, seed)]


def figure13(fast: bool = True, seed: int = 11) -> List[FigureResult]:
    """Internal (CPU priorities/renice) vs external prioritization, setup 3."""
    return [_internal_vs_external(3, InternalPolicy.cpu_priorities(), fast, seed)]


# -- new-scenario figures: partly-open sessions and time-varying load ---------

#: Offered transaction rate for the stand-alone partly-open bench grid:
#: ≈ 80% of setup 1's fast-probe closed capacity (the figure function
#: probes the live capacity instead of relying on this constant).
PARTLY_OPEN_NOMINAL_RATE = 52.0

#: Session-length mixes swept by the partly-open figure: 1 = pure open,
#: larger means behave increasingly like a closed system.
PARTLY_OPEN_MIXES = (1.0, 4.0, 16.0)

#: Think time between a session's transactions (seconds).
PARTLY_OPEN_THINK_S = 0.1


def partly_open_grid(
    fast: bool = True,
    mpls: Sequence[int] = (1, 2, 4, 8, 16, 30),
    rate: float = PARTLY_OPEN_NOMINAL_RATE,
    mixes: Sequence[float] = PARTLY_OPEN_MIXES,
    seed: int = DEFAULT_SEED,
) -> List[ScenarioSpec]:
    """The (mix, MPL) scenario grid behind the partly-open sweep.

    Every cell offers the same transaction rate; only the session mix
    (and the MPL) varies, so the columns are directly comparable.
    """
    transactions = 400 if fast else 1500
    return [
        scenario_for(
            get_setup(1),
            mpl=mpl,
            transactions=transactions,
            seed=seed,
            arrival=PartlyOpenArrivals.for_load(
                rate, mix, think_time_s=PARTLY_OPEN_THINK_S
            ),
        )
        for mix in mixes
        for mpl in mpls
    ]


def partly_open(
    fast: bool = True, mpls: Sequence[int] = (1, 2, 4, 8, 16, 30)
) -> List[FigureResult]:
    """Partly-open MPL sweep: throughput and response time vs session mix.

    Extends the paper's §3.2 open-system study to the partly-open
    regime real traffic exhibits: sessions arrive Poisson, issue a
    geometric number of transactions with think times, and leave.  At
    mean session length 1 the source is the paper's open system; at 16
    it is nearly closed — the safe (response-time-flat) MPL shifts
    accordingly while the throughput story of §3.1 is unchanged.
    """
    transactions = 400 if fast else 1500
    # phase 1: closed capacity probe fixes the offered load at 80%
    probe = run_grid(
        [spec_for(get_setup(1), mpl=None, transactions=max(400, transactions // 2))]
    )[0]
    rate = 0.8 * probe.throughput
    runs = iter(run_grid(partly_open_grid(fast, mpls, rate=rate)))
    throughput_series: List[Series] = []
    response_series: List[Series] = []
    for mix in PARTLY_OPEN_MIXES:
        results = [next(runs) for _ in mpls]
        label = f"sessions of {mix:g}"
        throughput_series.append(
            Series(label=label, ys=tuple(r.throughput for r in results))
        )
        response_series.append(
            Series(label=label, ys=tuple(r.mean_response_time for r in results))
        )
    notes = (
        f"offered load: {rate:.1f} tx/s (80% of the closed capacity "
        f"{probe.throughput:.1f} tx/s), think time {PARTLY_OPEN_THINK_S:g}s",
    )
    return [
        FigureResult(
            figure="PO-a",
            title="Partly-open sessions: throughput vs MPL by session mix",
            xlabel="MPL",
            xs=tuple(float(m) for m in mpls),
            series=tuple(throughput_series),
            notes=notes,
        ),
        FigureResult(
            figure="PO-b",
            title="Partly-open sessions: mean response time vs MPL by session mix",
            xlabel="MPL",
            xs=tuple(float(m) for m in mpls),
            series=tuple(response_series),
            notes=notes,
        ),
    ]


def time_varying_controller(
    fast: bool = True, setup_id: int = 1, seed: int = DEFAULT_SEED
) -> FigureResult:
    """Controller convergence when the arrival rate varies over time.

    Drives the §4.3 feedback controller against a sinusoidally
    modulated open source (load swinging roughly 45–95% of capacity).
    The controller's windows straddle different phases of the cycle,
    so this probes exactly what the paper's static experiments could
    not: whether the observation-window extension logic keeps the loop
    stable when "representative load" is a moving target.
    """
    setup = get_setup(setup_id)
    transactions = 600 if fast else 1500
    # phase 1: closed capacity probe to scale the rate profile
    probe = run_grid(
        [spec_for(setup, mpl=None, transactions=max(400, transactions // 2), seed=seed)]
    )[0]
    rate_function = SinusoidRate(
        base=0.7 * probe.throughput, amplitude=0.25 * probe.throughput, period=20.0
    )
    arrival = ModulatedArrivals(rate_function)
    # phase 2: the no-MPL baseline under the same modulated load (cached)
    reference = run_grid([
        scenario_for(setup, mpl=None, transactions=transactions, seed=seed,
                     arrival=arrival)
    ])[0]
    # phase 3: the scenario *is* the experiment — the FeedbackMpl spec
    # carries the cached baseline and instantiates the §4.3 controller;
    # no controller construction in figure code.
    scenario = ScenarioSpec(
        workload=WorkloadRef(setup_id=setup_id),
        arrival=arrival,
        control=FeedbackMpl(
            max_throughput_loss=0.05,
            max_response_time_increase=0.30,
            initial_mpl=2,
            window=100 if fast else 200,
            baseline_throughput=reference.throughput,
            baseline_response_time=reference.mean_response_time,
        ),
        measurement=MeasurementSpec(transactions=max(200, transactions // 3)),
        seed=seed,
        tag="tv",
    )
    run = execute_scenario(scenario)
    outcome = run.control
    iterations = tuple(float(i + 1) for i in range(len(outcome.trajectory)))
    notes = (
        f"rate profile: {rate_function.base:.1f} + {rate_function.amplitude:.1f}"
        f" * sin(2*pi*t/{rate_function.period:g})  tx/s",
        f"final MPL {outcome.final_mpl} after {outcome.iterations} iterations "
        f"(converged={outcome.converged})",
        f"baseline: {reference.throughput:.1f} tx/s, "
        f"{reference.mean_response_time:.3f}s mean RT",
        f"post-tuning window: {run.result.throughput:.1f} tx/s, "
        f"{run.result.mean_response_time:.3f}s mean RT",
    )
    return FigureResult(
        figure="TV",
        title="Controller convergence under time-varying (sinusoidal) load",
        xlabel="iteration",
        xs=iterations,
        series=(
            Series(label="MPL", ys=tuple(float(o.mpl) for o in outcome.trajectory)),
            Series(
                label="throughput (tx/s)",
                ys=tuple(o.throughput for o in outcome.trajectory),
            ),
            Series(
                label="feasible (1=yes)",
                ys=tuple(float(o.feasible) for o in outcome.trajectory),
            ),
        ),
        notes=notes,
    )


# -- sharded-cluster figure: N engines behind a router ------------------------

#: Shard counts swept by the cluster figure.
SHARD_COUNTS = (1, 2, 4, 8)

#: Per-shard MPL values swept (the global MPL is this times the shard
#: count, so every cluster size sees the same per-shard operating
#: points).
SHARD_MPLS = (1, 2, 4, 8, 16)
SHARD_MPLS_FAST = (2, 8)

#: Offered load per shard, tx/s — ≈ 70% of setup 1's closed capacity,
#: so the sweep is *weak scaling*: the cluster always runs at the same
#: per-shard load, and total throughput should grow linearly with the
#: shard count under any sane routing policy.
SHARD_RATE_PER_SHARD = 45.0

#: Session mix / think time of the partly-open regime (matches `po`).
SHARD_SESSION_MIX = 4.0
SHARD_THINK_S = 0.1

#: Shard count at which the routing policies are compared head-to-head.
SHARD_POLICY_COUNT = 4


def _sharded_spec(
    shards: int,
    routing: str,
    per_shard_mpl: int,
    transactions: int,
    arrival,
    seed: int = DEFAULT_SEED,
) -> ScenarioSpec:
    return scenario_for(
        get_setup(1),
        mpl=per_shard_mpl * shards,
        transactions=transactions,
        seed=seed,
        arrival=arrival,
        shards=shards,
        routing=routing,
        tag=f"sh-{shards}x-{routing}",
    )


def _sharded_arrival(regime: str, shards: int):
    """The cluster-wide arrival spec for one (regime, shard count) cell."""
    rate = SHARD_RATE_PER_SHARD * shards
    if regime == "po":
        return PartlyOpenArrivals.for_load(
            rate, SHARD_SESSION_MIX, think_time_s=SHARD_THINK_S
        )
    if regime == "tv":
        return ModulatedArrivals(
            SinusoidRate(base=rate, amplitude=0.35 * rate, period=20.0)
        )
    raise ValueError(f"unknown arrival regime {regime!r}")


def sharded_grid(
    fast: bool = True,
    mpls: Optional[Sequence[int]] = None,
    shard_counts: Sequence[int] = SHARD_COUNTS,
    policies: Sequence[str] = ROUTING_POLICIES,
) -> List[ScenarioSpec]:
    """The scenario grid behind the cluster figure, as data.

    Three blocks, in order: (a) the shard-count sweep under partly-open
    arrivals at the reference routing policy, (b) the routing-policy
    comparison at :data:`SHARD_POLICY_COUNT` shards under partly-open
    arrivals, (c) the same comparison under the time-varying
    (sinusoidal) regime.  ``mpls`` are *per-shard* MPL values.
    """
    if mpls is None:
        mpls = SHARD_MPLS_FAST if fast else SHARD_MPLS
    transactions = 250 if fast else 1200
    specs = [
        _sharded_spec(shards, "least_in_flight", mpl, transactions,
                      _sharded_arrival("po", shards))
        for shards in shard_counts
        for mpl in mpls
    ]
    for regime in ("po", "tv"):
        specs.extend(
            _sharded_spec(SHARD_POLICY_COUNT, policy, mpl, transactions,
                          _sharded_arrival(regime, SHARD_POLICY_COUNT))
            for policy in policies
            for mpl in mpls
        )
    return specs


def sharded_cluster(
    fast: bool = True,
    mpls: Optional[Sequence[int]] = None,
    shard_counts: Sequence[int] = SHARD_COUNTS,
    policies: Sequence[str] = ROUTING_POLICIES,
) -> List[FigureResult]:
    """Cluster scaling: throughput / response time vs MPL by shard count.

    Weak-scaling sweep of the sharded topology: every cluster size
    offers :data:`SHARD_RATE_PER_SHARD` tx/s *per shard*, so linear
    total throughput is the pass criterion, and the per-shard MPL axis
    makes the response-time curves directly comparable across cluster
    sizes.  Two routing-policy panels compare all four policies at the
    same per-shard operating points under the partly-open (`po`) and
    time-varying (`tv`) regimes.
    """
    if mpls is None:
        mpls = SHARD_MPLS_FAST if fast else SHARD_MPLS
    runs = iter(run_grid(sharded_grid(fast, mpls, shard_counts, policies)))
    throughput_by_shards: List[Series] = []
    response_by_shards: List[Series] = []
    for shards in shard_counts:
        results = [next(runs) for _ in mpls]
        label = f"{shards} shard{'s' if shards > 1 else ''}"
        throughput_by_shards.append(
            Series(label=label, ys=tuple(r.throughput for r in results))
        )
        response_by_shards.append(
            Series(label=label, ys=tuple(r.mean_response_time for r in results))
        )
    policy_panels: List[FigureResult] = []
    for regime, title in (
        ("po", "partly-open sessions"),
        ("tv", "time-varying (sinusoidal) load"),
    ):
        series = []
        for policy in policies:
            results = [next(runs) for _ in mpls]
            series.append(
                Series(
                    label=policy,
                    ys=tuple(r.mean_response_time for r in results),
                )
            )
        policy_panels.append(
            FigureResult(
                figure=f"SH-{regime}",
                title=(
                    f"Routing policies at {SHARD_POLICY_COUNT} shards: "
                    f"mean response time vs per-shard MPL, {title}"
                ),
                xlabel="per-shard MPL",
                xs=tuple(float(m) for m in mpls),
                series=tuple(series),
                notes=(
                    f"offered load {SHARD_RATE_PER_SHARD:g} tx/s per shard "
                    f"({regime} regime), global MPL = per-shard MPL x shards",
                ),
            )
        )
    scale_note = (
        f"weak scaling: {SHARD_RATE_PER_SHARD:g} tx/s offered per shard "
        f"(routing: least_in_flight), global MPL = per-shard MPL x shards"
    )
    return [
        FigureResult(
            figure="SH-a",
            title="Cluster throughput vs per-shard MPL by shard count",
            xlabel="per-shard MPL",
            xs=tuple(float(m) for m in mpls),
            series=tuple(throughput_by_shards),
            notes=(scale_note,),
        ),
        FigureResult(
            figure="SH-b",
            title="Cluster mean response time vs per-shard MPL by shard count",
            xlabel="per-shard MPL",
            xs=tuple(float(m) for m in mpls),
            series=tuple(response_by_shards),
            notes=(scale_note,),
        ),
        *policy_panels,
    ]


# -- fault-tolerance figure: kill -> elect -> restore timeline ----------------

#: Shard counts swept by the fault-tolerance figure.
FT_SHARD_COUNTS = (1, 2, 4, 8)

#: Offered load per shard, tx/s (same weak-scaling rate as the cluster
#: figure, so the two sweeps are comparable).
FT_RATE_PER_SHARD = 45.0

#: Per-shard MPL budget handed to the elastic controller.
FT_MPL_PER_SHARD = 8

#: The fault schedule: shard 0's primary dies, the replica group
#: elects, and the dead member is revived five seconds later.
FT_KILL_AT = 3.0
FT_RESTORE_AT = 8.0

#: Timeline resolution; bucket boundaries are anchored at simulated
#: time zero, so every shard count's timeline aligns bucket-for-bucket.
FT_BUCKET_S = 1.0


def _ft_spec(shards: int, duration_s: float, seed: int = DEFAULT_SEED) -> ScenarioSpec:
    """One fault-tolerance cell: replicated cluster + kill/restore."""
    rate = FT_RATE_PER_SHARD * shards
    return ScenarioSpec(
        workload=WorkloadRef(setup_id=1),
        arrival=OpenArrivals(rate=rate),
        topology=TopologySpec(
            shards=shards,
            routing="least_in_flight",
            replicas_per_shard=1,
            read_fanout="round_robin",
        ),
        control=ElasticMpl(mpl=FT_MPL_PER_SHARD * shards, interval_s=1.0),
        faults=FaultSpec(events=(
            KillShard(at=FT_KILL_AT, shard=0),
            RestoreShard(at=FT_RESTORE_AT, shard=0),
        )),
        measurement=MeasurementSpec(
            # transactions scale with the offered rate so every shard
            # count's run covers the whole kill -> elect -> restore arc
            transactions=int(rate * duration_s),
            metrics=("standard", "percentiles", "timeline"),
            timeline_bucket_s=FT_BUCKET_S,
        ),
        seed=seed,
        tag=f"ft-{shards}x",
    )


def fault_tolerance_grid(
    fast: bool = True,
    mpls: Optional[Sequence[int]] = None,
    shard_counts: Sequence[int] = FT_SHARD_COUNTS,
) -> List[ScenarioSpec]:
    """The scenario grid behind the fault-tolerance figure, as data.

    One cell per shard count; the ``mpls`` argument is accepted for
    grid-builder signature compatibility and ignored (the elastic
    controller owns the MPL axis here).
    """
    duration = 12.0 if fast else 20.0
    return [_ft_spec(shards, duration) for shards in shard_counts]


def fault_tolerance(
    fast: bool = True, shard_counts: Sequence[int] = FT_SHARD_COUNTS
) -> List[FigureResult]:
    """Failover timeline: throughput and p95 through kill -> restore.

    Every cluster runs replicated (1 replica per shard) under elastic
    capacity control at :data:`FT_RATE_PER_SHARD` tx/s per shard.  At
    t=3s shard 0's primary fail-stops — its replica group buffers
    queued work, elects the replica, and drains the backlog; at t=8s
    the dead member is revived.  The per-second timeline shows the
    kill-bucket throughput dip and p95 spike, the post-election
    recovery, and (via the elastic controller) the MPL re-split toward
    the surviving capacity.
    """
    specs = fault_tolerance_grid(fast, shard_counts=shard_counts)
    runs = [execute_scenario(spec) for spec in specs]
    # one aligned x-axis: the union of every run's bucket times
    xs = tuple(sorted({row["t"] for run in runs for row in run.timeline}))
    throughput_series: List[Series] = []
    p95_series: List[Series] = []
    notes: List[str] = []
    for shards, run in zip(shard_counts, runs):
        by_t = {row["t"]: row for row in run.timeline}
        label = f"{shards} shard{'s' if shards > 1 else ''}"
        throughput_series.append(Series(
            label=label,
            ys=tuple(by_t[t]["throughput"] if t in by_t else _NAN for t in xs),
        ))
        p95_series.append(Series(
            label=label,
            ys=tuple(
                by_t[t]["p95_response_time"] if t in by_t else _NAN for t in xs
            ),
        ))
        elastic = run.control
        fired = "; ".join(
            f"t={fault['at']:g}s {fault['kind']} shard {fault['shard']}"
            for fault in (run.faults or ())
        )
        notes.append(
            f"{label}: faults [{fired}], elastic re-splits "
            f"{elastic.resplits}, final MPL split {elastic.final_mpls}"
        )
    scale_note = (
        f"replicated (1 replica/shard), {FT_RATE_PER_SHARD:g} tx/s per "
        f"shard, elastic global MPL = {FT_MPL_PER_SHARD} x shards; kill "
        f"t={FT_KILL_AT:g}s, restore t={FT_RESTORE_AT:g}s"
    )
    return [
        FigureResult(
            figure="FT-a",
            title="Failover timeline: throughput per second by shard count",
            xlabel="time (s)",
            xs=xs,
            series=tuple(throughput_series),
            notes=(scale_note, *notes),
        ),
        FigureResult(
            figure="FT-b",
            title="Failover timeline: p95 response time per second by shard count",
            xlabel="time (s)",
            xs=xs,
            series=tuple(p95_series),
            notes=(scale_note,),
        ),
    ]


# -- replica read-fanout figure: replicas x fan-out sensitivity --------------

#: Shard count held fixed while the replica axis sweeps.
RF_SHARDS = 2

#: Replica counts swept (0 = the unreplicated baseline).
RF_REPLICA_COUNTS = (0, 1, 2)

#: Offered load per shard, tx/s — ≈ 87% of setup 3's closed capacity
#: (≈ 11.5 tx/s at MPL 8), so the primary runs near saturation when it
#: handles every read itself and fan-out has headroom to relieve it.
RF_RATE_PER_SHARD = 10.0

#: Per-shard MPL budget (static — the replica axis is the experiment).
RF_MPL_PER_SHARD = 8


def _rf_fanouts(replicas: int) -> Tuple[str, ...]:
    """Fan-out policies worth running at a replica count.

    With no replicas every policy routes reads to the primary, so only
    the ``primary`` cell runs; with replicas all three policies differ.
    """
    return ("primary",) if replicas == 0 else tuple(READ_FANOUT_POLICIES)


def _rf_spec(
    replicas: int, fanout: str, transactions: int, seed: int = DEFAULT_SEED
) -> ScenarioSpec:
    """One read-fanout cell: replicated cluster at fixed offered load."""
    return ScenarioSpec(
        workload=WorkloadRef(setup_id=3),
        arrival=OpenArrivals(rate=RF_RATE_PER_SHARD * RF_SHARDS),
        topology=TopologySpec(
            shards=RF_SHARDS,
            routing="least_in_flight",
            replicas_per_shard=replicas,
            read_fanout=fanout,
        ),
        control=StaticMpl(mpl=RF_MPL_PER_SHARD * RF_SHARDS),
        measurement=MeasurementSpec(transactions=transactions),
        seed=seed,
        tag=f"rf-{replicas}r-{fanout}",
    )


def replica_fanout_grid(
    fast: bool = True, mpls: Optional[Sequence[int]] = None
) -> List[ScenarioSpec]:
    """The scenario grid behind the read-fanout figure, as data.

    One cell per (replica count, fan-out policy); ``mpls`` is accepted
    for grid-builder signature compatibility and ignored (the MPL is
    held fixed — the replica axis is the experiment).
    """
    transactions = 350 if fast else 1200
    return [
        _rf_spec(replicas, fanout, transactions)
        for replicas in RF_REPLICA_COUNTS
        for fanout in _rf_fanouts(replicas)
    ]


def replica_fanout(fast: bool = True) -> List[FigureResult]:
    """Read fan-out sensitivity: replicas per shard x fan-out policy.

    Setup 3 (TPC-W Browsing, 95% reads) on a 2-shard cluster at fixed
    offered load near single-engine saturation.  With ``primary``
    fan-out replicas are pure failover spares — response time never
    moves off the unreplicated baseline — while ``round_robin`` and
    ``least_in_flight`` spread the read mix across the group, relieving
    the near-saturated primary.  Throughput barely moves (the system is
    open: completions track arrivals while stable), so response time
    carries the signal.
    """
    specs = replica_fanout_grid(fast)
    cells = {
        (spec.topology.replicas_per_shard, spec.topology.read_fanout): result
        for spec, result in zip(specs, run_grid(specs))
    }
    xs = tuple(float(r) for r in RF_REPLICA_COUNTS)
    throughput_series: List[Series] = []
    response_series: List[Series] = []
    for fanout in READ_FANOUT_POLICIES:
        picks = [
            cells.get((replicas, fanout if replicas else "primary"))
            if (replicas or fanout == "primary") else None
            for replicas in RF_REPLICA_COUNTS
        ]
        throughput_series.append(Series(
            label=fanout,
            ys=tuple(r.throughput if r else _NAN for r in picks),
        ))
        response_series.append(Series(
            label=fanout,
            ys=tuple(r.mean_response_time if r else _NAN for r in picks),
        ))
    scale_note = (
        f"setup 3 (TPC-W Browsing, 95% reads), {RF_SHARDS} shards, "
        f"{RF_RATE_PER_SHARD:g} tx/s per shard (≈87% of single-engine "
        f"capacity), static MPL = {RF_MPL_PER_SHARD} x shards"
    )
    return [
        FigureResult(
            figure="RF-a",
            title="Throughput vs replicas per shard by read fan-out",
            xlabel="replicas per shard",
            xs=xs,
            series=tuple(throughput_series),
            notes=(scale_note,),
        ),
        FigureResult(
            figure="RF-b",
            title="Mean response time vs replicas per shard by read fan-out",
            xlabel="replicas per shard",
            xs=xs,
            series=tuple(response_series),
            notes=(
                scale_note,
                "primary fan-out leaves replicas idle: its curve is flat "
                "at the unreplicated baseline",
            ),
        ),
    ]


# -- resilience figure: retry storm vs hardened goodput ----------------------

#: Shard count for the resilience cells (breakers need > 1 shard).
RS_SHARDS = 2

#: Offered load, tx/s — a few percent over the 2-shard capacity at
#: MPL 8 per shard, so the degrade + kill arc pushes the cluster into
#: genuine overload instead of just eating headroom.
RS_RATE = 100.0

#: Per-shard MPL budget (static — the resilience axis is the experiment).
RS_MPL_PER_SHARD = 8

#: Admission-to-completion budget shared by both resilient cells.
RS_DEADLINE_S = 0.6
RS_MAX_ATTEMPTS = 3

#: The fault schedule: shard 1 loses 70% of its capacity, then shard 0
#: fail-stops while shard 1 is still degraded, then shard 0 revives.
RS_DEGRADE_AT = 2.0
RS_KILL_AT = 4.0
RS_RESTORE_AT = 8.0

#: Timeline resolution (anchored at simulated time zero).
RS_BUCKET_S = 1.0

#: The three cells.  ``naive`` retries instantly with no backoff, no
#: queue cap, and no breaker — the classic retry storm; ``hardened``
#: spends the same retry budget with exponential backoff + jitter,
#: sheds the newest low-class work at a bounded queue, and routes
#: around unhealthy shards via circuit breakers.
RS_VARIANTS: Dict[str, Optional[ResilienceSpec]] = {
    "baseline": None,
    "naive": ResilienceSpec(
        deadline_s=RS_DEADLINE_S,
        max_attempts=RS_MAX_ATTEMPTS,
        base_backoff_s=0.0,
    ),
    "hardened": ResilienceSpec(
        deadline_s=RS_DEADLINE_S,
        max_attempts=RS_MAX_ATTEMPTS,
        base_backoff_s=0.25,
        backoff_multiplier=2.0,
        jitter_fraction=0.5,
        queue_cap=24,
        shed_policy="by_class",
        breaker_enabled=True,
        breaker_window=10,
        breaker_timeout_threshold=0.4,
        breaker_response_time_s=0.45,
        breaker_open_s=1.0,
    ),
}


def _rs_spec(
    variant: str, duration_s: float, seed: int = DEFAULT_SEED
) -> ScenarioSpec:
    """One resilience cell: overloaded 2-shard cluster + degrade/kill."""
    return ScenarioSpec(
        workload=WorkloadRef(setup_id=1),
        arrival=OpenArrivals(rate=RS_RATE),
        topology=TopologySpec(shards=RS_SHARDS, routing="least_in_flight"),
        control=StaticMpl(mpl=RS_MPL_PER_SHARD * RS_SHARDS),
        faults=FaultSpec(events=(
            DegradeShard(at=RS_DEGRADE_AT, shard=1, factor=0.3),
            KillShard(at=RS_KILL_AT, shard=0),
            RestoreShard(at=RS_RESTORE_AT, shard=0),
        )),
        resilience=RS_VARIANTS[variant],
        measurement=MeasurementSpec(
            transactions=int(RS_RATE * duration_s),
            metrics=("standard", "percentiles", "timeline"),
            timeline_bucket_s=RS_BUCKET_S,
        ),
        seed=seed,
        tag=f"rs-{variant}",
    )


def resilience_grid(
    fast: bool = True, mpls: Optional[Sequence[int]] = None
) -> List[ScenarioSpec]:
    """The scenario grid behind the resilience figure, as data.

    One cell per resilience variant; ``mpls`` is accepted for
    grid-builder signature compatibility and ignored (the MPL is held
    fixed — the resilience axis is the experiment).
    """
    duration = 12.0 if fast else 20.0
    return [_rs_spec(variant, duration) for variant in RS_VARIANTS]


def resilience(fast: bool = True) -> List[FigureResult]:
    """Goodput under a retry storm, naive vs hardened.

    Three runs of one overloaded 2-shard cluster through the same
    degrade -> kill -> restore arc.  The ``baseline`` cell has no
    deadlines, so every commit counts; ``naive`` arms a 0.6 s deadline
    with three instant retries and nothing else — timed-out work
    re-enters the queue immediately, inflating the load the timeouts
    came from, and goodput collapses while attempted work soars;
    ``hardened`` spends the identical retry budget with exponential
    backoff + seeded jitter, a bounded queue shedding newest low-class
    work, and per-shard circuit breakers that route around the
    degraded shard — goodput stays near the baseline.
    """
    specs = resilience_grid(fast)
    runs = [execute_scenario(spec) for spec in specs]
    xs = tuple(sorted({row["t"] for run in runs for row in run.timeline}))
    goodput_series: List[Series] = []
    storm_series: List[Series] = []
    notes: List[str] = []
    for spec, run in zip(specs, runs):
        variant = spec.tag[len("rs-"):]
        by_t = {row["t"]: row for row in run.timeline}
        goodput_series.append(Series(
            label=variant,
            # without a deadline every commit is within budget, so the
            # baseline's throughput is its goodput
            ys=tuple(
                by_t[t].get("goodput", by_t[t]["throughput"])
                if t in by_t else _NAN
                for t in xs
            ),
        ))
        summary = run.resilience
        if summary is None:
            notes.append(
                f"{variant}: no deadlines — throughput "
                f"{run.result.throughput:.1f} tx/s is all goodput"
            )
            continue
        storm_series.append(Series(
            label=f"{variant} attempts",
            ys=tuple(
                by_t[t]["attempt_throughput"] if t in by_t else _NAN
                for t in xs
            ),
        ))
        storm_series.append(Series(
            label=f"{variant} goodput",
            ys=tuple(by_t[t]["goodput"] if t in by_t else _NAN for t in xs),
        ))
        breaker_note = ""
        if summary.get("breakers"):
            flips = sum(len(b["transitions"]) for b in summary["breakers"])
            breaker_note = f", breaker transitions {flips}"
        notes.append(
            f"{variant}: admitted {summary['admitted']}, committed in "
            f"budget {summary['completed']}, timed out "
            f"{summary['timed_out']}, shed {summary['shed']}, retries "
            f"{summary['retries']}{breaker_note}"
        )
    scale_note = (
        f"{RS_SHARDS} shards, {RS_RATE:g} tx/s offered, static MPL = "
        f"{RS_MPL_PER_SHARD} x shards, deadline {RS_DEADLINE_S:g}s, "
        f"{RS_MAX_ATTEMPTS} retries; degrade shard 1 x0.3 "
        f"t={RS_DEGRADE_AT:g}s, kill shard 0 t={RS_KILL_AT:g}s, restore "
        f"t={RS_RESTORE_AT:g}s"
    )
    return [
        FigureResult(
            figure="RS-a",
            title="Goodput per second through degrade -> kill -> restore",
            xlabel="time (s)",
            xs=xs,
            series=tuple(goodput_series),
            notes=(scale_note, *notes),
        ),
        FigureResult(
            figure="RS-b",
            title="Retry storm: attempted vs useful work per second",
            xlabel="time (s)",
            xs=xs,
            series=tuple(storm_series),
            notes=(
                scale_note,
                "the gap between an attempts curve and its goodput curve "
                "is wasted work: deadline-aborted executions and their "
                "retries",
            ),
        ),
    ]


# -- cross-shard transactions: static split vs cluster SLO control -----------

#: Shard counts of the xs sweep (fast mode drops the 8-shard column).
XS_SHARD_COUNTS = (2, 4, 8)
XS_SHARD_COUNTS_FAST = (2, 4)

#: Cross-shard fraction axis; 0 means no distributed axis at all, so
#: that column doubles as the bit-identity baseline.
XS_FRACTIONS = (0.0, 0.05, 0.2, 0.5)
XS_FRACTIONS_FAST = (0.0, 0.2, 0.5)

#: Offered load per shard, tx/s — ~90% of setup 1's open capacity, so
#: the admission level decides whether the SLO holds.
XS_RATE_PER_SHARD = 58.0

#: The static cell's per-shard MPL: the throughput-tuned single-shard
#: choice.  Over-admitting is near-harmless at fraction 0 (priority
#: scheduling still protects HIGH), but cross-shard branches hold
#: their locks through the prepare gate for the *slowest* sibling's
#: duration, and at this MPL those holds convoy — HIGH p95 drifts
#: over target as the fraction grows.
XS_MPL_PER_SHARD = 32

#: 2PC shape: up to four participants, generous prepare budget (the
#: pathology under study is lock convoying, not timeout storms).
XS_FANOUT_K = 4
XS_PREPARE_TIMEOUT_S = 2.0

#: Priority mix and the cluster-wide SLO the controller must hold.
XS_HIGH_FRACTION = 0.2
XS_P95_TARGET_S = 0.5

#: Completions measured per cell scale with the cluster so every shard
#: count sees a comparable per-shard sample.  p95 over the HIGH class
#: needs the head room: at XS_HIGH_FRACTION only one completion in
#: five lands in the tail statistic's sample.
XS_TXNS_PER_SHARD = 300
XS_TXNS_PER_SHARD_FAST = 300

#: ClusterSlo observation window (completions per probe) — wider than
#: the controller default so each p95 probe sees enough HIGH samples.
XS_SLO_WINDOW = 300

#: ClusterSlo search ceiling (per shard).
XS_SLO_MAX_MPL_PER_SHARD = 64

#: The two control cells compared at every (shards, fraction) point.
XS_CONTROLS = ("static", "slo")


def _xs_spec(
    shards: int,
    fraction: float,
    control: str,
    transactions: int,
    seed: int = DEFAULT_SEED,
) -> ScenarioSpec:
    """One xs cell: a hash-routed cluster at a fixed cross-shard mix."""
    spec = scenario_for(
        get_setup(1),
        mpl=XS_MPL_PER_SHARD * shards,
        transactions=transactions,
        seed=seed,
        arrival=OpenArrivals(rate=XS_RATE_PER_SHARD * shards),
        shards=shards,
        routing="hash",
        policy="priority",
        high_priority_fraction=XS_HIGH_FRACTION,
        tag=f"xs-{shards}x-{control}-f{fraction:g}",
    )
    distributed = (
        DistributedSpec(
            cross_shard_fraction=fraction,
            fanout_k=min(XS_FANOUT_K, shards),
            prepare_timeout_s=XS_PREPARE_TIMEOUT_S,
        )
        if fraction > 0
        else None
    )
    replacements: Dict[str, object] = {
        "distributed": distributed,
        "measurement": dataclasses.replace(
            spec.measurement, metrics=("standard", "percentiles")
        ),
    }
    if control == "slo":
        replacements["control"] = ClusterSlo(
            high_p95_target_s=XS_P95_TARGET_S,
            initial_mpl=XS_MPL_PER_SHARD * shards,
            window=XS_SLO_WINDOW,
            max_mpl=XS_SLO_MAX_MPL_PER_SHARD * shards,
        )
    return dataclasses.replace(spec, **replacements)


def cross_shard_grid(
    fast: bool = True, mpls: Optional[Sequence[int]] = None
) -> List[ScenarioSpec]:
    """The scenario grid behind the cross-shard figure, as data.

    Order: shard counts outermost, then control (static, slo), then
    the fraction axis.  ``mpls`` is accepted for grid-builder signature
    compatibility and ignored (the MPL policy *is* the experiment).
    """
    shard_counts = XS_SHARD_COUNTS_FAST if fast else XS_SHARD_COUNTS
    fractions = XS_FRACTIONS_FAST if fast else XS_FRACTIONS
    per_shard = XS_TXNS_PER_SHARD_FAST if fast else XS_TXNS_PER_SHARD
    return [
        _xs_spec(shards, fraction, control, per_shard * shards)
        for shards in shard_counts
        for control in XS_CONTROLS
        for fraction in fractions
    ]


def cross_shard(fast: bool = True) -> List[FigureResult]:
    """Cross-shard 2PC: static MPL split vs cluster-wide SLO control.

    Sweeps the cross-shard transaction fraction at 2/4/8 shards under
    simulated two-phase commit.  The static cells keep the
    throughput-tuned per-shard MPL split; as the fraction grows, 2PC
    branches hold locks through the prepare gate for the slowest
    sibling and the over-admitted shards convoy, pushing cluster-wide
    HIGH p95 past the target.  The ``ClusterSlo`` cells search the
    global MPL budget (health-aware split) for the highest admission
    that still meets the HIGH p95 target, holding the SLO at every
    fraction while giving up little LOW throughput.

    Runs serially through :func:`execute_scenario` — the slo cells
    mutate controller state while tuning and every cell needs
    percentile metrics, which the parallel runner's ``RunResult`` rows
    do not carry.
    """
    shard_counts = XS_SHARD_COUNTS_FAST if fast else XS_SHARD_COUNTS
    fractions = XS_FRACTIONS_FAST if fast else XS_FRACTIONS
    specs = cross_shard_grid(fast)
    runs = [execute_scenario(spec) for spec in specs]
    high_key = str(int(Priority.HIGH))
    p95_series: List[Series] = []
    throughput_series: List[Series] = []
    notes: List[str] = [
        f"{XS_RATE_PER_SHARD:g} tx/s per shard offered, static MPL = "
        f"{XS_MPL_PER_SHARD} x shards, fanout <= {XS_FANOUT_K}, prepare "
        f"timeout {XS_PREPARE_TIMEOUT_S:g}s, HIGH p95 target "
        f"{XS_P95_TARGET_S:g}s",
    ]
    cells = iter(runs)
    for shards in shard_counts:
        for control in XS_CONTROLS:
            chunk = [next(cells) for _ in fractions]
            label = f"{shards}sh {control}"
            p95_series.append(Series(
                label=label,
                ys=tuple(
                    (run.percentiles.get(high_key) or {}).get("p95", _NAN)
                    for run in chunk
                ),
            ))
            throughput_series.append(Series(
                label=label,
                ys=tuple(run.result.throughput for run in chunk),
            ))
            if control == "slo":
                final_mpls = [
                    str(getattr(run.control, "final_mpl", "?")) for run in chunk
                ]
                notes.append(
                    f"{shards} shards: ClusterSlo final MPL by fraction = "
                    + ", ".join(final_mpls)
                )
            aborts = sum(
                (run.distributed or {}).get("aborts", 0) for run in chunk
            )
            if aborts:
                notes.append(f"{label}: {aborts} 2PC aborts across the sweep")
    return [
        FigureResult(
            figure="XS-a",
            title="Cluster-wide HIGH p95 vs cross-shard fraction",
            xlabel="cross-shard fraction",
            xs=tuple(fractions),
            series=tuple(p95_series),
            notes=tuple(notes),
        ),
        FigureResult(
            figure="XS-b",
            title="Cluster throughput vs cross-shard fraction",
            xlabel="cross-shard fraction",
            xs=tuple(fractions),
            series=tuple(throughput_series),
            notes=(
                "2PC splits a cross-shard transaction's demand across its "
                "participants, so offered work is fraction-invariant — "
                "throughput lost at high fraction is pure coordination "
                "overhead (convoyed locks, parked MPL slots)",
            ),
        ),
    ]


# -- elastic capacity: static split vs ElasticMpl under skew and swings ------

#: Shard count of the es cells (the skew/swing comparison point).
ES_SHARDS = 4

#: Per-shard MPL axis shared by the static and elastic cells.
ES_MPLS = (2, 4, 8, 16)
ES_MPLS_FAST = (2, 8)

#: Arrival regimes: hash routing pins work to shards, so the steady
#: (`po`) regime still carries binomial placement skew, and the
#: sinusoidal (`tv`) regime adds cluster-wide load swings on top.
ES_REGIMES = ("po", "tv")


def _es_spec(
    regime: str,
    per_shard_mpl: int,
    elastic: bool,
    transactions: int,
    seed: int = DEFAULT_SEED,
) -> ScenarioSpec:
    """One es cell: hash-routed cluster, static or elastic MPL split."""
    spec = scenario_for(
        get_setup(1),
        mpl=per_shard_mpl * ES_SHARDS,
        transactions=transactions,
        seed=seed,
        arrival=_sharded_arrival(regime, ES_SHARDS),
        shards=ES_SHARDS,
        routing="hash",
        tag=f"es-{regime}-{'elastic' if elastic else 'static'}",
    )
    if elastic:
        spec = dataclasses.replace(
            spec,
            control=ElasticMpl(mpl=per_shard_mpl * ES_SHARDS, interval_s=1.0),
        )
    return spec


def elastic_grid(
    fast: bool = True, mpls: Optional[Sequence[int]] = None
) -> List[ScenarioSpec]:
    """The scenario grid behind the elastic-capacity figure, as data.

    Order: regime outermost, then control (static, elastic), then the
    per-shard MPL axis.
    """
    if mpls is None:
        mpls = ES_MPLS_FAST if fast else ES_MPLS
    transactions = 250 if fast else 1200
    return [
        _es_spec(regime, mpl, elastic, transactions)
        for regime in ES_REGIMES
        for elastic in (False, True)
        for mpl in mpls
    ]


def elastic_capacity(
    fast: bool = True, mpls: Optional[Sequence[int]] = None
) -> List[FigureResult]:
    """Static MPL split vs ElasticMpl under hash skew and load swings.

    Hash routing pins each transaction to its partition's shard, so
    the per-shard load is skewed (binomial placement) and, in the
    ``tv`` regime, also swings sinusoidally.  A static split gives
    every shard the same admission budget regardless; ``ElasticMpl``
    re-splits the same global budget toward loaded shards every
    second.  Throughput and mean response time vs the per-shard MPL
    axis compare the two under both regimes.
    """
    if mpls is None:
        mpls = ES_MPLS_FAST if fast else ES_MPLS
    runs = iter(run_grid(elastic_grid(fast, mpls)))
    throughput_series: List[Series] = []
    response_series: List[Series] = []
    for regime in ES_REGIMES:
        for control in ("static", "elastic"):
            chunk = [next(runs) for _ in mpls]
            label = f"{regime} {control}"
            throughput_series.append(Series(
                label=label, ys=tuple(r.throughput for r in chunk)
            ))
            response_series.append(Series(
                label=label,
                ys=tuple(r.mean_response_time for r in chunk),
            ))
    scale_note = (
        f"{ES_SHARDS} shards, hash routing, "
        f"{SHARD_RATE_PER_SHARD:g} tx/s per shard offered; elastic "
        f"cells re-split the same global budget every 1s"
    )
    return [
        FigureResult(
            figure="ES-a",
            title="Throughput vs per-shard MPL: static vs elastic split",
            xlabel="per-shard MPL",
            xs=tuple(float(m) for m in mpls),
            series=tuple(throughput_series),
            notes=(scale_note,),
        ),
        FigureResult(
            figure="ES-b",
            title="Mean response time vs per-shard MPL",
            xlabel="per-shard MPL",
            xs=tuple(float(m) for m in mpls),
            series=tuple(response_series),
            notes=(scale_note,),
        ),
    ]


# -- declarative grids (for `repro.experiments bench` and CI) ----------------


@dataclasses.dataclass(frozen=True)
class GridPanel:
    """One panel's worth of runs: a setup list and its sample sizes."""

    setup_ids: Tuple[int, ...]
    fast_transactions: int
    full_transactions: int

    def transactions(self, fast: bool) -> int:
        return self.fast_transactions if fast else self.full_transactions


@dataclasses.dataclass(frozen=True)
class GridDef:
    """A figure's whole simulation grid, declared as data.

    The single source of truth consumed by the figure functions, the
    CLI's ``bench`` subcommand, and the parallel runner — previously
    five near-identical ``figure*_grid`` helpers.
    """

    mpls: Tuple[int, ...]
    panels: Tuple[GridPanel, ...]
    #: MPL override for fast runs (only the smoke grid shrinks its axis).
    fast_mpls: Optional[Tuple[int, ...]] = None
    #: Custom grid builder for figures whose sweep is not a plain
    #: (setup, MPL) product — the sharded-cluster grid plugs in here.
    builder: Optional[Callable[..., List[ScenarioSpec]]] = None

    def build(
        self, fast: bool = True, mpls: Optional[Sequence[int]] = None
    ) -> List[ScenarioSpec]:
        if self.builder is not None:
            return self.builder(fast, mpls)
        if mpls is None:
            mpls = self.fast_mpls if (fast and self.fast_mpls) else self.mpls
        specs: List[ScenarioSpec] = []
        for panel in self.panels:
            specs.extend(
                throughput_grid(panel.setup_ids, mpls, panel.transactions(fast))
            )
        return specs


GRID_DEFS: Dict[str, GridDef] = {
    "2": GridDef(
        mpls=_DEFAULT_MPLS,
        panels=(GridPanel((1, 2), 700, 2500), GridPanel((3, 4), 400, 1500)),
    ),
    "3": GridDef(
        mpls=_DEFAULT_MPLS,
        panels=(GridPanel((5, 6, 7, 8), 350, 1200), GridPanel((9, 10), 250, 600)),
    ),
    "4": GridDef(
        mpls=_DEFAULT_MPLS + (35,),
        panels=(GridPanel((11, 12), 700, 2500),),
    ),
    "5": GridDef(
        mpls=(1, 2, 3, 5, 7, 10, 15, 20, 30, 40),
        panels=(GridPanel((17, 1), 700, 2500), GridPanel((16, 15), 700, 2500)),
    ),
    "smoke": GridDef(
        mpls=(1, 2, 4, 8, 16, 30),
        panels=(GridPanel((1,), 150, 600),),
        fast_mpls=(1, 2, 4, 8),
    ),
    "sh": GridDef(
        mpls=SHARD_MPLS,
        panels=(),
        fast_mpls=SHARD_MPLS_FAST,
        builder=sharded_grid,
    ),
    "ft": GridDef(
        mpls=(),
        panels=(),
        builder=fault_tolerance_grid,
    ),
    "rf": GridDef(
        mpls=(),
        panels=(),
        builder=replica_fanout_grid,
    ),
    "rs": GridDef(
        mpls=(),
        panels=(),
        builder=resilience_grid,
    ),
    "xs": GridDef(
        mpls=(),
        panels=(),
        builder=cross_shard_grid,
    ),
    "es": GridDef(
        mpls=ES_MPLS,
        panels=(),
        fast_mpls=ES_MPLS_FAST,
        builder=elastic_grid,
    ),
}


def figure2_grid(fast: bool = True, mpls: Optional[Sequence[int]] = None) -> List[ScenarioSpec]:
    """The simulation grid behind Figure 2 (both panels)."""
    return GRID_DEFS["2"].build(fast, mpls)


def figure3_grid(fast: bool = True, mpls: Optional[Sequence[int]] = None) -> List[ScenarioSpec]:
    """The simulation grid behind Figure 3 (both panels)."""
    return GRID_DEFS["3"].build(fast, mpls)


def figure4_grid(fast: bool = True, mpls: Optional[Sequence[int]] = None) -> List[ScenarioSpec]:
    """The simulation grid behind Figure 4."""
    return GRID_DEFS["4"].build(fast, mpls)


def figure5_grid(fast: bool = True, mpls: Optional[Sequence[int]] = None) -> List[ScenarioSpec]:
    """The simulation grid behind Figure 5 (both panels)."""
    return GRID_DEFS["5"].build(fast, mpls)


def smoke_grid(fast: bool = True) -> List[ScenarioSpec]:
    """A deliberately cheap grid for CI smoke runs and cache benchmarks."""
    return GRID_DEFS["smoke"].build(fast)


#: Figure key → grid builder, the machine-readable face of the figures
#: above.  ``bench`` runs any of these through the parallel runner.
FIGURE_GRIDS: Dict[str, Callable[[bool], List[ScenarioSpec]]] = {
    **{key: grid.build for key, grid in GRID_DEFS.items()},
    "po": partly_open_grid,
}
