"""Plain-text rendering of experiment results (tables and charts).

The paper's figures are line charts; we render each as (a) a numeric
table of the plotted series and (b) a coarse ASCII chart, both of
which survive a terminal and a CI log.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(separator)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_chart(
    xs: Sequence[float],
    series: Sequence[tuple],
    width: int = 64,
    height: int = 16,
    title: Optional[str] = None,
) -> str:
    """Render labelled (label, ys) series as a coarse ASCII line chart."""
    if not xs or not series:
        return title or ""
    markers = "ox+*#@%&"
    all_ys = [y for _label, ys in series for y in ys if y == y]  # drop NaN
    if not all_ys:
        return title or ""
    y_min, y_max = min(all_ys), max(all_ys)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(xs), max(xs)
    if x_max == x_min:
        x_max = x_min + 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (label, ys) in enumerate(series):
        marker = markers[index % len(markers)]
        for x, y in zip(xs, ys):
            if y != y:
                continue
            col = int((x - x_min) / (x_max - x_min) * (width - 1))
            row = int((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = marker
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:10.3g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_min:10.3g} +" + "-" * width)
    lines.append(" " * 12 + f"{x_min:<10.3g}" + " " * max(0, width - 20) + f"{x_max:>10.3g}")
    legend = "   ".join(
        f"{markers[i % len(markers)]}={label}" for i, (label, _ys) in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def format_seconds(value: float) -> str:
    """Human-friendly seconds with millisecond precision below 1 s."""
    if value < 1.0:
        return f"{value * 1000:.0f} ms"
    return f"{value:.2f} s"
