"""Shared machinery for running Table 2 setups.

Every figure reproduction boils down to: build a
:class:`~repro.core.system.SimulatedSystem` for a setup, run it at one
or more MPL values, and collect :class:`~repro.core.system.RunResult`
rows.  The helpers here centralize that, including the tuner pipeline
(baseline → model jump-start → feedback controller) used wherever the
paper says "the MPL is adjusted using the methods from Section 4".
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.core.arrivals import ArrivalSpec
from repro.core.controller import Thresholds
from repro.core.scenario import (
    MeasurementSpec,
    ScenarioSpec,
    StaticMpl,
    TopologySpec,
    WorkloadRef,
)
from repro.core.system import RunResult, SimulatedSystem, SystemConfig
from repro.core.tuner import MplTuner, TuningResult
from repro.dbms.config import InternalPolicy
from repro.experiments.parallel import ParallelRunner, RunSpec, run_grid
from repro.workloads.setups import Setup, get_setup


def scenario_results(
    specs: Sequence[ScenarioSpec],
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> List[RunResult]:
    """Run scenario specs through a dedicated :class:`ParallelRunner`.

    The scenario fuzzer's ``--jobs N`` invariance oracle goes through
    here: a fresh runner (not the process-global one) so the worker
    pool size is exactly what the oracle asked for, with the same
    content-addressed result cache any other grid shares.
    """
    return ParallelRunner(jobs=jobs, cache_dir=cache_dir).run(list(specs))


def setup_config(
    setup: Setup,
    mpl: Optional[int] = None,
    policy: str = "fifo",
    internal: Optional[InternalPolicy] = None,
    high_priority_fraction: float = 0.0,
    arrival_rate: Optional[float] = None,
    seed: int = 11,
    arrival: Optional[ArrivalSpec] = None,
) -> SystemConfig:
    """A :class:`SystemConfig` for one Table 2 setup."""
    return SystemConfig(
        workload=setup.workload,
        hardware=setup.hardware,
        isolation=setup.isolation,
        internal=internal,
        mpl=mpl,
        policy=policy,
        high_priority_fraction=high_priority_fraction,
        arrival_rate=arrival_rate,
        seed=seed,
        arrival=arrival,
    )


def spec_for(
    setup: Setup,
    mpl: Optional[int] = None,
    transactions: int = 1500,
    seed: int = 11,
    policy: str = "fifo",
    internal: Optional[InternalPolicy] = None,
    high_priority_fraction: float = 0.0,
    arrival_rate: Optional[float] = None,
    arrival: Optional[ArrivalSpec] = None,
    shards: int = 1,
    routing: str = "round_robin",
    routing_weights: Optional[Tuple[float, ...]] = None,
    tag: str = "",
) -> RunSpec:
    """The :class:`RunSpec` equivalent of a :func:`run_setup` call.

    Topology knobs land in a :class:`TopologySpec` (the ``shards`` /
    ``routing`` / ``routing_weights`` fields on :class:`RunSpec` are
    deprecated); single-shard defaults stay implicit so legacy
    fingerprints are untouched.
    """
    clustered = (
        shards != 1 or routing != "round_robin" or routing_weights is not None
    )
    topology = (
        TopologySpec(shards=shards, routing=routing,
                     routing_weights=routing_weights)
        if clustered
        else None
    )
    return RunSpec(
        setup_id=setup.setup_id,
        mpl=mpl,
        transactions=transactions,
        seed=seed,
        policy=policy,
        internal=internal,
        high_priority_fraction=high_priority_fraction,
        arrival_rate=arrival_rate,
        arrival=arrival,
        topology=topology,
        tag=tag,
    )


def scenario_for(
    setup: Setup,
    mpl: Optional[int] = None,
    transactions: int = 1500,
    seed: int = 11,
    policy: str = "fifo",
    internal: Optional[InternalPolicy] = None,
    high_priority_fraction: float = 0.0,
    arrival_rate: Optional[float] = None,
    arrival: Optional[ArrivalSpec] = None,
    shards: int = 1,
    routing: str = "round_robin",
    routing_weights: Optional[Tuple[float, ...]] = None,
    warmup_fraction: float = 0.2,
    tag: str = "",
) -> ScenarioSpec:
    """The :class:`ScenarioSpec` equivalent of a :func:`run_setup` call.

    The scenario-native sibling of :func:`spec_for` — same knobs, same
    fingerprints (a static-control scenario hashes exactly like the
    legacy spec), used by the figure grids.
    """
    return ScenarioSpec(
        workload=WorkloadRef(setup_id=setup.setup_id),
        arrival=arrival,
        topology=TopologySpec(
            shards=shards, routing=routing, routing_weights=routing_weights
        ),
        control=StaticMpl(mpl),
        measurement=MeasurementSpec(
            transactions=transactions, warmup_fraction=warmup_fraction
        ),
        policy=policy,
        internal=internal,
        high_priority_fraction=high_priority_fraction,
        arrival_rate=arrival_rate,
        seed=seed,
        tag=tag,
    )


def run_setup(
    setup: Setup,
    mpl: Optional[int] = None,
    transactions: int = 1500,
    seed: int = 11,
    policy: str = "fifo",
    internal: Optional[InternalPolicy] = None,
    high_priority_fraction: float = 0.0,
    arrival_rate: Optional[float] = None,
    arrival: Optional[ArrivalSpec] = None,
) -> RunResult:
    """Run one setup at one MPL and return its measurements.

    Canonical Table 2 setups go through the active
    :class:`~repro.experiments.parallel.ParallelRunner` (and hence its
    result cache); ad-hoc :class:`Setup` objects that don't match their
    setup id run directly, since a :class:`RunSpec` only names a
    canonical setup.
    """
    spec = spec_for(
        setup,
        mpl=mpl,
        transactions=transactions,
        seed=seed,
        policy=policy,
        internal=internal,
        high_priority_fraction=high_priority_fraction,
        arrival_rate=arrival_rate,
        arrival=arrival,
    )
    try:
        canonical = get_setup(setup.setup_id) == setup
    except KeyError:
        canonical = False
    if not canonical:
        config = setup_config(
            setup,
            mpl=mpl,
            policy=policy,
            internal=internal,
            high_priority_fraction=high_priority_fraction,
            arrival_rate=arrival_rate,
            seed=seed,
            arrival=arrival,
        )
        return SimulatedSystem(config).run(transactions=transactions)
    return run_grid([spec])[0]


def mpl_sweep(
    setup: Setup,
    mpls: Sequence[Optional[int]],
    transactions: int = 1500,
    seed: int = 11,
    arrival_rate: Optional[float] = None,
) -> List[Tuple[Optional[int], RunResult]]:
    """Run a setup across MPL values (common seed = paired comparison)."""
    grid = [
        spec_for(setup, mpl=mpl, transactions=transactions, seed=seed,
                 arrival_rate=arrival_rate)
        for mpl in mpls
    ]
    return list(zip(mpls, run_grid(grid)))


def tune_setup(
    setup: Setup,
    max_throughput_loss: float = 0.05,
    max_response_time_increase: float = 0.30,
    transactions: int = 1000,
    window: int = 100,
    seed: int = 11,
) -> TuningResult:
    """Tune a setup's MPL the paper's way (§4): models + controller."""
    config = setup_config(setup, seed=seed)
    tuner = MplTuner(
        config,
        thresholds=Thresholds(
            max_throughput_loss=max_throughput_loss,
            max_response_time_increase=max_response_time_increase,
        ),
        baseline_transactions=transactions,
        window=window,
    )
    return tuner.tune()


@dataclasses.dataclass(frozen=True)
class MinMplResult:
    """Outcome of an experimental minimum-MPL search."""

    min_mpl: int
    baseline_throughput: float
    achieved_throughput: float
    sweep: Tuple[Tuple[int, float], ...]


def find_min_mpl_experimental(
    setup: Setup,
    fraction: float = 0.95,
    candidate_mpls: Sequence[int] = (1, 2, 3, 4, 5, 7, 10, 13, 16, 20, 25, 30, 40),
    transactions: int = 1200,
    seed: int = 11,
) -> MinMplResult:
    """Sweep MPLs and report the lowest reaching ``fraction`` of baseline.

    This is the brute-force measurement the paper's Figures 2–5 are
    built from (the tuner exists precisely to avoid needing it
    online).
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction!r}")
    ordered = sorted(candidate_mpls)
    grid = [spec_for(setup, mpl=None, transactions=transactions, seed=seed)] + [
        spec_for(setup, mpl=mpl, transactions=transactions, seed=seed)
        for mpl in ordered
    ]
    baseline, *candidates = run_grid(grid)
    sweep: List[Tuple[int, float]] = []
    chosen: Optional[int] = None
    achieved = 0.0
    for mpl, result in zip(ordered, candidates):
        sweep.append((mpl, result.throughput))
        if chosen is None and result.throughput >= fraction * baseline.throughput:
            chosen = mpl
            achieved = result.throughput
    if chosen is None:
        chosen = max(candidate_mpls)
        achieved = sweep[-1][1]
    return MinMplResult(
        min_mpl=chosen,
        baseline_throughput=baseline.throughput,
        achieved_throughput=achieved,
        sweep=tuple(sweep),
    )
