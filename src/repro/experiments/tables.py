"""Reproductions of the paper's tables and the §3.2 variability study."""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.dbms.bufferpool import AnalyticBufferPool
from repro.experiments.report import ascii_table
from repro.metrics import stats
from repro.workloads.setups import (
    SETUPS,
    WORKLOADS,
    WORKLOAD_LOAD,
    WORKLOAD_MEMORY,
)
from repro.workloads.traces import auction_site_trace, online_retailer_trace


def table1() -> str:
    """Table 1: the six workloads with their configurations."""
    rows: List[List[str]] = []
    for name, spec in WORKLOADS.items():
        memory_mb, pool_mb = WORKLOAD_MEMORY[name]
        cpu_load, io_load = WORKLOAD_LOAD[name]
        rows.append(
            [
                name,
                spec.benchmark,
                spec.configuration,
                f"{spec.db_mb} MB",
                f"{memory_mb} MB",
                f"{pool_mb} MB",
                cpu_load,
                io_load,
            ]
        )
    return ascii_table(
        [
            "Workload",
            "Benchmark",
            "Configuration",
            "Database",
            "Main memory",
            "Bufferpool",
            "CPU load",
            "IO load",
        ],
        rows,
        title="Table 1: workloads",
    )


def table2() -> str:
    """Table 2: the seventeen setups."""
    rows = [
        [
            str(s.setup_id),
            s.workload_name,
            str(s.num_cpus),
            str(s.num_disks),
            s.isolation.value,
        ]
        for s in SETUPS
    ]
    return ascii_table(
        ["Setup", "Workload", "Number CPUs", "Number disks", "Isolation level"],
        rows,
        title="Table 2: setups",
    )


def _workload_demand_scv(name: str, samples: int, seed: int) -> Tuple[float, float]:
    """Sampled (mean, C²) of total service demand for a workload.

    Demands combine CPU with the expected physical I/O given the
    workload's Table 1 machine, i.e. the same quantity the paper
    computes from its measurement intervals.
    """
    spec = WORKLOADS[name]
    memory_mb, pool_mb = WORKLOAD_MEMORY[name]
    from repro.dbms.config import HardwareConfig

    hardware = HardwareConfig(memory_mb=memory_mb, bufferpool_mb=pool_mb)
    pool = AnalyticBufferPool(
        spec.db_pages,
        hardware.cache_pages,
        hot_access_fraction=spec.hot_access_fraction,
        hot_page_fraction=spec.hot_page_fraction,
    )
    miss = 1.0 - pool.hit_probability
    disk_s = hardware.disk_service_mean_ms / 1000.0
    rng = random.Random(seed)
    demands = []
    for tid in range(samples):
        tx = spec.sample_transaction(rng, tid)
        demands.append(tx.cpu_demand + tx.page_accesses * miss * disk_s)
    return stats.mean(demands), stats.scv(demands)


def variability_table(samples: int = 20_000, seed: int = 5) -> str:
    """§3.2: demand C² of the benchmarks vs the production traces.

    The paper reports C² of 1.0–1.5 for TPC-C configurations, ≈ 15 for
    TPC-W, and ≈ 2 for the commercial traces.
    """
    rows: List[List[str]] = []
    for name in WORKLOADS:
        mean, scv = _workload_demand_scv(name, samples, seed)
        rows.append([name, f"{mean * 1000:.1f} ms", f"{scv:.2f}"])
    for trace in (online_retailer_trace(samples // 2), auction_site_trace(samples // 2)):
        demands = trace.demands
        rows.append(
            [
                f"trace: {trace.name}",
                f"{stats.mean(demands) * 1000:.1f} ms",
                f"{trace.demand_scv:.2f}",
            ]
        )
    return ascii_table(
        ["Workload / trace", "Mean demand", "C^2"],
        rows,
        title="Service-demand variability (paper 3.2)",
    )
