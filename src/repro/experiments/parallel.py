"""Parallel experiment execution with a content-addressed result cache.

Every figure reproduction reduces to a *grid* of independent
simulation runs — ``(setup, MPL, policy, seed)`` tuples — that the
seed code executed strictly sequentially.  This module turns the grid
into data (:class:`RunSpec`), fans it out over a process pool, and
memoizes every completed run on disk keyed by the content hash of its
full :class:`~repro.core.system.SystemConfig`, so re-running an
unchanged figure is near-instant.

Determinism is structural, not incidental: each run owns a complete
``SystemConfig`` (including its seed), every worker builds its system
from scratch, and results are reassembled in submission order.  A
``--jobs N`` run is therefore bit-identical to the sequential one for
any ``N``, and identical specs within one grid execute only once.

The module keeps one process-wide *active runner* that the figure
functions submit their grids to (see :func:`run_grid`); the CLI
installs a configured runner from ``--jobs`` / ``--cache-dir``.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import dataclasses
import json
import os
import tempfile
import time
import warnings
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.arrivals import ArrivalSpec
from repro.core.cluster import AnyConfig
from repro.core.scenario import (
    DEFAULT_SEED,
    MeasurementSpec,
    ScenarioSpec,
    StaticMpl,
    TopologySpec,
    WorkloadRef,
    execute_scenario,
)
from repro.core.system import (
    RunResult,
    canonical_jsonable,
)
from repro.dbms.config import InternalPolicy

__all__ = [
    "DEFAULT_SEED", "RunSpec", "execute_spec", "ResultCache",
    "ParallelRunner", "RunnerStats", "run_grid", "get_runner",
    "set_runner", "configure", "using_runner",
]


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """One simulation run, declared as data — now a thin adapter.

    A spec is everything a worker process needs to execute the run
    from scratch: the Table 2 setup id plus the knobs
    :func:`repro.experiments.runner.run_setup` exposes.  Specs are
    hashable, picklable, and content-addressable via
    :meth:`fingerprint`.

    Since the Scenario API landed, :meth:`to_scenario` is the *only*
    construction path: ``config()`` and ``fingerprint()`` delegate to
    the equivalent :class:`~repro.core.scenario.ScenarioSpec`, which
    produces byte-identical configs, digests, and results (pinned by
    the golden-fingerprint corpus).
    """

    setup_id: int
    mpl: Optional[int] = None
    transactions: int = 1500
    seed: int = DEFAULT_SEED
    policy: str = "fifo"
    internal: Optional[InternalPolicy] = None
    high_priority_fraction: float = 0.0
    arrival_rate: Optional[float] = None
    warmup_fraction: float = 0.2
    #: Arrival regime (closed / open / partly-open / modulated); None
    #: keeps the legacy num_clients / arrival_rate behaviour — and the
    #: legacy fingerprints.
    arrival: Optional[ArrivalSpec] = None
    #: DEPRECATED loose topology fields: prefer
    #: ``RunSpec(topology=TopologySpec(...))``.  With ``shards > 1``
    #: the run scales the setup out to N engines behind a router
    #: (``mpl`` becomes the global MPL, split across shards).
    #: ``shards=1`` is the plain engine — and, being the field
    #: defaults, keeps every legacy fingerprint.  Non-default values
    #: emit a :class:`DeprecationWarning`.
    shards: int = 1
    routing: str = "round_robin"
    routing_weights: Optional[Tuple[float, ...]] = None
    #: Free-form label carried into bench artifacts (never hashed).
    tag: str = ""
    #: The v2 topology axis: set this instead of the loose
    #: shards/routing/routing_weights trio (mutually exclusive).
    topology: Optional[TopologySpec] = None

    def __post_init__(self) -> None:
        loose = (
            self.shards != 1
            or self.routing != "round_robin"
            or self.routing_weights is not None
        )
        if self.topology is not None and loose:
            raise ValueError(
                "specify topology=TopologySpec(...) or the legacy "
                "shards/routing/routing_weights fields, not both"
            )
        if loose:
            warnings.warn(
                "RunSpec.shards/routing/routing_weights are deprecated; "
                "use RunSpec(topology=TopologySpec(...)) instead",
                DeprecationWarning,
                stacklevel=3,
            )

    def resolved_topology(self) -> TopologySpec:
        """The topology axis, whichever way it was spelled."""
        if self.topology is not None:
            return self.topology
        return TopologySpec(
            shards=self.shards,
            routing=self.routing,
            routing_weights=self.routing_weights,
        )

    def to_scenario(self) -> ScenarioSpec:
        """The equivalent scenario — the single construction path."""
        return ScenarioSpec(
            workload=WorkloadRef(setup_id=self.setup_id),
            arrival=self.arrival,
            topology=self.resolved_topology(),
            control=StaticMpl(self.mpl),
            measurement=MeasurementSpec(
                transactions=self.transactions,
                warmup_fraction=self.warmup_fraction,
            ),
            policy=self.policy,
            internal=self.internal,
            high_priority_fraction=self.high_priority_fraction,
            arrival_rate=self.arrival_rate,
            seed=self.seed,
            tag=self.tag,
        )

    def config(self) -> AnyConfig:
        """The full config this spec describes (system or cluster)."""
        return self.to_scenario().build_config()

    def fingerprint(self) -> str:
        """Content hash of the run (config + measurement parameters)."""
        return self.to_scenario().fingerprint()


#: Anything the runner executes: a legacy RunSpec or a full scenario.
AnySpec = Union[RunSpec, ScenarioSpec]


def as_scenario(spec: AnySpec) -> ScenarioSpec:
    """Normalize either spec flavor to the canonical scenario form."""
    return spec if isinstance(spec, ScenarioSpec) else spec.to_scenario()


def execute_spec(spec: AnySpec) -> RunResult:
    """Run one spec to completion (also the process-pool worker)."""
    return execute_scenario(as_scenario(spec)).result


class ResultCache:
    """Content-addressed on-disk cache of :class:`RunResult` JSON.

    Layout: ``<cache_dir>/<hh>/<fingerprint>.json`` where ``hh`` is the
    first two hex digits of the fingerprint (keeps directories small on
    full-paper sweeps).  Each entry stores the result plus the spec's
    human-readable summary for debuggability.  Writes are atomic
    (temp file + rename) so concurrent runners never observe torn
    entries.
    """

    def __init__(self, cache_dir: str):
        self.cache_dir = cache_dir

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, key[:2], f"{key}.json")

    def load(self, key: str) -> Optional[RunResult]:
        """The cached result for ``key``, or None on miss/corruption."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            return RunResult.from_json_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def store(self, key: str, spec: AnySpec, result: RunResult) -> None:
        """Atomically persist one run's result under its fingerprint."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        if isinstance(spec, ScenarioSpec):
            summary: Dict[str, Any] = spec.to_json_dict()
        else:
            summary = {
                "setup_id": spec.setup_id,
                "mpl": spec.mpl,
                "transactions": spec.transactions,
                "seed": spec.seed,
                "policy": spec.policy,
                "high_priority_fraction": spec.high_priority_fraction,
                "arrival_rate": spec.arrival_rate,
                "arrival": canonical_jsonable(spec.arrival),
                "shards": spec.shards,
                "routing": spec.routing,
                "routing_weights": canonical_jsonable(spec.routing_weights),
                "tag": spec.tag,
            }
        payload = {
            "key": key,
            "spec": summary,
            "result": result.to_json_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise


@dataclasses.dataclass
class RunnerStats:
    """Counters from one :meth:`ParallelRunner.run` call (or a running total)."""

    submitted: int = 0
    cache_hits: int = 0
    executed: int = 0
    deduplicated: int = 0
    elapsed_s: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    def accumulate(self, other: "RunnerStats") -> None:
        """Add another call's counters into this running total."""
        self.submitted += other.submitted
        self.cache_hits += other.cache_hits
        self.executed += other.executed
        self.deduplicated += other.deduplicated
        self.elapsed_s += other.elapsed_s

    def since(self, earlier: "RunnerStats") -> "RunnerStats":
        """The counter delta between two snapshots of a running total."""
        return RunnerStats(
            submitted=self.submitted - earlier.submitted,
            cache_hits=self.cache_hits - earlier.cache_hits,
            executed=self.executed - earlier.executed,
            deduplicated=self.deduplicated - earlier.deduplicated,
            elapsed_s=self.elapsed_s - earlier.elapsed_s,
        )


class ParallelRunner:
    """Executes :class:`RunSpec` grids over a worker pool, with caching.

    ``jobs=1`` runs inline in this process (no pool overhead, still
    cached); ``jobs=N`` fans distinct uncached specs out over
    ``N`` worker processes.  Results always come back in submission
    order, and duplicate specs within a grid are executed once.
    """

    def __init__(self, jobs: int = 1, cache_dir: Optional[str] = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs!r}")
        self.jobs = jobs
        self.cache = ResultCache(cache_dir) if cache_dir else None
        #: Counters from the most recent :meth:`run` call.
        self.stats = RunnerStats()
        #: Running totals across every :meth:`run` call on this runner.
        self.totals = RunnerStats()

    def run(self, specs: Sequence[AnySpec]) -> List[RunResult]:
        """Run a grid; the i-th result belongs to the i-th spec."""
        start = time.perf_counter()
        stats = RunnerStats(submitted=len(specs))
        keys = [spec.fingerprint() for spec in specs]
        results: Dict[str, RunResult] = {}
        pending: List[Tuple[str, AnySpec]] = []
        seen: set = set()
        for key, spec in zip(keys, specs):
            if key in seen:
                stats.deduplicated += 1
                continue
            seen.add(key)
            cached = self.cache.load(key) if self.cache else None
            if cached is not None:
                stats.cache_hits += 1
                results[key] = cached
            else:
                pending.append((key, spec))

        stats.executed = len(pending)
        for key, result in self._execute(pending):
            results[key] = result

        stats.elapsed_s = time.perf_counter() - start
        self.stats = stats
        self.totals.accumulate(stats)
        return [results[key] for key in keys]

    def run_one(self, spec: AnySpec) -> RunResult:
        """Run a single spec through the cache (no pool spin-up)."""
        return self.run([spec])[0]

    def _execute(
        self, pending: List[Tuple[str, AnySpec]]
    ) -> Iterator[Tuple[str, RunResult]]:
        if not pending:
            return
        if self.jobs == 1 or len(pending) == 1:
            for key, spec in pending:
                yield key, self._finish(key, spec, execute_spec(spec))
            return
        workers = min(self.jobs, len(pending))
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(execute_spec, spec): (key, spec) for key, spec in pending
            }
            for future in concurrent.futures.as_completed(futures):
                key, spec = futures[future]
                yield key, self._finish(key, spec, future.result())

    def _finish(self, key: str, spec: AnySpec, result: RunResult) -> RunResult:
        if self.cache:
            self.cache.store(key, spec, result)
        return result


# -- process-wide active runner ---------------------------------------------

_active_runner: ParallelRunner = ParallelRunner(jobs=1)


def get_runner() -> ParallelRunner:
    """The runner figure grids are currently submitted to."""
    return _active_runner


def set_runner(runner: ParallelRunner) -> ParallelRunner:
    """Install ``runner`` as the active runner; returns the previous one."""
    global _active_runner
    previous = _active_runner
    _active_runner = runner
    return previous


def configure(jobs: int = 1, cache_dir: Optional[str] = None) -> ParallelRunner:
    """Build and install a runner (the CLI's ``--jobs/--cache-dir`` hook)."""
    runner = ParallelRunner(jobs=jobs, cache_dir=cache_dir)
    set_runner(runner)
    return runner


@contextlib.contextmanager
def using_runner(runner: ParallelRunner) -> Iterator[ParallelRunner]:
    """Temporarily make ``runner`` the active runner."""
    previous = set_runner(runner)
    try:
        yield runner
    finally:
        set_runner(previous)


def run_grid(specs: Sequence[AnySpec]) -> List[RunResult]:
    """Submit a grid to the active runner (what every figure calls)."""
    return get_runner().run(list(specs))
