"""Experiment harness: one entry point per table and figure.

Run ``python -m repro.experiments --list`` to see everything that can
be regenerated; each figure/table function is also importable for
programmatic use and is wrapped by a benchmark in ``benchmarks/``.
"""

from repro.experiments.figures import (
    FigureResult,
    Series,
    controller_convergence,
    figure2,
    figure3,
    figure4,
    figure5,
    figure7,
    figure10,
    figure11,
    figure12,
    figure13,
    section32_response_time,
)
from repro.experiments.runner import mpl_sweep, run_setup, tune_setup
from repro.experiments.tables import table1, table2, variability_table

__all__ = [
    "FigureResult",
    "Series",
    "controller_convergence",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure7",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "mpl_sweep",
    "run_setup",
    "section32_response_time",
    "table1",
    "table2",
    "tune_setup",
    "variability_table",
]
